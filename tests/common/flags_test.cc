#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesKeyValuePairs) {
  auto flags = make({"--n=100", "--rate=0.5", "--name=test"});
  EXPECT_EQ(flags.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(flags.get_string("name", ""), "test");
}

TEST(Flags, FallbacksWhenAbsent) {
  auto flags = make({});
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(flags.get_bool("full", false));
  EXPECT_TRUE(flags.get_bool("full", true));
}

TEST(Flags, BooleanForms) {
  EXPECT_TRUE(make({"--full"}).get_bool("full", false));
  EXPECT_TRUE(make({"--full=true"}).get_bool("full", false));
  EXPECT_TRUE(make({"--full=1"}).get_bool("full", false));
  EXPECT_FALSE(make({"--full=false"}).get_bool("full", true));
  EXPECT_FALSE(make({"--full=0"}).get_bool("full", true));
  EXPECT_THROW(make({"--full=maybe"}).get_bool("full", false), CheckError);
}

TEST(Flags, PositionalArgumentsRejected) {
  EXPECT_THROW(make({"positional"}), CheckError);
}

TEST(Flags, MalformedNumbersThrow) {
  EXPECT_THROW(make({"--n=12x"}).get_int("n", 0), CheckError);
  EXPECT_THROW(make({"--rate=abc"}).get_double("rate", 0.0), CheckError);
}

TEST(Flags, HarnessConventions) {
  auto flags = make({"--seed=9", "--seeds=3", "--full"});
  EXPECT_EQ(flags.seed(), 9u);
  EXPECT_EQ(flags.seeds(), 3);
  EXPECT_TRUE(flags.full());
  EXPECT_TRUE(flags.has("seed"));
  EXPECT_FALSE(flags.has("absent"));
}

}  // namespace
}  // namespace guess
