#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <set>
#include <tuple>

namespace guess {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntIsInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 5));
  EXPECT_EQ(seen, (std::set<std::int64_t>{1, 2, 3, 4, 5}));
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, IndexOfZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), CheckError);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, PickReturnsElementFromSpan) {
  Rng rng(19);
  std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    int v = rng.pick(std::span<const int>(items));
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(23);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  auto copy = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, copy);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(29);
  Rng child = parent.split();
  // The child stream should not mirror the parent's subsequent output.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform() == child.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

// --- property tests over (n, k) for distinct sampling ---

class SampleIndicesTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SampleIndicesTest, ReturnsKDistinctInRange) {
  auto [n, k] = GetParam();
  Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    auto sample = rng.sample_indices(n, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (auto idx : sample) EXPECT_LT(idx, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleIndicesTest,
    ::testing::Values(std::make_tuple(1, 0), std::make_tuple(1, 1),
                      std::make_tuple(10, 3), std::make_tuple(10, 10),
                      std::make_tuple(100, 5), std::make_tuple(100, 99),
                      std::make_tuple(1000, 2), std::make_tuple(7, 6)));

TEST(Rng, SampleIndicesKLargerThanNThrows) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_indices(3, 4), CheckError);
}

// The allocation-free variant must draw the exact engine sequence of
// sample_indices: the network switched the query hot path to
// sample_indices_into, and every pinned result depends on the draws not
// shifting by a single call.
TEST(Rng, SampleIndicesIntoDrawIdentity) {
  Rng a(53);
  Rng b(53);
  std::vector<std::size_t> out;
  std::vector<std::size_t> scratch;
  // Sweep both branches (sparse k << n and dense k ~ n), interleaved so a
  // draw-count mismatch in any call desynchronises everything after it.
  const std::vector<std::pair<std::size_t, std::size_t>> cases = {
      {1, 0}, {1, 1}, {10, 3}, {10, 10}, {100, 5},
      {100, 99}, {1000, 2}, {7, 6}, {64, 32}};
  for (int round = 0; round < 50; ++round) {
    for (auto [n, k] : cases) {
      auto expected = a.sample_indices(n, k);
      b.sample_indices_into(n, k, out, scratch);
      ASSERT_EQ(out, expected) << "n=" << n << " k=" << k;
    }
  }
  // Same number of raw draws consumed overall.
  EXPECT_EQ(a.engine()(), b.engine()());
}

TEST(Rng, SampleIndicesUniformity) {
  // Every index should be sampled with roughly equal frequency.
  Rng rng(41);
  std::vector<int> counts(10, 0);
  const int rounds = 20000;
  for (int round = 0; round < rounds; ++round) {
    for (auto idx : rng.sample_indices(10, 3)) ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / rounds, 0.3, 0.03);
  }
}

}  // namespace
}  // namespace guess
