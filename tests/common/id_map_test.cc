// FlatIdMap: the link cache's fixed-capacity id -> position index. Unit
// tests for the checked API plus a randomized model check against
// std::unordered_map hammering the backward-shift deletion (the part of
// open addressing that is easy to get subtly wrong).
#include "common/id_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace guess {
namespace {

TEST(FlatIdMap, InsertFindErase) {
  FlatIdMap map(8);
  EXPECT_EQ(map.find(3), FlatIdMap::kNotFound);
  map.insert(3, 10);
  EXPECT_EQ(map.find(3), 10u);
  EXPECT_TRUE(map.contains(3));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.erase(3));
  EXPECT_FALSE(map.contains(3));
  EXPECT_FALSE(map.erase(3));
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatIdMap, AssignOverwritesExisting) {
  FlatIdMap map(4);
  map.insert(7, 1);
  map.assign(7, 2);
  EXPECT_EQ(map.find(7), 2u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatIdMap, CheckedMisuseThrows) {
  FlatIdMap map(2);
  map.insert(1, 0);
  EXPECT_THROW(map.insert(1, 1), CheckError);   // duplicate
  EXPECT_THROW(map.assign(99, 0), CheckError);  // missing key
  map.insert(2, 1);
  EXPECT_THROW(map.insert(3, 2), CheckError);   // over capacity
}

TEST(FlatIdMap, UnboundedModeGrows) {
  FlatIdMap map(0);  // capacity 0 = unbounded
  for (std::uint64_t k = 0; k < 500; ++k) map.insert(k, static_cast<std::uint32_t>(k));
  for (std::uint64_t k = 0; k < 500; ++k) ASSERT_EQ(map.find(k), k);
  EXPECT_EQ(map.size(), 500u);
}

TEST(FlatIdMapFuzz, MatchesUnorderedMapUnderChurn) {
  Rng rng(2026);
  constexpr std::size_t kCapacity = 40;
  FlatIdMap map(kCapacity);
  std::unordered_map<std::uint64_t, std::uint32_t> model;
  for (int step = 0; step < 30000; ++step) {
    // Narrow key range: long probe chains and constant erase/reinsert of
    // colliding keys — the backward-shift stress case.
    std::uint64_t key = rng.index(96);
    double roll = rng.uniform();
    if (roll < 0.45) {
      if (!model.contains(key) && model.size() < kCapacity) {
        auto value = static_cast<std::uint32_t>(step);
        map.insert(key, value);
        model.emplace(key, value);
      }
    } else if (roll < 0.70) {
      ASSERT_EQ(map.erase(key), model.erase(key) > 0);
    } else if (roll < 0.85) {
      if (model.contains(key)) {
        auto value = static_cast<std::uint32_t>(step);
        map.assign(key, value);
        model[key] = value;
      }
    } else {
      auto it = model.find(key);
      ASSERT_EQ(map.find(key),
                it == model.end() ? FlatIdMap::kNotFound : it->second);
    }
    if (step % 128 == 0) {
      ASSERT_EQ(map.size(), model.size());
      for (std::uint64_t k = 0; k < 96; ++k) {
        auto it = model.find(k);
        ASSERT_EQ(map.find(k),
                  it == model.end() ? FlatIdMap::kNotFound : it->second)
            << "key " << k << " at step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace guess
