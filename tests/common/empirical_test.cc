#include "common/empirical.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

EmpiricalDistribution simple() {
  return EmpiricalDistribution({{0.0, 0.0}, {0.5, 10.0}, {1.0, 30.0}});
}

TEST(Empirical, QuantileInterpolatesLinearly) {
  auto dist = simple();
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.75), 20.0);
  EXPECT_DOUBLE_EQ(dist.quantile(1.0), 30.0);
}

TEST(Empirical, MeanMatchesClosedForm) {
  // Segment means: (0+10)/2 over width .5 plus (10+30)/2 over width .5.
  EXPECT_DOUBLE_EQ(simple().mean(), 0.5 * 5.0 + 0.5 * 20.0);
}

TEST(Empirical, SamplesStayWithinSupport) {
  auto dist = simple();
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double v = dist.sample(rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 30.0);
  }
}

TEST(Empirical, SampleMeanApproachesAnalyticMean) {
  auto dist = simple();
  Rng rng(5);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(sum / trials, dist.mean(), 0.1);
}

TEST(Empirical, MedianLandsAtMidQuantileValue) {
  auto dist = simple();
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(dist.sample(rng));
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  EXPECT_NEAR(samples[5000], 10.0, 0.5);
}

TEST(Empirical, RejectsMalformedTables) {
  using P = EmpiricalDistribution::Point;
  // Too few points.
  EXPECT_THROW(EmpiricalDistribution({P{0.0, 1.0}}), CheckError);
  // Must start at 0 and end at 1.
  EXPECT_THROW(EmpiricalDistribution({P{0.1, 0.0}, P{1.0, 1.0}}), CheckError);
  EXPECT_THROW(EmpiricalDistribution({P{0.0, 0.0}, P{0.9, 1.0}}), CheckError);
  // Quantiles must strictly increase.
  EXPECT_THROW(EmpiricalDistribution({P{0.0, 0.0}, P{0.5, 1.0}, P{0.5, 2.0},
                                      P{1.0, 3.0}}),
               CheckError);
  // Values must be non-decreasing.
  EXPECT_THROW(EmpiricalDistribution({P{0.0, 5.0}, P{1.0, 1.0}}), CheckError);
}

TEST(Empirical, QuantileOutOfRangeThrows) {
  auto dist = simple();
  EXPECT_THROW(dist.quantile(-0.01), CheckError);
  EXPECT_THROW(dist.quantile(1.01), CheckError);
}

TEST(Empirical, FlatSegmentsAllowed) {
  EmpiricalDistribution dist({{0.0, 5.0}, {0.5, 5.0}, {1.0, 5.0}});
  EXPECT_DOUBLE_EQ(dist.quantile(0.3), 5.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 5.0);
}

}  // namespace
}  // namespace guess
