// EpochSet: the per-query dedup set whose clear() is an epoch bump. Unit
// tests plus a randomized model check against std::unordered_set across
// many clear cycles (the epoch mechanism must never leak keys between
// cycles, including across rehashes).
#include "common/epoch_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "common/rng.h"

namespace guess {
namespace {

TEST(EpochSet, InsertAndContains) {
  EpochSet set;
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.insert(7));
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.insert(7));  // duplicate
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.insert(8));
  EXPECT_EQ(set.size(), 2u);
}

TEST(EpochSet, ClearForgetsEverything) {
  EpochSet set;
  for (std::uint64_t k = 0; k < 100; ++k) set.insert(k);
  EXPECT_EQ(set.size(), 100u);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_FALSE(set.contains(k)) << "key " << k << " survived clear()";
    EXPECT_TRUE(set.insert(k));  // reinsertable as fresh
  }
}

TEST(EpochSet, ZeroKeyIsAnOrdinaryKey) {
  // Slot.key defaults to 0; an inserted 0 must still be distinguishable
  // from an empty slot (the epoch stamp carries occupancy, not the key).
  EpochSet set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  set.clear();
  EXPECT_FALSE(set.contains(0));
}

TEST(EpochSet, GrowthPreservesCurrentEpochOnly) {
  EpochSet set;
  set.insert(1);
  set.clear();
  // Force rehash while stale (epoch-invalidated) slots still hold old keys.
  for (std::uint64_t k = 100; k < 200; ++k) set.insert(k);
  EXPECT_FALSE(set.contains(1));
  for (std::uint64_t k = 100; k < 200; ++k) EXPECT_TRUE(set.contains(k));
}

TEST(EpochSet, ReserveAvoidsGrowthNotCorrectness) {
  EpochSet set;
  set.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(set.insert(k * 977));
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(set.contains(k * 977));
  EXPECT_FALSE(set.contains(977 * 1001));
}

TEST(EpochSetFuzz, MatchesUnorderedSetAcrossClearCycles) {
  Rng rng(42);
  EpochSet set;
  std::unordered_set<std::uint64_t> model;
  for (int step = 0; step < 20000; ++step) {
    double roll = rng.uniform();
    if (roll < 0.02) {
      set.clear();
      model.clear();
    } else {
      // Narrow key range: plenty of duplicate inserts and hash collisions.
      std::uint64_t key = rng.index(512);
      ASSERT_EQ(set.insert(key), model.insert(key).second);
    }
    if (step % 64 == 0) {
      ASSERT_EQ(set.size(), model.size());
      for (std::uint64_t k = 0; k < 512; ++k) {
        ASSERT_EQ(set.contains(k), model.contains(k)) << "key " << k;
      }
    }
  }
}

}  // namespace
}  // namespace guess
