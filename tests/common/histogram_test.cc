#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

TEST(Histogram, BinsValuesByRange) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);   // bin 0
  hist.add(3.0);   // bin 1
  hist.add(9.99);  // bin 4
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(Histogram, ClampsOutOfRangeIntoEdgeBins) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(-100.0);
  hist.add(1e9);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_EQ(hist.total(), 2u);
}

TEST(Histogram, BinBoundsAreContiguous) {
  Histogram hist(2.0, 12.0, 4);
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    EXPECT_DOUBLE_EQ(hist.bin_hi(b) - hist.bin_lo(b), 2.5);
    if (b > 0) EXPECT_DOUBLE_EQ(hist.bin_lo(b), hist.bin_hi(b - 1));
  }
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), CheckError);
  EXPECT_THROW(Histogram(2.0, 1.0, 5), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(Histogram, ToStringShowsNonEmptyBins) {
  Histogram hist(0.0, 4.0, 4);
  hist.add(0.5);
  hist.add(0.6);
  hist.add(3.5);
  std::string text = hist.to_string();
  EXPECT_NE(text.find("2 "), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  // Empty bins are suppressed: only two lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Histogram, CountOutOfRangeThrows) {
  Histogram hist(0.0, 1.0, 2);
  EXPECT_THROW(hist.count(2), CheckError);
  EXPECT_THROW(hist.bin_lo(2), CheckError);
}

}  // namespace
}  // namespace guess
