#include "common/table.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <sstream>

namespace guess {
namespace {

TEST(Table, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({std::string("alpha"), std::int64_t{42}});
  table.add_row({std::string("b"), 3.14159});
  std::string text = table.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("3.142"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({std::string("only-one")}), CheckError);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter({}), CheckError);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  TablePrinter table({"k", "v"});
  table.add_row({std::string("a,b"), std::string("say \"hi\"")});
  std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  TablePrinter table({"x", "y"});
  table.add_row({std::int64_t{1}, std::int64_t{2}});
  EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
}

TEST(Table, LargeDoublesUseOneDecimal) {
  TablePrinter table({"v"});
  table.add_row({12345.678});
  EXPECT_NE(table.to_csv().find("12345.7"), std::string::npos);
}

TEST(Table, PrintIncludesTitleBanner) {
  TablePrinter table({"v"});
  table.add_row({std::int64_t{7}});
  std::ostringstream os;
  table.print(os, "my title");
  EXPECT_NE(os.str().find("=== my title ==="), std::string::npos);
}

}  // namespace
}  // namespace guess
