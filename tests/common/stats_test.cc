#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>

namespace guess {
namespace {

TEST(RunningStat, EmptyIsSafe) {
  RunningStat stat;
  EXPECT_TRUE(stat.empty());
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 0.0);
  EXPECT_DOUBLE_EQ(stat.max(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  RunningStat stat;
  std::vector<double> values = {1.0, 4.0, 4.0, 9.0, -2.0, 7.5};
  double sum = 0.0;
  for (double v : values) {
    stat.add(v);
    sum += v;
  }
  double mean = sum / static_cast<double>(values.size());
  double m2 = 0.0;
  for (double v : values) m2 += (v - mean) * (v - mean);
  double variance = m2 / static_cast<double>(values.size() - 1);

  EXPECT_EQ(stat.count(), values.size());
  EXPECT_NEAR(stat.mean(), mean, 1e-12);
  EXPECT_NEAR(stat.variance(), variance, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(variance), 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), -2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_NEAR(stat.sum(), sum, 1e-12);
}

TEST(RunningStat, SingleValueHasZeroVariance) {
  RunningStat stat;
  stat.add(42.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (double v : {1.0, 2.0, 3.5}) {
    a.add(v);
    all.add(v);
  }
  for (double v : {-1.0, 8.0, 2.0, 0.5}) {
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, empty;
  a.add(3.0);
  a.add(5.0);
  RunningStat copy = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), copy.mean(), 1e-12);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 4.0, 1e-12);
}

TEST(RatioStat, CountsAndDividesSafely) {
  RatioStat ratio;
  EXPECT_DOUBLE_EQ(ratio.ratio(), 0.0);
  ratio.add(true);
  ratio.add(false);
  ratio.add(true);
  ratio.add(true);
  EXPECT_EQ(ratio.successes(), 3u);
  EXPECT_EQ(ratio.trials(), 4u);
  EXPECT_DOUBLE_EQ(ratio.ratio(), 0.75);
  ratio.add_counts(1, 4);
  EXPECT_DOUBLE_EQ(ratio.ratio(), 0.5);
}

TEST(SampleSet, PercentileNearestRank) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(set.percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(set.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(set.percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(set.percentile(100.0), 100.0);
}

TEST(SampleSet, PercentileOnEmptyThrows) {
  SampleSet set;
  EXPECT_THROW(set.percentile(50.0), CheckError);
  EXPECT_THROW(set.max(), CheckError);
}

TEST(SampleSet, SortedDescendingAndMean) {
  SampleSet set;
  for (double v : {3.0, 1.0, 2.0}) set.add(v);
  EXPECT_EQ(set.sorted_descending(), (std::vector<double>{3.0, 2.0, 1.0}));
  EXPECT_DOUBLE_EQ(set.mean(), 2.0);
  EXPECT_DOUBLE_EQ(set.max(), 3.0);
}

}  // namespace
}  // namespace guess
