#include "common/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace guess {
namespace {

TEST(Tracer, RecordsInOrder) {
  Tracer tracer;
  tracer.record(TraceCategory::kQuery, 1.0, "first");
  tracer.record(TraceCategory::kPing, 2.0, "second");
  auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].line, "first");
  EXPECT_EQ(records[1].line, "second");
  EXPECT_DOUBLE_EQ(records[1].at, 2.0);
  EXPECT_EQ(records[1].category, TraceCategory::kPing);
}

TEST(Tracer, MaskFiltersCategories) {
  Tracer tracer(static_cast<unsigned>(TraceCategory::kQuery), 16);
  EXPECT_TRUE(tracer.on(TraceCategory::kQuery));
  EXPECT_FALSE(tracer.on(TraceCategory::kPing));
  tracer.record(TraceCategory::kQuery, 1.0, "kept");
  tracer.record(TraceCategory::kPing, 2.0, "dropped");
  auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].line, "kept");
}

TEST(Tracer, RingDropsOldestAndKeepsChronology) {
  Tracer tracer(kTraceAll, 4);
  for (int i = 0; i < 10; ++i) {
    tracer.record(TraceCategory::kChurn, static_cast<double>(i),
                  std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].line, "6");
  EXPECT_EQ(records[3].line, "9");
}

TEST(Tracer, DumpIsReadable) {
  Tracer tracer;
  tracer.record(TraceCategory::kAttack, 12.5, "blacklist peer=3 liar=9");
  std::ostringstream os;
  tracer.dump(os);
  EXPECT_NE(os.str().find("attack"), std::string::npos);
  EXPECT_NE(os.str().find("blacklist peer=3 liar=9"), std::string::npos);
  EXPECT_NE(os.str().find("12.5"), std::string::npos);
}

// Regression: dump() used to leave std::fixed + setprecision(3) set on the
// caller's stream, silently reformatting every number printed afterwards
// (e.g. bench tables emitted after a trace dump to std::cout).
TEST(Tracer, DumpRestoresStreamFormatting) {
  Tracer tracer;
  tracer.record(TraceCategory::kQuery, 1.23456789, "probe peer=1");
  std::ostringstream reference;
  reference << 1234.56789 << " " << 0.25;

  std::ostringstream os;
  tracer.dump(os);
  os.str("");
  os << 1234.56789 << " " << 0.25;
  EXPECT_EQ(os.str(), reference.str());
  EXPECT_EQ(os.flags(), reference.flags());
  EXPECT_EQ(os.precision(), reference.precision());
}

TEST(Tracer, CategoryNamesCoverAll) {
  EXPECT_STREQ(Tracer::category_name(TraceCategory::kChurn), "churn");
  EXPECT_STREQ(Tracer::category_name(TraceCategory::kPing), "ping");
  EXPECT_STREQ(Tracer::category_name(TraceCategory::kQuery), "query");
  EXPECT_STREQ(Tracer::category_name(TraceCategory::kCache), "cache");
  EXPECT_STREQ(Tracer::category_name(TraceCategory::kAttack), "attack");
}

TEST(Tracer, ZeroCapacityRejected) {
  EXPECT_THROW(Tracer(kTraceAll, 0), CheckError);
}

}  // namespace
}  // namespace guess
