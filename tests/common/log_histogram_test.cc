// LogHistogram: fixed-bucket log-scale latency histogram (DESIGN.md §13.2).
#include "common/log_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace guess {
namespace {

TEST(LogHistogram, EmptyReportsZeroEverywhere) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(99.9), 0.0);
}

TEST(LogHistogram, PercentileBoundsChecked) {
  LogHistogram h;
  h.add(1.0);
  EXPECT_THROW(h.percentile(-1.0), CheckError);
  EXPECT_THROW(h.percentile(100.5), CheckError);
}

TEST(LogHistogram, ZeroAndNegativeLandInTheUnderflowBucket) {
  LogHistogram h;
  h.add(0.0);
  h.add(-3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(100.0), 0.0);
}

TEST(LogHistogram, BucketRelativeErrorBounded) {
  // 8 linear sub-buckets per octave: the representative (upper-bound) value
  // of a bucket is within 12.5% of anything stored in it, worst case at the
  // bottom sub-bucket of an octave.
  Rng rng(7);
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) {
    double v = std::exp(rng.uniform(-10.0, 10.0));
    h = LogHistogram();
    h.add(v);
    double rep = h.percentile(50.0);
    EXPECT_GE(rep, v) << "representative is an upper bound";
    EXPECT_LE(rep / v, 1.125 + 1e-9) << "value " << v << " rep " << rep;
  }
}

TEST(LogHistogram, PercentilesMatchExactQuantilesWithinBucketError) {
  // Nearest-rank percentiles over a known sample set agree with the exact
  // order statistics to within one bucket's relative width.
  std::vector<double> values;
  Rng rng(11);
  LogHistogram h;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.exponential(0.1);
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    if (rank == 0) rank = 1;
    double exact = values[rank - 1];
    double approx = h.percentile(p);
    EXPECT_NEAR(approx / exact, 1.0, 0.13) << "p" << p;
  }
}

TEST(LogHistogram, MonotoneInPercentile) {
  Rng rng(3);
  LogHistogram h;
  for (int i = 0; i < 500; ++i) h.add(rng.exponential(1.0));
  double last = 0.0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    double v = h.percentile(p);
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST(LogHistogram, MergeIsExactAndAssociative) {
  // Merges are integer adds per bucket — exactly associative and
  // commutative, unlike merging quantile sketches.
  Rng rng(5);
  LogHistogram a, b, c;
  for (int i = 0; i < 300; ++i) a.add(rng.exponential(0.5));
  for (int i = 0; i < 200; ++i) b.add(rng.exponential(2.0));
  for (int i = 0; i < 100; ++i) c.add(rng.uniform(0.0, 10.0));

  LogHistogram ab_c = a;
  ab_c += b;
  ab_c += c;
  LogHistogram a_bc = b;
  a_bc += c;
  a_bc += a;
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.count(), 600u);

  // Merge equals bulk add of the union.
  LogHistogram whole;
  Rng replay(5);
  for (int i = 0; i < 300; ++i) whole.add(replay.exponential(0.5));
  for (int i = 0; i < 200; ++i) whole.add(replay.exponential(2.0));
  for (int i = 0; i < 100; ++i) whole.add(replay.uniform(0.0, 10.0));
  EXPECT_EQ(whole, ab_c);
}

TEST(LogHistogram, AddNWeightsLikeRepeatedAdd) {
  LogHistogram a, b;
  a.add_n(0.25, 17);
  for (int i = 0; i < 17; ++i) b.add(0.25);
  EXPECT_EQ(a, b);
}

TEST(LogHistogram, ExtremesSaturateInsteadOfIndexingOutOfRange) {
  LogHistogram h;
  h.add(1e-30);  // below the smallest octave
  h.add(1e30);   // above the largest
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.percentile(100.0), 1e8);  // clamped to the top bucket value
  EXPECT_GE(h.percentile(1.0), 0.0);
}

TEST(LogHistogram, DeterministicAcrossInsertionOrders) {
  // Bucket counts are order-independent: any permutation of the same
  // multiset produces a bitwise-identical histogram.
  std::vector<double> values;
  Rng rng(13);
  for (int i = 0; i < 256; ++i) values.push_back(rng.exponential(1.0));
  LogHistogram forward, backward;
  for (double v : values) forward.add(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.add(*it);
  }
  EXPECT_EQ(forward, backward);
}

}  // namespace
}  // namespace guess
