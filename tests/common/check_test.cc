#include "common/check.h"

#include <gtest/gtest.h>

namespace guess {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(GUESS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(GUESS_CHECK_MSG(true, "never rendered"));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(GUESS_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesConditionAndLocation) {
  try {
    GUESS_CHECK(2 < 1);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cc"), std::string::npos);
  }
}

TEST(Check, MsgVariantRendersStreamedPayload) {
  try {
    GUESS_CHECK_MSG(false, "value=" << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
  }
}

TEST(Check, CheckErrorIsLogicError) {
  EXPECT_THROW(GUESS_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace guess
