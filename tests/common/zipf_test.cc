#include "common/zipf.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>
#include <vector>

namespace guess {
namespace {

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, PmfSumsToOne) {
  ZipfDistribution zipf(500, GetParam());
  double sum = 0.0;
  for (std::size_t r = 0; r < zipf.n(); ++r) sum += zipf.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfAlphaTest, PmfNonIncreasingInRank) {
  ZipfDistribution zipf(200, GetParam());
  for (std::size_t r = 1; r < zipf.n(); ++r) {
    EXPECT_LE(zipf.pmf(r), zipf.pmf(r - 1) + 1e-12);
  }
}

TEST_P(ZipfAlphaTest, SamplesStayInRange) {
  ZipfDistribution zipf(50, GetParam());
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.sample(rng), 50u);
  }
}

TEST_P(ZipfAlphaTest, EmpiricalFrequencyTracksPmf) {
  ZipfDistribution zipf(20, GetParam());
  Rng rng(7);
  std::vector<int> counts(20, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 20; ++r) {
    double observed = static_cast<double>(counts[r]) / trials;
    EXPECT_NEAR(observed, zipf.pmf(r), 0.01) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.5));

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-12);
  }
}

TEST(Zipf, HigherAlphaConcentratesHead) {
  ZipfDistribution flat(100, 0.5);
  ZipfDistribution skewed(100, 1.5);
  EXPECT_GT(skewed.pmf(0), flat.pmf(0));
  EXPECT_LT(skewed.pmf(99), flat.pmf(99));
}

TEST(Zipf, SingleRankAlwaysSamplesZero) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, InvalidParametersThrow) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), CheckError);
  EXPECT_THROW(ZipfDistribution(10, -0.1), CheckError);
  ZipfDistribution zipf(10, 1.0);
  EXPECT_THROW(zipf.pmf(10), CheckError);
}

TEST(Zipf, NormalizerMatchesDirectSum) {
  ZipfDistribution zipf(100, 0.8);
  double h = 0.0;
  for (std::size_t r = 1; r <= 100; ++r) {
    h += std::pow(static_cast<double>(r), -0.8);
  }
  EXPECT_NEAR(zipf.normalizer(), h, 1e-9);
}

}  // namespace
}  // namespace guess
