#include "baseline/static_population.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess::baseline {
namespace {

content::ContentModel test_model() {
  content::ContentParams params;
  params.catalog_size = 300;
  params.query_universe = 360;
  return content::ContentModel(params);
}

TEST(StaticPopulation, MaterializesRequestedSize) {
  auto model = test_model();
  Rng rng(3);
  StaticPopulation population(model, 50, rng);
  EXPECT_EQ(population.size(), 50u);
  for (std::size_t p = 0; p < 50; ++p) {
    (void)population.library(p);  // must not throw
  }
  EXPECT_THROW(population.library(50), CheckError);
}

TEST(StaticPopulation, SampleResultsBoundedByExtent) {
  auto model = test_model();
  Rng rng(5);
  StaticPopulation population(model, 100, rng);
  for (int round = 0; round < 50; ++round) {
    auto results = population.results_in_sample(0, 10, rng);
    EXPECT_LE(results, 10u);
  }
}

TEST(StaticPopulation, FullExtentEqualsTotalReplicas) {
  auto model = test_model();
  Rng rng(7);
  StaticPopulation population(model, 80, rng);
  for (content::FileId file : {0u, 5u, 100u}) {
    EXPECT_EQ(population.results_in_sample(file, 80, rng),
              population.total_replicas(file));
  }
}

TEST(StaticPopulation, NonexistentFileNeverMatches) {
  auto model = test_model();
  Rng rng(9);
  StaticPopulation population(model, 60, rng);
  EXPECT_EQ(population.results_in_sample(content::kNonexistentFile, 60, rng),
            0u);
  EXPECT_EQ(population.total_replicas(content::kNonexistentFile), 0u);
}

TEST(StaticPopulation, PrefixCountsMatchManualScan) {
  auto model = test_model();
  Rng rng(11);
  StaticPopulation population(model, 40, rng);
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < 40; ++i) order.push_back(i);
  content::FileId file = 0;
  std::uint32_t manual = 0;
  for (std::size_t i = 10; i < 30; ++i) {
    if (population.library(order[i]).contains(file)) ++manual;
  }
  EXPECT_EQ(population.results_in_prefix(file, order, 10, 30), manual);
  EXPECT_THROW(population.results_in_prefix(file, order, 30, 10), CheckError);
  EXPECT_THROW(population.results_in_prefix(file, order, 0, 41), CheckError);
}

TEST(StaticPopulation, PopularFileHasMoreReplicas) {
  auto model = test_model();
  Rng rng(13);
  StaticPopulation population(model, 500, rng);
  EXPECT_GT(population.total_replicas(0), population.total_replicas(299));
}

}  // namespace
}  // namespace guess::baseline
