#include "baseline/iterative_deepening.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include "baseline/fixed_extent.h"

namespace guess::baseline {
namespace {

content::ContentModel test_model() {
  content::ContentParams params;
  params.catalog_size = 300;
  params.query_universe = 360;
  return content::ContentModel(params);
}

TEST(IterativeDeepening, DefaultScheduleScalesWithNetwork) {
  auto schedule = default_schedule(1000);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0], 200u);
  EXPECT_EQ(schedule[1], 500u);
  EXPECT_EQ(schedule[2], 1000u);
}

TEST(IterativeDeepening, CostBetweenFirstRingAndFullExtent) {
  auto model = test_model();
  Rng rng(3);
  StaticPopulation population(model, 500, rng);
  auto schedule = default_schedule(500);
  auto result = evaluate_iterative_deepening(population, model, schedule,
                                             3000, 1, rng);
  EXPECT_GE(result.avg_cost, static_cast<double>(schedule.front()));
  EXPECT_LE(result.avg_cost, static_cast<double>(schedule.back()));
}

TEST(IterativeDeepening, MatchesFullExtentSatisfaction) {
  // Deepening all the way to the full network satisfies exactly the
  // satisfiable queries, like a fixed extent of the whole network.
  auto model = test_model();
  Rng rng(5);
  StaticPopulation population(model, 400, rng);
  auto deepening = evaluate_iterative_deepening(
      population, model, default_schedule(400), 4000, 1, rng);
  auto full = evaluate_fixed_extent(population, model, 400, 4000, 1, rng);
  EXPECT_NEAR(deepening.unsatisfied_rate, full.unsatisfied_rate, 0.03);
}

TEST(IterativeDeepening, CheaperThanFixedFullExtent) {
  // The whole point of flexible extent: popular queries stop at ring one.
  auto model = test_model();
  Rng rng(7);
  StaticPopulation population(model, 500, rng);
  auto result = evaluate_iterative_deepening(
      population, model, default_schedule(500), 3000, 1, rng);
  EXPECT_LT(result.avg_cost, 500.0);
}

TEST(IterativeDeepening, ScheduleValidation) {
  auto model = test_model();
  Rng rng(9);
  StaticPopulation population(model, 100, rng);
  EXPECT_THROW(
      evaluate_iterative_deepening(population, model, {}, 10, 1, rng),
      CheckError);
  EXPECT_THROW(evaluate_iterative_deepening(population, model, {50, 50}, 10,
                                            1, rng),
               CheckError);
  EXPECT_THROW(evaluate_iterative_deepening(population, model, {50, 200}, 10,
                                            1, rng),
               CheckError);  // exceeds population
}

}  // namespace
}  // namespace guess::baseline
