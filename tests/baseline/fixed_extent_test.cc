#include "baseline/fixed_extent.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess::baseline {
namespace {

content::ContentModel test_model() {
  content::ContentParams params;
  params.catalog_size = 300;
  params.query_universe = 360;
  return content::ContentModel(params);
}

TEST(FixedExtent, UnsatisfactionDecreasesWithExtent) {
  auto model = test_model();
  Rng rng(3);
  StaticPopulation population(model, 500, rng);
  auto curve = fixed_extent_curve(population, model, {1, 10, 100, 500}, 3000,
                                  1, rng);
  ASSERT_EQ(curve.size(), 4u);
  // Monotone (up to Monte-Carlo noise, hence a small slack).
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].unsatisfied_rate,
              curve[i - 1].unsatisfied_rate + 0.02);
  }
  EXPECT_GT(curve[0].unsatisfied_rate, 0.5);  // extent 1 almost never hits
}

TEST(FixedExtent, FullExtentLeavesOnlyUnsatisfiableQueries) {
  auto model = test_model();
  Rng rng(5);
  StaticPopulation population(model, 500, rng);
  auto point = evaluate_fixed_extent(population, model, 500, 5000, 1, rng);
  // Probing everyone fails only for nonexistent/zero-replica items: a small
  // but strictly positive floor (the paper's ~6% effect).
  EXPECT_GT(point.unsatisfied_rate, 0.0);
  EXPECT_LT(point.unsatisfied_rate, 0.25);
}

TEST(FixedExtent, ExtentRecordedInPoint) {
  auto model = test_model();
  Rng rng(7);
  StaticPopulation population(model, 100, rng);
  auto point = evaluate_fixed_extent(population, model, 17, 100, 1, rng);
  EXPECT_EQ(point.extent, 17u);
}

TEST(FixedExtent, MoreDesiredResultsIsHarder) {
  auto model = test_model();
  Rng rng(9);
  StaticPopulation population(model, 500, rng);
  auto one = evaluate_fixed_extent(population, model, 50, 4000, 1, rng);
  auto five = evaluate_fixed_extent(population, model, 50, 4000, 5, rng);
  EXPECT_GT(five.unsatisfied_rate, one.unsatisfied_rate);
}

TEST(FixedExtent, ZeroQueriesRejected) {
  auto model = test_model();
  Rng rng(11);
  StaticPopulation population(model, 100, rng);
  EXPECT_THROW(evaluate_fixed_extent(population, model, 10, 0, 1, rng),
               CheckError);
  EXPECT_THROW(evaluate_fixed_extent(population, model, 10, 10, 0, rng),
               CheckError);
}

}  // namespace
}  // namespace guess::baseline
