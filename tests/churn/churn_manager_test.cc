#include "churn/churn_manager.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <vector>

namespace guess::churn {
namespace {

TEST(ChurnManager, DeathFiresAtSampledLifetime) {
  sim::Simulator simulator;
  std::vector<std::pair<PeerId, sim::Time>> deaths;
  ChurnManager churn(simulator, LifetimeDistribution(1.0), Rng(1),
                     [&](PeerId id) {
                       deaths.emplace_back(id, simulator.now());
                     });
  sim::Duration life = churn.register_peer(7);
  simulator.run_until(life + 1.0);
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0].first, 7u);
  EXPECT_DOUBLE_EQ(deaths[0].second, life);
  EXPECT_EQ(churn.deaths(), 1u);
}

TEST(ChurnManager, EachRegistrationDiesExactlyOnce) {
  sim::Simulator simulator;
  int deaths = 0;
  ChurnManager churn(simulator, LifetimeDistribution(0.01), Rng(2),
                     [&](PeerId) { ++deaths; });
  for (PeerId id = 0; id < 50; ++id) churn.register_peer(id);
  simulator.run_until(1e7);
  EXPECT_EQ(deaths, 50);
  EXPECT_EQ(churn.deaths(), 50u);
}

TEST(ChurnManager, DeathCallbackCanRebirth) {
  // The standard usage: on_death registers a replacement, keeping the
  // population constant forever.
  sim::Simulator simulator;
  int population = 0;
  ChurnManager* churn_ptr = nullptr;
  PeerId next_id = 0;
  ChurnManager churn(simulator, LifetimeDistribution(0.005), Rng(3),
                     [&](PeerId) {
                       churn_ptr->register_peer(next_id++);
                     });
  churn_ptr = &churn;
  for (int i = 0; i < 10; ++i) churn.register_peer(next_id++);
  population = 10;
  simulator.run_until(3600.0);
  EXPECT_GT(churn.deaths(), 20u);  // plenty of churn at 0.005x lifetimes
  EXPECT_EQ(population, 10);       // conceptually constant (1 birth/death)
}

TEST(ChurnManager, ScaledRegistrationShortensLifetime) {
  sim::Simulator sim_a, sim_b;
  std::vector<sim::Duration> full, scaled;
  ChurnManager churn_a(sim_a, LifetimeDistribution(1.0), Rng(5),
                       [](PeerId) {});
  ChurnManager churn_b(sim_b, LifetimeDistribution(1.0), Rng(5),
                       [](PeerId) {});
  for (PeerId id = 0; id < 50; ++id) {
    full.push_back(churn_a.register_peer(id));
    scaled.push_back(churn_b.register_peer_scaled(id, 0.25));
  }
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(scaled[i], full[i] * 0.25, 1e-9);
  }
}

TEST(ChurnManager, ScaledFractionValidated) {
  sim::Simulator simulator;
  ChurnManager churn(simulator, LifetimeDistribution(1.0), Rng(7),
                     [](PeerId) {});
  EXPECT_THROW(churn.register_peer_scaled(1, 0.0), CheckError);
  EXPECT_THROW(churn.register_peer_scaled(1, 1.5), CheckError);
}

TEST(ChurnManager, NullCallbackRejected) {
  sim::Simulator simulator;
  EXPECT_THROW(ChurnManager(simulator, LifetimeDistribution(1.0), Rng(1),
                            nullptr),
               CheckError);
}

}  // namespace
}  // namespace guess::churn
