#include "churn/churn_manager.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <algorithm>
#include <vector>

namespace guess::churn {
namespace {

TEST(ChurnManager, DeathFiresAtSampledLifetime) {
  sim::Simulator simulator;
  std::vector<std::pair<PeerId, sim::Time>> deaths;
  ChurnManager churn(simulator, LifetimeDistribution(1.0), Rng(1),
                     [&](PeerId id) {
                       deaths.emplace_back(id, simulator.now());
                     });
  sim::Duration life = churn.register_peer(7);
  simulator.run_until(life + 1.0);
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0].first, 7u);
  EXPECT_DOUBLE_EQ(deaths[0].second, life);
  EXPECT_EQ(churn.deaths(), 1u);
}

TEST(ChurnManager, EachRegistrationDiesExactlyOnce) {
  sim::Simulator simulator;
  int deaths = 0;
  ChurnManager churn(simulator, LifetimeDistribution(0.01), Rng(2),
                     [&](PeerId) { ++deaths; });
  for (PeerId id = 0; id < 50; ++id) churn.register_peer(id);
  simulator.run_until(1e7);
  EXPECT_EQ(deaths, 50);
  EXPECT_EQ(churn.deaths(), 50u);
}

TEST(ChurnManager, DeathCallbackCanRebirth) {
  // The standard usage: on_death registers a replacement, keeping the
  // population constant forever.
  sim::Simulator simulator;
  int population = 0;
  ChurnManager* churn_ptr = nullptr;
  PeerId next_id = 0;
  ChurnManager churn(simulator, LifetimeDistribution(0.005), Rng(3),
                     [&](PeerId) {
                       churn_ptr->register_peer(next_id++);
                     });
  churn_ptr = &churn;
  for (int i = 0; i < 10; ++i) churn.register_peer(next_id++);
  population = 10;
  simulator.run_until(3600.0);
  EXPECT_GT(churn.deaths(), 20u);  // plenty of churn at 0.005x lifetimes
  EXPECT_EQ(population, 10);       // conceptually constant (1 birth/death)
}

TEST(ChurnManager, ScaledRegistrationShortensLifetime) {
  sim::Simulator sim_a, sim_b;
  std::vector<sim::Duration> full, scaled;
  ChurnManager churn_a(sim_a, LifetimeDistribution(1.0), Rng(5),
                       [](PeerId) {});
  ChurnManager churn_b(sim_b, LifetimeDistribution(1.0), Rng(5),
                       [](PeerId) {});
  for (PeerId id = 0; id < 50; ++id) {
    full.push_back(churn_a.register_peer(id));
    scaled.push_back(churn_b.register_peer_scaled(id, 0.25));
  }
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(scaled[i], full[i] * 0.25, 1e-9);
  }
}

TEST(ChurnManager, ScaledFractionValidated) {
  sim::Simulator simulator;
  ChurnManager churn(simulator, LifetimeDistribution(1.0), Rng(7),
                     [](PeerId) {});
  EXPECT_THROW(churn.register_peer_scaled(1, 0.0), CheckError);
  EXPECT_THROW(churn.register_peer_scaled(1, 1.5), CheckError);
}

TEST(ChurnManager, DescheduleCancelsTheDeathWithoutCallback) {
  sim::Simulator simulator;
  std::vector<PeerId> deaths;
  ChurnManager churn(simulator, LifetimeDistribution(1.0), Rng(11),
                     [&](PeerId id) { deaths.push_back(id); });
  sim::Duration life_a = churn.register_peer(1);
  sim::Duration life_b = churn.register_peer(2);
  EXPECT_EQ(churn.pending_count(), 2u);

  EXPECT_TRUE(churn.deschedule(1));
  EXPECT_EQ(churn.pending_count(), 1u);
  // Unknown / already-descheduled ids are a no-op (a scenario may kill a
  // never-registered immortal).
  EXPECT_FALSE(churn.deschedule(1));
  EXPECT_FALSE(churn.deschedule(999));

  simulator.run_until(std::max(life_a, life_b) + 1.0);
  EXPECT_EQ(deaths, std::vector<PeerId>{2});  // only the still-armed peer
  EXPECT_EQ(churn.deaths(), 1u);
  EXPECT_EQ(churn.pending_count(), 0u);
}

TEST(ChurnManager, PendingCountTracksFiredDeaths) {
  sim::Simulator simulator;
  ChurnManager churn(simulator, LifetimeDistribution(0.01), Rng(13),
                     [](PeerId) {});
  for (PeerId id = 0; id < 20; ++id) churn.register_peer(id);
  EXPECT_EQ(churn.pending_count(), 20u);
  simulator.run_until(1e7);
  EXPECT_EQ(churn.pending_count(), 0u);
  EXPECT_EQ(churn.deaths(), 20u);
}

// The death callback itself re-registers (the standard rebirth pattern);
// the pending map must already have dropped the dying id when the callback
// runs, so re-registering the SAME id from inside it arms a fresh death.
TEST(ChurnManager, ReRegisterInsideCallbackArmsFreshDeath) {
  sim::Simulator simulator;
  int deaths = 0;
  ChurnManager* churn_ptr = nullptr;
  ChurnManager churn(simulator, LifetimeDistribution(0.01), Rng(17),
                     [&](PeerId id) {
                       if (++deaths < 5) churn_ptr->register_peer(id);
                     });
  churn_ptr = &churn;
  churn.register_peer(42);
  simulator.run_until(1e7);
  EXPECT_EQ(deaths, 5);
  EXPECT_EQ(churn.pending_count(), 0u);
}

// Registering an id twice overwrites the first death instead of leaving two
// armed events for one peer.
TEST(ChurnManager, DoubleRegistrationOverwrites) {
  sim::Simulator simulator;
  int deaths = 0;
  ChurnManager churn(simulator, LifetimeDistribution(1.0), Rng(19),
                     [&](PeerId) { ++deaths; });
  churn.register_peer(7);
  churn.register_peer(7);
  EXPECT_EQ(churn.pending_count(), 1u);
  simulator.run_until(1e9);
  EXPECT_EQ(deaths, 1);
}

TEST(ChurnManager, NullCallbackRejected) {
  sim::Simulator simulator;
  EXPECT_THROW(ChurnManager(simulator, LifetimeDistribution(1.0), Rng(1),
                            nullptr),
               CheckError);
}

}  // namespace
}  // namespace guess::churn
