#include "churn/lifetime.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <algorithm>
#include <vector>

namespace guess::churn {
namespace {

TEST(Lifetime, SamplesArePositive) {
  LifetimeDistribution dist(1.0);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(dist.sample(rng), 0.0);
  }
}

TEST(Lifetime, MedianIsAboutAnHour) {
  // The synthetic Saroiu-style table pins the median at 60 minutes.
  LifetimeDistribution dist(1.0);
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(dist.sample(rng));
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], 3600.0, 300.0);
}

TEST(Lifetime, HeavyTailPresent) {
  LifetimeDistribution dist(1.0);
  Rng rng(7);
  int over_10h = 0;
  int under_10min = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    double v = dist.sample(rng);
    if (v > 36000.0) ++over_10h;
    if (v < 600.0) ++under_10min;
  }
  // ~10% above 10 h, ~20% below 10 min (per the published shape).
  EXPECT_NEAR(static_cast<double>(over_10h) / trials, 0.10, 0.02);
  EXPECT_NEAR(static_cast<double>(under_10min) / trials, 0.20, 0.02);
}

class MultiplierTest : public ::testing::TestWithParam<double> {};

TEST_P(MultiplierTest, MeanScalesLinearly) {
  double m = GetParam();
  LifetimeDistribution base(1.0);
  LifetimeDistribution scaled(m);
  EXPECT_NEAR(scaled.mean(), base.mean() * m, 1e-9);
}

TEST_P(MultiplierTest, SamplesScaleLinearly) {
  double m = GetParam();
  LifetimeDistribution base(1.0);
  LifetimeDistribution scaled(m);
  Rng rng_a(11), rng_b(11);  // identical streams
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(scaled.sample(rng_a), base.sample(rng_b) * m, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Multipliers, MultiplierTest,
                         ::testing::Values(0.2, 0.5, 1.0, 2.0, 10.0));

TEST(Lifetime, InvalidMultiplierThrows) {
  EXPECT_THROW(LifetimeDistribution(0.0), CheckError);
  EXPECT_THROW(LifetimeDistribution(-1.0), CheckError);
}

TEST(Lifetime, BaseDistributionMeanIsHours) {
  // Heavy tail drags the mean far above the 1-hour median.
  double mean = LifetimeDistribution::base_distribution().mean();
  EXPECT_GT(mean, 2.0 * 3600.0);
  EXPECT_LT(mean, 10.0 * 3600.0);
}

}  // namespace
}  // namespace guess::churn
