#include "gnutella/dynamic_overlay.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess::gnutella {
namespace {

DynamicParams small_params(std::size_t n = 200) {
  DynamicParams params;
  params.network_size = n;
  params.content.catalog_size = 500;
  params.content.query_universe = 625;
  return params;
}

struct Fixture {
  explicit Fixture(DynamicParams params = small_params(),
                   std::uint64_t seed = 7)
      : overlay(params, simulator, Rng(seed)) {
    overlay.initialize();
  }
  sim::Simulator simulator;
  DynamicOverlay overlay;
};

TEST(DynamicOverlay, InitializeWiresConnectedOverlay) {
  Fixture f;
  EXPECT_EQ(f.overlay.alive_count(), 200u);
  EXPECT_EQ(f.overlay.largest_component(), 200u);
  // Each peer initiates target_degree links and receives about as many.
  EXPECT_GT(f.overlay.mean_degree(), 4.0);
  EXPECT_LE(f.overlay.max_degree_seen(), 12u);
}

TEST(DynamicOverlay, PopulationConstantAndConnectedThroughChurn) {
  DynamicParams params = small_params();
  params.lifespan_multiplier = 0.05;  // aggressive churn
  Fixture f(params);
  f.overlay.begin_measurement();
  f.simulator.run_until(1800.0);
  auto results = f.overlay.results();
  EXPECT_GT(results.deaths, 50u);
  EXPECT_EQ(f.overlay.alive_count(), 200u);
  // Immediate repair keeps the overlay whole despite heavy churn (§3.2).
  EXPECT_GT(f.overlay.largest_component(), 190u);
  EXPECT_GT(results.repairs, 0u);
}

TEST(DynamicOverlay, QueriesFlowAndAmplify) {
  Fixture f;
  f.overlay.begin_measurement();
  f.simulator.run_until(1800.0);
  auto results = f.overlay.results();
  EXPECT_GT(results.queries_completed, 100u);
  // Fixed-extent flooding: every query pays the full flood regardless of
  // popularity, and messages exceed peers reached (duplicates).
  EXPECT_GT(results.messages_per_query(), results.reach_per_query());
  EXPECT_GT(results.reach_per_query(), 50.0);
  EXPECT_LT(results.unsatisfied_rate(), 0.5);
}

TEST(DynamicOverlay, ResponseTimeIsHopBounded) {
  Fixture f;
  f.overlay.begin_measurement();
  f.simulator.run_until(1200.0);
  auto results = f.overlay.results();
  ASSERT_GT(results.response_time.count(), 0u);
  DynamicParams params = small_params();
  EXPECT_LE(results.response_time.max(),
            static_cast<double>(params.ttl) * params.hop_delay + 1e-9);
}

TEST(DynamicOverlay, SmallTtlReachesFewerPeers) {
  auto run_reach = [](std::size_t ttl) {
    DynamicParams params = small_params();
    params.ttl = ttl;
    Fixture f(params);
    f.overlay.begin_measurement();
    f.simulator.run_until(900.0);
    return f.overlay.results();
  };
  auto narrow = run_reach(1);
  auto wide = run_reach(4);
  EXPECT_LT(narrow.reach_per_query(), wide.reach_per_query());
  EXPECT_GE(narrow.unsatisfied_rate(), wide.unsatisfied_rate());
}

TEST(DynamicOverlay, LoadsCoverPopulation) {
  Fixture f;
  f.overlay.begin_measurement();
  f.simulator.run_until(900.0);
  auto results = f.overlay.results();
  EXPECT_GE(results.peer_loads.size(), 200u);
  EXPECT_GT(results.peer_loads.mean(), 0.0);
}

TEST(DynamicOverlay, DegreeCapRespectedUnderChurn) {
  DynamicParams params = small_params();
  params.lifespan_multiplier = 0.05;
  Fixture f(params);
  f.simulator.run_until(1200.0);
  EXPECT_LE(f.overlay.max_degree_seen(), params.max_degree);
}

TEST(DynamicOverlay, ParameterValidation) {
  sim::Simulator simulator;
  DynamicParams params = small_params();
  params.network_size = 4;  // <= target_degree + 1
  EXPECT_THROW(DynamicOverlay(params, simulator, Rng(1)), CheckError);
  params = small_params();
  params.max_degree = 2;  // < target_degree
  EXPECT_THROW(DynamicOverlay(params, simulator, Rng(1)), CheckError);
}

TEST(DynamicOverlay, InitializeTwiceThrows) {
  Fixture f;
  EXPECT_THROW(f.overlay.initialize(), CheckError);
}

}  // namespace
}  // namespace guess::gnutella
