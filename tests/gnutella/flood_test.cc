#include "gnutella/flood.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess::gnutella {
namespace {

Topology chain(std::size_t n) {
  Topology graph(n);
  for (std::size_t i = 0; i + 1 < n; ++i) graph.add_edge(i, i + 1);
  return graph;
}

TEST(Flood, TtlZeroReachesOnlyOrigin) {
  auto graph = chain(5);
  auto result = flood_reach(graph, 2, 0);
  EXPECT_EQ(result.peers_reached, 1u);
  EXPECT_EQ(result.messages, 0u);
}

TEST(Flood, ReachGrowsWithTtlOnChain) {
  auto graph = chain(10);
  EXPECT_EQ(flood_reach(graph, 0, 1).peers_reached, 2u);
  EXPECT_EQ(flood_reach(graph, 0, 3).peers_reached, 4u);
  EXPECT_EQ(flood_reach(graph, 0, 9).peers_reached, 10u);
  EXPECT_EQ(flood_reach(graph, 0, 50).peers_reached, 10u);  // saturates
}

TEST(Flood, MiddleOriginReachesBothSides) {
  auto graph = chain(9);
  EXPECT_EQ(flood_reach(graph, 4, 2).peers_reached, 5u);
}

TEST(Flood, DuplicateTransmissionsCounted) {
  // Triangle: flooding from node 0 with TTL 2 sends the query along every
  // edge it encounters, including back-edges to already-seen peers.
  Topology graph(3);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 0);
  auto result = flood_reach(graph, 0, 2);
  EXPECT_EQ(result.peers_reached, 3u);
  // 0 -> {1, 2}: 2 messages; 1 -> {0, 2}: 2 messages; 2 -> {1, 0}:
  // 2 messages. All at depth <= 1 forward.
  EXPECT_EQ(result.messages, 6u);
}

TEST(Flood, AmplificationOnDenseGraphs) {
  Rng rng(3);
  auto graph = random_topology(500, 4, rng);
  auto result = flood_reach(graph, 0, 4);
  // Messages exceed peers reached — the §3.3 amplification effect.
  EXPECT_GT(result.messages, static_cast<std::uint64_t>(result.peers_reached));
}

TEST(Flood, QueryResultsCountMatchesReachedOwners) {
  content::ContentParams params;
  params.catalog_size = 100;
  params.query_universe = 120;
  content::ContentModel model(params);
  Rng rng(5);
  baseline::StaticPopulation population(model, 50, rng);
  auto graph = chain(50);
  // Full reach: results must equal the total replica count.
  auto full = flood_query(graph, population, 0, 0, 49);
  EXPECT_EQ(full.results, population.total_replicas(0));
  // Nonexistent file never matches.
  auto none =
      flood_query(graph, population, 0, content::kNonexistentFile, 49);
  EXPECT_EQ(none.results, 0u);
}

TEST(Flood, PopulationSizeMustMatchTopology) {
  content::ContentParams params;
  params.catalog_size = 100;
  params.query_universe = 120;
  content::ContentModel model(params);
  Rng rng(7);
  baseline::StaticPopulation population(model, 10, rng);
  auto graph = chain(5);
  EXPECT_THROW(flood_query(graph, population, 0, 0, 2), CheckError);
}

TEST(Flood, InvalidOriginThrows) {
  auto graph = chain(5);
  EXPECT_THROW(flood_reach(graph, 5, 1), CheckError);
}

}  // namespace
}  // namespace guess::gnutella
