#include "gnutella/topology.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess::gnutella {
namespace {

TEST(Topology, AddEdgeRejectsSelfLoopsAndDuplicates) {
  Topology graph(4);
  EXPECT_FALSE(graph.add_edge(1, 1));
  EXPECT_TRUE(graph.add_edge(0, 1));
  EXPECT_FALSE(graph.add_edge(0, 1));
  EXPECT_FALSE(graph.add_edge(1, 0));  // undirected duplicate
  EXPECT_EQ(graph.edges(), 1u);
  EXPECT_EQ(graph.degree(0), 1u);
  EXPECT_EQ(graph.degree(1), 1u);
}

TEST(Topology, NeighborsAreSymmetric) {
  Topology graph(3);
  graph.add_edge(0, 2);
  EXPECT_EQ(graph.neighbors(0), (std::vector<std::size_t>{2}));
  EXPECT_EQ(graph.neighbors(2), (std::vector<std::size_t>{0}));
}

TEST(Topology, LargestComponentOnCraftedGraph) {
  Topology graph(6);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(3, 4);
  EXPECT_EQ(graph.largest_component(), 3u);  // {0,1,2} vs {3,4} vs {5}
}

TEST(Topology, LargestComponentRespectsAliveMask) {
  Topology graph(5);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  graph.add_edge(3, 4);
  std::vector<char> alive(5, 1);
  alive[2] = 0;  // cut the chain in the middle
  EXPECT_EQ(graph.largest_component(alive), 2u);
  EXPECT_THROW(graph.largest_component(std::vector<char>(3, 1)), CheckError);
}

TEST(Topology, RandomTopologyHasExpectedDegrees) {
  Rng rng(3);
  auto graph = random_topology(500, 4, rng);
  EXPECT_EQ(graph.nodes(), 500u);
  // Each node initiates ~4 links and receives ~4: mean degree ≈ 8.
  double total = 0.0;
  for (std::size_t n = 0; n < 500; ++n) {
    total += static_cast<double>(graph.degree(n));
  }
  EXPECT_NEAR(total / 500.0, 8.0, 1.0);
  EXPECT_EQ(graph.largest_component(), 500u);  // connected w.h.p.
}

TEST(Topology, PowerLawHasHubs) {
  Rng rng(5);
  auto graph = power_law_topology(1000, 3, rng);
  auto order = graph.nodes_by_degree();
  double mean = 2.0 * static_cast<double>(graph.edges()) / 1000.0;
  // Preferential attachment must produce hubs far above the mean degree;
  // a degree-capped random graph would not.
  EXPECT_GT(static_cast<double>(graph.degree(order[0])), mean * 5.0);
  EXPECT_EQ(graph.largest_component(), 1000u);
}

TEST(Topology, NodesByDegreeSortedDescending) {
  Rng rng(7);
  auto graph = power_law_topology(200, 2, rng);
  auto order = graph.nodes_by_degree();
  ASSERT_EQ(order.size(), 200u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(graph.degree(order[i - 1]), graph.degree(order[i]));
  }
}

TEST(Topology, PowerLawFragmentsFasterUnderHubAttack) {
  Rng rng(9);
  std::size_t n = 1000;
  auto power_law = power_law_topology(n, 2, rng);
  auto random = random_topology(n, 2, rng);
  auto survivors_after_attack = [n](const Topology& graph,
                                    std::size_t remove) {
    auto order = graph.nodes_by_degree();
    std::vector<char> alive(n, 1);
    for (std::size_t i = 0; i < remove; ++i) alive[order[i]] = 0;
    return graph.largest_component(alive);
  };
  std::size_t remove = n / 10;
  // Removing the top 10% of hubs hurts the power-law overlay more.
  EXPECT_LT(survivors_after_attack(power_law, remove),
            survivors_after_attack(random, remove));
}

TEST(Topology, GeneratorParameterValidation) {
  Rng rng(11);
  EXPECT_THROW(random_topology(3, 3, rng), CheckError);
  EXPECT_THROW(random_topology(10, 0, rng), CheckError);
  EXPECT_THROW(power_law_topology(3, 3, rng), CheckError);
  EXPECT_THROW(power_law_topology(10, 0, rng), CheckError);
  EXPECT_THROW(Topology(0), CheckError);
}

}  // namespace
}  // namespace guess::gnutella
