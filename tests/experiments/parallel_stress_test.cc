// Queue-contention stress for ParallelRunner, sized so that ThreadSanitizer
// in CI gets many worker hand-offs to race-check: many more replications than
// workers, with tiny measure windows so jobs finish (and re-contend the
// queue) quickly.
#include "experiments/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "guess/simulation.h"
#include "../testsupport/simulation_results_eq.h"

namespace guess::experiments {
namespace {

TEST(ParallelStress, ThirtyTwoReplicationsOnFourThreads) {
  SystemParams system;
  system.network_size = 80;
  system.content.catalog_size = 200;
  system.content.query_universe = 250;

  SimulationOptions options;
  options.seed = 5000;
  options.warmup = 20.0;
  options.measure = 60.0;  // tiny window: jobs churn through the queue fast
  options.threads = 4;

  const int kSeeds = 32;
  auto parallel = run_seeds(SimulationConfig().system(system).protocol(ProtocolParams{}).options(options), kSeeds);
  ASSERT_EQ(parallel.size(), static_cast<std::size_t>(kSeeds));

  SimulationOptions serial = options;
  serial.threads = 1;
  auto golden = run_seeds(SimulationConfig().system(system).protocol(ProtocolParams{}).options(serial), kSeeds);
  for (int i = 0; i < kSeeds; ++i) {
    SCOPED_TRACE("seed index " + std::to_string(i));
    testsupport::expect_identical(parallel[static_cast<std::size_t>(i)],
                                  golden[static_cast<std::size_t>(i)]);
  }
}

TEST(ParallelStress, ManyTrivialBatchesOnOnePool) {
  // Trivial jobs maximize time spent in the queue/condvar machinery itself.
  ParallelRunner runner(4);
  for (int batch = 0; batch < 6; ++batch) {
    const int kJobs = 512;
    std::atomic<std::int64_t> sum{0};
    std::vector<int> slots(kJobs, -1);
    runner.run(kJobs, [&](int i) {
      slots[static_cast<std::size_t>(i)] = i * i;
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kJobs) * (kJobs - 1) / 2);
    for (int i = 0; i < kJobs; ++i) {
      ASSERT_EQ(slots[static_cast<std::size_t>(i)], i * i);
    }
  }
}

TEST(ParallelStress, ProgressUnderContention) {
  ParallelRunner runner(4);
  int last = 0;
  runner.run(
      128, [](int) {},
      [&](int done, int total) {
        // Calls are serialized under the pool mutex and strictly increasing.
        EXPECT_EQ(done, last + 1);
        EXPECT_EQ(total, 128);
        last = done;
      });
  EXPECT_EQ(last, 128);
}

}  // namespace
}  // namespace guess::experiments
