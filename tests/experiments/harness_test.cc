#include "experiments/harness.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace guess::experiments {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Scale, ReducedDefaults) {
  auto scale = Scale::from_flags(make({}));
  EXPECT_FALSE(scale.full);
  EXPECT_EQ(scale.seeds, 2);
  EXPECT_DOUBLE_EQ(scale.warmup, 400.0);
  EXPECT_DOUBLE_EQ(scale.measure, 1600.0);
}

TEST(Scale, FullScaleIsLarger) {
  auto reduced = Scale::from_flags(make({}));
  auto full = Scale::from_flags(make({"--full"}));
  EXPECT_TRUE(full.full);
  EXPECT_GT(full.measure, reduced.measure);
  EXPECT_GT(full.seeds, reduced.seeds);
}

TEST(Scale, SeedsOverride) {
  auto scale = Scale::from_flags(make({"--seeds=7", "--seed=99"}));
  EXPECT_EQ(scale.seeds, 7);
  EXPECT_EQ(scale.base_seed, 99u);
  auto options = scale.options();
  EXPECT_EQ(options.seed, 99u);
  EXPECT_DOUBLE_EQ(options.warmup, scale.warmup);
}

TEST(Scale, TransportFlagsThreadThrough) {
  auto scale = Scale::from_flags(
      make({"--loss=0.05", "--probe-timeout=1.5", "--max-retries=2"}));
  EXPECT_EQ(scale.transport.kind, TransportParams::Kind::kLossy);
  EXPECT_DOUBLE_EQ(scale.transport.loss, 0.05);
  EXPECT_DOUBLE_EQ(scale.transport.probe_timeout, 1.5);
  EXPECT_EQ(scale.transport.max_retries, 2u);
}

TEST(Scale, NegativeMaxRetriesRejected) {
  // Would otherwise wrap through the unsigned cast into an effectively
  // unbounded retry count.
  EXPECT_THROW(Scale::from_flags(make({"--max-retries=-1"})), CheckError);
}

TEST(Scale, MaxBackoffFlagThreadsThrough) {
  auto scale = Scale::from_flags(make({"--loss=0.05", "--max-backoff=7.5"}));
  EXPECT_EQ(scale.transport.kind, TransportParams::Kind::kLossy);
  EXPECT_DOUBLE_EQ(scale.transport.max_backoff, 7.5);
  // --max-backoff alone is a transport flag: it switches on LossyTransport.
  auto alone = Scale::from_flags(make({"--max-backoff=5"}));
  EXPECT_EQ(alone.transport.kind, TransportParams::Kind::kLossy);
}

TEST(Scale, NonFiniteTransportFlagsRejected) {
  EXPECT_THROW(Scale::from_flags(make({"--loss=nan"})), CheckError);
  EXPECT_THROW(Scale::from_flags(make({"--loss=0.1", "--link-latency=inf"})),
               CheckError);
  EXPECT_THROW(
      Scale::from_flags(make({"--loss=0.1", "--probe-timeout=nan"})),
      CheckError);
  EXPECT_THROW(Scale::from_flags(make({"--loss=0.1", "--max-backoff=inf"})),
               CheckError);
  EXPECT_THROW(Scale::from_flags(make({"--interval=nan"})), CheckError);
  EXPECT_THROW(Scale::from_flags(make({"--interval=-5"})), CheckError);
}

TEST(Scale, ScenarioFlagParsesAndDefaultsTheInterval) {
  auto scale =
      Scale::from_flags(make({"--scenario=at 600 kill 0.3; at 900 join 50"}));
  ASSERT_EQ(scale.scenario.size(), 2u);
  EXPECT_DOUBLE_EQ(scale.scenario.first_fault_time(), 600.0);
  // A scenario without --interval turns the series on at 60 s buckets.
  EXPECT_DOUBLE_EQ(scale.metrics_interval, 60.0);

  // An explicit --interval wins, including an explicit 0 (series off).
  auto custom = Scale::from_flags(
      make({"--scenario=at 600 kill 0.3", "--interval=15"}));
  EXPECT_DOUBLE_EQ(custom.metrics_interval, 15.0);
  auto off =
      Scale::from_flags(make({"--scenario=at 600 kill 0.3", "--interval=0"}));
  EXPECT_DOUBLE_EQ(off.metrics_interval, 0.0);

  // No scenario: the series stays off by default.
  EXPECT_DOUBLE_EQ(Scale::from_flags(make({})).metrics_interval, 0.0);
  EXPECT_TRUE(Scale::from_flags(make({})).scenario.empty());
}

TEST(Scale, MalformedScenarioFlagThrows) {
  EXPECT_THROW(Scale::from_flags(make({"--scenario=at 600 explode"})),
               CheckError);
}

TEST(Scale, ScenarioFileLoadsAndExclusionEnforced) {
  const std::string path = ::testing::TempDir() + "/guess_harness_scn.txt";
  {
    std::ofstream out(path);
    out << "at 100 partition 2 for 50\n";
  }
  auto scale = Scale::from_flags(make({("--scenario-file=" + path).c_str()}));
  ASSERT_EQ(scale.scenario.size(), 1u);
  EXPECT_EQ(scale.scenario.actions()[0].ways, 2);
  std::remove(path.c_str());

  EXPECT_THROW(Scale::from_flags(make({"--scenario=at 1 join 1",
                                       "--scenario-file=x"})),
               CheckError);
}

TEST(Scale, ScenarioCarriesIntoConfig) {
  auto scale = Scale::from_flags(
      make({"--scenario=at 600 kill 0.3", "--interval=30"}));
  auto config = scale.config();
  EXPECT_EQ(config.scenario().size(), 1u);
  EXPECT_DOUBLE_EQ(config.options().metrics_interval, 30.0);
}

TEST(Harness, PrintHeaderMentionsTheScenario) {
  std::ostringstream os;
  auto scale = Scale::from_flags(make({"--scenario=at 600 kill 0.3"}));
  print_header(os, "Figure 99", "claim", SystemParams{}, ProtocolParams{},
               scale);
  std::string text = os.str();
  EXPECT_NE(text.find("at 600 kill 0.3"), std::string::npos);
  EXPECT_NE(text.find("interval=60"), std::string::npos);
}

TEST(PolicyCombo, PaperNamesMapToPolicyTriples) {
  auto ran = PolicyCombo::from_name("Ran");
  EXPECT_EQ(ran.probe, Policy::kRandom);
  EXPECT_EQ(ran.replacement, Replacement::kRandom);
  EXPECT_FALSE(ran.reset_num_results);

  auto mfs = PolicyCombo::from_name("MFS");
  EXPECT_EQ(mfs.probe, Policy::kMFS);
  EXPECT_EQ(mfs.pong, Policy::kMFS);
  EXPECT_EQ(mfs.replacement, Replacement::kLFS);  // §4: evict least-files

  auto mr = PolicyCombo::from_name("MR");
  EXPECT_EQ(mr.replacement, Replacement::kLR);
  EXPECT_FALSE(mr.reset_num_results);

  auto mr_star = PolicyCombo::from_name("MR*");
  EXPECT_EQ(mr_star.probe, Policy::kMR);
  EXPECT_TRUE(mr_star.reset_num_results);

  // §4's reversal: MRU retention = LRU eviction and vice versa.
  EXPECT_EQ(PolicyCombo::from_name("MRU").replacement, Replacement::kLRU);
  EXPECT_EQ(PolicyCombo::from_name("LRU").replacement, Replacement::kMRU);
}

TEST(PolicyCombo, UnknownNameThrows) {
  EXPECT_THROW(PolicyCombo::from_name("XYZ"), CheckError);
}

TEST(PolicyCombo, ApplyLeavesPingPoliciesAlone) {
  ProtocolParams base;
  base.ping_probe = Policy::kMRU;
  auto params = PolicyCombo::from_name("MFS").apply(base);
  EXPECT_EQ(params.query_probe, Policy::kMFS);
  EXPECT_EQ(params.query_pong, Policy::kMFS);
  EXPECT_EQ(params.cache_replacement, Replacement::kLFS);
  EXPECT_EQ(params.ping_probe, Policy::kMRU);  // untouched
  EXPECT_EQ(params.ping_pong, Policy::kRandom);
}

TEST(RobustnessCombos, MatchesFigures16Through21) {
  const auto& combos = robustness_combos();
  ASSERT_EQ(combos.size(), 4u);
  EXPECT_EQ(combos[0].name, "Ran");
  EXPECT_EQ(combos[1].name, "MR");
  EXPECT_EQ(combos[2].name, "MR*");
  EXPECT_EQ(combos[3].name, "MFS");
}

TEST(Harness, PrintHeaderMentionsEverything) {
  std::ostringstream os;
  SystemParams system;
  ProtocolParams protocol;
  auto scale = Scale::from_flags(make({}));
  print_header(os, "Figure 99", "test claim", system, protocol, scale);
  std::string text = os.str();
  EXPECT_NE(text.find("Figure 99"), std::string::npos);
  EXPECT_NE(text.find("test claim"), std::string::npos);
  EXPECT_NE(text.find("NetworkSize=1000"), std::string::npos);
  EXPECT_NE(text.find("reduced"), std::string::npos);
}

}  // namespace
}  // namespace guess::experiments
