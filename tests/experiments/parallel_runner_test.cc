// ParallelRunner: pool mechanics (ordering, exceptions, progress, reuse) and
// the property the whole subsystem exists to preserve — run_seeds results are
// bitwise-identical to the serial baseline for every thread count.
#include "experiments/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "guess/simulation.h"
#include "../testsupport/simulation_results_eq.h"

namespace guess::experiments {
namespace {

SystemParams small_system() {
  SystemParams system;
  system.network_size = 120;
  system.content.catalog_size = 300;
  system.content.query_universe = 375;
  return system;
}

SimulationOptions small_options() {
  SimulationOptions options;
  options.seed = 77;
  options.warmup = 60.0;
  options.measure = 300.0;
  return options;
}

/// The serial baseline the parallel paths must match bit for bit: one
/// independent GuessSimulation per seed, run in the calling thread.
std::vector<SimulationResults> serial_baseline(const SystemParams& system,
                                               const SimulationOptions& base,
                                               int num_seeds) {
  std::vector<SimulationResults> runs;
  for (int i = 0; i < num_seeds; ++i) {
    SimulationOptions opt = base;
    opt.seed = base.seed + static_cast<std::uint64_t>(i);
    GuessSimulation sim(SimulationConfig().system(system).protocol(ProtocolParams{}).options(opt));
    runs.push_back(sim.run());
  }
  return runs;
}

// --- the golden determinism property (ISSUE acceptance criterion) ---

TEST(ParallelRunSeeds, BitwiseIdenticalToSerialAcrossThreadCounts) {
  const int kSeeds = 5;
  SystemParams system = small_system();
  SimulationOptions base = small_options();
  auto golden = serial_baseline(system, base, kSeeds);

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SimulationOptions options = base;
    options.threads = threads;
    auto runs = run_seeds(SimulationConfig().system(system).protocol(ProtocolParams{}).options(options), kSeeds);
    ASSERT_EQ(runs.size(), golden.size());
    for (int i = 0; i < kSeeds; ++i) {
      SCOPED_TRACE("seed index " + std::to_string(i));
      testsupport::expect_identical(runs[i], golden[i]);
    }
  }
}

// --- pool mechanics ---

TEST(ParallelRunner, ResultsOrderedByIndexNotCompletion) {
  // Early jobs sleep longest, so completion order is roughly the reverse of
  // index order; map() must still return index order.
  ParallelRunner runner(4);
  const int kJobs = 8;
  auto out = runner.map<int>(kJobs, [&](int i) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds((kJobs - i) * 10));
    return i * 10;
  });
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 10);
}

TEST(ParallelRunner, WorkerExceptionPropagatesToCaller) {
  ParallelRunner runner(4);
  EXPECT_THROW(
      runner.run(8,
                 [](int i) {
                   if (i == 3) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
}

TEST(ParallelRunner, LowestIndexExceptionWinsAndOtherJobsStillRun) {
  ParallelRunner runner(4);
  std::atomic<int> ran{0};
  try {
    runner.run(8, [&](int i) {
      ran.fetch_add(1);
      if (i == 6) throw std::runtime_error("boom 6");
      if (i == 2) throw std::runtime_error("boom 2");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Deterministic choice regardless of which worker finished first.
    EXPECT_STREQ(e.what(), "boom 2");
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelRunner, CheckErrorCrossesThePool) {
  // CheckError is what replications throw on invalid parameters; it must
  // surface to the caller like any other exception.
  ParallelRunner runner(2);
  EXPECT_THROW(runner.run(4,
                          [](int i) {
                            if (i == 1) GUESS_CHECK_MSG(false, "worker died");
                          }),
               CheckError);
}

TEST(ParallelRunner, ProgressReportsEveryCompletionInOrder) {
  ParallelRunner runner(4);
  std::vector<std::pair<int, int>> calls;  // serialized under the pool mutex
  runner.run(
      16, [](int) {},
      [&](int done, int total) { calls.emplace_back(done, total); });
  ASSERT_EQ(calls.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(calls[static_cast<std::size_t>(i)].first, i + 1);
    EXPECT_EQ(calls[static_cast<std::size_t>(i)].second, 16);
  }
}

TEST(ParallelRunner, PoolIsReusableAcrossBatches) {
  ParallelRunner runner(3);
  EXPECT_EQ(runner.threads(), 3);
  auto first = runner.map<int>(5, [](int i) { return i + 1; });
  auto second = runner.map<int>(9, [](int i) { return i * 2; });
  EXPECT_EQ(first, (std::vector<int>{1, 2, 3, 4, 5}));
  ASSERT_EQ(second.size(), 9u);
  EXPECT_EQ(second[8], 16);
}

TEST(ParallelRunner, EmptyBatchReturnsImmediately) {
  ParallelRunner runner(2);
  EXPECT_TRUE(runner.map<int>(0, [](int i) { return i; }).empty());
}

// --- thread-count resolution (SimulationOptions::threads / GUESS_THREADS) ---

TEST(ResolveThreadCount, ExplicitRequestWins) {
  ::setenv("GUESS_THREADS", "5", 1);
  EXPECT_EQ(resolve_thread_count(3), 3);
  ::unsetenv("GUESS_THREADS");
}

TEST(ResolveThreadCount, EnvironmentOverridesAuto) {
  ::setenv("GUESS_THREADS", "5", 1);
  EXPECT_EQ(resolve_thread_count(0), 5);
  ::unsetenv("GUESS_THREADS");
}

TEST(ResolveThreadCount, MalformedEnvironmentRejected) {
  ::setenv("GUESS_THREADS", "many", 1);
  EXPECT_THROW(resolve_thread_count(0), CheckError);
  ::setenv("GUESS_THREADS", "0", 1);
  EXPECT_THROW(resolve_thread_count(0), CheckError);
  ::unsetenv("GUESS_THREADS");
}

TEST(ResolveThreadCount, AutoIsAtLeastOne) {
  ::unsetenv("GUESS_THREADS");
  EXPECT_GE(resolve_thread_count(0), 1);
}

TEST(ResolveThreadCount, NegativeRequestRejected) {
  EXPECT_THROW(resolve_thread_count(-1), CheckError);
}

TEST(ParallelRunSeeds, HonorsGuessThreadsEnvironment) {
  ::setenv("GUESS_THREADS", "2", 1);
  SystemParams system = small_system();
  SimulationOptions options = small_options();
  options.measure = 120.0;
  auto env_runs = run_seeds(SimulationConfig().system(system).protocol(ProtocolParams{}).options(options), 3);
  ::unsetenv("GUESS_THREADS");
  auto golden = serial_baseline(system, options, 3);
  ASSERT_EQ(env_runs.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    testsupport::expect_identical(env_runs[static_cast<std::size_t>(i)],
                                  golden[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace guess::experiments
