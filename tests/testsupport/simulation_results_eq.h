// Bitwise-equality assertions over SimulationResults, shared by the
// cross-thread determinism tests (tests/experiments/parallel_runner_test.cc)
// and the integration determinism suite.
//
// "Bitwise" is meant literally: a replication is the same sequence of
// floating-point operations no matter which thread runs it, so every double
// must compare == (not just within a tolerance). EXPECT_EQ on doubles does
// exactly that.
#pragma once

#include <gtest/gtest.h>

#include "guess/metrics.h"

namespace guess::testsupport {

inline void expect_identical(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

inline void expect_identical(const ProbeCounters& a, const ProbeCounters& b) {
  EXPECT_EQ(a.good, b.good);
  EXPECT_EQ(a.dead, b.dead);
  EXPECT_EQ(a.refused, b.refused);
}

inline void expect_identical(const ClassMetrics& a, const ClassMetrics& b) {
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_satisfied, b.queries_satisfied);
  expect_identical(a.probes, b.probes);
  expect_identical(a.response_time, b.response_time);
}

inline void expect_identical(const TransportCounters& a,
                             const TransportCounters& b) {
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.late_replies, b.late_replies);
  EXPECT_EQ(a.exchanges_failed, b.exchanges_failed);
}

inline void expect_identical(const AttackStats& a, const AttackStats& b) {
  EXPECT_EQ(a.adversaries_spawned, b.adversaries_spawned);
  EXPECT_EQ(a.adversaries_retired, b.adversaries_retired);
  EXPECT_EQ(a.sybil_respawns, b.sybil_respawns);
  EXPECT_EQ(a.withheld_exchanges, b.withheld_exchanges);
  EXPECT_EQ(a.oversized_pongs, b.oversized_pongs);
  EXPECT_EQ(a.pong_entries_dropped, b.pong_entries_dropped);
  EXPECT_EQ(a.no_reply_charges, b.no_reply_charges);
}

inline void expect_identical(const CacheHealth& a, const CacheHealth& b) {
  EXPECT_EQ(a.fraction_live, b.fraction_live);
  EXPECT_EQ(a.absolute_live, b.absolute_live);
  EXPECT_EQ(a.good_entries, b.good_entries);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.samples, b.samples);
}

inline void expect_identical(const IntervalSample& a,
                             const IntervalSample& b) {
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_satisfied, b.queries_satisfied);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.live_peers, b.live_peers);
  expect_identical(a.transport, b.transport);
}

inline void expect_identical(const IntervalSeries& a,
                             const IntervalSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("interval " + std::to_string(i));
    expect_identical(a[i], b[i]);
  }
}

/// Every field of SimulationResults, entry-for-entry.
inline void expect_identical(const SimulationResults& a,
                             const SimulationResults& b) {
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_satisfied, b.queries_satisfied);
  expect_identical(a.probes, b.probes);
  expect_identical(a.honest, b.honest);
  expect_identical(a.selfish, b.selfish);
  expect_identical(a.response_time, b.response_time);
  expect_identical(a.query_cache_population, b.query_cache_population);
  ASSERT_EQ(a.query_probes.size(), b.query_probes.size());
  EXPECT_EQ(a.query_probes.values(), b.query_probes.values());
  ASSERT_EQ(a.peer_loads.size(), b.peer_loads.size());
  EXPECT_EQ(a.peer_loads.values(), b.peer_loads.values());
  expect_identical(a.cache_health, b.cache_health);
  expect_identical(a.largest_component, b.largest_component);
  EXPECT_EQ(a.final_largest_component, b.final_largest_component);
  EXPECT_EQ(a.final_largest_strong_component,
            b.final_largest_strong_component);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(a.pings_sent, b.pings_sent);
  EXPECT_EQ(a.pings_to_dead, b.pings_to_dead);
  expect_identical(a.transport, b.transport);
  expect_identical(a.attack, b.attack);
  EXPECT_EQ(a.queries_stalled_out, b.queries_stalled_out);
  EXPECT_EQ(a.measure_duration, b.measure_duration);
  EXPECT_EQ(a.network_size, b.network_size);
  expect_identical(a.interval_series, b.interval_series);
}

}  // namespace guess::testsupport
