// Cross-module integration tests: full simulations with protocol features
// (capacity limits, backoff, parallel probes, MR*) switched on.
#include <gtest/gtest.h>

#include "guess/simulation.h"

namespace guess {
namespace {

SystemParams base_system(std::size_t n = 200) {
  SystemParams system;
  system.network_size = n;
  system.content.catalog_size = 600;
  system.content.query_universe = 750;
  return system;
}

SimulationOptions quick(std::uint64_t seed = 42) {
  SimulationOptions options;
  options.seed = seed;
  options.warmup = 150.0;
  options.measure = 700.0;
  return options;
}

TEST(EndToEnd, TightCapacityProducesRefusedProbes) {
  SystemParams system = base_system();
  system.max_probes_per_second = 1;
  // Concentrating policy: everyone hammers the same top sharers.
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMFS;
  protocol.query_pong = Policy::kMFS;
  protocol.cache_replacement = Replacement::kLFS;
  GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(quick()));
  auto results = sim.run();
  EXPECT_GT(results.probes.refused, 0u);
}

TEST(EndToEnd, AmpleCapacityNeverRefuses) {
  SystemParams system = base_system();
  system.max_probes_per_second = 100000;
  GuessSimulation sim(SimulationConfig().system(system).protocol(ProtocolParams{}).options(quick()));
  auto results = sim.run();
  EXPECT_EQ(results.probes.refused, 0u);
}

TEST(EndToEnd, BackoffRunsToCompletion) {
  SystemParams system = base_system();
  system.max_probes_per_second = 1;
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMFS;
  protocol.query_pong = Policy::kMFS;
  protocol.cache_replacement = Replacement::kLFS;
  protocol.do_backoff = true;
  GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(quick()));
  auto results = sim.run();
  EXPECT_GT(results.queries_completed, 0u);
  EXPECT_GT(results.queries_satisfied, 0u);
}

TEST(EndToEnd, ParallelProbesCutResponseTime) {
  auto run = [](std::size_t k) {
    ProtocolParams protocol;
    protocol.parallel_probes = k;
    GuessSimulation sim(SimulationConfig().system(base_system()).protocol(protocol).options(quick()));
    return sim.run();
  };
  auto serial = run(1);
  auto parallel = run(5);
  // §6.2: k parallel probes shrink response time by roughly k while adding
  // at most k-1 probes per query. Tolerances are loose: different runs.
  EXPECT_LT(parallel.response_time.mean(),
            serial.response_time.mean() * 0.6);
  EXPECT_LT(parallel.probes_per_query(),
            serial.probes_per_query() * 1.5 + 5.0);
}

TEST(EndToEnd, ZeroProbeCapPerQueryMeansExhaustiveSearch) {
  SystemParams system = base_system(100);
  ProtocolParams protocol;
  protocol.max_probes_per_query = 0;  // unlimited
  GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(quick()));
  auto results = sim.run();
  EXPECT_GT(results.queries_completed, 0u);
  // Unsatisfied queries exhausted every reachable candidate, so the query
  // cache population can exceed the link cache size.
  EXPECT_GT(results.query_cache_population.max(),
            static_cast<double>(protocol.cache_size));
}

TEST(EndToEnd, ManyDesiredResultsIsHarder) {
  auto run = [](std::size_t desired) {
    SystemParams system = base_system();
    system.num_desired_results = desired;
    GuessSimulation sim(SimulationConfig().system(system).protocol(ProtocolParams{}).options(quick()));
    return sim.run();
  };
  auto one = run(1);
  auto ten = run(10);
  EXPECT_GT(ten.unsatisfied_rate(), one.unsatisfied_rate());
  EXPECT_GT(ten.probes_per_query(), one.probes_per_query());
}

TEST(EndToEnd, FastChurnRaisesDeadProbeShare) {
  auto run = [](double multiplier) {
    SystemParams system = base_system();
    system.lifespan_multiplier = multiplier;
    GuessSimulation sim(SimulationConfig().system(system).protocol(ProtocolParams{}).options(quick()));
    return sim.run();
  };
  auto stable = run(5.0);
  auto churny = run(0.1);
  EXPECT_GT(churny.dead_probes_per_query(),
            stable.dead_probes_per_query() * 1.5);
  EXPECT_GT(churny.deaths, stable.deaths * 5);
}

TEST(EndToEnd, IntroProbabilityZeroStillWorks) {
  // Newborn peers then only enter circulation via friend-copied caches;
  // the network must keep functioning.
  SystemParams system = base_system();
  ProtocolParams protocol;
  protocol.intro_prob = 0.0;
  GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(quick()));
  auto results = sim.run();
  EXPECT_GT(results.queries_satisfied, 0u);
}

TEST(EndToEnd, SmallPongsSlowDiscovery) {
  auto run = [](std::size_t pong_size) {
    ProtocolParams protocol;
    protocol.pong_size = pong_size;
    GuessSimulation sim(SimulationConfig().system(base_system()).protocol(protocol).options(quick()));
    return sim.run();
  };
  auto small = run(1);
  auto large = run(10);
  // Bigger pongs populate the query cache faster.
  EXPECT_GT(large.query_cache_population.mean(),
            small.query_cache_population.mean());
}

TEST(EndToEnd, MaliciousDeadPoisoningRunsCleanly) {
  SystemParams system = base_system();
  system.percent_bad_peers = 10.0;
  system.bad_pong_behavior = BadPongBehavior::kDead;
  GuessSimulation sim(SimulationConfig().system(system).protocol(ProtocolParams{}).options(quick()));
  auto results = sim.run();
  EXPECT_GT(results.queries_completed, 0u);
  // Fabricated dead addresses inflate wasted probes.
  EXPECT_GT(results.dead_probes_per_query(), 0.0);
}

}  // namespace
}  // namespace guess
