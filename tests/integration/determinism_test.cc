// Determinism across every simulator in the repository: identical
// (parameters, seed) must give identical results, the property that makes
// trace-based debugging and CI regression pinning possible.
#include <gtest/gtest.h>

#include "gnutella/dynamic_overlay.h"
#include "guess/simulation.h"
#include "onehop/one_hop_dht.h"
#include "../testsupport/simulation_results_eq.h"

namespace guess {
namespace {

TEST(Determinism, DynamicGnutellaOverlay) {
  auto run = [](std::uint64_t seed) {
    gnutella::DynamicParams params;
    params.network_size = 150;
    params.lifespan_multiplier = 0.2;
    params.content.catalog_size = 400;
    params.content.query_universe = 500;
    sim::Simulator simulator;
    gnutella::DynamicOverlay overlay(params, simulator, Rng(seed));
    overlay.initialize();
    simulator.run_until(200.0);
    overlay.begin_measurement();
    simulator.run_until(900.0);
    return overlay.results();
  };
  auto a = run(11);
  auto b = run(11);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_satisfied, b.queries_satisfied);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(a.repairs, b.repairs);
  auto c = run(12);
  EXPECT_NE(a.messages, c.messages);
}

TEST(Determinism, OneHopDht) {
  auto run = [](std::uint64_t seed) {
    onehop::OneHopParams params;
    params.network_size = 150;
    params.lifespan_multiplier = 0.1;
    sim::Simulator simulator;
    onehop::OneHopDht dht(params, simulator, Rng(seed));
    dht.initialize();
    simulator.run_until(300.0);
    dht.begin_measurement();
    simulator.run_until(2000.0);
    return dht.results();
  };
  auto a = run(21);
  auto b = run(21);
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.one_hop, b.one_hop);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.membership_events, b.membership_events);
}

TEST(Determinism, GuessWithEveryExtensionEnabled) {
  auto run = [](std::uint64_t seed) {
    SystemParams system;
    system.network_size = 200;
    system.content.catalog_size = 400;
    system.content.query_universe = 500;
    system.percent_bad_peers = 10.0;
    system.bad_pong_behavior = BadPongBehavior::kBad;
    system.percent_selfish_peers = 10.0;
    ProtocolParams protocol;
    protocol.query_probe = Policy::kMR;
    protocol.query_pong = Policy::kMR;
    protocol.cache_replacement = Replacement::kLR;
    protocol.payments.enabled = true;
    protocol.detection.enabled = true;
    protocol.bootstrap.pong_server_reseed = true;
    protocol.adaptive_ping.enabled = true;
    protocol.adaptive_parallel = true;
    protocol.do_backoff = true;
    SimulationOptions options;
    options.seed = seed;
    options.warmup = 150.0;
    options.measure = 600.0;
    GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(options));
    return sim.run();
  };
  auto a = run(31);
  auto b = run(31);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.probes.good, b.probes.good);
  EXPECT_EQ(a.probes.dead, b.probes.dead);
  EXPECT_EQ(a.probes.refused, b.probes.refused);
  EXPECT_EQ(a.queries_stalled_out, b.queries_stalled_out);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_DOUBLE_EQ(a.cache_health.good_entries, b.cache_health.good_entries);
}

// The scheduler backend is pure mechanism: heap and calendar queues pop the
// identical (time, seq) sequence, so a full GUESS simulation — churn,
// adaptive extensions, malicious peers and all — must produce bitwise
// identical results under either backend.
TEST(Determinism, HeapAndCalendarSchedulersBitwiseIdentical) {
  auto run = [](sim::Scheduler scheduler) {
    SystemParams system;
    system.network_size = 200;
    system.lifespan_multiplier = 0.5;  // churn-heavy: exercises cancels
    system.content.catalog_size = 400;
    system.content.query_universe = 500;
    system.percent_bad_peers = 10.0;
    system.bad_pong_behavior = BadPongBehavior::kBad;
    ProtocolParams protocol;
    protocol.query_probe = Policy::kMR;
    protocol.cache_replacement = Replacement::kLR;
    protocol.adaptive_ping.enabled = true;
    protocol.do_backoff = true;
    SimulationOptions options;
    options.seed = 77;
    options.warmup = 150.0;
    options.measure = 600.0;
    options.scheduler = scheduler;
    GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(options));
    return sim.run();
  };
  auto heap = run(sim::Scheduler::kHeap);
  auto calendar = run(sim::Scheduler::kCalendar);
  testsupport::expect_identical(heap, calendar);
}

// LossyTransport schedules real timeout/retry/delivery events, so it is the
// sharpest probe of scheduler equivalence: both backends must drain the
// fault-injected event stream in the identical order.
TEST(Determinism, LossyTransportHeapAndCalendarBitwiseIdentical) {
  auto run = [](sim::Scheduler scheduler) {
    SystemParams system;
    system.network_size = 150;
    system.lifespan_multiplier = 0.5;
    system.content.catalog_size = 400;
    system.content.query_universe = 500;
    TransportParams transport = TransportParams::lossy(0.1);
    transport.max_retries = 2;
    transport.retry_backoff = 0.5;
    transport.latency_distribution = LatencyDistribution::kExponential;
    auto config = SimulationConfig()
                      .system(system)
                      .transport(transport)
                      .seed(77)
                      .warmup(150.0)
                      .measure(600.0)
                      .scheduler(scheduler);
    GuessSimulation sim(config);
    return sim.run();
  };
  auto heap = run(sim::Scheduler::kHeap);
  auto calendar = run(sim::Scheduler::kCalendar);
  testsupport::expect_identical(heap, calendar);
  EXPECT_GT(heap.transport.timeouts, 0u);  // the faults actually fired
}

// The acceptance criterion of the fault-scenario engine: a kill-30%-then-
// recover scenario — mass kill, flash-crowd rejoin, a partition window and
// a degradation window, with the interval series on — must be bitwise
// identical under the heap and calendar schedulers. Fault events, window
// ends and interval samples all collide at round timestamps, so this leans
// on the (time, seq) tie-ordering harder than any other run in the suite.
TEST(Determinism, FaultScenarioHeapAndCalendarBitwiseIdentical) {
  auto run = [](sim::Scheduler scheduler) {
    SystemParams system;
    system.network_size = 150;
    system.lifespan_multiplier = 0.5;
    system.content.catalog_size = 400;
    system.content.query_universe = 500;
    system.percent_bad_peers = 10.0;
    system.bad_pong_behavior = BadPongBehavior::kBad;
    TransportParams transport = TransportParams::lossy(0.05);
    transport.max_retries = 2;
    auto config =
        SimulationConfig()
            .system(system)
            .transport(transport)
            .scenario(faults::Scenario::parse(
                "at 250 kill 0.3; at 250 poison off; "
                "at 300 partition 2 for 100; "
                "at 450 degrade loss=0.3 latency=2 for 50; at 550 join 60"))
            .metrics_interval(50.0)
            .seed(77)
            .warmup(150.0)
            .measure(600.0)
            .scheduler(scheduler);
    GuessSimulation sim(config);
    return sim.run();
  };
  auto heap = run(sim::Scheduler::kHeap);
  auto calendar = run(sim::Scheduler::kCalendar);
  testsupport::expect_identical(heap, calendar);
  // The scenario actually bit: population dipped to 105 and rebounded.
  // The sample closing exactly at the kill instant (end = 250) already
  // reflects the post-kill population: fault events win the time tie.
  ASSERT_GE(heap.interval_series.size(), 15u);
  EXPECT_EQ(heap.interval_series[3].live_peers, 150u);   // 150..200
  EXPECT_EQ(heap.interval_series[4].live_peers, 105u);   // 200..250
  EXPECT_EQ(heap.interval_series.back().live_peers, 165u);
  EXPECT_GT(heap.transport.exchanges_failed, 0u);
}

// Every adversary in the zoo (DESIGN.md §11) must be pure simulation: for
// each attack kind, a hardened-detection run under lossy transport — the
// configuration where attacks touch the most machinery (adversary spawns,
// sybil respawn timers, severed exchanges resolving as timeouts, oversize
// truncation, no-reply charging) — must be bitwise identical under the heap
// and calendar schedulers, AttackStats included.
TEST(Determinism, EachAttackHeapAndCalendarBitwiseIdentical) {
  struct Case {
    const char* name;
    const char* spec;
  };
  const Case kCases[] = {
      {"eclipse", "at 200 attack eclipse frac=0.1 for 200"},
      {"sybil", "at 200 attack sybil frac=0.1 for 200"},
      {"pong-flood", "at 200 attack pong-flood frac=0.1 for 200"},
      {"withhold", "at 200 attack withhold frac=0.1 for 200"},
  };
  for (const Case& attack : kCases) {
    SCOPED_TRACE(attack.name);
    auto run = [&](sim::Scheduler scheduler) {
      SystemParams system;
      system.network_size = 150;
      system.lifespan_multiplier = 0.5;
      system.content.catalog_size = 400;
      system.content.query_universe = 500;
      ProtocolParams protocol;
      protocol.query_probe = Policy::kMR;
      protocol.query_pong = Policy::kMR;
      protocol.detection = DetectionParams::hardened();
      protocol.do_backoff = true;
      TransportParams transport = TransportParams::lossy(0.05);
      transport.max_retries = 2;
      auto config = SimulationConfig()
                        .system(system)
                        .protocol(protocol)
                        .transport(transport)
                        .scenario(faults::Scenario::parse(attack.spec))
                        .metrics_interval(50.0)
                        .seed(77)
                        .warmup(150.0)
                        .measure(450.0)
                        .scheduler(scheduler);
      GuessSimulation sim(config);
      return sim.run();
    };
    auto heap = run(sim::Scheduler::kHeap);
    auto calendar = run(sim::Scheduler::kCalendar);
    testsupport::expect_identical(heap, calendar);
    EXPECT_GT(heap.attack.adversaries_spawned, 0u);  // the attack ran
    // The window closed inside the run: every spawn (respawns included)
    // was matched by a retirement.
    EXPECT_EQ(heap.attack.adversaries_spawned,
              heap.attack.adversaries_retired);
  }
}

// All four attacks layered into one scenario, swept across worker-thread
// counts: the pooled replication path must not perturb a single counter.
TEST(Determinism, AttackGauntletIdenticalAcrossThreadCounts) {
  SystemParams system;
  system.network_size = 150;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  ProtocolParams protocol;
  protocol.detection = DetectionParams::hardened();
  auto config_for = [&](int threads) {
    return SimulationConfig()
        .system(system)
        .protocol(protocol)
        .scenario(faults::Scenario::parse(
            "at 150 attack eclipse frac=0.05 for 150; "
            "at 200 attack sybil frac=0.05 for 150; "
            "at 250 attack pong-flood frac=0.05 for 150; "
            "at 300 attack withhold frac=0.05 for 150"))
        .metrics_interval(60.0)
        .seed(55)
        .warmup(120.0)
        .measure(480.0)
        .threads(threads);
  };
  auto serial = run_seeds(config_for(1), 3);
  auto pooled = run_seeds(config_for(4), 3);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("seed index " + std::to_string(i));
    testsupport::expect_identical(serial[i], pooled[i]);
  }
  EXPECT_GT(serial[0].attack.adversaries_spawned, 0u);
}

// ... and across worker-thread counts: a scenario replication sweep must be
// bitwise identical whether the seeds run serially or on a pool.
TEST(Determinism, FaultScenarioIdenticalAcrossThreadCounts) {
  SystemParams system;
  system.network_size = 150;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  auto config_for = [&](int threads) {
    return SimulationConfig()
        .system(system)
        .scenario(
            faults::Scenario::parse("at 200 kill 0.3; at 400 join 45"))
        .metrics_interval(60.0)
        .seed(55)
        .warmup(120.0)
        .measure(480.0)
        .threads(threads);
  };
  auto serial = run_seeds(config_for(1), 3);
  auto pooled = run_seeds(config_for(4), 3);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("seed index " + std::to_string(i));
    testsupport::expect_identical(serial[i], pooled[i]);
  }
}

// run_seeds (which now dispatches replications onto a worker pool) must be
// indistinguishable from n completely independent single-seed simulations,
// entry for entry — the contract that makes the parallel path safe to use
// for every figure and table in the paper reproduction.
TEST(Determinism, RunSeedsEqualsIndependentRuns) {
  SystemParams system;
  system.network_size = 150;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  ProtocolParams protocol;
  SimulationOptions options;
  options.seed = 99;
  options.warmup = 120.0;
  options.measure = 480.0;
  options.threads = 0;  // auto: exercises the default (parallel) path

  const int kSeeds = 4;
  auto sweep = run_seeds(SimulationConfig().system(system).protocol(protocol).options(options), kSeeds);
  ASSERT_EQ(sweep.size(), static_cast<std::size_t>(kSeeds));
  for (int i = 0; i < kSeeds; ++i) {
    SCOPED_TRACE("seed index " + std::to_string(i));
    SimulationOptions one = options;
    one.seed = options.seed + static_cast<std::uint64_t>(i);
    GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(one));
    auto independent = sim.run();
    testsupport::expect_identical(sweep[static_cast<std::size_t>(i)],
                                  independent);
  }
}

// --- dense slot assignment is pure mechanism -----------------------------
//
// The dense peer table maps each PeerId to a slab slot at birth; which slot
// a peer lands in is an implementation detail that must be invisible in
// results. debug_seed_free_slots pre-shuffles the free list so every birth
// claims a maximally different slot than the natural run, and the results
// must still be bitwise identical: iteration and sampling orders depend
// only on the birth/death sequence, never on slot numbers.

namespace {

// Runs `config` with births claiming slots in a shuffled order when
// `shuffle_seed` is nonzero (0 = natural slot order).
SimulationResults run_with_slot_order(const SimulationConfig& config,
                                      std::uint64_t shuffle_seed,
                                      std::size_t seeded_slots) {
  GuessSimulation sim(config);
  if (shuffle_seed != 0) {
    std::vector<std::uint32_t> order(seeded_slots);
    for (std::size_t i = 0; i < seeded_slots; ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    Rng(shuffle_seed).shuffle(order);
    sim.network().debug_seed_free_slots(std::move(order));
  }
  return sim.run();
}

}  // namespace

TEST(Determinism, SlotAssignmentInvisibleUnderChurn) {
  SystemParams system;
  system.network_size = 150;
  system.lifespan_multiplier = 0.5;  // heavy churn: slots free and refill
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  system.percent_bad_peers = 10.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMR;
  protocol.cache_replacement = Replacement::kLR;
  protocol.detection.enabled = true;
  protocol.do_backoff = true;
  auto config = SimulationConfig()
                    .system(system)
                    .protocol(protocol)
                    .seed(77)
                    .warmup(150.0)
                    .measure(600.0);
  auto natural = run_with_slot_order(config, 0, 0);
  auto shuffled = run_with_slot_order(config, 1234, 400);
  testsupport::expect_identical(natural, shuffled);
  EXPECT_GT(natural.deaths, 0u);  // slots actually cycled through reuse

  // Two different shuffles also agree — and under either scheduler backend.
  auto reshuffled = run_with_slot_order(config, 5678, 400);
  testsupport::expect_identical(natural, reshuffled);
  auto calendar = run_with_slot_order(
      SimulationConfig(config).scheduler(sim::Scheduler::kCalendar), 1234,
      400);
  testsupport::expect_identical(natural, calendar);
}

// The sharpest variant: lossy transport plus a full fault scenario (mass
// kill, partition window, degradation window, flash-crowd join) with the
// interval series on. Partition stamps, per-slot query slots and dead-load
// flushing all index by slot here; a shuffled slab must not shift a single
// sample.
TEST(Determinism, SlotAssignmentInvisibleUnderFaultScenario) {
  SystemParams system;
  system.network_size = 150;
  system.lifespan_multiplier = 0.5;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  system.percent_bad_peers = 10.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  TransportParams transport = TransportParams::lossy(0.05);
  transport.max_retries = 2;
  auto config =
      SimulationConfig()
          .system(system)
          .transport(transport)
          .scenario(faults::Scenario::parse(
              "at 250 kill 0.3; at 250 poison off; "
              "at 300 partition 2 for 100; "
              "at 450 degrade loss=0.3 latency=2 for 50; at 550 join 60"))
          .metrics_interval(50.0)
          .seed(77)
          .warmup(150.0)
          .measure(600.0);
  auto natural = run_with_slot_order(config, 0, 0);
  auto shuffled = run_with_slot_order(config, 4321, 400);
  testsupport::expect_identical(natural, shuffled);
  auto calendar_shuffled = run_with_slot_order(
      SimulationConfig(config).scheduler(sim::Scheduler::kCalendar), 4321,
      400);
  testsupport::expect_identical(natural, calendar_shuffled);
  // The scenario bit exactly as in the unshuffled pinned run.
  ASSERT_GE(shuffled.interval_series.size(), 15u);
  EXPECT_EQ(shuffled.interval_series[4].live_peers, 105u);
  EXPECT_EQ(shuffled.interval_series.back().live_peers, 165u);
}

}  // namespace
}  // namespace guess
