// Determinism across every simulator in the repository: identical
// (parameters, seed) must give identical results, the property that makes
// trace-based debugging and CI regression pinning possible.
#include <gtest/gtest.h>

#include "gnutella/dynamic_overlay.h"
#include "guess/simulation.h"
#include "onehop/one_hop_dht.h"
#include "../testsupport/simulation_results_eq.h"

namespace guess {
namespace {

TEST(Determinism, DynamicGnutellaOverlay) {
  auto run = [](std::uint64_t seed) {
    gnutella::DynamicParams params;
    params.network_size = 150;
    params.lifespan_multiplier = 0.2;
    params.content.catalog_size = 400;
    params.content.query_universe = 500;
    sim::Simulator simulator;
    gnutella::DynamicOverlay overlay(params, simulator, Rng(seed));
    overlay.initialize();
    simulator.run_until(200.0);
    overlay.begin_measurement();
    simulator.run_until(900.0);
    return overlay.results();
  };
  auto a = run(11);
  auto b = run(11);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_satisfied, b.queries_satisfied);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(a.repairs, b.repairs);
  auto c = run(12);
  EXPECT_NE(a.messages, c.messages);
}

TEST(Determinism, OneHopDht) {
  auto run = [](std::uint64_t seed) {
    onehop::OneHopParams params;
    params.network_size = 150;
    params.lifespan_multiplier = 0.1;
    sim::Simulator simulator;
    onehop::OneHopDht dht(params, simulator, Rng(seed));
    dht.initialize();
    simulator.run_until(300.0);
    dht.begin_measurement();
    simulator.run_until(2000.0);
    return dht.results();
  };
  auto a = run(21);
  auto b = run(21);
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.one_hop, b.one_hop);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.membership_events, b.membership_events);
}

TEST(Determinism, GuessWithEveryExtensionEnabled) {
  auto run = [](std::uint64_t seed) {
    SystemParams system;
    system.network_size = 200;
    system.content.catalog_size = 400;
    system.content.query_universe = 500;
    system.percent_bad_peers = 10.0;
    system.bad_pong_behavior = BadPongBehavior::kBad;
    system.percent_selfish_peers = 10.0;
    ProtocolParams protocol;
    protocol.query_probe = Policy::kMR;
    protocol.query_pong = Policy::kMR;
    protocol.cache_replacement = Replacement::kLR;
    protocol.payments.enabled = true;
    protocol.detection.enabled = true;
    protocol.bootstrap.pong_server_reseed = true;
    protocol.adaptive_ping.enabled = true;
    protocol.adaptive_parallel = true;
    protocol.do_backoff = true;
    SimulationOptions options;
    options.seed = seed;
    options.warmup = 150.0;
    options.measure = 600.0;
    GuessSimulation sim(system, protocol, options);
    return sim.run();
  };
  auto a = run(31);
  auto b = run(31);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.probes.good, b.probes.good);
  EXPECT_EQ(a.probes.dead, b.probes.dead);
  EXPECT_EQ(a.probes.refused, b.probes.refused);
  EXPECT_EQ(a.queries_stalled_out, b.queries_stalled_out);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_DOUBLE_EQ(a.cache_health.good_entries, b.cache_health.good_entries);
}

// The scheduler backend is pure mechanism: heap and calendar queues pop the
// identical (time, seq) sequence, so a full GUESS simulation — churn,
// adaptive extensions, malicious peers and all — must produce bitwise
// identical results under either backend.
TEST(Determinism, HeapAndCalendarSchedulersBitwiseIdentical) {
  auto run = [](sim::Scheduler scheduler) {
    SystemParams system;
    system.network_size = 200;
    system.lifespan_multiplier = 0.5;  // churn-heavy: exercises cancels
    system.content.catalog_size = 400;
    system.content.query_universe = 500;
    system.percent_bad_peers = 10.0;
    system.bad_pong_behavior = BadPongBehavior::kBad;
    ProtocolParams protocol;
    protocol.query_probe = Policy::kMR;
    protocol.cache_replacement = Replacement::kLR;
    protocol.adaptive_ping.enabled = true;
    protocol.do_backoff = true;
    SimulationOptions options;
    options.seed = 77;
    options.warmup = 150.0;
    options.measure = 600.0;
    options.scheduler = scheduler;
    GuessSimulation sim(system, protocol, options);
    return sim.run();
  };
  auto heap = run(sim::Scheduler::kHeap);
  auto calendar = run(sim::Scheduler::kCalendar);
  testsupport::expect_identical(heap, calendar);
}

// LossyTransport schedules real timeout/retry/delivery events, so it is the
// sharpest probe of scheduler equivalence: both backends must drain the
// fault-injected event stream in the identical order.
TEST(Determinism, LossyTransportHeapAndCalendarBitwiseIdentical) {
  auto run = [](sim::Scheduler scheduler) {
    SystemParams system;
    system.network_size = 150;
    system.lifespan_multiplier = 0.5;
    system.content.catalog_size = 400;
    system.content.query_universe = 500;
    TransportParams transport = TransportParams::lossy(0.1);
    transport.max_retries = 2;
    transport.retry_backoff = 0.5;
    transport.latency_distribution = LatencyDistribution::kExponential;
    auto config = SimulationConfig()
                      .system(system)
                      .transport(transport)
                      .seed(77)
                      .warmup(150.0)
                      .measure(600.0)
                      .scheduler(scheduler);
    GuessSimulation sim(config);
    return sim.run();
  };
  auto heap = run(sim::Scheduler::kHeap);
  auto calendar = run(sim::Scheduler::kCalendar);
  testsupport::expect_identical(heap, calendar);
  EXPECT_GT(heap.transport.timeouts, 0u);  // the faults actually fired
}

// run_seeds (which now dispatches replications onto a worker pool) must be
// indistinguishable from n completely independent single-seed simulations,
// entry for entry — the contract that makes the parallel path safe to use
// for every figure and table in the paper reproduction.
TEST(Determinism, RunSeedsEqualsIndependentRuns) {
  SystemParams system;
  system.network_size = 150;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  ProtocolParams protocol;
  SimulationOptions options;
  options.seed = 99;
  options.warmup = 120.0;
  options.measure = 480.0;
  options.threads = 0;  // auto: exercises the default (parallel) path

  const int kSeeds = 4;
  auto sweep = run_seeds(system, protocol, options, kSeeds);
  ASSERT_EQ(sweep.size(), static_cast<std::size_t>(kSeeds));
  for (int i = 0; i < kSeeds; ++i) {
    SCOPED_TRACE("seed index " + std::to_string(i));
    SimulationOptions one = options;
    one.seed = options.seed + static_cast<std::uint64_t>(i);
    GuessSimulation sim(system, protocol, one);
    auto independent = sim.run();
    testsupport::expect_identical(sweep[static_cast<std::size_t>(i)],
                                  independent);
  }
}

}  // namespace
}  // namespace guess
