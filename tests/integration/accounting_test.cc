// Cross-metric accounting invariants: the per-class splits, probe
// counters and load samples must reconcile exactly with the global
// aggregates for any configuration.
#include <gtest/gtest.h>

#include "guess/simulation.h"

namespace guess {
namespace {

SimulationResults run(SystemParams system, std::uint64_t seed = 42) {
  system.content.catalog_size = 500;
  system.content.query_universe = 625;
  SimulationOptions options;
  options.seed = seed;
  options.warmup = 150.0;
  options.measure = 700.0;
  GuessSimulation sim(SimulationConfig().system(system).protocol(ProtocolParams{}).options(options));
  return sim.run();
}

void check_reconciliation(const SimulationResults& results) {
  EXPECT_EQ(results.queries_completed,
            results.honest.queries_completed +
                results.selfish.queries_completed);
  EXPECT_EQ(results.queries_satisfied,
            results.honest.queries_satisfied +
                results.selfish.queries_satisfied);
  EXPECT_EQ(results.probes.good,
            results.honest.probes.good + results.selfish.probes.good);
  EXPECT_EQ(results.probes.dead,
            results.honest.probes.dead + results.selfish.probes.dead);
  EXPECT_EQ(results.probes.refused,
            results.honest.probes.refused + results.selfish.probes.refused);
  EXPECT_EQ(results.response_time.count(),
            results.honest.response_time.count() +
                results.selfish.response_time.count());
  EXPECT_GE(results.queries_completed, results.queries_satisfied);
  EXPECT_GE(results.pings_sent, results.pings_to_dead);
}

TEST(Accounting, AllHonestPopulation) {
  SystemParams system;
  system.network_size = 200;
  auto results = run(system);
  check_reconciliation(results);
  EXPECT_EQ(results.selfish.queries_completed, 0u);
  // One load sample per honest peer that existed during measurement:
  // everyone alive at collection plus the corpses.
  EXPECT_GE(results.peer_loads.size(), 200u);
  EXPECT_LE(results.peer_loads.size(), 200u + results.deaths);
}

TEST(Accounting, MixedSelfishPopulation) {
  SystemParams system;
  system.network_size = 200;
  system.percent_selfish_peers = 25.0;
  auto results = run(system);
  check_reconciliation(results);
  EXPECT_GT(results.selfish.queries_completed, 0u);
  EXPECT_GT(results.honest.queries_completed, 0u);
}

TEST(Accounting, MaliciousPeersExcludedFromLoadsAndQueries) {
  SystemParams system;
  system.network_size = 200;
  system.percent_bad_peers = 20.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  auto results = run(system);
  check_reconciliation(results);
  // Attackers issue no queries and contribute no load samples: at most the
  // honest 80% (plus honest corpses) appear.
  EXPECT_LE(results.peer_loads.size(), 160u + results.deaths);
  EXPECT_GE(results.peer_loads.size(), 160u);
}

TEST(Accounting, SatisfiedResponseTimesOnly) {
  SystemParams system;
  system.network_size = 200;
  auto results = run(system);
  EXPECT_EQ(results.response_time.count(), results.queries_satisfied);
}

}  // namespace
}  // namespace guess
