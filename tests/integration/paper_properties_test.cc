// Paper-property tests: each test pins one qualitative claim from the
// evaluation section at reduced scale. The bench harnesses reproduce the
// full tables/figures; these tests keep the shapes from regressing.
#include <gtest/gtest.h>

#include "analysis/load_analysis.h"
#include "baseline/fixed_extent.h"
#include "baseline/iterative_deepening.h"
#include "experiments/harness.h"
#include "guess/simulation.h"

namespace guess {
namespace {

SystemParams base_system(std::size_t n = 250) {
  SystemParams system;
  system.network_size = n;
  system.content.catalog_size = 800;
  system.content.query_universe = 1000;
  return system;
}

SimulationOptions quick(std::uint64_t seed = 42) {
  SimulationOptions options;
  options.seed = seed;
  options.warmup = 150.0;
  options.measure = 800.0;
  return options;
}

SimulationResults run_combo(const char* name, SystemParams system,
                            SimulationOptions options = quick(),
                            ProtocolParams base = ProtocolParams{}) {
  auto combo = experiments::PolicyCombo::from_name(name);
  GuessSimulation sim(SimulationConfig().system(system).protocol(combo.apply(base)).options(options));
  return sim.run();
}

// The poisoning dynamics depend on the cache:network ratio and the poison
// inflow rate, so the robustness tests run the paper's actual configuration
// (NetworkSize=1000, CacheSize=100) with a short measurement window rather
// than a shrunken network that would distort the attack.
SystemParams attack_system(BadPongBehavior behavior) {
  SystemParams system;  // paper defaults, N=1000
  system.percent_bad_peers = 20.0;
  system.bad_pong_behavior = behavior;
  return system;
}

SimulationOptions attack_options() {
  SimulationOptions options;
  options.seed = 42;
  options.warmup = 200.0;
  options.measure = 700.0;
  return options;
}

// §6.2 / Figure 10-11: MFS pong + LFS replacement beat Random by a large
// factor ("almost an order of magnitude").
TEST(PaperProperties, MfsComboFarCheaperThanRandom) {
  auto random = run_combo("Ran", base_system());
  auto mfs = run_combo("MFS", base_system());
  EXPECT_LT(mfs.probes_per_query() * 3.0, random.probes_per_query());
}

// §6.4: MR beats MR* which beats Random when nobody misbehaves.
TEST(PaperProperties, EfficiencyOrderWithoutAttackers) {
  auto random = run_combo("Ran", base_system());
  auto mr = run_combo("MR", base_system());
  auto mr_star = run_combo("MR*", base_system());
  EXPECT_LT(mr.probes_per_query(), mr_star.probes_per_query());
  EXPECT_LT(mr_star.probes_per_query(), random.probes_per_query());
}

// §6.3 / Figure 13: efficient policies concentrate load.
TEST(PaperProperties, MfsConcentratesLoad) {
  auto random = run_combo("Ran", base_system());
  auto mfs = run_combo("MFS", base_system());
  auto gini = [](const SimulationResults& r) {
    return analysis::gini_coefficient(r.peer_loads.values());
  };
  EXPECT_GT(gini(mfs), gini(random) + 0.15);
}

// §6.4 / Figures 16-18 (no collusion): MFS collapses, MR stays healthy.
TEST(PaperProperties, DeadPoisoningBreaksMfsNotMr) {
  SystemParams attacked = attack_system(BadPongBehavior::kDead);
  auto mfs = run_combo("MFS", attacked, attack_options());
  auto mr = run_combo("MR", attacked, attack_options());
  EXPECT_GT(mfs.unsatisfied_rate(), 0.5);
  EXPECT_LT(mr.unsatisfied_rate(), 0.35);
  EXPECT_LT(mfs.cache_health.good_entries, mr.cache_health.good_entries);
}

// §6.4 / Figures 19-21 (collusion): MR also collapses; MR* and Random
// stay robust.
TEST(PaperProperties, CollusionBreaksMrButNotMrStar) {
  SystemParams attacked = attack_system(BadPongBehavior::kBad);
  auto mr = run_combo("MR", attacked, attack_options());
  auto mfs = run_combo("MFS", attacked, attack_options());
  auto mr_star = run_combo("MR*", attacked, attack_options());
  auto random = run_combo("Ran", attacked, attack_options());
  EXPECT_GT(mr.unsatisfied_rate(), 0.8);
  EXPECT_GT(mfs.unsatisfied_rate(), 0.8);
  EXPECT_LT(mr_star.unsatisfied_rate(), 0.3);
  // Random stays usable while the trusting policies collapse. (Our Random
  // degrades somewhat more at 20% collusion than the paper's curves — the
  // always-insert Random replacement ingests poison at full rate — but the
  // robustness ordering is the paper's; see EXPERIMENTS.md.)
  EXPECT_LT(random.unsatisfied_rate(), 0.6);
  EXPECT_LT(random.unsatisfied_rate() + 0.2, mr.unsatisfied_rate());
  EXPECT_LT(mr_star.unsatisfied_rate(), random.unsatisfied_rate());
  // MR* remains more efficient than Random even under attack.
  EXPECT_LT(mr_star.probes_per_query(), random.probes_per_query());
}

// §6.1 / Figure 6: longer ping intervals fragment the overlay; short ones
// keep it connected.
TEST(PaperProperties, PingIntervalGovernsConnectivity) {
  auto run_connectivity = [](double interval) {
    SystemParams system = base_system();
    system.lifespan_multiplier = 0.2;
    ProtocolParams protocol;
    protocol.cache_size = 20;
    protocol.ping_interval = interval;
    SimulationOptions options = quick();
    options.enable_queries = false;
    options.sample_connectivity = true;
    options.measure = 1500.0;
    GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(options));
    return sim.run().largest_component.mean();
  };
  double tight = run_connectivity(10.0);
  double loose = run_connectivity(500.0);
  EXPECT_GT(tight, loose);
  EXPECT_GT(tight, 0.9 * 250.0);  // short interval: essentially connected
}

// §6.1 / Table 3: bigger caches hold a smaller fraction of live entries
// but more live entries in absolute terms.
TEST(PaperProperties, CacheSizeLivenessTradeoff) {
  auto run_cache = [](std::size_t cache_size) {
    SystemParams system = base_system();
    system.lifespan_multiplier = 0.2;
    ProtocolParams protocol;
    protocol.cache_size = cache_size;
    GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(quick()));
    return sim.run().cache_health;
  };
  auto small = run_cache(10);
  auto large = run_cache(120);
  EXPECT_GT(small.fraction_live, large.fraction_live);
  EXPECT_LT(small.absolute_live, large.absolute_live);
}

// §6.2 / Figure 8: flexible extent (GUESS) is far cheaper than fixed extent
// at comparable satisfaction; iterative deepening lands in between.
TEST(PaperProperties, FlexibleExtentBeatsFixedExtent) {
  SystemParams system = base_system();
  auto guess_results = run_combo("Ran", system);

  content::ContentModel model(system.content);
  Rng rng(3);
  baseline::StaticPopulation population(model, system.network_size, rng);
  // Find the fixed extent matching GUESS's unsatisfaction rate.
  double target = guess_results.unsatisfied_rate();
  std::size_t needed = system.network_size;
  for (std::size_t extent : {25u, 50u, 100u, 150u, 200u, 250u}) {
    auto point =
        evaluate_fixed_extent(population, model, extent, 4000, 1, rng);
    if (point.unsatisfied_rate <= target + 0.01) {
      needed = extent;
      break;
    }
  }
  EXPECT_GT(static_cast<double>(needed),
            guess_results.probes_per_query() * 1.3);

  auto deepening = baseline::evaluate_iterative_deepening(
      population, model, baseline::default_schedule(system.network_size),
      4000, 1, rng);
  EXPECT_LT(deepening.avg_cost, static_cast<double>(system.network_size));
}

// §6.3 / Figure 15: capacity limits barely move satisfaction (the implicit
// throttling redistributes load).
TEST(PaperProperties, SatisfactionRobustToCapacityLimits) {
  auto run_capacity = [](std::uint32_t cap) {
    SystemParams system = base_system();
    system.max_probes_per_second = cap;
    auto combo = experiments::PolicyCombo::from_name("MR");
    GuessSimulation sim(SimulationConfig().system(system).protocol(combo.apply(ProtocolParams{})).options(quick()));
    return sim.run();
  };
  auto ample = run_capacity(50);
  auto tight = run_capacity(2);
  EXPECT_LT(std::abs(tight.unsatisfied_rate() - ample.unsatisfied_rate()),
            0.12);
}

}  // namespace
}  // namespace guess
