#include "onehop/one_hop_dht.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess::onehop {
namespace {

OneHopParams small_params(std::size_t n = 200) {
  OneHopParams params;
  params.network_size = n;
  return params;
}

struct Fixture {
  explicit Fixture(OneHopParams params = small_params(),
                   std::uint64_t seed = 7)
      : dht(params, simulator, Rng(seed)) {
    dht.initialize();
  }
  sim::Simulator simulator;
  OneHopDht dht;
};

TEST(OneHopDht, InitializeSynchronizesViews) {
  Fixture f;
  EXPECT_EQ(f.dht.alive_count(), 200u);
  EXPECT_EQ(f.dht.view_size(), 200u);
}

TEST(OneHopDht, NoChurnMeansAllLookupsAreOneHop) {
  OneHopParams params = small_params();
  params.lifespan_multiplier = 10000.0;  // effectively no churn
  Fixture f(params);
  f.dht.begin_measurement();
  f.simulator.run_until(3600.0);
  auto results = f.dht.results();
  ASSERT_GT(results.lookups, 100u);
  EXPECT_EQ(results.one_hop, results.lookups);
  EXPECT_EQ(results.timeouts, 0u);
  EXPECT_EQ(results.corrective_hops, 0u);
  EXPECT_DOUBLE_EQ(results.mean_probes(), 1.0);
}

TEST(OneHopDht, ChurnCausesTimeoutsAndCorrectiveHops) {
  OneHopParams params = small_params();
  params.lifespan_multiplier = 0.02;       // heavy churn
  params.dissemination_delay = 120.0;      // very stale views
  Fixture f(params);
  f.dht.begin_measurement();
  f.simulator.run_until(3600.0);
  auto results = f.dht.results();
  ASSERT_GT(results.lookups, 100u);
  EXPECT_GT(results.timeouts + results.corrective_hops, 0u);
  EXPECT_LT(results.one_hop_fraction(), 1.0);
  EXPECT_GT(results.mean_probes(), 1.0);
  EXPECT_GT(results.membership_events, 100u);
}

TEST(OneHopDht, FasterDisseminationImprovesOneHopFraction) {
  auto run = [](double delay) {
    OneHopParams params = small_params();
    params.lifespan_multiplier = 0.05;
    params.dissemination_delay = delay;
    Fixture f(params);
    f.dht.begin_measurement();
    f.simulator.run_until(3600.0);
    return f.dht.results();
  };
  auto fresh = run(5.0);
  auto stale = run(300.0);
  EXPECT_GT(fresh.one_hop_fraction(), stale.one_hop_fraction());
  EXPECT_LT(fresh.mean_probes(), stale.mean_probes());
}

TEST(OneHopDht, PopulationStaysConstant) {
  OneHopParams params = small_params();
  params.lifespan_multiplier = 0.05;
  Fixture f(params);
  f.simulator.run_until(1800.0);
  EXPECT_EQ(f.dht.alive_count(), 200u);
}

TEST(OneHopDht, MaintenanceScalesWithChurn) {
  auto run = [](double multiplier) {
    OneHopParams params = small_params();
    params.lifespan_multiplier = multiplier;
    Fixture f(params);
    f.dht.begin_measurement();
    f.simulator.run_until(1800.0);
    return f.dht.results();
  };
  auto stable = run(1.0);
  auto churny = run(0.1);
  EXPECT_GT(churny.maintenance_msgs_per_peer_per_sec(1800.0),
            stable.maintenance_msgs_per_peer_per_sec(1800.0) * 3.0);
}

TEST(OneHopDht, ManualLookupCountsOnlyWhenMeasuring) {
  Fixture f;
  f.dht.lookup_random_key();  // pre-measurement: not counted
  EXPECT_EQ(f.dht.results().lookups, 0u);
  f.dht.begin_measurement();
  f.dht.lookup_random_key();
  EXPECT_EQ(f.dht.results().lookups, 1u);
}

TEST(OneHopDht, ParameterValidation) {
  sim::Simulator simulator;
  OneHopParams params;
  params.network_size = 1;
  EXPECT_THROW(OneHopDht(params, simulator, Rng(1)), CheckError);
  params = OneHopParams{};
  params.dissemination_delay = -1.0;
  EXPECT_THROW(OneHopDht(params, simulator, Rng(1)), CheckError);
}

TEST(OneHopDht, InitializeTwiceThrows) {
  Fixture f;
  EXPECT_THROW(f.dht.initialize(), CheckError);
}

}  // namespace
}  // namespace guess::onehop
