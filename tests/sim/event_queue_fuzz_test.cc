// Model-based fuzzing of the event queue: random schedules and
// cancellations must pop in exactly (time, insertion-order) order, for both
// the binary-heap and calendar-queue backends, and the two backends must
// agree event for event.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace guess::sim {
namespace {

using FuzzParam = std::tuple<Scheduler, int>;

class EventQueueFuzz : public ::testing::TestWithParam<FuzzParam> {
 protected:
  Scheduler scheduler() const { return std::get<0>(GetParam()); }
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(std::get<1>(GetParam()));
  }
};

TEST_P(EventQueueFuzz, PopsInTimeThenInsertionOrder) {
  Rng rng(seed());
  EventQueue queue(scheduler());

  struct Expected {
    Time at;
    int tag;
    bool cancelled = false;
  };
  std::vector<Expected> model;
  std::vector<EventHandle> handles;
  std::vector<int> fired;

  const int events = 500;
  for (int i = 0; i < events; ++i) {
    // Coarse times force plenty of ties.
    Time at = static_cast<Time>(rng.uniform_int(0, 40));
    model.push_back({at, i});
    handles.push_back(queue.schedule(at, [&fired, i]() {
      fired.push_back(i);
    }));
  }
  // Cancel a random third.
  for (int i = 0; i < events; ++i) {
    if (rng.bernoulli(0.33)) {
      handles[static_cast<std::size_t>(i)].cancel();
      model[static_cast<std::size_t>(i)].cancelled = true;
    }
  }

  // Expected firing order: stable sort by time (insertion order breaks
  // ties), cancelled events skipped.
  std::vector<Expected> expected = model;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     return a.at < b.at;
                   });

  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
  }

  std::vector<int> want;
  for (const Expected& e : expected) {
    if (!e.cancelled) want.push_back(e.tag);
  }
  EXPECT_EQ(fired, want);
}

// Interleaved schedule/cancel/pop against a naive reference "queue" (a flat
// vector scanned for its minimum). Every pop must return the exact event the
// reference predicts, so this exercises slot reuse, stale index entries, and
// (for the calendar) cursor advance and bucket resize mid-stream.
TEST_P(EventQueueFuzz, MatchesNaiveReferenceUnderRandomOps) {
  Rng rng(seed() * 7919 + 17);
  EventQueue queue(scheduler());

  struct RefEvent {
    Time at;
    std::uint64_t order;  // global schedule order = tie-break
    int tag;
  };
  std::vector<RefEvent> reference;  // live, uncancelled events only
  std::vector<std::pair<int, EventHandle>> live_handles;
  std::uint64_t order = 0;
  int next_tag = 0;
  Time clock = 0.0;
  std::vector<int> fired;

  for (int step = 0; step < 3000; ++step) {
    double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.5) {
      // Schedule. Mix short and long horizons so the calendar's window must
      // both walk and jump; coarse grid forces ties.
      Time at = clock + static_cast<Time>(rng.uniform_int(0, 60)) *
                            (rng.bernoulli(0.1) ? 50.0 : 0.5);
      int tag = next_tag++;
      auto handle = queue.schedule(at, [&fired, tag]() {
        fired.push_back(tag);
      });
      reference.push_back({at, order++, tag});
      live_handles.emplace_back(tag, handle);
    } else if (roll < 0.65) {
      // Cancel a random live event (if any).
      if (!live_handles.empty()) {
        std::size_t pick = rng.index(live_handles.size());
        int tag = live_handles[pick].first;
        live_handles[pick].second.cancel();
        live_handles.erase(live_handles.begin() +
                           static_cast<long>(pick));
        std::erase_if(reference,
                      [tag](const RefEvent& e) { return e.tag == tag; });
      }
    } else if (!queue.empty()) {
      // Pop: must match the reference's (time, order) minimum.
      auto min_it = std::min_element(
          reference.begin(), reference.end(),
          [](const RefEvent& a, const RefEvent& b) {
            if (a.at != b.at) return a.at < b.at;
            return a.order < b.order;
          });
      ASSERT_NE(min_it, reference.end());
      Time at = 0.0;
      std::size_t before = fired.size();
      queue.pop(at)();
      ASSERT_EQ(fired.size(), before + 1);
      EXPECT_EQ(fired.back(), min_it->tag);
      EXPECT_DOUBLE_EQ(at, min_it->at);
      clock = at;
      int tag = min_it->tag;
      reference.erase(min_it);
      std::erase_if(live_handles,
                    [tag](const auto& p) { return p.first == tag; });
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
  // Drain.
  while (!queue.empty()) {
    auto min_it = std::min_element(
        reference.begin(), reference.end(),
        [](const RefEvent& a, const RefEvent& b) {
          if (a.at != b.at) return a.at < b.at;
          return a.order < b.order;
        });
    Time at = 0.0;
    queue.pop(at)();
    EXPECT_EQ(fired.back(), min_it->tag);
    reference.erase(min_it);
  }
  EXPECT_TRUE(reference.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EventQueueFuzz,
    ::testing::Combine(::testing::Values(Scheduler::kHeap,
                                         Scheduler::kCalendar),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const auto& info) {
      return std::string(scheduler_name(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

class EventQueueInterleaved : public ::testing::TestWithParam<Scheduler> {};

TEST_P(EventQueueInterleaved, InterleavedScheduleAndPop) {
  // Schedule while popping: popped times must be non-decreasing relative to
  // the pop clock, and nothing is lost.
  Rng rng(7);
  EventQueue queue(GetParam());
  int scheduled = 0;
  int fired = 0;
  Time clock = 0.0;
  for (int round = 0; round < 200; ++round) {
    int burst = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < burst; ++i) {
      queue.schedule(clock + rng.uniform(0.0, 10.0), [&fired]() { ++fired; });
      ++scheduled;
    }
    int pops = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < pops && !queue.empty(); ++i) {
      Time at = 0.0;
      auto fn = queue.pop(at);
      ASSERT_GE(at + 1e-12, clock);
      clock = at;
      fn();
    }
  }
  while (!queue.empty()) {
    Time at = 0.0;
    auto fn = queue.pop(at);
    ASSERT_GE(at + 1e-12, clock);
    clock = at;
    fn();
  }
  EXPECT_EQ(fired, scheduled);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, EventQueueInterleaved,
                         ::testing::Values(Scheduler::kHeap,
                                           Scheduler::kCalendar),
                         [](const auto& info) {
                           return scheduler_name(info.param);
                         });

// The two backends must produce the identical pop sequence for the same
// random workload — the cross-scheduler determinism guarantee in miniature.
TEST(EventQueueEquivalence, HeapAndCalendarPopIdenticalSequences) {
  for (std::uint64_t seed = 11; seed < 16; ++seed) {
    EventQueue heap(Scheduler::kHeap);
    EventQueue calendar(Scheduler::kCalendar);
    std::vector<std::pair<Time, int>> heap_fired;
    std::vector<std::pair<Time, int>> cal_fired;

    // Drive both queues with the same op sequence from the same seed.
    auto drive = [](EventQueue& queue, std::uint64_t s,
                    std::vector<std::pair<Time, int>>& out) {
      Rng rng(s);
      std::vector<EventHandle> handles;
      Time clock = 0.0;
      int tag = 0;
      for (int step = 0; step < 2000; ++step) {
        double roll = rng.uniform(0.0, 1.0);
        if (roll < 0.55) {
          Time at = clock + static_cast<Time>(rng.uniform_int(0, 25)) *
                                (rng.bernoulli(0.05) ? 100.0 : 0.25);
          int t = tag++;
          Time scheduled_at = at;
          handles.push_back(queue.schedule(
              at, [&out, t, scheduled_at]() {
                out.emplace_back(scheduled_at, t);
              }));
        } else if (roll < 0.65) {
          if (!handles.empty()) handles[rng.index(handles.size())].cancel();
        } else if (!queue.empty()) {
          Time at = 0.0;
          queue.pop(at)();
          clock = at;
        }
      }
      while (!queue.empty()) {
        Time at = 0.0;
        queue.pop(at)();
      }
    };
    drive(heap, seed, heap_fired);
    drive(calendar, seed, cal_fired);
    EXPECT_EQ(heap_fired, cal_fired) << "seed " << seed;
  }
}

}  // namespace
}  // namespace guess::sim
