// Model-based fuzzing of the event queue: random schedules and
// cancellations must pop in exactly (time, insertion-order) order.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace guess::sim {
namespace {

class EventQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueFuzz, PopsInTimeThenInsertionOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  EventQueue queue;

  struct Expected {
    Time at;
    int tag;
    bool cancelled = false;
  };
  std::vector<Expected> model;
  std::vector<EventHandle> handles;
  std::vector<int> fired;

  const int events = 500;
  for (int i = 0; i < events; ++i) {
    // Coarse times force plenty of ties.
    Time at = static_cast<Time>(rng.uniform_int(0, 40));
    model.push_back({at, i});
    handles.push_back(queue.schedule(at, [&fired, i]() {
      fired.push_back(i);
    }));
  }
  // Cancel a random third.
  for (int i = 0; i < events; ++i) {
    if (rng.bernoulli(0.33)) {
      handles[static_cast<std::size_t>(i)].cancel();
      model[static_cast<std::size_t>(i)].cancelled = true;
    }
  }

  // Expected firing order: stable sort by time (insertion order breaks
  // ties), cancelled events skipped.
  std::vector<Expected> expected = model;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     return a.at < b.at;
                   });

  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
  }

  std::vector<int> want;
  for (const Expected& e : expected) {
    if (!e.cancelled) want.push_back(e.tag);
  }
  EXPECT_EQ(fired, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(EventQueueFuzz2, InterleavedScheduleAndPop) {
  // Schedule while popping: popped times must be non-decreasing relative to
  // the pop clock, and nothing is lost.
  Rng rng(7);
  EventQueue queue;
  int scheduled = 0;
  int fired = 0;
  Time clock = 0.0;
  for (int round = 0; round < 200; ++round) {
    int burst = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < burst; ++i) {
      queue.schedule(clock + rng.uniform(0.0, 10.0), [&fired]() { ++fired; });
      ++scheduled;
    }
    int pops = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < pops && !queue.empty(); ++i) {
      Time at = 0.0;
      auto fn = queue.pop(at);
      ASSERT_GE(at + 1e-12, clock);
      clock = at;
      fn();
    }
  }
  while (!queue.empty()) {
    Time at = 0.0;
    auto fn = queue.pop(at);
    ASSERT_GE(at + 1e-12, clock);
    clock = at;
    fn();
  }
  EXPECT_EQ(fired, scheduled);
}

}  // namespace
}  // namespace guess::sim
