#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <vector>

namespace guess::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  std::vector<Time> seen;
  sim.at(2.0, [&] { seen.push_back(sim.now()); });
  sim.after(1.0, [&] { seen.push_back(sim.now()); });
  sim.run_all();
  EXPECT_EQ(seen, (std::vector<Time>{1.0, 2.0}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(5.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(5.0);  // events exactly at the horizon fire
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(20.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<Time> ticks;
  std::function<void()> chain = [&]() {
    ticks.push_back(sim.now());
    if (ticks.size() < 5) sim.after(1.0, chain);
  };
  sim.after(1.0, chain);
  sim.run_until(100.0);
  EXPECT_EQ(ticks, (std::vector<Time>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.at(4.0, [] {}), CheckError);
  EXPECT_THROW(sim.after(-1.0, [] {}), CheckError);
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator sim;
  std::vector<Time> ticks;
  sim.every(2.0, 1.0, [&] { ticks.push_back(sim.now()); });
  sim.run_until(7.5);
  EXPECT_EQ(ticks, (std::vector<Time>{1.0, 3.0, 5.0, 7.0}));
}

TEST(Simulator, PeriodicCancelStopsFutureFirings) {
  Simulator sim;
  int count = 0;
  auto handle = sim.every(1.0, 1.0, [&] { ++count; });
  sim.run_until(3.5);
  EXPECT_EQ(count, 3);
  handle.cancel();
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCanCancelItselfFromCallback) {
  Simulator sim;
  int count = 0;
  EventHandle handle;
  handle = sim.every(1.0, 0.0, [&] {
    ++count;
    if (count == 2) handle.cancel();
  });
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, InvalidPeriodicParamsThrow) {
  Simulator sim;
  EXPECT_THROW(sim.every(0.0, 0.0, [] {}), CheckError);
  EXPECT_THROW(sim.every(-1.0, 0.0, [] {}), CheckError);
  EXPECT_THROW(sim.every(1.0, -0.5, [] {}), CheckError);
}

TEST(Simulator, RunUntilBackwardsThrows) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_THROW(sim.run_until(4.0), CheckError);
}

TEST(Simulator, PendingEventsCount) {
  Simulator sim;
  sim.at(1.0, [] {});
  sim.at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run_all();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsFiredCountsExecutedEvents) {
  Simulator sim;
  EXPECT_EQ(sim.events_fired(), 0u);
  sim.at(1.0, [] {});
  auto cancelled = sim.at(2.0, [] {});
  sim.at(3.0, [] {});
  cancelled.cancel();
  sim.run_all();
  EXPECT_EQ(sim.events_fired(), 2u);
}

TEST(Simulator, CalendarSchedulerRunsIdenticalSchedule) {
  // The scheduler backend is an implementation detail: the same program
  // must observe the same clock readings either way.
  auto trace = [](Scheduler scheduler) {
    Simulator sim(scheduler);
    EXPECT_EQ(sim.scheduler(), scheduler);
    std::vector<Time> ticks;
    sim.every(2.0, 0.5, [&] { ticks.push_back(sim.now()); });
    sim.at(3.0, [&] { ticks.push_back(-sim.now()); });
    auto dead = sim.at(4.0, [&] { ticks.push_back(99.0); });
    dead.cancel();
    sim.run_until(6.5);
    return ticks;
  };
  EXPECT_EQ(trace(Scheduler::kHeap), trace(Scheduler::kCalendar));
  EXPECT_EQ(trace(Scheduler::kHeap),
            (std::vector<Time>{0.5, 2.5, -3.0, 4.5, 6.5}));
}

}  // namespace
}  // namespace guess::sim
