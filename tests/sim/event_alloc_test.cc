// Proves the zero-allocation claim for the event core: once a queue has
// reached steady state (slab grown, calendar sized), scheduling, firing and
// cancelling events performs no heap allocation at all.
//
// Built as its own test binary because it replaces global operator new /
// delete with counting versions; keeping the override out of the main test
// binaries avoids skewing their (gtest-internal) allocation patterns.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting overrides. All variants funnel through malloc/free so the
// program behaves normally; only the counter is added. GCC flags free() in
// a replaced operator delete as a mismatch; it pairs with the malloc below.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace guess::sim {
namespace {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

// A fixed-size callable representative of the simulation's hot thunks.
struct Tick {
  std::uint64_t* counter;
  void operator()() const { ++*counter; }
};
static_assert(EventQueue::Callback::stores_inline<Tick>());

class EventAllocTest : public ::testing::TestWithParam<Scheduler> {};

TEST_P(EventAllocTest, SteadyStateScheduleAndPopIsAllocationFree) {
  EventQueue queue(GetParam());
  std::uint64_t ticks = 0;

  // Seed the steady-state population.
  constexpr int kPopulation = 256;
  Time now = 0.0;
  for (int i = 0; i < kPopulation; ++i) {
    queue.schedule(now + 1.0 + 0.01 * i, Tick{&ticks});
  }

  // A churn-like steady state: every pop reschedules, with a cancel/replace
  // mixed in every eighth round.
  EventHandle cancelable;
  auto run_rounds = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      queue.pop(now)();
      queue.schedule(now + 1.0, Tick{&ticks});
      if ((round & 7) == 0) {
        if (cancelable.pending()) cancelable.cancel();
        cancelable = queue.schedule(now + 2.0, Tick{&ticks});
      }
    }
  };

  // Warm up with the *same* loop: grows the slab, settles the calendar ring
  // size, and brings every vector (heap array / ring buckets) to its
  // steady-state high-water capacity, including a full ring rotation.
  run_rounds(10000);

  // Measure. No EXPECTs inside the loop (gtest assertions can allocate).
  std::uint64_t before = allocation_count();
  run_rounds(10000);
  std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule/pop/cancel allocated";
  EXPECT_GT(ticks, 0u);
}

TEST_P(EventAllocTest, SteadyStatePeriodicFiringIsAllocationFree) {
  EventQueue queue(GetParam());
  std::uint64_t ticks = 0;
  for (int i = 0; i < 64; ++i) {
    queue.schedule_periodic(1.0 + 0.1 * i, 1.0, Tick{&ticks});
  }
  Time now = 0.0;
  // Warm up: enough firings to sweep the calendar's bucket ring more than
  // once (64 series x 1 firing per simulated second, 64-bucket ring), so
  // every ring bucket has reached its steady-state capacity.
  for (int round = 0; round < 6000; ++round) queue.pop(now)();

  std::uint64_t before = allocation_count();
  for (int round = 0; round < 10000; ++round) queue.pop(now)();
  std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u) << "periodic re-arm allocated";
  EXPECT_EQ(ticks, 6000u + 10000u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, EventAllocTest,
                         ::testing::Values(Scheduler::kHeap,
                                           Scheduler::kCalendar),
                         [](const auto& info) {
                           return scheduler_name(info.param);
                         });

// Sanity: the counter actually counts. Calls the allocation function
// directly — unlike a new-expression, a direct call cannot be elided.
TEST(EventAllocCounter, CountsHeapAllocations) {
  std::uint64_t before = allocation_count();
  void* p = ::operator new(32);
  ::operator delete(p);
  EXPECT_EQ(allocation_count(), before + 1);
}

}  // namespace
}  // namespace guess::sim
