// ArrivalProcess: the open-loop arrival stream (DESIGN.md §13.1).
#include "sim/arrival.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace guess::sim {
namespace {

TEST(ArrivalNames, RoundTrip) {
  EXPECT_EQ(parse_arrival_mode(arrival_mode_name(ArrivalMode::kClosed)),
            ArrivalMode::kClosed);
  EXPECT_EQ(parse_arrival_mode(arrival_mode_name(ArrivalMode::kOpen)),
            ArrivalMode::kOpen);
  EXPECT_THROW(parse_arrival_mode("ajar"), CheckError);
  EXPECT_EQ(parse_arrival_dist(arrival_dist_name(ArrivalDist::kPoisson)),
            ArrivalDist::kPoisson);
  EXPECT_EQ(parse_arrival_dist(arrival_dist_name(ArrivalDist::kUniform)),
            ArrivalDist::kUniform);
  EXPECT_THROW(parse_arrival_dist("pareto"), CheckError);
}

TEST(ArrivalProcess, UniformGapsAreExact) {
  Simulator simulator;
  ArrivalProcess arrivals(simulator, ArrivalDist::kUniform, 4.0, Rng(1));
  std::vector<Time> times;
  arrivals.start([&] { times.push_back(simulator.now()); });
  simulator.run_until(2.0);
  // Gaps of exactly 1/rate starting one gap in: 0.25, 0.50, ..., 2.00 —
  // whether the arrival at exactly t=2.0 fires depends on the horizon
  // comparison, so check the first seven.
  ASSERT_GE(times.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(times[i], 0.25 * static_cast<double>(i + 1));
  }
  EXPECT_EQ(arrivals.arrivals(), times.size());
}

TEST(ArrivalProcess, PoissonRateIsApproximatelyHonored) {
  Simulator simulator;
  ArrivalProcess arrivals(simulator, ArrivalDist::kPoisson, 10.0, Rng(2));
  std::uint64_t count = 0;
  arrivals.start([&] { ++count; });
  simulator.run_until(1000.0);
  // ~10000 expected; 5 sigma is ~±500.
  EXPECT_GT(count, 9500u);
  EXPECT_LT(count, 10500u);
}

TEST(ArrivalProcess, SameSeedSameStream) {
  auto trace = [](std::uint64_t seed) {
    Simulator simulator;
    ArrivalProcess arrivals(simulator, ArrivalDist::kPoisson, 5.0, Rng(seed));
    std::vector<Time> times;
    arrivals.start([&] { times.push_back(simulator.now()); });
    simulator.run_until(50.0);
    return times;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(ArrivalProcess, RejectsNonPositiveRate) {
  Simulator simulator;
  EXPECT_THROW(
      ArrivalProcess(simulator, ArrivalDist::kPoisson, 0.0, Rng(1)),
      CheckError);
  EXPECT_THROW(
      ArrivalProcess(simulator, ArrivalDist::kUniform, -1.0, Rng(1)),
      CheckError);
}

}  // namespace
}  // namespace guess::sim
