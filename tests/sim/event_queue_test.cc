#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <string>
#include <vector>

namespace guess::sim {
namespace {

// Every behavioural contract must hold for both backends, so the whole
// suite runs once per scheduler.
class EventQueueTest : public ::testing::TestWithParam<Scheduler> {
 protected:
  EventQueue queue{GetParam()};
};

TEST_P(EventQueueTest, PopsInTimeOrder) {
  std::vector<int> fired;
  queue.schedule(3.0, [&] { fired.push_back(3); });
  queue.schedule(1.0, [&] { fired.push_back(1); });
  queue.schedule(2.0, [&] { fired.push_back(2); });
  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, EqualTimesFireInScheduleOrder) {
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
    EXPECT_DOUBLE_EQ(at, 5.0);
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST_P(EventQueueTest, CancelledEventsAreSkipped) {
  bool fired = false;
  auto handle = queue.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST_P(EventQueueTest, CancelOneAmongMany) {
  std::vector<int> fired;
  queue.schedule(1.0, [&] { fired.push_back(1); });
  auto handle = queue.schedule(2.0, [&] { fired.push_back(2); });
  queue.schedule(3.0, [&] { fired.push_back(3); });
  handle.cancel();
  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST_P(EventQueueTest, CancelIsIdempotentAndSafeAfterFire) {
  auto handle = queue.schedule(1.0, [] {});
  Time at = 0.0;
  queue.pop(at)();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op
  handle.cancel();
}

TEST_P(EventQueueTest, NextTimePeeksEarliestPending) {
  auto early = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 1.0);
  early.cancel();
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST_P(EventQueueTest, SizeTracksLiveEntries) {
  EXPECT_EQ(queue.size(), 0u);
  auto a = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  a.cancel();
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(!queue.empty());
  Time at = 0.0;
  queue.pop(at)();
  EXPECT_EQ(queue.size(), 0u);
}

TEST_P(EventQueueTest, PopOnEmptyThrows) {
  Time at = 0.0;
  EXPECT_THROW(queue.pop(at), CheckError);
  EXPECT_THROW(queue.next_time(), CheckError);
}

TEST_P(EventQueueTest, NullCallbackRejected) {
  EXPECT_THROW(queue.schedule(1.0, EventQueue::Callback{}), CheckError);
}

// --- Generation-handle semantics: a slot is recycled after fire/cancel, and
// handles to its previous occupant must stay inert. ---

TEST_P(EventQueueTest, StaleHandleAfterSlotReuseIsInert) {
  bool first_fired = false;
  bool second_fired = false;
  auto stale = queue.schedule(1.0, [&] { first_fired = true; });
  stale.cancel();
  // The freed slot is reused by the next schedule (LIFO free list).
  auto fresh = queue.schedule(2.0, [&] { second_fired = true; });
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  // Cancelling the stale handle must not disturb the new occupant.
  stale.cancel();
  EXPECT_TRUE(fresh.pending());
  Time at = 0.0;
  queue.pop(at)();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
  EXPECT_TRUE(queue.empty());
}

TEST_P(EventQueueTest, PendingIsCorrectAcrossSlotReuse) {
  auto a = queue.schedule(1.0, [] {});
  Time at = 0.0;
  queue.pop(at)();
  EXPECT_FALSE(a.pending());
  // Reuses a's slot with a bumped generation.
  auto b = queue.schedule(2.0, [] {});
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  b.cancel();
  EXPECT_FALSE(b.pending());
  auto c = queue.schedule(3.0, [] {});
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  EXPECT_TRUE(c.pending());
}

TEST_P(EventQueueTest, ManyReusesNeverResurrectOldHandles) {
  std::vector<EventHandle> old;
  for (int round = 0; round < 50; ++round) {
    auto h = queue.schedule(static_cast<Time>(round), [] {});
    for (const auto& o : old) EXPECT_FALSE(o.pending());
    EXPECT_TRUE(h.pending());
    h.cancel();
    old.push_back(h);
  }
  EXPECT_TRUE(queue.empty());
}

// --- Periodic events are queue-native: the slot persists across firings. ---

TEST_P(EventQueueTest, PeriodicRefiresUntilCancelled) {
  int count = 0;
  auto handle = queue.schedule_periodic(1.0, 2.0, [&] { ++count; });
  std::vector<Time> times;
  for (int i = 0; i < 4; ++i) {
    Time at = 0.0;
    queue.pop(at)();
    times.push_back(at);
    EXPECT_TRUE(handle.pending());
  }
  EXPECT_EQ(count, 4);
  EXPECT_EQ(times, (std::vector<Time>{1.0, 3.0, 5.0, 7.0}));
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(queue.empty());
}

TEST_P(EventQueueTest, PeriodicCanCancelItselfFromCallback) {
  int count = 0;
  EventHandle handle;
  handle = queue.schedule_periodic(1.0, 1.0, [&] {
    if (++count == 3) handle.cancel();
  });
  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
  }
  EXPECT_EQ(count, 3);
}

TEST_P(EventQueueTest, PeriodicInterleavesWithOneShots) {
  std::vector<std::string> fired;
  auto p = queue.schedule_periodic(1.0, 2.0, [&] { fired.push_back("p"); });
  queue.schedule(2.0, [&] { fired.push_back("a"); });
  queue.schedule(4.0, [&] { fired.push_back("b"); });
  for (int i = 0; i < 5; ++i) {
    Time at = 0.0;
    queue.pop(at)();
  }
  p.cancel();
  EXPECT_EQ(fired,
            (std::vector<std::string>{"p", "a", "p", "b", "p"}));
  EXPECT_TRUE(queue.empty());
}

INSTANTIATE_TEST_SUITE_P(Schedulers, EventQueueTest,
                         ::testing::Values(Scheduler::kHeap,
                                           Scheduler::kCalendar),
                         [](const auto& info) {
                           return scheduler_name(info.param);
                         });

TEST(EventQueueScheduler, ParseRoundTrips) {
  EXPECT_EQ(parse_scheduler("heap"), Scheduler::kHeap);
  EXPECT_EQ(parse_scheduler("calendar"), Scheduler::kCalendar);
  EXPECT_STREQ(scheduler_name(Scheduler::kHeap), "heap");
  EXPECT_STREQ(scheduler_name(Scheduler::kCalendar), "calendar");
  EXPECT_THROW(parse_scheduler("fifo"), CheckError);
}

TEST(EventQueueHandle, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();
}

}  // namespace
}  // namespace guess::sim
