#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <vector>

namespace guess::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(3.0, [&] { fired.push_back(3); });
  queue.schedule(1.0, [&] { fired.push_back(1); });
  queue.schedule(2.0, [&] { fired.push_back(2); });
  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
    EXPECT_DOUBLE_EQ(at, 5.0);
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue queue;
  bool fired = false;
  auto handle = queue.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOneAmongMany) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(1.0, [&] { fired.push_back(1); });
  auto handle = queue.schedule(2.0, [&] { fired.push_back(2); });
  queue.schedule(3.0, [&] { fired.push_back(3); });
  handle.cancel();
  while (!queue.empty()) {
    Time at = 0.0;
    queue.pop(at)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue queue;
  auto handle = queue.schedule(1.0, [] {});
  Time at = 0.0;
  queue.pop(at)();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op
  handle.cancel();
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();
}

TEST(EventQueue, NextTimePeeksEarliestPending) {
  EventQueue queue;
  auto early = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 1.0);
  early.cancel();
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST(EventQueue, SizeTracksLiveEntries) {
  EventQueue queue;
  EXPECT_EQ(queue.size(), 0u);
  auto a = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  a.cancel();
  // Lazy drop: surfaces through empty()/pop; size is an upper bound.
  EXPECT_TRUE(!queue.empty());
  Time at = 0.0;
  queue.pop(at)();
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue queue;
  Time at = 0.0;
  EXPECT_THROW(queue.pop(at), CheckError);
  EXPECT_THROW(queue.next_time(), CheckError);
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue queue;
  EXPECT_THROW(queue.schedule(1.0, EventQueue::Callback{}), CheckError);
}

}  // namespace
}  // namespace guess::sim
