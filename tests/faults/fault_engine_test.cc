// FaultEngine: a Scenario becomes events on the slab queue. Onsets fire at
// their exact times, window actions schedule a matching clear at onset +
// duration, equal-time actions apply in scenario order, and the resulting
// host-call sequence is identical under the heap and calendar schedulers.
#include "faults/fault_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "faults/fault_host.h"
#include "faults/scenario.h"
#include "sim/simulator.h"

namespace guess::faults {
namespace {

/// Records every FaultHost call as "(time) name(args)".
class RecordingHost : public FaultHost {
 public:
  explicit RecordingHost(sim::Simulator& simulator) : simulator_(simulator) {}

  void fault_mass_kill(double fraction) override {
    record("kill(" + std::to_string(fraction) + ")");
  }
  void fault_mass_join(std::size_t count) override {
    record("join(" + std::to_string(count) + ")");
  }
  void fault_set_partition(int ways) override {
    record("partition(" + std::to_string(ways) + ")");
  }
  void fault_clear_partition() override { record("heal()"); }
  void fault_set_degradation(double extra_loss,
                             double latency_factor) override {
    record("degrade(" + std::to_string(extra_loss) + "," +
           std::to_string(latency_factor) + ")");
  }
  void fault_clear_degradation() override { record("clear_degrade()"); }
  void fault_set_poisoning(bool active) override {
    record(active ? "poison(on)" : "poison(off)");
  }
  void fault_start_attack(AttackKind kind, double fraction) override {
    record(std::string("attack(") + attack_kind_name(kind) + "," +
           std::to_string(fraction) + ")");
  }
  void fault_stop_attack(AttackKind kind) override {
    record(std::string("stop_attack(") + attack_kind_name(kind) + ")");
  }

  const std::vector<std::pair<sim::Time, std::string>>& calls() const {
    return calls_;
  }

 private:
  void record(std::string call) {
    calls_.emplace_back(simulator_.now(), std::move(call));
  }

  sim::Simulator& simulator_;
  std::vector<std::pair<sim::Time, std::string>> calls_;
};

TEST(FaultEngine, OnsetsAndWindowEndsFireAtExactTimes) {
  sim::Simulator simulator;
  RecordingHost host(simulator);
  Scenario scenario = Scenario::parse(
      "at 100 kill 0.25; at 200 partition 2 for 50; "
      "at 300 degrade loss=0.5 latency=2 for 10; at 400 join 7; "
      "at 500 poison off");
  FaultEngine engine(scenario, simulator, host);
  engine.schedule();
  simulator.run_until(1000.0);

  const std::vector<std::pair<sim::Time, std::string>> want = {
      {100.0, "kill(" + std::to_string(0.25) + ")"},
      {200.0, "partition(2)"},
      {250.0, "heal()"},
      {300.0,
       "degrade(" + std::to_string(0.5) + "," + std::to_string(2.0) + ")"},
      {310.0, "clear_degrade()"},
      {400.0, "join(7)"},
      {500.0, "poison(off)"},
  };
  EXPECT_EQ(host.calls(), want);
  // fired() counts applied onsets, not window ends.
  EXPECT_EQ(engine.fired(), 5u);
}

// Actions sharing an onset time apply in scenario (statement) order — the
// (time, seq) guarantee of the event queue surfaced at the fault layer.
TEST(FaultEngine, EqualTimeActionsApplyInScenarioOrder) {
  sim::Simulator simulator;
  RecordingHost host(simulator);
  Scenario scenario =
      Scenario::parse("at 600 kill 0.3; at 600 partition 2 for 300; "
                      "at 600 poison off; at 600 join 10");
  FaultEngine engine(scenario, simulator, host);
  engine.schedule();
  simulator.run_until(600.0);  // events exactly at the horizon fire

  ASSERT_EQ(host.calls().size(), 4u);
  EXPECT_EQ(host.calls()[0].second,
            "kill(" + std::to_string(0.3) + ")");
  EXPECT_EQ(host.calls()[1].second, "partition(2)");
  EXPECT_EQ(host.calls()[2].second, "poison(off)");
  EXPECT_EQ(host.calls()[3].second, "join(10)");
  EXPECT_EQ(engine.fired(), 4u);
}

// Back-to-back windows of the same kind (end == next onset) are legal; at
// the shared instant the earlier window's clear must run before the later
// window's onset, or the heal would wipe out the fresh partition.
TEST(FaultEngine, BackToBackWindowsHealBeforeNextOnset) {
  sim::Simulator simulator;
  RecordingHost host(simulator);
  Scenario scenario = Scenario::parse(
      "at 100 partition 2 for 50; at 150 partition 3 for 50");
  FaultEngine engine(scenario, simulator, host);
  engine.schedule();
  simulator.run_until(1000.0);

  ASSERT_EQ(host.calls().size(), 4u);
  EXPECT_EQ(host.calls()[0].second, "partition(2)");
  // schedule() arms onset[0], end[0], onset[1], end[1] in that (seq) order,
  // so at the t=150 tie the first window's heal precedes the re-partition.
  EXPECT_EQ(host.calls()[1], (std::pair<sim::Time, std::string>{150.0,
                                                                "heal()"}));
  EXPECT_EQ(host.calls()[2].second, "partition(3)");
  EXPECT_EQ(host.calls()[3],
            (std::pair<sim::Time, std::string>{200.0, "heal()"}));
}

// Attack windows dispatch like any other windowed action: onset carries the
// kind and fraction, the end event stops exactly that kind. Different kinds
// may overlap in time.
TEST(FaultEngine, AttackWindowsStartAndStopPerKind) {
  sim::Simulator simulator;
  RecordingHost host(simulator);
  Scenario scenario = Scenario::parse(
      "at 100 attack eclipse frac=0.05 for 200; "
      "at 150 attack withhold frac=0.1 for 50; "
      "at 400 attack sybil frac=0.02 for 100; "
      "at 400 attack pong-flood frac=0.02 for 100");
  FaultEngine engine(scenario, simulator, host);
  engine.schedule();
  simulator.run_until(1000.0);

  const std::vector<std::pair<sim::Time, std::string>> want = {
      {100.0, "attack(eclipse," + std::to_string(0.05) + ")"},
      {150.0, "attack(withhold," + std::to_string(0.1) + ")"},
      {200.0, "stop_attack(withhold)"},
      {300.0, "stop_attack(eclipse)"},
      {400.0, "attack(sybil," + std::to_string(0.02) + ")"},
      {400.0, "attack(pong-flood," + std::to_string(0.02) + ")"},
      {500.0, "stop_attack(sybil)"},
      {500.0, "stop_attack(pong-flood)"},
  };
  EXPECT_EQ(host.calls(), want);
  EXPECT_EQ(engine.fired(), 4u);
}

TEST(FaultEngine, EmptyScenarioSchedulesNothing) {
  sim::Simulator simulator;
  RecordingHost host(simulator);
  FaultEngine engine(Scenario{}, simulator, host);
  engine.schedule();
  EXPECT_EQ(simulator.pending_events(), 0u);
  simulator.run_all();
  EXPECT_TRUE(host.calls().empty());
  EXPECT_EQ(engine.fired(), 0u);
}

TEST(FaultEngine, ScheduleTwiceThrows) {
  sim::Simulator simulator;
  RecordingHost host(simulator);
  FaultEngine engine(Scenario::parse("at 10 join 1"), simulator, host);
  engine.schedule();
  EXPECT_THROW(engine.schedule(), CheckError);
}

// The whole call sequence — times and arguments — must be identical under
// both scheduler backends.
TEST(FaultEngine, HeapAndCalendarProduceIdenticalCallSequences) {
  auto run = [](sim::Scheduler scheduler) {
    sim::Simulator simulator(scheduler);
    RecordingHost host(simulator);
    Scenario scenario = Scenario::parse(
        "at 600 kill 0.3; at 600 partition 2 for 300; "
        "at 1200 degrade loss=0.5 for 120; at 1800 join 2000; "
        "at 300 poison off; at 2100 poison on");
    FaultEngine engine(scenario, simulator, host);
    engine.schedule();
    simulator.run_until(5000.0);
    return host.calls();
  };
  EXPECT_EQ(run(sim::Scheduler::kHeap), run(sim::Scheduler::kCalendar));
}

}  // namespace
}  // namespace guess::faults
