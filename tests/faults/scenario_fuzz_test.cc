// Fuzzing the scenario parser: arbitrary byte soup and mutated valid specs
// must either parse into a scenario that passes validate() or throw
// CheckError — never crash, hang, or accept non-finite/out-of-range values.
// Mirrors the model-based fuzz style of sim/event_queue_fuzz_test.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "faults/scenario.h"

namespace guess::faults {
namespace {

/// Parse must be total: any input either yields a validated scenario or
/// throws CheckError. Returns true if it parsed.
bool parse_is_total(const std::string& spec) {
  try {
    Scenario s = Scenario::parse(spec);
    // Whatever parsed must satisfy the semantic invariants the rest of the
    // system relies on (the FaultEngine schedules end() events, the network
    // divides by fractions, ...).
    for (const FaultAction& a : s.actions()) {
      EXPECT_TRUE(std::isfinite(a.at)) << spec;
      EXPECT_GE(a.at, 0.0) << spec;
      switch (a.kind) {
        case FaultKind::kKill:
          EXPECT_GT(a.fraction, 0.0) << spec;
          EXPECT_LE(a.fraction, 1.0) << spec;
          break;
        case FaultKind::kJoin:
          EXPECT_GE(a.count, 1u) << spec;
          break;
        case FaultKind::kPartition:
          EXPECT_GE(a.ways, 2) << spec;
          break;
        case FaultKind::kDegrade:
          EXPECT_GE(a.loss, 0.0) << spec;
          EXPECT_LE(a.loss, 1.0) << spec;
          EXPECT_GE(a.latency_factor, 1.0) << spec;
          break;
        case FaultKind::kPoison:
          break;
        case FaultKind::kAttack:
          EXPECT_GT(a.fraction, 0.0) << spec;
          EXPECT_LE(a.fraction, 1.0) << spec;
          break;
      }
      if (a.windowed()) {
        EXPECT_GT(a.duration, 0.0) << spec;
      }
    }
    // And it must round-trip: describe() re-parses to the same spec.
    EXPECT_EQ(Scenario::parse(s.describe()).describe(), s.describe()) << spec;
    return true;
  } catch (const CheckError&) {
    return false;  // rejection is a valid outcome; anything else propagates
  }
}

TEST(ScenarioFuzz, RandomByteSoupNeverCrashes) {
  Rng rng(101);
  // Covers every verb including the attack clauses (eclipse, sybil,
  // pong-flood, withhold, frac=).
  const std::string alphabet =
      "at kiljonprdegs0123456789.=-+e;# \n\tfor_onffacybwh";
  for (int round = 0; round < 2000; ++round) {
    std::string spec;
    std::size_t len = rng.index(80);
    for (std::size_t i = 0; i < len; ++i) {
      spec.push_back(alphabet[rng.index(alphabet.size())]);
    }
    parse_is_total(spec);
  }
}

// Mutations of a valid spec: flip/insert/delete single characters. Most
// mutants are rejected; the assertion is only that no mutant crashes or
// parses into an invalid action.
TEST(ScenarioFuzz, MutatedValidSpecsStayTotal) {
  const std::string base =
      "at 600 kill 0.30; at 600 partition 2 for 300; "
      "at 1200 degrade loss=0.5 latency=4 for 120; "
      "at 1800 join 2000; at 300 poison off; "
      "at 2400 attack eclipse frac=0.05 for 300; "
      "at 3000 attack withhold frac=0.1 for 200";
  ASSERT_TRUE(parse_is_total(base));

  Rng rng(202);
  const std::string alphabet = "atkiljonprde 0123456789.=;#xcfsybwh-";
  for (int round = 0; round < 2000; ++round) {
    std::string spec = base;
    int edits = 1 + static_cast<int>(rng.index(3));
    for (int e = 0; e < edits; ++e) {
      std::size_t pos = rng.index(spec.size());
      switch (rng.index(3)) {
        case 0:  // flip
          spec[pos] = alphabet[rng.index(alphabet.size())];
          break;
        case 1:  // insert
          spec.insert(pos, 1, alphabet[rng.index(alphabet.size())]);
          break;
        default:  // delete
          spec.erase(pos, 1);
          break;
      }
    }
    parse_is_total(spec);
  }
}

// Randomly generated WELL-FORMED specs must always parse, and round-trip
// through describe() — the positive half of the fuzz property.
TEST(ScenarioFuzz, GeneratedValidSpecsAlwaysParse) {
  Rng rng(303);
  for (int round = 0; round < 500; ++round) {
    std::string spec;
    int statements = 1 + static_cast<int>(rng.index(5));
    // Disjoint window slots keep the overlap check out of the picture:
    // statement i's window lives in [1000*i, 1000*i + 999].
    for (int i = 0; i < statements; ++i) {
      if (i > 0) spec += "; ";
      double at = 1000.0 * i + std::floor(rng.uniform(0.0, 500.0));
      spec += "at " + std::to_string(static_cast<long>(at)) + " ";
      switch (rng.index(6)) {
        case 0:
          spec += "kill 0." + std::to_string(1 + rng.index(9));
          break;
        case 1:
          spec += "join " + std::to_string(1 + rng.index(100));
          break;
        case 2:
          spec += "partition " + std::to_string(2 + rng.index(4)) + " for " +
                  std::to_string(1 + rng.index(400));
          break;
        case 3:
          spec += "degrade loss=0." + std::to_string(rng.index(10)) +
                  " for " + std::to_string(1 + rng.index(400));
          break;
        case 4: {
          static const char* kKinds[] = {"eclipse", "sybil", "pong-flood",
                                         "withhold"};
          spec += std::string("attack ") + kKinds[rng.index(4)] + " frac=0." +
                  std::to_string(1 + rng.index(9)) + " for " +
                  std::to_string(1 + rng.index(400));
          break;
        }
        default:
          spec += rng.bernoulli(0.5) ? "poison on" : "poison off";
          break;
      }
    }
    EXPECT_TRUE(parse_is_total(spec)) << spec;
  }
}

}  // namespace
}  // namespace guess::faults
