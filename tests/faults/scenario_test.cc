// Fault-scenario spec machinery (DESIGN.md §9): the textual grammar, the
// strict error paths (every malformed spec must throw a CheckError naming
// the offending token), semantic validation, file loading, and the
// describe() <-> parse() round trip.
#include "faults/scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <string>

#include "common/check.h"

namespace guess::faults {
namespace {

/// Run `fn`, require it to throw CheckError, and return the message so the
/// caller can assert it names the offending token.
std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a CheckError";
  return "";
}

std::string parse_error(const std::string& spec) {
  return error_of([&] { Scenario::parse(spec); });
}

TEST(ScenarioParse, EveryActionKind) {
  Scenario s = Scenario::parse(
      "at 600 kill 0.30; at 600 partition 2 for 300; "
      "at 1200 degrade loss=0.5 for 120; at 1800 join 2000; "
      "at 300 poison off");
  ASSERT_EQ(s.size(), 5u);

  EXPECT_EQ(s.actions()[0].kind, FaultKind::kKill);
  EXPECT_DOUBLE_EQ(s.actions()[0].at, 600.0);
  EXPECT_DOUBLE_EQ(s.actions()[0].fraction, 0.30);
  EXPECT_FALSE(s.actions()[0].windowed());

  EXPECT_EQ(s.actions()[1].kind, FaultKind::kPartition);
  EXPECT_EQ(s.actions()[1].ways, 2);
  EXPECT_DOUBLE_EQ(s.actions()[1].duration, 300.0);
  EXPECT_TRUE(s.actions()[1].windowed());
  EXPECT_DOUBLE_EQ(s.actions()[1].end(), 900.0);

  EXPECT_EQ(s.actions()[2].kind, FaultKind::kDegrade);
  EXPECT_DOUBLE_EQ(s.actions()[2].loss, 0.5);
  EXPECT_DOUBLE_EQ(s.actions()[2].latency_factor, 1.0);  // default
  EXPECT_DOUBLE_EQ(s.actions()[2].duration, 120.0);

  EXPECT_EQ(s.actions()[3].kind, FaultKind::kJoin);
  EXPECT_EQ(s.actions()[3].count, 2000u);
  EXPECT_DOUBLE_EQ(s.actions()[3].end(), 1800.0);  // point action

  EXPECT_EQ(s.actions()[4].kind, FaultKind::kPoison);
  EXPECT_FALSE(s.actions()[4].poison_on);
}

TEST(ScenarioParse, AttackClauses) {
  Scenario s = Scenario::parse(
      "at 600 attack eclipse frac=0.05 for 300; "
      "at 1200 attack sybil frac=0.02 for 400; "
      "at 1700 attack pong-flood frac=0.03 for 100; "
      "at 1900 attack withhold frac=0.1 for 200");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.actions()[0].kind, FaultKind::kAttack);
  EXPECT_EQ(s.actions()[0].attack, AttackKind::kEclipse);
  EXPECT_DOUBLE_EQ(s.actions()[0].fraction, 0.05);
  EXPECT_TRUE(s.actions()[0].windowed());
  EXPECT_DOUBLE_EQ(s.actions()[0].end(), 900.0);
  EXPECT_EQ(s.actions()[1].attack, AttackKind::kSybil);
  EXPECT_EQ(s.actions()[2].attack, AttackKind::kPongFlood);
  EXPECT_EQ(s.actions()[3].attack, AttackKind::kWithhold);
  EXPECT_TRUE(s.uses_attacks());
  EXPECT_FALSE(Scenario::parse("at 10 kill 0.5").uses_attacks());
}

TEST(ScenarioParse, AttackErrorsNameTheOffendingToken) {
  std::string msg = parse_error("at 50 attack blackhole frac=0.1 for 10");
  EXPECT_NE(msg.find("unknown attack kind 'blackhole'"), std::string::npos)
      << msg;

  msg = parse_error("at 50 attack eclipse 0.1 for 10");
  EXPECT_NE(msg.find("expected frac=<fraction>, got '0.1'"),
            std::string::npos)
      << msg;

  msg = parse_error("at 50 attack eclipse frac=0.1");
  EXPECT_NE(msg.find("expected for at end of statement"), std::string::npos)
      << msg;

  msg = parse_error("at 50 attack eclipse frac=abc for 10");
  EXPECT_NE(msg.find("bad attack fraction 'abc'"), std::string::npos) << msg;
}

TEST(ScenarioValidate, AttackRanges) {
  EXPECT_NE(parse_error("at 50 attack eclipse frac=0 for 10")
                .find("attack fraction must be in"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 attack eclipse frac=1.5 for 10")
                .find("attack fraction must be in"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 attack sybil frac=0.1 for 0")
                .find("window duration must be > 0"),
            std::string::npos);
}

TEST(ScenarioValidate, AttackOverlapsKeyedByKind) {
  // Same attack kind overlapping: rejected, named by kind.
  std::string msg = parse_error(
      "at 100 attack eclipse frac=0.1 for 50; "
      "at 120 attack eclipse frac=0.2 for 50");
  EXPECT_NE(msg.find("overlapping eclipse attack windows at t=100 and t=120"),
            std::string::npos)
      << msg;
  // Different attack kinds may overlap, as may attack + other windows.
  EXPECT_NO_THROW(
      Scenario::parse("at 100 attack eclipse frac=0.1 for 50; "
                      "at 120 attack withhold frac=0.1 for 50"));
  EXPECT_NO_THROW(
      Scenario::parse("at 100 attack eclipse frac=0.1 for 50; "
                      "at 120 partition 2 for 50"));
  // Back-to-back same-kind windows are legal.
  EXPECT_NO_THROW(
      Scenario::parse("at 100 attack sybil frac=0.1 for 50; "
                      "at 150 attack sybil frac=0.1 for 50"));
}

TEST(ScenarioParse, DegradeAcceptsBothKnobsInAnyOrder) {
  Scenario a = Scenario::parse("at 10 degrade loss=0.2 latency=4 for 60");
  EXPECT_DOUBLE_EQ(a.actions()[0].loss, 0.2);
  EXPECT_DOUBLE_EQ(a.actions()[0].latency_factor, 4.0);

  Scenario b = Scenario::parse("at 10 degrade latency=2 loss=0.1 for 5");
  EXPECT_DOUBLE_EQ(b.actions()[0].loss, 0.1);
  EXPECT_DOUBLE_EQ(b.actions()[0].latency_factor, 2.0);

  Scenario c = Scenario::parse("at 10 degrade latency=2 for 5");
  EXPECT_DOUBLE_EQ(c.actions()[0].loss, 0.0);  // latency-only window
}

TEST(ScenarioParse, NewlinesCommentsAndBlanksIgnored) {
  Scenario s = Scenario::parse(
      "# warmup ends at 400\n"
      "at 600 kill 0.3   # correlated departure\n"
      "\n"
      ";; at 900 join 50 ; \n"
      "at 1000 poison on");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.actions()[0].kind, FaultKind::kKill);
  EXPECT_EQ(s.actions()[1].kind, FaultKind::kJoin);
  EXPECT_EQ(s.actions()[2].kind, FaultKind::kPoison);
  EXPECT_TRUE(s.actions()[2].poison_on);
}

TEST(ScenarioParse, EmptySpecIsEmptyScenario) {
  EXPECT_TRUE(Scenario::parse("").empty());
  EXPECT_TRUE(Scenario::parse("  ; ;\n# only a comment\n").empty());
  EXPECT_DOUBLE_EQ(Scenario().first_fault_time(), 0.0);
  EXPECT_DOUBLE_EQ(Scenario().last_fault_end(), 0.0);
}

// Every malformed spec must throw with a message that names the offending
// token AND the statement it appeared in — the error is the user interface.
TEST(ScenarioParse, ErrorsNameTheOffendingToken) {
  std::string msg = parse_error("at 50 kil 0.3");
  EXPECT_NE(msg.find("unknown action 'kil'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at 50 kil 0.3"), std::string::npos) << msg;

  msg = parse_error("kill 0.3");
  EXPECT_NE(msg.find("expected 'at'"), std::string::npos) << msg;

  msg = parse_error("at abc kill 0.3");
  EXPECT_NE(msg.find("bad time 'abc'"), std::string::npos) << msg;

  msg = parse_error("at 50 kill");
  EXPECT_NE(msg.find("expected kill fraction at end of statement"),
            std::string::npos)
      << msg;

  msg = parse_error("at 50 kill 0.3 extra");
  EXPECT_NE(msg.find("unexpected trailing token 'extra'"), std::string::npos)
      << msg;

  msg = parse_error("at 50 join 1.5");
  EXPECT_NE(msg.find("join count must be a whole number"), std::string::npos)
      << msg;

  msg = parse_error("at 50 partition 2 until 300");
  EXPECT_NE(msg.find("expected 'for', got 'until'"), std::string::npos)
      << msg;

  msg = parse_error("at 50 degrade for 10");
  EXPECT_NE(msg.find("degrade needs at least one of"), std::string::npos)
      << msg;

  msg = parse_error("at 50 degrade jitter=3 for 10");
  EXPECT_NE(msg.find("unknown degrade knob 'jitter'"), std::string::npos)
      << msg;

  msg = parse_error("at 50 degrade loss for 10");
  EXPECT_NE(msg.find("expected key=value or 'for', got 'loss'"),
            std::string::npos)
      << msg;

  msg = parse_error("at 50 poison maybe");
  EXPECT_NE(msg.find("expected 'on' or 'off', got 'maybe'"),
            std::string::npos)
      << msg;
}

// The number parser is strict: partial parses and non-finite spellings that
// strtod would happily accept must be rejected.
TEST(ScenarioParse, RejectsNonFiniteAndPartialNumbers) {
  EXPECT_NE(parse_error("at nan kill 0.3").find("bad time 'nan'"),
            std::string::npos);
  EXPECT_NE(parse_error("at inf kill 0.3").find("bad time 'inf'"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 kill nan").find("bad kill fraction 'nan'"),
            std::string::npos);
  EXPECT_NE(
      parse_error("at 50 degrade loss=inf for 10").find("bad degrade loss"),
      std::string::npos);
  EXPECT_NE(parse_error("at 50 kill 0.3x").find("bad kill fraction '0.3x'"),
            std::string::npos);
  EXPECT_NE(parse_error("at 1e999 kill 0.3").find("bad time '1e999'"),
            std::string::npos);  // overflows to inf
}

TEST(ScenarioValidate, SemanticRanges) {
  EXPECT_NE(parse_error("at 50 kill 0").find("kill fraction must be in"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 kill 1.5").find("kill fraction must be in"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 join 0").find("join count must be >= 1"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 partition 1 for 10")
                .find("partition ways must be >= 2"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 partition 2 for 0")
                .find("window duration must be > 0"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 degrade loss=2 for 10")
                .find("degrade loss must be in [0, 1]"),
            std::string::npos);
  EXPECT_NE(parse_error("at 50 degrade loss=0.1 latency=0.5 for 10")
                .find("latency factor must be >= 1"),
            std::string::npos);
  EXPECT_NE(parse_error("at -5 kill 0.3").find("time must be finite"),
            std::string::npos);
  // kill 1.0 (everyone) is legal.
  EXPECT_NO_THROW(Scenario::parse("at 50 kill 1.0"));
}

// Non-finite values injected through the programmatic API (the benches build
// scenarios with add()) must not slip past validate().
TEST(ScenarioValidate, ProgrammaticNonFiniteRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  FaultAction kill;
  kill.kind = FaultKind::kKill;
  kill.at = nan;
  kill.fraction = 0.5;
  EXPECT_THROW(Scenario().add(kill).validate(), CheckError);

  kill.at = 10.0;
  kill.fraction = nan;
  EXPECT_THROW(Scenario().add(kill).validate(), CheckError);

  FaultAction degrade;
  degrade.kind = FaultKind::kDegrade;
  degrade.at = 10.0;
  degrade.duration = inf;
  degrade.loss = 0.5;
  EXPECT_THROW(Scenario().add(degrade).validate(), CheckError);

  degrade.duration = 10.0;
  degrade.latency_factor = inf;
  EXPECT_THROW(Scenario().add(degrade).validate(), CheckError);
}

TEST(ScenarioValidate, OverlappingSameKindWindowsRejected) {
  std::string msg =
      parse_error("at 100 partition 2 for 50; at 120 partition 3 for 50");
  EXPECT_NE(msg.find("overlapping partition windows at t=100 and t=120"),
            std::string::npos)
      << msg;
  EXPECT_THROW(
      Scenario::parse("at 100 degrade loss=0.5 for 50; "
                      "at 149 degrade loss=0.1 for 10"),
      CheckError);

  // Back-to-back (end == next start) is NOT an overlap, and windows of
  // different kinds may overlap freely.
  EXPECT_NO_THROW(
      Scenario::parse("at 100 partition 2 for 50; at 150 partition 2 for 50"));
  EXPECT_NO_THROW(
      Scenario::parse("at 100 partition 2 for 50; "
                      "at 120 degrade loss=0.5 for 50"));
}

TEST(Scenario, FaultWindowBounds) {
  Scenario s = Scenario::parse(
      "at 600 kill 0.3; at 200 poison off; at 500 partition 2 for 1000");
  EXPECT_DOUBLE_EQ(s.first_fault_time(), 200.0);
  EXPECT_DOUBLE_EQ(s.last_fault_end(), 1500.0);
  EXPECT_FALSE(s.uses_degradation());
  EXPECT_TRUE(
      Scenario::parse("at 10 degrade loss=0.1 for 5").uses_degradation());
}

TEST(Scenario, DescribeRoundTripsThroughParse) {
  const std::string spec =
      "at 600 kill 0.3; at 600 partition 2 for 300; "
      "at 1200 degrade loss=0.5 latency=4 for 120; at 1800 join 2000; "
      "at 300 poison off; at 2000 degrade loss=0.25 for 60; "
      "at 2200 attack pong-flood frac=0.05 for 120";
  Scenario s = Scenario::parse(spec);
  EXPECT_EQ(s.describe(), spec);
  // A second trip is a fixed point.
  EXPECT_EQ(Scenario::parse(s.describe()).describe(), spec);
}

TEST(Scenario, LoadFileParsesAndReportsMissingFiles) {
  const std::string path = ::testing::TempDir() + "/guess_scenario_test.txt";
  {
    std::ofstream out(path);
    out << "# two-phase fault\n"
        << "at 600 kill 0.3\n"
        << "at 900 join 30\n";
  }
  Scenario s = Scenario::load_file(path);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.actions()[0].kind, FaultKind::kKill);
  EXPECT_EQ(s.actions()[1].count, 30u);
  std::remove(path.c_str());

  std::string msg = error_of(
      [] { Scenario::load_file("/nonexistent/guess-scenario.txt"); });
  EXPECT_NE(msg.find("cannot read file '/nonexistent/guess-scenario.txt'"),
            std::string::npos)
      << msg;
}

TEST(Scenario, KindNames) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kKill), "kill");
  EXPECT_STREQ(fault_kind_name(FaultKind::kJoin), "join");
  EXPECT_STREQ(fault_kind_name(FaultKind::kPartition), "partition");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDegrade), "degrade");
  EXPECT_STREQ(fault_kind_name(FaultKind::kPoison), "poison");
  EXPECT_STREQ(fault_kind_name(FaultKind::kAttack), "attack");
  EXPECT_STREQ(attack_kind_name(AttackKind::kEclipse), "eclipse");
  EXPECT_STREQ(attack_kind_name(AttackKind::kSybil), "sybil");
  EXPECT_STREQ(attack_kind_name(AttackKind::kPongFlood), "pong-flood");
  EXPECT_STREQ(attack_kind_name(AttackKind::kWithhold), "withhold");
}

}  // namespace
}  // namespace guess::faults
