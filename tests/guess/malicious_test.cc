#include "guess/malicious.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <iterator>
#include <set>

namespace guess {
namespace {

MaliciousParams params() {
  MaliciousParams p;
  p.claimed_num_files = 5000;
  p.claimed_num_res = 20;
  return p;
}

TEST(Poison, DeadBehaviorDrawsFromPool) {
  PoisonGenerator poison(params(), BadPongBehavior::kDead);
  poison.set_dead_pool({100, 101, 102});
  Rng rng(1);
  auto pong = poison.make_pong(1, 5, 42.0, rng);
  ASSERT_EQ(pong.size(), 5u);
  for (const auto& e : pong) {
    EXPECT_GE(e.id, 100u);
    EXPECT_LE(e.id, 102u);
    EXPECT_DOUBLE_EQ(e.ts, 42.0);
    EXPECT_EQ(e.num_files, 5000u);
    EXPECT_EQ(e.num_res, 20u);
  }
}

TEST(Poison, DeadBehaviorWithoutPoolIsEmpty) {
  PoisonGenerator poison(params(), BadPongBehavior::kDead);
  Rng rng(1);
  EXPECT_TRUE(poison.make_pong(1, 5, 0.0, rng).empty());
}

TEST(Poison, CollusionNamesOtherAttackers) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  poison.add_bad_peer(1);
  poison.add_bad_peer(2);
  poison.add_bad_peer(3);
  Rng rng(1);
  for (int round = 0; round < 50; ++round) {
    auto pong = poison.make_pong(1, 5, 0.0, rng);
    ASSERT_EQ(pong.size(), 5u);
    for (const auto& e : pong) {
      EXPECT_NE(e.id, 1u);  // never advertises itself
      EXPECT_TRUE(e.id == 2 || e.id == 3);
      EXPECT_EQ(e.num_files, 5000u);
    }
  }
}

TEST(Poison, LoneColluderHasNothingToSay) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  poison.add_bad_peer(1);
  Rng rng(1);
  EXPECT_TRUE(poison.make_pong(1, 5, 0.0, rng).empty());
}

TEST(Poison, BadPeerSetMaintainedThroughChurn) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  poison.add_bad_peer(1);
  poison.add_bad_peer(2);
  poison.add_bad_peer(3);
  EXPECT_EQ(poison.bad_peer_count(), 3u);
  poison.remove_bad_peer(2);
  EXPECT_EQ(poison.bad_peer_count(), 2u);
  poison.add_bad_peer(4);
  Rng rng(1);
  std::set<PeerId> advertised;
  for (int round = 0; round < 100; ++round) {
    for (const auto& e : poison.make_pong(1, 5, 0.0, rng)) {
      advertised.insert(e.id);
    }
  }
  EXPECT_EQ(advertised, (std::set<PeerId>{3, 4}));
}

// Model-based churn fuzz of the swap-remove bookkeeping: add/remove in
// random interleavings must keep bad_peers() an exact (unordered) mirror of
// a reference set, with no duplicates and no stale survivors. A bug in the
// bad_index_ maintenance (e.g. not re-indexing the swapped-in tail element)
// shows up as a removal deleting the wrong peer.
TEST(Poison, SwapRemoveBookkeepingConsistentUnderChurnInterleavings) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  Rng rng(12345);
  std::set<PeerId> reference;
  PeerId next_id = 0;

  for (int step = 0; step < 5000; ++step) {
    // Bias toward adds while small, removes while large, so the set keeps
    // crossing the interesting sizes (empty, one, many).
    bool add = reference.empty() ||
               rng.bernoulli(reference.size() < 20 ? 0.7 : 0.3);
    if (add) {
      PeerId id = next_id++;
      poison.add_bad_peer(id);
      reference.insert(id);
    } else {
      // Remove a uniformly random current member — tail, head, middle.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.index(reference.size())));
      poison.remove_bad_peer(*it);
      reference.erase(it);
    }
    ASSERT_EQ(poison.bad_peer_count(), reference.size());
    std::set<PeerId> tracked(poison.bad_peers().begin(),
                             poison.bad_peers().end());
    ASSERT_EQ(tracked.size(), poison.bad_peers().size());  // no duplicates
    ASSERT_EQ(tracked, reference);
  }

  // After all that churn the generator still functions: pongs only ever
  // name current attackers.
  if (reference.size() < 2) poison.add_bad_peer(next_id++);
  std::set<PeerId> current(poison.bad_peers().begin(),
                           poison.bad_peers().end());
  PeerId self = *current.begin();
  for (int round = 0; round < 50; ++round) {
    for (const auto& e : poison.make_pong(self, 5, 0.0, rng)) {
      EXPECT_TRUE(current.contains(e.id));
      EXPECT_NE(e.id, self);
    }
  }
}

TEST(Poison, DoubleAddOrBadRemoveThrows) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  poison.add_bad_peer(1);
  EXPECT_THROW(poison.add_bad_peer(1), CheckError);
  EXPECT_THROW(poison.remove_bad_peer(9), CheckError);
}

}  // namespace
}  // namespace guess
