#include "guess/malicious.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <set>

namespace guess {
namespace {

MaliciousParams params() {
  MaliciousParams p;
  p.claimed_num_files = 5000;
  p.claimed_num_res = 20;
  return p;
}

TEST(Poison, DeadBehaviorDrawsFromPool) {
  PoisonGenerator poison(params(), BadPongBehavior::kDead);
  poison.set_dead_pool({100, 101, 102});
  Rng rng(1);
  auto pong = poison.make_pong(1, 5, 42.0, rng);
  ASSERT_EQ(pong.size(), 5u);
  for (const auto& e : pong) {
    EXPECT_GE(e.id, 100u);
    EXPECT_LE(e.id, 102u);
    EXPECT_DOUBLE_EQ(e.ts, 42.0);
    EXPECT_EQ(e.num_files, 5000u);
    EXPECT_EQ(e.num_res, 20u);
  }
}

TEST(Poison, DeadBehaviorWithoutPoolIsEmpty) {
  PoisonGenerator poison(params(), BadPongBehavior::kDead);
  Rng rng(1);
  EXPECT_TRUE(poison.make_pong(1, 5, 0.0, rng).empty());
}

TEST(Poison, CollusionNamesOtherAttackers) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  poison.add_bad_peer(1);
  poison.add_bad_peer(2);
  poison.add_bad_peer(3);
  Rng rng(1);
  for (int round = 0; round < 50; ++round) {
    auto pong = poison.make_pong(1, 5, 0.0, rng);
    ASSERT_EQ(pong.size(), 5u);
    for (const auto& e : pong) {
      EXPECT_NE(e.id, 1u);  // never advertises itself
      EXPECT_TRUE(e.id == 2 || e.id == 3);
      EXPECT_EQ(e.num_files, 5000u);
    }
  }
}

TEST(Poison, LoneColluderHasNothingToSay) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  poison.add_bad_peer(1);
  Rng rng(1);
  EXPECT_TRUE(poison.make_pong(1, 5, 0.0, rng).empty());
}

TEST(Poison, BadPeerSetMaintainedThroughChurn) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  poison.add_bad_peer(1);
  poison.add_bad_peer(2);
  poison.add_bad_peer(3);
  EXPECT_EQ(poison.bad_peer_count(), 3u);
  poison.remove_bad_peer(2);
  EXPECT_EQ(poison.bad_peer_count(), 2u);
  poison.add_bad_peer(4);
  Rng rng(1);
  std::set<PeerId> advertised;
  for (int round = 0; round < 100; ++round) {
    for (const auto& e : poison.make_pong(1, 5, 0.0, rng)) {
      advertised.insert(e.id);
    }
  }
  EXPECT_EQ(advertised, (std::set<PeerId>{3, 4}));
}

TEST(Poison, DoubleAddOrBadRemoveThrows) {
  PoisonGenerator poison(params(), BadPongBehavior::kBad);
  poison.add_bad_peer(1);
  EXPECT_THROW(poison.add_bad_peer(1), CheckError);
  EXPECT_THROW(poison.remove_bad_peer(9), CheckError);
}

}  // namespace
}  // namespace guess
