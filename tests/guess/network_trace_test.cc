// Integration of the event tracer with GuessNetwork.
#include <gtest/gtest.h>

#include "common/trace.h"
#include "guess/simulation.h"

namespace guess {
namespace {

SystemParams tiny_system() {
  SystemParams system;
  system.network_size = 60;
  system.content.catalog_size = 200;
  system.content.query_universe = 250;
  system.lifespan_multiplier = 0.05;  // ensure some churn events
  return system;
}

TEST(NetworkTrace, RecordsLifecycleAndQueries) {
  sim::Simulator simulator;
  GuessNetwork network(SimulationConfig().system(tiny_system()).protocol(ProtocolParams{}), simulator, Rng(5));
  Tracer tracer(kTraceAll, 100000);
  network.set_tracer(&tracer);
  network.initialize();
  simulator.run_until(900.0);

  bool saw_birth = false, saw_death = false, saw_query_start = false,
       saw_query_finish = false, saw_ping = false;
  for (const TraceRecord& record : tracer.snapshot()) {
    if (record.line.starts_with("birth")) saw_birth = true;
    if (record.line.starts_with("death")) saw_death = true;
    if (record.line.starts_with("query start")) saw_query_start = true;
    if (record.line.starts_with("query finish")) saw_query_finish = true;
    if (record.line.starts_with("ping")) saw_ping = true;
  }
  EXPECT_TRUE(saw_birth);
  EXPECT_TRUE(saw_death);
  EXPECT_TRUE(saw_query_start);
  EXPECT_TRUE(saw_query_finish);
  EXPECT_TRUE(saw_ping);

  // Timestamps are non-decreasing (events recorded in simulation order).
  auto records = tracer.snapshot();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].at, records[i].at);
  }
}

TEST(NetworkTrace, MaskLimitsToRequestedCategories) {
  sim::Simulator simulator;
  GuessNetwork network(SimulationConfig().system(tiny_system()).protocol(ProtocolParams{}), simulator, Rng(5));
  Tracer tracer(static_cast<unsigned>(TraceCategory::kChurn), 100000);
  network.set_tracer(&tracer);
  network.initialize();
  simulator.run_until(600.0);
  for (const TraceRecord& record : tracer.snapshot()) {
    EXPECT_EQ(record.category, TraceCategory::kChurn);
  }
  EXPECT_GT(tracer.size(), 0u);
}

TEST(NetworkTrace, AttackEventsSurfaceWithDetection) {
  SystemParams system = tiny_system();
  system.network_size = 200;
  system.lifespan_multiplier = 1.0;
  system.percent_bad_peers = 20.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMR;
  protocol.query_pong = Policy::kMR;
  protocol.cache_replacement = Replacement::kLR;
  protocol.detection.enabled = true;

  sim::Simulator simulator;
  GuessNetwork network(SimulationConfig().system(system).protocol(protocol), simulator, Rng(7));
  Tracer tracer(static_cast<unsigned>(TraceCategory::kAttack), 100000);
  network.set_tracer(&tracer);
  network.initialize();
  simulator.run_until(1200.0);
  bool saw_blacklist = false;
  for (const TraceRecord& record : tracer.snapshot()) {
    if (record.line.starts_with("blacklist")) saw_blacklist = true;
  }
  EXPECT_TRUE(saw_blacklist);
}

TEST(NetworkTrace, NoTracerMeansNoCrash) {
  sim::Simulator simulator;
  GuessNetwork network(SimulationConfig().system(tiny_system()).protocol(ProtocolParams{}), simulator, Rng(5));
  network.initialize();
  simulator.run_until(300.0);  // trace points are no-ops
  SUCCEED();
}

}  // namespace
}  // namespace guess
