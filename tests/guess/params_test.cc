#include "guess/params.h"

#include <gtest/gtest.h>

namespace guess {
namespace {

TEST(Params, Table1Defaults) {
  SystemParams system;
  EXPECT_EQ(system.network_size, 1000u);
  EXPECT_EQ(system.num_desired_results, 1u);
  EXPECT_DOUBLE_EQ(system.lifespan_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(system.query_rate, 9.26e-3);
  EXPECT_EQ(system.max_probes_per_second, 100u);
  EXPECT_DOUBLE_EQ(system.percent_bad_peers, 0.0);
  EXPECT_EQ(system.bad_pong_behavior, BadPongBehavior::kDead);
}

TEST(Params, Table2Defaults) {
  ProtocolParams protocol;
  EXPECT_EQ(protocol.query_probe, Policy::kRandom);
  EXPECT_EQ(protocol.query_pong, Policy::kRandom);
  EXPECT_EQ(protocol.ping_probe, Policy::kRandom);
  EXPECT_EQ(protocol.ping_pong, Policy::kRandom);
  EXPECT_EQ(protocol.cache_replacement, Replacement::kRandom);
  EXPECT_DOUBLE_EQ(protocol.ping_interval, 30.0);
  EXPECT_EQ(protocol.cache_size, 100u);
  EXPECT_FALSE(protocol.reset_num_results);
  EXPECT_FALSE(protocol.do_backoff);
  EXPECT_EQ(protocol.pong_size, 5u);
  EXPECT_DOUBLE_EQ(protocol.intro_prob, 0.1);
}

TEST(Params, CacheSeedDefaultsToNetworkFraction) {
  SystemParams system;
  system.network_size = 1000;
  EXPECT_EQ(system.resolved_cache_seed(100), 10u);  // N/100
  system.network_size = 200;
  EXPECT_EQ(system.resolved_cache_seed(100), 5u);  // floor of 5
  system.network_size = 10000;
  EXPECT_EQ(system.resolved_cache_seed(20), 20u);  // clamped to cache size
}

TEST(Params, ExplicitCacheSeedWins) {
  SystemParams system;
  system.cache_seed_size = 17;
  EXPECT_EQ(system.resolved_cache_seed(100), 17u);
}

TEST(Params, BadFractionFromPercent) {
  SystemParams system;
  system.percent_bad_peers = 15.0;
  EXPECT_DOUBLE_EQ(system.bad_fraction(), 0.15);
}

TEST(Params, MrStarDefaults) {
  ProtocolParams mr_star = ProtocolParams::mr_star_defaults();
  EXPECT_EQ(mr_star.query_probe, Policy::kMR);
  EXPECT_EQ(mr_star.query_pong, Policy::kMR);
  EXPECT_EQ(mr_star.cache_replacement, Replacement::kLR);
  EXPECT_TRUE(mr_star.reset_num_results);
}

TEST(Params, DescribeMentionsKeyFields) {
  SystemParams system;
  std::string s = describe(system);
  EXPECT_NE(s.find("NetworkSize=1000"), std::string::npos);
  EXPECT_NE(s.find("BadPongBehavior=Dead"), std::string::npos);

  ProtocolParams protocol;
  protocol.query_pong = Policy::kMFS;
  std::string p = describe(protocol);
  EXPECT_NE(p.find("QueryPong=MFS"), std::string::npos);
  EXPECT_NE(p.find("CacheSize=100"), std::string::npos);
}

TEST(Params, BadPongBehaviorNames) {
  EXPECT_EQ(to_string(BadPongBehavior::kDead), "Dead");
  EXPECT_EQ(to_string(BadPongBehavior::kBad), "Bad");
}

}  // namespace
}  // namespace guess
