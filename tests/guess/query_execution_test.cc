#include "guess/query_execution.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

CacheEntry entry(PeerId id, std::uint32_t files = 0, std::uint32_t res = 0,
                 sim::Time ts = 0.0) {
  return CacheEntry{id, ts, files, res};
}

TEST(ProbeCounters, CountsByOutcome) {
  ProbeCounters counters;
  counters.count(ProbeOutcome::kGood);
  counters.count(ProbeOutcome::kGood);
  counters.count(ProbeOutcome::kDead);
  counters.count(ProbeOutcome::kRefused);
  EXPECT_EQ(counters.good, 2u);
  EXPECT_EQ(counters.dead, 1u);
  EXPECT_EQ(counters.refused, 1u);
  EXPECT_EQ(counters.total(), 4u);
}

TEST(ProbeCounters, Accumulates) {
  ProbeCounters a, b;
  a.good = 1;
  a.dead = 2;
  b.good = 10;
  b.refused = 5;
  a += b;
  EXPECT_EQ(a.good, 11u);
  EXPECT_EQ(a.dead, 2u);
  EXPECT_EQ(a.refused, 5u);
}

TEST(QueryExecution, CandidatesDedupedByPeer) {
  QueryExecution query(1, 7, 1, Policy::kRandom, 0.0);
  Rng rng(1);
  EXPECT_TRUE(query.add_candidate(entry(2), rng));
  EXPECT_FALSE(query.add_candidate(entry(2), rng));  // seen before
  EXPECT_EQ(query.queued(), 1u);
  EXPECT_EQ(query.seen(), 1u);
}

TEST(QueryExecution, OriginNeverQueued) {
  QueryExecution query(1, 7, 1, Policy::kRandom, 0.0);
  Rng rng(1);
  EXPECT_FALSE(query.add_candidate(entry(1), rng));
  EXPECT_EQ(query.queued(), 0u);
}

TEST(QueryExecution, ProbeOrderFollowsPolicy) {
  QueryExecution query(1, 7, 1, Policy::kMFS, 0.0);
  Rng rng(1);
  query.add_candidate(entry(2, 10), rng);
  query.add_candidate(entry(3, 100), rng);
  query.add_candidate(entry(4, 50), rng);
  EXPECT_EQ(query.next_candidate()->entry.id, 3u);
  EXPECT_EQ(query.next_candidate()->entry.id, 4u);
  EXPECT_EQ(query.next_candidate()->entry.id, 2u);
  EXPECT_FALSE(query.next_candidate().has_value());
}

TEST(QueryExecution, EqualScoresAreFifo) {
  QueryExecution query(1, 7, 1, Policy::kMFS, 0.0);
  Rng rng(1);
  query.add_candidate(entry(10, 5), rng);
  query.add_candidate(entry(11, 5), rng);
  query.add_candidate(entry(12, 5), rng);
  EXPECT_EQ(query.next_candidate()->entry.id, 10u);
  EXPECT_EQ(query.next_candidate()->entry.id, 11u);
  EXPECT_EQ(query.next_candidate()->entry.id, 12u);
}

TEST(QueryExecution, LateCandidatesCompeteByScore) {
  QueryExecution query(1, 7, 1, Policy::kMR, 0.0);
  Rng rng(1);
  query.add_candidate(entry(2, 0, 1), rng);
  EXPECT_EQ(query.next_candidate()->entry.id, 2u);
  // New pong-delivered candidates enter the live ordering.
  query.add_candidate(entry(3, 0, 9), rng);
  query.add_candidate(entry(4, 0, 4), rng);
  EXPECT_EQ(query.next_candidate()->entry.id, 3u);
  EXPECT_EQ(query.next_candidate()->entry.id, 4u);
}

TEST(QueryExecution, ProbedPeerNotReaddable) {
  QueryExecution query(1, 7, 1, Policy::kRandom, 0.0);
  Rng rng(1);
  query.add_candidate(entry(2), rng);
  query.next_candidate();
  EXPECT_FALSE(query.add_candidate(entry(2), rng));
  EXPECT_EQ(query.queued(), 0u);
}

TEST(QueryExecution, SatisfactionAtDesiredResults) {
  QueryExecution query(1, 7, 3, Policy::kRandom, 0.0);
  EXPECT_FALSE(query.satisfied());
  query.add_results(2);
  EXPECT_FALSE(query.satisfied());
  query.add_results(1);
  EXPECT_TRUE(query.satisfied());
  EXPECT_EQ(query.results(), 3u);
}

TEST(QueryExecution, TracksIdentityAndStart) {
  QueryExecution query(42, 17, 1, Policy::kRandom, 123.5);
  EXPECT_EQ(query.origin(), 42u);
  EXPECT_EQ(query.file(), 17u);
  EXPECT_DOUBLE_EQ(query.start_time(), 123.5);
}

TEST(QueryExecution, ZeroDesiredResultsRejected) {
  EXPECT_THROW(QueryExecution(1, 7, 0, Policy::kRandom, 0.0), CheckError);
}

TEST(QueryExecution, OutcomeRecordingFeedsCounters) {
  QueryExecution query(1, 7, 1, Policy::kRandom, 0.0);
  query.record_outcome(ProbeOutcome::kDead);
  query.record_outcome(ProbeOutcome::kGood);
  EXPECT_EQ(query.counters().total(), 2u);
  EXPECT_EQ(query.counters().dead, 1u);
}

}  // namespace
}  // namespace guess
