#include "guess/simulation.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

SystemParams test_system() {
  SystemParams system;
  system.network_size = 150;
  system.content.catalog_size = 500;
  system.content.query_universe = 625;
  return system;
}

SimulationOptions quick_options(std::uint64_t seed = 42) {
  SimulationOptions options;
  options.seed = seed;
  options.warmup = 120.0;
  options.measure = 600.0;
  return options;
}

TEST(Simulation, RunsAndProducesQueries) {
  GuessSimulation sim(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options()));
  auto results = sim.run();
  EXPECT_GT(results.queries_completed, 100u);
  EXPECT_GT(results.probes.total(), results.queries_completed);
  EXPECT_GT(results.queries_satisfied, 0u);
  EXPECT_LT(results.unsatisfied_rate(), 0.5);
  EXPECT_EQ(results.network_size, 150u);
  EXPECT_DOUBLE_EQ(results.measure_duration, 600.0);
}

TEST(Simulation, SameSeedIsBitwiseReproducible) {
  auto run = [](std::uint64_t seed) {
    GuessSimulation sim(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options(seed)));
    return sim.run();
  };
  auto a = run(7);
  auto b = run(7);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_satisfied, b.queries_satisfied);
  EXPECT_EQ(a.probes.good, b.probes.good);
  EXPECT_EQ(a.probes.dead, b.probes.dead);
  EXPECT_EQ(a.probes.refused, b.probes.refused);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_DOUBLE_EQ(a.response_time.mean(), b.response_time.mean());
}

TEST(Simulation, DifferentSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    GuessSimulation sim(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options(seed)));
    return sim.run();
  };
  auto a = run(1);
  auto b = run(2);
  EXPECT_NE(a.probes.good, b.probes.good);
}

TEST(Simulation, RunTwiceThrows) {
  GuessSimulation sim(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options()));
  sim.run();
  EXPECT_THROW(sim.run(), CheckError);
}

TEST(Simulation, ResponseTimeConsistentWithProbeSlots) {
  GuessSimulation sim(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options()));
  auto results = sim.run();
  // A satisfied query of k probes takes (k-1) × 0.2 s; mean response time
  // must therefore be below probes/query × 0.2.
  EXPECT_GT(results.response_time.mean(), 0.0);
  EXPECT_LT(results.response_time.mean(),
            results.probes_per_query() * 0.2 + 1e-9);
}

TEST(Simulation, ConnectivitySamplingProducesSamples) {
  SimulationOptions options = quick_options();
  options.enable_queries = false;
  options.sample_connectivity = true;
  options.connectivity_sample_interval = 120.0;
  GuessSimulation sim(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(options));
  auto results = sim.run();
  EXPECT_GE(results.largest_component.count(), 4u);
  EXPECT_GT(results.largest_component.mean(), 0.0);
  EXPECT_LE(results.largest_component.max(), 150.0);
  // Final snapshot: strong ≤ weak ≤ N, both positive for a live overlay.
  EXPECT_GT(results.final_largest_strong_component, 0u);
  EXPECT_LE(results.final_largest_strong_component,
            results.final_largest_component);
  EXPECT_LE(results.final_largest_component, 150u);
}

TEST(Simulation, ConnectivityOffLeavesSnapshotZero) {
  GuessSimulation sim(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options()));
  auto results = sim.run();
  EXPECT_EQ(results.final_largest_component, 0u);
  EXPECT_EQ(results.final_largest_strong_component, 0u);
}

TEST(Simulation, RunSeedsProducesOneResultPerSeed) {
  auto runs = run_seeds(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options()), 3);
  EXPECT_EQ(runs.size(), 3u);
  EXPECT_NE(runs[0].probes.good, runs[1].probes.good);
}

TEST(Simulation, AverageAggregatesRuns) {
  auto runs = run_seeds(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options()), 2);
  auto avg = average(runs);
  double expected =
      (runs[0].probes_per_query() + runs[1].probes_per_query()) / 2.0;
  EXPECT_NEAR(avg.probes_per_query, expected, 1e-9);
  EXPECT_GT(avg.queries_completed, 0.0);
}

TEST(Simulation, AverageOfNothingIsZeroes) {
  auto avg = average({});
  EXPECT_DOUBLE_EQ(avg.probes_per_query, 0.0);
  EXPECT_DOUBLE_EQ(avg.unsatisfied_rate, 0.0);
}

TEST(Simulation, MetricsDerivationsAreConsistent) {
  GuessSimulation sim(SimulationConfig().system(test_system()).protocol(ProtocolParams{}).options(quick_options()));
  auto results = sim.run();
  EXPECT_NEAR(results.probes_per_query(),
              results.good_probes_per_query() +
                  results.dead_probes_per_query() +
                  results.refused_probes_per_query(),
              1e-9);
  EXPECT_GE(results.unsatisfied_rate(), 0.0);
  EXPECT_LE(results.unsatisfied_rate(), 1.0);
}

}  // namespace
}  // namespace guess
