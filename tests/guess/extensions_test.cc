// Tests for the protocol extensions grounded in the paper's discussion
// sections: selfish peers + probe payments (§3.3), adaptive ping (§6.1),
// adaptive parallel probes (§6.2), malicious-referral detection (§6.4),
// and the query-cache ablation knob (§2.3).
#include <gtest/gtest.h>

#include "common/check.h"
#include "guess/simulation.h"

namespace guess {
namespace {

SystemParams base_system(std::size_t n = 200) {
  SystemParams system;
  system.network_size = n;
  system.content.catalog_size = 600;
  system.content.query_universe = 750;
  return system;
}

SimulationOptions quick(std::uint64_t seed = 42) {
  SimulationOptions options;
  options.seed = seed;
  options.warmup = 150.0;
  options.measure = 700.0;
  return options;
}

// --- Peer-level units -------------------------------------------------------

TEST(Credit, SpendAndEarnRespectBounds) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  peer.set_credit(5.0);
  EXPECT_TRUE(peer.can_afford(5.0));
  EXPECT_FALSE(peer.can_afford(5.1));
  peer.spend_credit(3.0);
  EXPECT_DOUBLE_EQ(peer.credit(), 2.0);
  EXPECT_THROW(peer.spend_credit(2.5), CheckError);
  peer.earn_credit(100.0, /*cap=*/50.0);
  EXPECT_DOUBLE_EQ(peer.credit(), 50.0);
}

// In-flight reservations (asynchronous transports) gate affordability
// without moving credit until the probe is served.
TEST(Credit, ReservationsGateAffordabilityUntilResolved) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  peer.set_credit(5.0);
  peer.reserve_credit(2.0);
  peer.reserve_credit(2.0);
  EXPECT_EQ(peer.reserved_probes(), 2u);
  EXPECT_DOUBLE_EQ(peer.credit(), 5.0);  // nothing spent yet
  EXPECT_FALSE(peer.can_afford(2.0));    // 5 - 2*2 = 1 < 2
  EXPECT_THROW(peer.reserve_credit(2.0), CheckError);

  peer.commit_credit(2.0);  // served: the reservation becomes a spend
  EXPECT_DOUBLE_EQ(peer.credit(), 3.0);
  peer.release_credit();    // dead/refused: credit returns untouched
  EXPECT_DOUBLE_EQ(peer.credit(), 3.0);
  EXPECT_EQ(peer.reserved_probes(), 0u);
  EXPECT_TRUE(peer.can_afford(3.0));
  EXPECT_THROW(peer.release_credit(), CheckError);
}

TEST(AdaptivePing, HighDeadFractionShrinksInterval) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  peer.set_ping_interval(60.0);
  AdaptivePingParams params;
  params.enabled = true;
  params.window = 4;
  for (int i = 0; i < 4; ++i) peer.note_ping_result(true, params);
  EXPECT_DOUBLE_EQ(peer.ping_interval(), 30.0);
  // Again, clamped at min_interval eventually.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) peer.note_ping_result(true, params);
  }
  EXPECT_DOUBLE_EQ(peer.ping_interval(), params.min_interval);
}

TEST(AdaptivePing, AllLiveGrowsIntervalToCap) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  peer.set_ping_interval(60.0);
  AdaptivePingParams params;
  params.enabled = true;
  params.window = 4;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 4; ++i) peer.note_ping_result(false, params);
  }
  EXPECT_DOUBLE_EQ(peer.ping_interval(), params.max_interval);
}

TEST(AdaptivePing, ModerateDeadFractionHoldsSteady) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  peer.set_ping_interval(60.0);
  AdaptivePingParams params;
  params.enabled = true;
  params.window = 10;
  // 20% dead: between dead_low (5%) and dead_high (30%).
  for (int i = 0; i < 8; ++i) peer.note_ping_result(false, params);
  for (int i = 0; i < 2; ++i) peer.note_ping_result(true, params);
  EXPECT_DOUBLE_EQ(peer.ping_interval(), 60.0);
}

TEST(AdaptivePing, DisabledIsInert) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  peer.set_ping_interval(60.0);
  AdaptivePingParams params;  // enabled = false
  for (int i = 0; i < 100; ++i) peer.note_ping_result(true, params);
  EXPECT_DOUBLE_EQ(peer.ping_interval(), 60.0);
}

TEST(Detection, BlacklistsAfterThreshold) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  DetectionParams params;
  params.enabled = true;
  params.min_referrals = 5;
  params.bad_threshold = 0.6;
  // 4 bad referrals: below min sample count, no decision yet.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(peer.note_referral(7, true, params));
  }
  EXPECT_FALSE(peer.blacklisted(7));
  // 5th bad referral: 100% > 60% threshold.
  EXPECT_TRUE(peer.note_referral(7, true, params));
  EXPECT_TRUE(peer.blacklisted(7));
  // Further referrals from a blacklisted source are ignored.
  EXPECT_FALSE(peer.note_referral(7, true, params));
}

TEST(Detection, HonestReferrerStaysClean) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  DetectionParams params;
  params.enabled = true;
  params.min_referrals = 5;
  params.bad_threshold = 0.6;
  // 30% bad — typical honest staleness, below the threshold.
  for (int i = 0; i < 70; ++i) EXPECT_FALSE(peer.note_referral(7, false, params));
  for (int i = 0; i < 30; ++i) EXPECT_FALSE(peer.note_referral(7, true, params));
  EXPECT_FALSE(peer.blacklisted(7));
}

TEST(Detection, DisabledNeverBlacklists) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  DetectionParams params;  // enabled = false
  for (int i = 0; i < 100; ++i) peer.note_referral(7, true, params);
  EXPECT_FALSE(peer.blacklisted(7));
  EXPECT_EQ(peer.blacklist_size(), 0u);
}

TEST(Detection, UnknownSourceIgnored) {
  Peer peer(1, 0.0, content::Library{}, 10, false);
  DetectionParams params;
  params.enabled = true;
  params.min_referrals = 1;
  EXPECT_FALSE(peer.note_referral(kInvalidPeer, true, params));
}

TEST(AdaptiveParallelUnit, DoublesAfterTriggerAndCaps) {
  QueryExecution query(1, 7, 1, Policy::kRandom, 0.0, /*parallel=*/1);
  EXPECT_EQ(query.slot_parallel(), 1u);
  for (int i = 0; i < 3; ++i) query.note_slot(false, true, 3, 8);
  EXPECT_EQ(query.slot_parallel(), 2u);
  for (int i = 0; i < 3; ++i) query.note_slot(false, true, 3, 8);
  EXPECT_EQ(query.slot_parallel(), 4u);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) query.note_slot(false, true, 3, 8);
  }
  EXPECT_EQ(query.slot_parallel(), 8u);  // capped
}

TEST(AdaptiveParallelUnit, ResultsResetTheCounter) {
  QueryExecution query(1, 7, 1, Policy::kRandom, 0.0, 1);
  query.note_slot(false, true, 3, 8);
  query.note_slot(false, true, 3, 8);
  query.note_slot(true, true, 3, 8);  // progress resets
  query.note_slot(false, true, 3, 8);
  query.note_slot(false, true, 3, 8);
  EXPECT_EQ(query.slot_parallel(), 1u);
}

TEST(AdaptiveParallelUnit, NeverShrinksBelowStartingWidth) {
  QueryExecution query(1, 7, 1, Policy::kRandom, 0.0, /*parallel=*/100);
  for (int i = 0; i < 10; ++i) query.note_slot(false, true, 1, 32);
  EXPECT_GE(query.slot_parallel(), 100u);
}

TEST(QueryExecutionSource, ProvenanceCarriedThroughHeap) {
  QueryExecution query(1, 7, 1, Policy::kMFS, 0.0);
  Rng rng(1);
  query.add_candidate(CacheEntry{2, 0.0, 10, 0}, /*source=*/9, rng);
  query.add_candidate(CacheEntry{3, 0.0, 99, 0}, rng);  // own link cache
  auto first = query.next_candidate();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->entry.id, 3u);
  EXPECT_EQ(first->source, kInvalidPeer);
  auto second = query.next_candidate();
  EXPECT_EQ(second->entry.id, 2u);
  EXPECT_EQ(second->source, 9u);
}

// --- End-to-end behaviour ---------------------------------------------------

TEST(Selfish, SelfishPeersGetFasterAnswersAndLoadTheNetwork) {
  SystemParams system = base_system(300);
  system.percent_selfish_peers = 20.0;
  system.selfish_parallel_probes = 50;
  GuessSimulation sim(SimulationConfig().system(system).protocol(ProtocolParams{}).options(quick()));
  auto results = sim.run();
  ASSERT_GT(results.selfish.queries_completed, 0u);
  ASSERT_GT(results.honest.queries_completed, 0u);
  // Blasting wide is the whole point: much faster responses...
  EXPECT_LT(results.selfish.response_time.mean(),
            results.honest.response_time.mean() * 0.3);
  // ...at a higher per-query probe cost than serial probing.
  EXPECT_GT(results.selfish.probes_per_query(),
            results.honest.probes_per_query());
}

TEST(Selfish, PaymentsContainSelfishBlasting) {
  SystemParams system = base_system(300);
  system.percent_selfish_peers = 20.0;
  system.selfish_parallel_probes = 50;
  ProtocolParams with_payments;
  with_payments.payments.enabled = true;
  GuessSimulation unpaid(SimulationConfig().system(system).protocol(ProtocolParams{}).options(quick()));
  GuessSimulation paid(SimulationConfig().system(system).protocol(with_payments).options(quick()));
  auto free_ride = unpaid.run();
  auto economy = paid.run();
  // Free riding: blasting answers essentially instantly.
  EXPECT_LT(free_ride.selfish.response_time.mean(),
            free_ride.honest.response_time.mean() * 0.3);
  // The credit budget removes the advantage: once the endowment is burned,
  // a blaster waits on its serve income and ends up no faster than honest
  // serial probing, with its probe volume reduced.
  EXPECT_GE(economy.selfish.response_time.mean(),
            economy.honest.response_time.mean());
  EXPECT_LT(economy.selfish.probes_per_query(),
            free_ride.selfish.probes_per_query());
}

TEST(Selfish, RolesPreservedThroughChurn) {
  SystemParams system = base_system(200);
  system.percent_selfish_peers = 15.0;
  system.lifespan_multiplier = 0.05;
  GuessSimulation sim(SimulationConfig().system(system).protocol(ProtocolParams{}).options(quick()));
  auto& network = sim.network();
  sim.run();
  std::size_t selfish = 0;
  for (PeerId id : network.alive_ids()) {
    if (network.find(id)->selfish()) ++selfish;
  }
  EXPECT_EQ(selfish, 30u);
}

TEST(Payments, CreditConservedPlusEndowments) {
  SystemParams system = base_system(150);
  ProtocolParams protocol;
  protocol.payments.enabled = true;
  protocol.payments.credit_cap = 1e18;   // no burning at the cap
  protocol.payments.serve_reward = 1.0;  // zero-sum transfers
  GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(quick()));
  auto& network = sim.network();
  sim.run();
  // Every transfer is zero-sum; credit leaves the system only when peers
  // die. Alive peers' total can therefore never exceed endowments issued.
  double total = 0.0;
  for (PeerId id : network.alive_ids()) {
    total += network.find(id)->credit();
  }
  double issued = protocol.payments.initial_credit *
                  static_cast<double>(150 + network.deaths());
  EXPECT_LE(total, issued + 1e-6);
  EXPECT_GT(total, 0.0);
}

TEST(Payments, StalledQueriesAreAbandonedNotStuck) {
  SystemParams system = base_system(200);
  ProtocolParams protocol;
  protocol.payments.enabled = true;
  protocol.payments.initial_credit = 0.0;  // nobody can ever probe
  protocol.payments.max_stalled_slots = 10;
  GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(quick()));
  auto results = sim.run();
  EXPECT_GT(results.queries_stalled_out, 0u);
  EXPECT_EQ(results.queries_satisfied, 0u);
  EXPECT_EQ(results.probes.total(), 0u);
}

TEST(AdaptiveParallel, ImprovesWorstCaseResponseTime) {
  auto run = [](bool adaptive) {
    ProtocolParams protocol;
    protocol.adaptive_parallel = adaptive;
    protocol.adaptive_parallel_trigger = 5;
    GuessSimulation sim(SimulationConfig().system(base_system(300)).protocol(protocol).options(quick()));
    return sim.run();
  };
  auto fixed = run(false);
  auto adaptive = run(true);
  // Rare-item queries dominate the response-time tail; ramping the probe
  // rate compresses it.
  EXPECT_LT(adaptive.response_time.max(), fixed.response_time.max() * 0.7);
  EXPECT_LE(adaptive.response_time.mean(), fixed.response_time.mean());
}

TEST(AdaptivePingE2E, MatchesMaintenanceToChurn) {
  auto run = [](double multiplier, bool adaptive) {
    SystemParams system = base_system(200);
    system.lifespan_multiplier = multiplier;
    ProtocolParams protocol;
    protocol.adaptive_ping.enabled = adaptive;
    protocol.adaptive_ping.window = 5;   // adapt fast enough for the test
    protocol.adaptive_ping.dead_low = 0.25;  // back off below 25% dead pings
    SimulationOptions options = quick();
    options.enable_queries = false;
    options.warmup = 300.0;
    options.measure = 3000.0;
    GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(options));
    return sim.run();
  };
  // Stable network: the adaptive controller backs off (1.5x per window up
  // to the cap), sending far fewer pings than the fixed 30-second schedule
  // at similar cache health.
  auto fixed_stable = run(5.0, false);
  auto adaptive_stable = run(5.0, true);
  EXPECT_LT(static_cast<double>(adaptive_stable.pings_sent),
            static_cast<double>(fixed_stable.pings_sent) * 0.6);
  // The controller trades a little freshness for much less overhead.
  EXPECT_GT(adaptive_stable.cache_health.fraction_live, 0.7);
}

TEST(DetectionE2E, DetectionPlusBootstrapSaveMrFromCollusion) {
  SystemParams system = base_system(400);
  system.percent_bad_peers = 20.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  ProtocolParams mr;
  mr.query_probe = Policy::kMR;
  mr.query_pong = Policy::kMR;
  mr.cache_replacement = Replacement::kLR;
  mr.cache_size = 40;  // paper-like cache:network ratio

  ProtocolParams detect_only = mr;
  detect_only.detection.enabled = true;
  ProtocolParams full_defense = detect_only;
  full_defense.bootstrap.pong_server_reseed = true;

  SimulationOptions options = quick();
  options.warmup = 1200.0;  // let the attack and the defense reach steady state
  options.measure = 1200.0;
  auto run = [&](const ProtocolParams& protocol) {
    GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(options));
    return sim.run();
  };
  auto undefended = run(mr);
  auto detected = run(detect_only);
  auto defended = run(full_defense);

  // Collusion kills plain MR outright (§6.4).
  EXPECT_GT(undefended.unsatisfied_rate(), 0.9);
  // Detection alone identifies attackers (probes stop being wasted on
  // them) but cannot rebuild a collapsed overlay...
  EXPECT_LT(detected.probes_per_query(),
            undefended.probes_per_query() * 0.5);
  EXPECT_GT(detected.unsatisfied_rate(), 0.5);
  // ...the §6.1 pong-server rebootstrap restores service.
  EXPECT_LT(defended.unsatisfied_rate(), 0.3);
  EXPECT_GT(defended.cache_health.good_entries,
            undefended.cache_health.good_entries + 10.0);
}

TEST(QueryCacheAblation, WithoutQueryCacheRareItemsFail) {
  auto run = [](bool use_query_cache) {
    ProtocolParams protocol;
    protocol.use_query_cache = use_query_cache;
    // Paper-like cache:network ratio so the link cache alone cannot cover
    // the network (the whole point of the query cache, §2.3).
    protocol.cache_size = 30;
    GuessSimulation sim(SimulationConfig().system(base_system(300)).protocol(protocol).options(quick()));
    return sim.run();
  };
  auto with = run(true);
  auto without = run(false);
  // Without the query cache the extent is capped by the link cache, so
  // fewer probes but many more unsatisfied queries (§2.3's rationale).
  EXPECT_LT(without.probes_per_query(), with.probes_per_query());
  EXPECT_GT(without.unsatisfied_rate(), with.unsatisfied_rate() * 1.5);
  EXPECT_LE(without.query_cache_population.max(), 30.0);
}

}  // namespace
}  // namespace guess
