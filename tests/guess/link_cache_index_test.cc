// Equivalence of the incremental ScoreIndex selection paths with the legacy
// full-scan paths: a cache with configure_indices() and an unconfigured
// cache fed the *identical* operation sequence must make bitwise-identical
// decisions — same offer outcomes, same victims, same select_best /
// select_top orders, same entries — for every deterministic policy, with
// first-hand-only flipped mid-stream. This is the contract that let the
// network switch to indexed selection without perturbing a single pinned
// result.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "guess/link_cache.h"

namespace guess {
namespace {

constexpr PeerId kOwner = 424242;

bool entry_eq(const CacheEntry& a, const CacheEntry& b) {
  return a.id == b.id && a.ts == b.ts && a.num_files == b.num_files &&
         a.num_res == b.num_res && a.first_hand == b.first_hand;
}

void expect_same_entries(const LinkCache& indexed, const LinkCache& legacy) {
  auto a = indexed.entries();
  auto b = legacy.entries();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(entry_eq(a[i], b[i]))
        << "entry " << i << " diverged (indexed id " << a[i].id
        << " vs legacy id " << b[i].id << ")";
  }
}

struct Pair {
  LinkCache indexed;
  LinkCache legacy;
  // Separate but identically seeded streams so a draw on one side cannot
  // perturb the other; equivalence requires both sides to consume the same
  // draw sequence.
  Rng rng_indexed;
  Rng rng_legacy;

  Pair(std::size_t capacity, std::initializer_list<Policy> selections,
       Replacement retention, std::uint64_t seed)
      : indexed(kOwner, capacity),
        legacy(kOwner, capacity),
        rng_indexed(seed),
        rng_legacy(seed) {
    indexed.configure_indices(selections, retention);
    // `legacy` stays unconfigured: every selection and retention decision
    // takes the full-scan path.
  }
};

TEST(LinkCacheIndexEquivalence, RandomisedChurnAllDeterministicPolicies) {
  const std::vector<Policy> kSelections = {Policy::kMRU, Policy::kLRU,
                                           Policy::kMFS, Policy::kMR};
  const std::vector<Replacement> kRetentions = {
      Replacement::kLRU, Replacement::kMRU, Replacement::kLFS,
      Replacement::kLR};

  for (Replacement retention : kRetentions) {
    SCOPED_TRACE("retention " + std::to_string(static_cast<int>(retention)));
    Pair caches(16, {Policy::kMRU, Policy::kLRU, Policy::kMFS, Policy::kMR},
                retention, /*seed=*/99);
    Rng driver(7 + static_cast<std::uint64_t>(retention));

    for (int step = 0; step < 3000; ++step) {
      double roll = driver.uniform();
      if (roll < 0.45) {
        // Offer a candidate; collisions with the owner, residents and ties
        // in every score dimension are all exercised by the narrow ranges.
        CacheEntry candidate;
        candidate.id = driver.index(40);
        candidate.ts = static_cast<sim::Time>(driver.index(20));
        candidate.num_files = static_cast<std::uint32_t>(driver.index(6));
        candidate.num_res = static_cast<std::uint32_t>(driver.index(4));
        candidate.first_hand = driver.bernoulli(0.3);
        bool a = caches.indexed.offer(candidate, retention,
                                      caches.rng_indexed);
        bool b = caches.legacy.offer(candidate, retention,
                                     caches.rng_legacy);
        ASSERT_EQ(a, b) << "offer decision diverged at step " << step;
      } else if (roll < 0.55) {
        PeerId victim = driver.index(40);
        ASSERT_EQ(caches.indexed.evict(victim), caches.legacy.evict(victim));
      } else if (roll < 0.65) {
        PeerId id = driver.index(40);
        sim::Time now = static_cast<sim::Time>(step);
        caches.indexed.touch(id, now);
        caches.legacy.touch(id, now);
      } else if (roll < 0.75) {
        PeerId id = driver.index(40);
        auto num_res = static_cast<std::uint32_t>(driver.index(5));
        caches.indexed.set_num_res(id, num_res);
        caches.legacy.set_num_res(id, num_res);
      } else if (roll < 0.80) {
        // Flip the MR* lens mid-stream: the indices must re-rank exactly
        // like the scans do.
        bool on = driver.bernoulli(0.5);
        caches.indexed.set_first_hand_only(on);
        caches.legacy.set_first_hand_only(on);
      } else if (roll < 0.90) {
        Policy policy = kSelections[driver.index(kSelections.size())];
        auto a = caches.indexed.select_best(policy, caches.rng_indexed);
        auto b = caches.legacy.select_best(policy, caches.rng_legacy);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) ASSERT_TRUE(entry_eq(*a, *b)) << "select_best diverged";
      } else {
        Policy policy = kSelections[driver.index(kSelections.size())];
        std::size_t count = 1 + driver.index(20);
        auto a = caches.indexed.select_top(policy, count,
                                           caches.rng_indexed);
        auto b = caches.legacy.select_top(policy, count,
                                          caches.rng_legacy);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          ASSERT_TRUE(entry_eq(a[i], b[i]))
              << "select_top order diverged at rank " << i;
        }
      }
      expect_same_entries(caches.indexed, caches.legacy);
    }
    EXPECT_TRUE(caches.indexed.full());  // the churn actually filled it
  }
}

// kRandom draws per decision and is deliberately never indexed; both sides
// take the same draw-consuming path, so equivalence must hold trivially —
// pinned here so a future "optimisation" of the random path can't silently
// skew draw order against an unconfigured cache.
TEST(LinkCacheIndexEquivalence, RandomPolicyKeepsIdenticalDrawSequence) {
  Pair caches(8, {Policy::kMRU}, Replacement::kRandom, /*seed=*/5);
  Rng driver(11);
  for (int step = 0; step < 500; ++step) {
    CacheEntry candidate;
    candidate.id = driver.index(24);
    candidate.ts = static_cast<sim::Time>(step);
    bool a = caches.indexed.offer(candidate, Replacement::kRandom,
                                  caches.rng_indexed);
    bool b = caches.legacy.offer(candidate, Replacement::kRandom,
                                 caches.rng_legacy);
    ASSERT_EQ(a, b);
    auto ta = caches.indexed.select_top(Policy::kRandom, 4,
                                        caches.rng_indexed);
    auto tb = caches.legacy.select_top(Policy::kRandom, 4,
                                       caches.rng_legacy);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      ASSERT_TRUE(entry_eq(ta[i], tb[i]));
    }
    expect_same_entries(caches.indexed, caches.legacy);
  }
  // Both streams consumed the same number of draws: the next raw outputs
  // agree.
  EXPECT_EQ(caches.rng_indexed.engine()(), caches.rng_legacy.engine()());
}

// select_top_into must be a pure allocation shape change: identical output
// to select_top, draw for draw.
TEST(LinkCacheIndexEquivalence, SelectTopIntoMatchesSelectTop) {
  Pair caches(12, {Policy::kMFS, Policy::kLRU}, Replacement::kLR,
              /*seed=*/3);
  Rng driver(13);
  std::vector<CacheEntry> out;
  for (int step = 0; step < 400; ++step) {
    CacheEntry candidate;
    candidate.id = driver.index(30);
    candidate.ts = static_cast<sim::Time>(driver.index(10));
    candidate.num_files = static_cast<std::uint32_t>(driver.index(8));
    caches.indexed.offer(candidate, Replacement::kLR, caches.rng_indexed);
    caches.legacy.offer(candidate, Replacement::kLR, caches.rng_legacy);

    Policy policy = driver.bernoulli(0.5) ? Policy::kMFS : Policy::kLRU;
    std::size_t count = 1 + driver.index(14);
    caches.indexed.select_top_into(policy, count, caches.rng_indexed, out);
    auto expected = caches.legacy.select_top(policy, count,
                                             caches.rng_legacy);
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(entry_eq(out[i], expected[i]));
    }
  }
}

}  // namespace
}  // namespace guess
