#include "guess/policy.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

CacheEntry entry(PeerId id, sim::Time ts, std::uint32_t files,
                 std::uint32_t res) {
  return CacheEntry{id, ts, files, res};
}

TEST(Policy, MruPrefersRecentTimestamps) {
  Rng rng(1);
  EXPECT_GT(selection_score(Policy::kMRU, entry(1, 100.0, 0, 0), rng),
            selection_score(Policy::kMRU, entry(2, 50.0, 0, 0), rng));
}

TEST(Policy, LruPrefersOldTimestamps) {
  Rng rng(1);
  EXPECT_GT(selection_score(Policy::kLRU, entry(1, 50.0, 0, 0), rng),
            selection_score(Policy::kLRU, entry(2, 100.0, 0, 0), rng));
}

TEST(Policy, MfsPrefersMoreFiles) {
  Rng rng(1);
  EXPECT_GT(selection_score(Policy::kMFS, entry(1, 0.0, 500, 0), rng),
            selection_score(Policy::kMFS, entry(2, 0.0, 10, 0), rng));
}

TEST(Policy, MrPrefersMoreResults) {
  Rng rng(1);
  EXPECT_GT(selection_score(Policy::kMR, entry(1, 0.0, 0, 7), rng),
            selection_score(Policy::kMR, entry(2, 0.0, 0, 2), rng));
}

TEST(Policy, RandomScoresVary) {
  Rng rng(1);
  CacheEntry e = entry(1, 0.0, 0, 0);
  double a = selection_score(Policy::kRandom, e, rng);
  double b = selection_score(Policy::kRandom, e, rng);
  EXPECT_NE(a, b);
}

TEST(Replacement, LfsEvictsFewestFiles) {
  Rng rng(1);
  // Lower retention = evicted first.
  EXPECT_LT(retention_score(Replacement::kLFS, entry(1, 0.0, 3, 0), rng),
            retention_score(Replacement::kLFS, entry(2, 0.0, 100, 0), rng));
}

TEST(Replacement, LrEvictsFewestResults) {
  Rng rng(1);
  EXPECT_LT(retention_score(Replacement::kLR, entry(1, 0.0, 0, 0), rng),
            retention_score(Replacement::kLR, entry(2, 0.0, 0, 5), rng));
}

TEST(Replacement, LruEvictsOldest) {
  Rng rng(1);
  EXPECT_LT(retention_score(Replacement::kLRU, entry(1, 10.0, 0, 0), rng),
            retention_score(Replacement::kLRU, entry(2, 90.0, 0, 0), rng));
}

TEST(Replacement, MruEvictsNewest) {
  Rng rng(1);
  EXPECT_LT(retention_score(Replacement::kMRU, entry(1, 90.0, 0, 0), rng),
            retention_score(Replacement::kMRU, entry(2, 10.0, 0, 0), rng));
}

class PolicyRoundTrip : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicyRoundTrip, ToStringParsesBack) {
  EXPECT_EQ(parse_policy(to_string(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(All, PolicyRoundTrip,
                         ::testing::Values(Policy::kRandom, Policy::kMRU,
                                           Policy::kLRU, Policy::kMFS,
                                           Policy::kMR));

class ReplacementRoundTrip : public ::testing::TestWithParam<Replacement> {};

TEST_P(ReplacementRoundTrip, ToStringParsesBack) {
  EXPECT_EQ(parse_replacement(to_string(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(All, ReplacementRoundTrip,
                         ::testing::Values(Replacement::kRandom,
                                           Replacement::kLRU,
                                           Replacement::kMRU,
                                           Replacement::kLFS,
                                           Replacement::kLR));

TEST(Policy, ParseAcceptsLongRandomAlias) {
  EXPECT_EQ(parse_policy("Random"), Policy::kRandom);
  EXPECT_EQ(parse_replacement("Random"), Replacement::kRandom);
}

TEST(Policy, ParseRejectsUnknownNames) {
  EXPECT_THROW(parse_policy("XYZ"), CheckError);
  EXPECT_THROW(parse_replacement("MFS2"), CheckError);
}

}  // namespace
}  // namespace guess
