// The first-hand trust model behind MR* and the detection-triggered policy
// switch: stored NumRes values circulate unmodified, but ranking and
// retention ignore claims the owner did not verify personally.
#include <gtest/gtest.h>

#include "common/check.h"
#include "guess/link_cache.h"

namespace guess {
namespace {

constexpr PeerId kOwner = 77;

TEST(FirstHand, TrustedValueDependsOnProvenance) {
  CacheEntry foreign{1, 0.0, 10, 20, /*first_hand=*/false};
  CacheEntry own{2, 0.0, 10, 20, /*first_hand=*/true};
  EXPECT_EQ(foreign.trusted_num_res(false), 20u);  // trusting mode
  EXPECT_EQ(foreign.trusted_num_res(true), 0u);    // first-hand-only mode
  EXPECT_EQ(own.trusted_num_res(true), 20u);       // verified personally
}

TEST(FirstHand, MrSelectionIgnoresForeignClaims) {
  LinkCache cache(kOwner, 4);
  Rng rng(1);
  cache.insert_free(CacheEntry{1, 0.0, 0, 50, false});  // loud claim
  cache.insert_free(CacheEntry{2, 0.0, 0, 2, true});    // verified producer

  // Trusting mode: the claim wins.
  EXPECT_EQ(cache.select_best(Policy::kMR, rng)->id, 1u);

  // First-hand-only: the claim ranks as 0, the verified producer wins.
  cache.set_first_hand_only(true);
  EXPECT_EQ(cache.select_best(Policy::kMR, rng)->id, 2u);
}

TEST(FirstHand, LrRetentionProtectsVerifiedProducers) {
  LinkCache cache(kOwner, 2);
  Rng rng(1);
  cache.set_first_hand_only(true);
  cache.insert_free(CacheEntry{1, 0.0, 0, 50, false});  // unverified claim
  cache.insert_free(CacheEntry{2, 0.0, 0, 1, true});    // verified producer
  // A new verified producer evicts the claim (treated as 0), never the
  // first-hand entry.
  EXPECT_TRUE(cache.offer(CacheEntry{3, 0.0, 0, 2, true}, Replacement::kLR,
                          rng));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(FirstHand, ForeignZeroCandidateCannotDisplaceForeignZeroVictim) {
  LinkCache cache(kOwner, 1);
  Rng rng(1);
  cache.set_first_hand_only(true);
  cache.insert_free(CacheEntry{1, 0.0, 0, 50, false});
  // Tie at trusted value 0: candidate must strictly beat the victim.
  EXPECT_FALSE(cache.offer(CacheEntry{2, 0.0, 0, 99, false},
                           Replacement::kLR, rng));
  EXPECT_TRUE(cache.contains(1));
}

TEST(FirstHand, SetNumResUpgradesProvenance) {
  LinkCache cache(kOwner, 2);
  cache.insert_free(CacheEntry{1, 0.0, 0, 20, false});
  EXPECT_FALSE(cache.get(1)->first_hand);
  cache.set_num_res(1, 3);  // the owner probed the peer itself
  EXPECT_TRUE(cache.get(1)->first_hand);
  EXPECT_EQ(cache.get(1)->num_res, 3u);
  Rng rng(1);
  cache.set_first_hand_only(true);
  EXPECT_EQ(cache.select_best(Policy::kMR, rng)->id, 1u);
}

TEST(FirstHand, StoredClaimSurvivesModeForDetection) {
  // The mode changes what rankings USE, never what is STORED — the §6.4
  // detection heuristic needs the original outsized claim as evidence.
  LinkCache cache(kOwner, 2);
  cache.set_first_hand_only(true);
  Rng rng(1);
  cache.offer(CacheEntry{1, 0.0, 0, 42, false}, Replacement::kLR, rng);
  EXPECT_EQ(cache.get(1)->num_res, 42u);
  EXPECT_FALSE(cache.get(1)->first_hand);
}

TEST(FirstHand, MfsUnaffectedByMode) {
  // First-hand-only governs NumRes only; NumFiles stays trusted (the MFS
  // gullibility the paper analyzes is a separate axis).
  LinkCache cache(kOwner, 4);
  Rng rng(1);
  cache.set_first_hand_only(true);
  cache.insert_free(CacheEntry{1, 0.0, 500, 0, false});
  cache.insert_free(CacheEntry{2, 0.0, 10, 0, true});
  EXPECT_EQ(cache.select_best(Policy::kMFS, rng)->id, 1u);
}

}  // namespace
}  // namespace guess
