// OverloadController unit tests: admission windows, shedding watermarks,
// AIMD dynamics, and the pump/drain protocol (DESIGN.md §13.3).
#include "guess/overload.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

OverloadParams params_for(OverloadPolicy policy) {
  OverloadParams p;
  p.policy = policy;
  p.max_in_flight = 2;
  p.queue_capacity = 4;
  p.shed_watermark = 2;
  return p;
}

TEST(OverloadPolicyNames, RoundTrip) {
  for (OverloadPolicy policy :
       {OverloadPolicy::kNone, OverloadPolicy::kAdmit, OverloadPolicy::kShed,
        OverloadPolicy::kBackpressure}) {
    EXPECT_EQ(parse_overload_policy(overload_policy_name(policy)), policy);
  }
  EXPECT_THROW(parse_overload_policy("drop"), CheckError);
  EXPECT_THROW(parse_overload_policy(""), CheckError);
}

TEST(OverloadController, NoneAdmitsEverythingImmediately) {
  OverloadController c(params_for(OverloadPolicy::kNone));
  for (int i = 0; i < 100; ++i) {
    AdmitDecision d = c.on_arrival(static_cast<double>(i));
    EXPECT_EQ(d.action, AdmitAction::kStart);
    EXPECT_EQ(d.shed, 0u);
  }
  EXPECT_EQ(c.in_flight(), 100u);
  EXPECT_EQ(c.queue_depth(), 0u);
}

TEST(OverloadController, AdmitRejectsAtTheDoorPastTheWindow) {
  OverloadController c(params_for(OverloadPolicy::kAdmit));
  EXPECT_EQ(c.on_arrival(0.0).action, AdmitAction::kStart);
  EXPECT_EQ(c.on_arrival(1.0).action, AdmitAction::kStart);
  AdmitDecision d = c.on_arrival(2.0);
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_EQ(d.shed, 0u);
  EXPECT_EQ(c.in_flight(), 2u);
  EXPECT_EQ(c.queue_depth(), 0u);  // admission control never queues

  // Releasing a slot readmits the next arrival.
  c.on_release();
  EXPECT_EQ(c.on_arrival(3.0).action, AdmitAction::kStart);
}

TEST(OverloadController, ShedQueuesBelowTheWatermark) {
  OverloadController c(params_for(OverloadPolicy::kShed));
  EXPECT_EQ(c.on_arrival(0.0).action, AdmitAction::kStart);
  EXPECT_EQ(c.on_arrival(1.0).action, AdmitAction::kStart);
  EXPECT_EQ(c.on_arrival(2.0).action, AdmitAction::kQueue);
  EXPECT_EQ(c.on_arrival(3.0).action, AdmitAction::kQueue);
  EXPECT_EQ(c.queue_depth(), 2u);

  // Pump: released slot starts the OLDEST queued arrival with its original
  // issue time (queueing delay stays inside its measured latency).
  c.on_release();
  sim::Time issue = -1.0;
  EXPECT_TRUE(c.try_start(&issue));
  EXPECT_DOUBLE_EQ(issue, 2.0);
  EXPECT_FALSE(c.try_start(&issue));  // window full again
  EXPECT_EQ(c.in_flight(), 2u);
  EXPECT_EQ(c.queue_depth(), 1u);
}

TEST(OverloadController, ShedOldestDropsTheLongestWaiterAndTakesTheArrival) {
  OverloadParams p = params_for(OverloadPolicy::kShed);
  OverloadController c(p);
  c.on_arrival(0.0);  // start
  c.on_arrival(1.0);  // start
  c.on_arrival(2.0);  // queue
  c.on_arrival(3.0);  // queue -> at watermark
  AdmitDecision d = c.on_arrival(4.0);
  EXPECT_EQ(d.action, AdmitAction::kQueue);
  EXPECT_EQ(d.shed, 1u);
  EXPECT_DOUBLE_EQ(d.shed_issue, 2.0);  // oldest waiter dropped
  EXPECT_EQ(c.queue_depth(), 2u);       // 3.0 and 4.0 remain

  c.on_release();
  sim::Time issue = -1.0;
  EXPECT_TRUE(c.try_start(&issue));
  EXPECT_DOUBLE_EQ(issue, 3.0);
}

TEST(OverloadController, ShedNewestRefusesTheArrivalInstead) {
  OverloadParams p = params_for(OverloadPolicy::kShed);
  p.shed_oldest = false;
  OverloadController c(p);
  c.on_arrival(0.0);
  c.on_arrival(1.0);
  c.on_arrival(2.0);
  c.on_arrival(3.0);
  AdmitDecision d = c.on_arrival(4.0);
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_EQ(d.shed, 1u);                // counted as shed, not rejected
  EXPECT_DOUBLE_EQ(d.shed_issue, 4.0);  // the arrival itself
  EXPECT_EQ(c.queue_depth(), 2u);       // 2.0 and 3.0 untouched
}

TEST(OverloadController, ArrivalsNeverOvertakeTheQueue) {
  // With a non-empty queue a free slot must go to the oldest waiter, not to
  // a fresh arrival (FIFO fairness).
  OverloadController c(params_for(OverloadPolicy::kShed));
  c.on_arrival(0.0);
  c.on_arrival(1.0);
  c.on_arrival(2.0);  // queued
  c.on_release();     // slot free, queue non-empty
  AdmitDecision d = c.on_arrival(3.0);
  EXPECT_EQ(d.action, AdmitAction::kQueue);
  sim::Time issue = -1.0;
  EXPECT_TRUE(c.try_start(&issue));
  EXPECT_DOUBLE_EQ(issue, 2.0);
}

TEST(OverloadController, BackpressureQueuesThenRejectsAtCapacity) {
  OverloadParams p = params_for(OverloadPolicy::kBackpressure);
  OverloadController c(p);
  c.on_arrival(0.0);
  c.on_arrival(1.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.on_arrival(2.0 + i).action, AdmitAction::kQueue);
  }
  EXPECT_EQ(c.queue_depth(), 4u);
  EXPECT_EQ(c.on_arrival(6.0).action, AdmitAction::kReject);
}

TEST(OverloadController, AimdGrowsOnHealthShrinksOnFailures) {
  OverloadParams p = params_for(OverloadPolicy::kBackpressure);
  p.max_in_flight = 8;
  p.min_window = 2;
  p.max_window = 16;
  p.additive_increase = 4.0;
  p.multiplicative_decrease = 0.5;
  p.target_failure_rate = 0.05;
  OverloadController c(p);
  EXPECT_DOUBLE_EQ(c.window(), 8.0);

  c.tick(0.0);  // healthy: additive increase
  EXPECT_DOUBLE_EQ(c.window(), 12.0);
  c.tick(0.01);  // under target: still healthy
  EXPECT_DOUBLE_EQ(c.window(), 16.0);
  c.tick(0.0);  // clamped at max_window
  EXPECT_DOUBLE_EQ(c.window(), 16.0);

  c.tick(0.5);  // failing: multiplicative decrease
  EXPECT_DOUBLE_EQ(c.window(), 8.0);
  c.tick(0.5);
  c.tick(0.5);
  c.tick(0.5);
  EXPECT_DOUBLE_EQ(c.window(), 2.0);  // clamped at min_window
}

TEST(OverloadController, AimdTreatsDeepBacklogAsPressureButNotAShallowOne) {
  OverloadParams p = params_for(OverloadPolicy::kBackpressure);
  p.min_window = 1;
  p.queue_capacity = 4;
  OverloadController c(p);
  c.on_arrival(0.0);
  c.on_arrival(1.0);
  c.on_arrival(2.0);  // queue depth 1: under open-loop load the queue is
  c.on_arrival(3.0);  // depth 2 = half capacity: still not pressure
  double before = c.window();
  c.tick(0.0);  // rarely empty; a shallow backlog must not shrink the window
  EXPECT_GT(c.window(), before);
  c.on_arrival(4.0);  // depth 3 > capacity/2: now it is pressure
  before = c.window();
  c.tick(0.0);
  EXPECT_LT(c.window(), before);
}

TEST(OverloadController, AimdShrunkWindowStillDrainsWaitersOnRelease) {
  OverloadParams p = params_for(OverloadPolicy::kBackpressure);
  p.max_in_flight = 4;
  p.min_window = 1;
  OverloadController c(p);
  c.on_arrival(0.0);
  c.on_arrival(1.0);
  c.on_arrival(2.0);
  c.on_arrival(3.0);
  c.on_arrival(4.0);  // queued
  sim::Time issue = -1.0;
  EXPECT_FALSE(c.try_start(&issue));  // window 4, all slots busy
  c.tick(0.5);                        // pressure: window 4 -> 2
  EXPECT_DOUBLE_EQ(c.window(), 2.0);
  c.on_release();  // in_flight 3 > window 2: still no admission
  EXPECT_FALSE(c.try_start(&issue));
  c.on_release();
  c.on_release();  // in_flight 1 < window 2: waiter admitted
  EXPECT_TRUE(c.try_start(&issue));
  EXPECT_DOUBLE_EQ(issue, 4.0);
}

TEST(OverloadController, TickIsANoOpForNonAimdPolicies) {
  for (OverloadPolicy policy : {OverloadPolicy::kNone, OverloadPolicy::kAdmit,
                                OverloadPolicy::kShed}) {
    OverloadController c(params_for(policy));
    double before = c.window();
    c.tick(1.0);
    EXPECT_DOUBLE_EQ(c.window(), before) << overload_policy_name(policy);
  }
}

TEST(OverloadController, DrainPopsOldestFirstWithoutTouchingInFlight) {
  OverloadController c(params_for(OverloadPolicy::kShed));
  c.on_arrival(0.0);
  c.on_arrival(1.0);
  c.on_arrival(2.0);
  c.on_arrival(3.0);
  EXPECT_EQ(c.in_flight(), 2u);
  sim::Time issue = -1.0;
  EXPECT_TRUE(c.drain_one(&issue));
  EXPECT_DOUBLE_EQ(issue, 2.0);
  EXPECT_TRUE(c.drain_one(&issue));
  EXPECT_DOUBLE_EQ(issue, 3.0);
  EXPECT_FALSE(c.drain_one(&issue));
  EXPECT_EQ(c.in_flight(), 2u);
}

TEST(OverloadController, RingBufferSurvivesWraparound) {
  OverloadParams p = params_for(OverloadPolicy::kShed);
  p.queue_capacity = 3;
  p.shed_watermark = 3;
  OverloadController c(p);
  c.on_arrival(0.0);
  c.on_arrival(1.0);
  // Cycle the queue several times past its capacity to exercise the ring
  // indices: queue one, start one, repeatedly.
  double t = 2.0;
  for (int round = 0; round < 10; ++round) {
    c.on_arrival(t);
    c.on_release();
    sim::Time issue = -1.0;
    ASSERT_TRUE(c.try_start(&issue));
    EXPECT_DOUBLE_EQ(issue, t);
    t += 1.0;
  }
  EXPECT_EQ(c.queue_depth(), 0u);
}

TEST(OverloadController, ReleaseUnderflowIsAnError) {
  OverloadController c(params_for(OverloadPolicy::kAdmit));
  EXPECT_THROW(c.on_release(), CheckError);
}

TEST(OverloadStats, DerivedRatesHandleEmptyAndTypicalWindows) {
  OverloadStats s;
  EXPECT_DOUBLE_EQ(s.goodput(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.slo_violation_rate(), 0.0);

  s.completed = 80;
  s.open_at_close = 20;
  s.slo_ok = 60;
  EXPECT_DOUBLE_EQ(s.goodput(30.0), 2.0);
  EXPECT_DOUBLE_EQ(s.slo_violation_rate(), 0.4);
}

}  // namespace
}  // namespace guess
