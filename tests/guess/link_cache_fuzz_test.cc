// Model-based fuzzing of LinkCache: random operation sequences are applied
// both to the cache and to a trivially correct reference model; observable
// state must stay identical and invariants must hold at every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/check.h"
#include "guess/link_cache.h"

namespace guess {
namespace {

constexpr PeerId kOwner = 424242;

// Reference model: a flat map with the same replacement semantics.
class ReferenceCache {
 public:
  ReferenceCache(std::size_t capacity, Replacement policy)
      : capacity_(capacity), policy_(policy) {}

  bool contains(PeerId id) const { return entries_.contains(id); }
  std::size_t size() const { return entries_.size(); }

  // Mirrors LinkCache::offer for deterministic policies. Returns whether
  // the candidate was inserted (Random is excluded from the fuzz because
  // its victim choice consumes RNG in implementation-specific order).
  bool offer(const CacheEntry& candidate) {
    if (candidate.id == kOwner || contains(candidate.id)) return false;
    if (entries_.size() < capacity_) {
      entries_[candidate.id] = candidate;
      return true;
    }
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [&](const auto& a, const auto& b) {
          return retention(a.second) < retention(b.second);
        });
    if (retention(candidate) <= retention(victim->second)) return false;
    entries_.erase(victim);
    entries_[candidate.id] = candidate;
    return true;
  }

  bool evict(PeerId id) { return entries_.erase(id) > 0; }

  void touch(PeerId id, sim::Time now) {
    auto it = entries_.find(id);
    if (it != entries_.end()) it->second.ts = now;
  }

  void set_num_res(PeerId id, std::uint32_t num_res) {
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      it->second.num_res = num_res;
      it->second.first_hand = true;
    }
  }

  const std::map<PeerId, CacheEntry>& entries() const { return entries_; }

 private:
  double retention(const CacheEntry& entry) const {
    Rng unused(0);
    return retention_score(policy_, entry, unused);
  }

  std::size_t capacity_;
  Replacement policy_;
  std::map<PeerId, CacheEntry> entries_;
};

class LinkCacheFuzz
    : public ::testing::TestWithParam<std::tuple<Replacement, int>> {};

TEST_P(LinkCacheFuzz, MatchesReferenceModel) {
  auto [policy, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Rng cache_rng(1);  // deterministic policies never consume it
  const std::size_t capacity = 8;
  LinkCache cache(kOwner, capacity);
  ReferenceCache reference(capacity, policy);

  double now = 0.0;
  // Scores are kept unique (but randomly ordered): tie-breaking between
  // equal retention scores is implementation-defined and would make model
  // equivalence meaningless.
  std::set<std::uint32_t> used;
  auto unique_value = [&]() {
    for (;;) {
      auto v = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
      if (used.insert(v).second) return v;
    }
  };
  for (int step = 0; step < 4000; ++step) {
    now += 0.001 + rng.uniform();
    // Small id space forces collisions, duplicates and re-offers.
    PeerId id = static_cast<PeerId>(rng.uniform_int(1, 24));
    if (rng.bernoulli(0.02)) id = kOwner;  // poke the self-rejection path
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        CacheEntry entry{id, rng.uniform(0.0, 1000.0), unique_value(),
                         unique_value()};
        EXPECT_EQ(cache.offer(entry, policy, cache_rng),
                  reference.offer(entry))
            << "step " << step;
        break;
      }
      case 1:
        EXPECT_EQ(cache.evict(id), reference.evict(id)) << "step " << step;
        break;
      case 2:
        cache.touch(id, now);
        reference.touch(id, now);
        break;
      case 3: {
        std::uint32_t n = unique_value();
        cache.set_num_res(id, n);
        reference.set_num_res(id, n);
        break;
      }
    }

    // Invariants + full state equivalence.
    ASSERT_LE(cache.size(), capacity);
    ASSERT_EQ(cache.size(), reference.size());
    ASSERT_FALSE(cache.contains(kOwner));
    for (const auto& [ref_id, ref_entry] : reference.entries()) {
      auto got = cache.get(ref_id);
      ASSERT_TRUE(got.has_value()) << "missing " << ref_id;
      ASSERT_DOUBLE_EQ(got->ts, ref_entry.ts);
      ASSERT_EQ(got->num_files, ref_entry.num_files);
      ASSERT_EQ(got->num_res, ref_entry.num_res);
      ASSERT_EQ(got->first_hand, ref_entry.first_hand);
    }
    // No extra entries: sizes match and every reference entry was found.
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, LinkCacheFuzz,
    ::testing::Combine(::testing::Values(Replacement::kLRU, Replacement::kMRU,
                                         Replacement::kLFS, Replacement::kLR),
                       ::testing::Values(1, 2, 3)));

TEST(LinkCacheFuzzRandom, InvariantsHoldUnderRandomReplacement) {
  // Random replacement can't be model-checked exactly (victim choice is
  // random) but its invariants must still hold.
  Rng rng(99);
  const std::size_t capacity = 8;
  LinkCache cache(kOwner, capacity);
  for (int step = 0; step < 4000; ++step) {
    PeerId id = static_cast<PeerId>(rng.uniform_int(1, 24));
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        bool was_present = cache.contains(id);
        bool inserted = cache.offer(CacheEntry{id, 0.0, 0, 0},
                                    Replacement::kRandom, rng);
        // Random replacement always admits a novel candidate.
        EXPECT_EQ(inserted, !was_present && id != kOwner);
        break;
      }
      case 1:
        cache.evict(id);
        break;
      case 2:
        cache.touch(id, static_cast<double>(step));
        break;
    }
    ASSERT_LE(cache.size(), capacity);
    // Index consistency: every listed entry is findable by id.
    for (const CacheEntry& entry : cache.entries()) {
      ASSERT_TRUE(cache.contains(entry.id));
    }
  }
}

}  // namespace
}  // namespace guess
