// Model-based fuzzing of LinkCache: random operation sequences are applied
// both to the cache and to a trivially correct reference model; observable
// state must stay identical and invariants must hold at every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/check.h"
#include "guess/link_cache.h"

namespace guess {
namespace {

constexpr PeerId kOwner = 424242;

// Reference model: a flat map with the same replacement semantics.
class ReferenceCache {
 public:
  ReferenceCache(std::size_t capacity, Replacement policy)
      : capacity_(capacity), policy_(policy) {}

  bool contains(PeerId id) const { return entries_.contains(id); }
  std::size_t size() const { return entries_.size(); }

  // Mirrors LinkCache::offer for deterministic policies. Returns whether
  // the candidate was inserted (Random is excluded from the fuzz because
  // its victim choice consumes RNG in implementation-specific order).
  bool offer(const CacheEntry& candidate) {
    if (candidate.id == kOwner || contains(candidate.id)) return false;
    if (entries_.size() < capacity_) {
      entries_[candidate.id] = candidate;
      return true;
    }
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [&](const auto& a, const auto& b) {
          return retention(a.second) < retention(b.second);
        });
    if (retention(candidate) <= retention(victim->second)) return false;
    entries_.erase(victim);
    entries_[candidate.id] = candidate;
    return true;
  }

  bool evict(PeerId id) { return entries_.erase(id) > 0; }

  void touch(PeerId id, sim::Time now) {
    auto it = entries_.find(id);
    if (it != entries_.end()) it->second.ts = now;
  }

  void set_num_res(PeerId id, std::uint32_t num_res) {
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      it->second.num_res = num_res;
      it->second.first_hand = true;
    }
  }

  const std::map<PeerId, CacheEntry>& entries() const { return entries_; }

 private:
  double retention(const CacheEntry& entry) const {
    Rng unused(0);
    return retention_score(policy_, entry, unused);
  }

  std::size_t capacity_;
  Replacement policy_;
  std::map<PeerId, CacheEntry> entries_;
};

class LinkCacheFuzz
    : public ::testing::TestWithParam<std::tuple<Replacement, int>> {};

TEST_P(LinkCacheFuzz, MatchesReferenceModel) {
  auto [policy, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Rng cache_rng(1);  // deterministic policies never consume it
  const std::size_t capacity = 8;
  LinkCache cache(kOwner, capacity);
  ReferenceCache reference(capacity, policy);

  double now = 0.0;
  // Scores are kept unique (but randomly ordered): tie-breaking between
  // equal retention scores is implementation-defined and would make model
  // equivalence meaningless.
  std::set<std::uint32_t> used;
  auto unique_value = [&]() {
    for (;;) {
      auto v = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
      if (used.insert(v).second) return v;
    }
  };
  for (int step = 0; step < 4000; ++step) {
    now += 0.001 + rng.uniform();
    // Small id space forces collisions, duplicates and re-offers.
    PeerId id = static_cast<PeerId>(rng.uniform_int(1, 24));
    if (rng.bernoulli(0.02)) id = kOwner;  // poke the self-rejection path
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        CacheEntry entry{id, rng.uniform(0.0, 1000.0), unique_value(),
                         unique_value()};
        EXPECT_EQ(cache.offer(entry, policy, cache_rng),
                  reference.offer(entry))
            << "step " << step;
        break;
      }
      case 1:
        EXPECT_EQ(cache.evict(id), reference.evict(id)) << "step " << step;
        break;
      case 2:
        cache.touch(id, now);
        reference.touch(id, now);
        break;
      case 3: {
        std::uint32_t n = unique_value();
        cache.set_num_res(id, n);
        reference.set_num_res(id, n);
        break;
      }
    }

    // Invariants + full state equivalence.
    ASSERT_LE(cache.size(), capacity);
    ASSERT_EQ(cache.size(), reference.size());
    ASSERT_FALSE(cache.contains(kOwner));
    for (const auto& [ref_id, ref_entry] : reference.entries()) {
      auto got = cache.get(ref_id);
      ASSERT_TRUE(got.has_value()) << "missing " << ref_id;
      ASSERT_DOUBLE_EQ(got->ts, ref_entry.ts);
      ASSERT_EQ(got->num_files, ref_entry.num_files);
      ASSERT_EQ(got->num_res, ref_entry.num_res);
      ASSERT_EQ(got->first_hand, ref_entry.first_hand);
    }
    // No extra entries: sizes match and every reference entry was found.
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, LinkCacheFuzz,
    ::testing::Combine(::testing::Values(Replacement::kLRU, Replacement::kMRU,
                                         Replacement::kLFS, Replacement::kLR),
                       ::testing::Values(1, 2, 3)));

TEST(LinkCacheFuzzRandom, InvariantsHoldUnderRandomReplacement) {
  // Random replacement can't be model-checked exactly (victim choice is
  // random) but its invariants must still hold.
  Rng rng(99);
  const std::size_t capacity = 8;
  LinkCache cache(kOwner, capacity);
  for (int step = 0; step < 4000; ++step) {
    PeerId id = static_cast<PeerId>(rng.uniform_int(1, 24));
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        bool was_present = cache.contains(id);
        bool inserted = cache.offer(CacheEntry{id, 0.0, 0, 0},
                                    Replacement::kRandom, rng);
        // Random replacement always admits a novel candidate.
        EXPECT_EQ(inserted, !was_present && id != kOwner);
        break;
      }
      case 1:
        cache.evict(id);
        break;
      case 2:
        cache.touch(id, static_cast<double>(step));
        break;
    }
    ASSERT_LE(cache.size(), capacity);
    // Index consistency: every listed entry is findable by id.
    for (const CacheEntry& entry : cache.entries()) {
      ASSERT_TRUE(cache.contains(entry.id));
    }
  }
}

// --- eclipse-resistance property (DESIGN.md §11) ---------------------------
//
// Randomized interleavings of attacker pongs (foreign entries under
// top-of-distribution claims, like an eclipse cohort's) and honest activity
// (pongs plus the owner's own probe observations) against a floor-protected
// cache. Properties, checked at every step:
//  * a foreign offer never drops the first-hand count below the floor:
//    count_after >= min(count_before, floor);
//  * attacker entries never count as first-hand (the owner never probes
//    them successfully, so they can never enter the protected reserve);
//  * the incremental first_hand_count always equals a fresh recount.
class EclipseResistanceFuzz
    : public ::testing::TestWithParam<std::tuple<Replacement, int>> {};

TEST_P(EclipseResistanceFuzz, FloorPreservesFirstHandCoverage) {
  auto [policy, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t capacity = 16;
  const std::size_t floor = 6;
  constexpr PeerId kAttackerBase = 1000;
  LinkCache cache(kOwner, capacity);
  cache.set_first_hand_floor(floor);

  std::uint32_t next_unique = 1;
  double now = 0.0;
  for (int step = 0; step < 6000; ++step) {
    now += rng.uniform();
    std::size_t before = cache.first_hand_count();
    bool offered_foreign = false;
    switch (rng.uniform_int(0, 3)) {
      case 0: {  // honest pong: modest unique claims, foreign
        PeerId id = static_cast<PeerId>(rng.uniform_int(1, 40));
        cache.offer(CacheEntry{id, now, next_unique++, 0}, policy, rng);
        offered_foreign = true;
        break;
      }
      case 1: {  // attacker pong: colluder id, top-of-distribution claims
        PeerId id = kAttackerBase + static_cast<PeerId>(rng.uniform_int(0, 50));
        cache.offer(
            CacheEntry{id, now, 1u << 20 | next_unique++, 20}, policy, rng);
        offered_foreign = true;
        break;
      }
      case 2: {  // the owner probes an honest cache resident: first-hand now
        PeerId id = static_cast<PeerId>(rng.uniform_int(1, 40));
        cache.set_num_res(id, next_unique++ % 5);
        break;
      }
      case 3: {  // churn: an honest entry dies (evictions bypass the floor)
        if (rng.bernoulli(0.9)) break;  // keep deaths rare
        PeerId id = static_cast<PeerId>(rng.uniform_int(1, 40));
        cache.evict(id);
        break;
      }
    }

    if (offered_foreign) {
      ASSERT_GE(cache.first_hand_count(), std::min(before, floor))
          << "foreign offer dug into the protected reserve at step " << step;
    }
    std::size_t recount = cache.count_if(
        [](const CacheEntry& e) { return e.first_hand; });
    ASSERT_EQ(cache.first_hand_count(), recount) << "step " << step;
    for (const CacheEntry& entry : cache.entries()) {
      if (entry.id >= kAttackerBase) {
        ASSERT_FALSE(entry.first_hand)
            << "attacker entry counted as first-hand at step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, EclipseResistanceFuzz,
    ::testing::Combine(::testing::Values(Replacement::kLFS, Replacement::kLR,
                                         Replacement::kLRU,
                                         Replacement::kRandom),
                       ::testing::Values(11, 12, 13)));

// Without evictions the reserve is monotone: once the owner has established
// `floor` first-hand entries, no attacker barrage can ever shrink the count
// below the floor again.
TEST(EclipseResistanceFuzz, EstablishedFloorIsMonotoneWithoutChurn) {
  Rng rng(77);
  const std::size_t floor = 4;
  LinkCache cache(kOwner, 8);
  cache.set_first_hand_floor(floor);
  std::uint32_t unique = 1;
  // Establish the reserve — probed residents rank ABOVE the remaining
  // foreign entries, so the attack first displaces the unprotected foreign
  // half before it runs into the floor.
  for (PeerId id = 1; id <= static_cast<PeerId>(floor); ++id) {
    cache.offer(CacheEntry{id, 0.0, 1000 + unique++, 0}, Replacement::kLFS,
                rng);
    cache.set_num_res(id, 1);
  }
  for (PeerId id = floor + 1; id <= 8; ++id) {
    cache.offer(CacheEntry{id, 0.0, unique++, 0}, Replacement::kLFS, rng);
  }
  ASSERT_EQ(cache.first_hand_count(), floor);

  std::size_t admitted = 0;
  for (int step = 0; step < 2000; ++step) {
    PeerId attacker = 500 + static_cast<PeerId>(rng.uniform_int(0, 30));
    if (cache.offer(CacheEntry{attacker, 1.0, (1u << 24) + unique++, 20},
                    Replacement::kLFS, rng)) {
      ++admitted;
    }
    ASSERT_GE(cache.first_hand_count(), floor) << "step " << step;
    for (PeerId id = 1; id <= static_cast<PeerId>(floor); ++id) {
      ASSERT_TRUE(cache.contains(id)) << "probed entry displaced, step "
                                      << step;
    }
  }
  // The attack did take the unprotected half — the floor is a reserve, not
  // a general shield.
  EXPECT_EQ(admitted, 8 - floor);
}

}  // namespace
}  // namespace guess
