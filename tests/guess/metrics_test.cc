#include "guess/metrics.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "guess/simulation.h"

namespace guess {
namespace {

TEST(Metrics, DerivedRatesFromCounters) {
  SimulationResults results;
  results.queries_completed = 10;
  results.queries_satisfied = 9;
  results.probes.good = 70;
  results.probes.dead = 25;
  results.probes.refused = 5;
  EXPECT_DOUBLE_EQ(results.unsatisfied_rate(), 0.1);
  EXPECT_DOUBLE_EQ(results.probes_per_query(), 10.0);
  EXPECT_DOUBLE_EQ(results.good_probes_per_query(), 7.0);
  EXPECT_DOUBLE_EQ(results.dead_probes_per_query(), 2.5);
  EXPECT_DOUBLE_EQ(results.refused_probes_per_query(), 0.5);
}

TEST(Metrics, ZeroQueriesAreSafe) {
  SimulationResults results;
  EXPECT_DOUBLE_EQ(results.unsatisfied_rate(), 0.0);
  EXPECT_DOUBLE_EQ(results.probes_per_query(), 0.0);
  ClassMetrics cls;
  EXPECT_DOUBLE_EQ(cls.unsatisfied_rate(), 0.0);
  EXPECT_DOUBLE_EQ(cls.probes_per_query(), 0.0);
}

TEST(Metrics, ClassMetricsMirrorGlobalDerivations) {
  ClassMetrics cls;
  cls.queries_completed = 4;
  cls.queries_satisfied = 3;
  cls.probes.good = 8;
  cls.probes.dead = 4;
  EXPECT_DOUBLE_EQ(cls.unsatisfied_rate(), 0.25);
  EXPECT_DOUBLE_EQ(cls.probes_per_query(), 3.0);
}

TEST(Metrics, AverageComputesStandardErrors) {
  SimulationResults a, b;
  a.queries_completed = 10;
  a.queries_satisfied = 10;
  a.probes.good = 100;  // 10 probes/query
  b.queries_completed = 10;
  b.queries_satisfied = 5;  // 0.5 unsat
  b.probes.good = 200;      // 20 probes/query
  auto avg = average({a, b});
  EXPECT_DOUBLE_EQ(avg.probes_per_query, 15.0);
  EXPECT_DOUBLE_EQ(avg.unsatisfied_rate, 0.25);
  // SE of {10, 20}: stddev = sqrt(50), / sqrt(2) = 5.
  EXPECT_NEAR(avg.probes_per_query_se, 5.0, 1e-12);
  // SE of {0, .5}: stddev ≈ .3536, / sqrt(2) = .25.
  EXPECT_NEAR(avg.unsatisfied_rate_se, 0.25, 1e-12);
}

TEST(Metrics, SingleRunHasZeroStandardError) {
  SimulationResults a;
  a.queries_completed = 10;
  a.probes.good = 100;
  auto avg = average({a});
  EXPECT_DOUBLE_EQ(avg.probes_per_query_se, 0.0);
  EXPECT_DOUBLE_EQ(avg.unsatisfied_rate_se, 0.0);
}

TEST(Metrics, CacheHealthDefaultsZeroed) {
  CacheHealth health;
  EXPECT_DOUBLE_EQ(health.fraction_live, 0.0);
  EXPECT_DOUBLE_EQ(health.absolute_live, 0.0);
  EXPECT_DOUBLE_EQ(health.good_entries, 0.0);
  EXPECT_EQ(health.samples, 0u);
}

}  // namespace
}  // namespace guess
