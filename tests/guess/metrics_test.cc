#include "guess/metrics.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "guess/simulation.h"

namespace guess {
namespace {

TEST(Metrics, DerivedRatesFromCounters) {
  SimulationResults results;
  results.queries_completed = 10;
  results.queries_satisfied = 9;
  results.probes.good = 70;
  results.probes.dead = 25;
  results.probes.refused = 5;
  EXPECT_DOUBLE_EQ(results.unsatisfied_rate(), 0.1);
  EXPECT_DOUBLE_EQ(results.probes_per_query(), 10.0);
  EXPECT_DOUBLE_EQ(results.good_probes_per_query(), 7.0);
  EXPECT_DOUBLE_EQ(results.dead_probes_per_query(), 2.5);
  EXPECT_DOUBLE_EQ(results.refused_probes_per_query(), 0.5);
}

TEST(Metrics, ZeroQueriesAreSafe) {
  SimulationResults results;
  EXPECT_DOUBLE_EQ(results.unsatisfied_rate(), 0.0);
  EXPECT_DOUBLE_EQ(results.probes_per_query(), 0.0);
  ClassMetrics cls;
  EXPECT_DOUBLE_EQ(cls.unsatisfied_rate(), 0.0);
  EXPECT_DOUBLE_EQ(cls.probes_per_query(), 0.0);
}

TEST(Metrics, ClassMetricsMirrorGlobalDerivations) {
  ClassMetrics cls;
  cls.queries_completed = 4;
  cls.queries_satisfied = 3;
  cls.probes.good = 8;
  cls.probes.dead = 4;
  EXPECT_DOUBLE_EQ(cls.unsatisfied_rate(), 0.25);
  EXPECT_DOUBLE_EQ(cls.probes_per_query(), 3.0);
}

TEST(Metrics, AverageComputesStandardErrors) {
  SimulationResults a, b;
  a.queries_completed = 10;
  a.queries_satisfied = 10;
  a.probes.good = 100;  // 10 probes/query
  b.queries_completed = 10;
  b.queries_satisfied = 5;  // 0.5 unsat
  b.probes.good = 200;      // 20 probes/query
  auto avg = average({a, b});
  EXPECT_DOUBLE_EQ(avg.probes_per_query, 15.0);
  EXPECT_DOUBLE_EQ(avg.unsatisfied_rate, 0.25);
  // SE of {10, 20}: stddev = sqrt(50), / sqrt(2) = 5.
  EXPECT_NEAR(avg.probes_per_query_se, 5.0, 1e-12);
  // SE of {0, .5}: stddev ≈ .3536, / sqrt(2) = .25.
  EXPECT_NEAR(avg.unsatisfied_rate_se, 0.25, 1e-12);
}

TEST(Metrics, SingleRunHasZeroStandardError) {
  SimulationResults a;
  a.queries_completed = 10;
  a.probes.good = 100;
  auto avg = average({a});
  EXPECT_DOUBLE_EQ(avg.probes_per_query_se, 0.0);
  EXPECT_DOUBLE_EQ(avg.unsatisfied_rate_se, 0.0);
}

IntervalSample interval(sim::Time start, sim::Time end,
                        std::uint64_t completed, std::uint64_t satisfied) {
  IntervalSample s;
  s.start = start;
  s.end = end;
  s.queries_completed = completed;
  s.queries_satisfied = satisfied;
  return s;
}

TEST(IntervalSampleTest, SuccessRateAndEmptySentinel) {
  EXPECT_DOUBLE_EQ(interval(0, 10, 8, 6).success_rate(), 0.75);
  EXPECT_DOUBLE_EQ(interval(0, 10, 8, 6).probes_per_query(), 0.0);
  // An empty interval carries no signal: -1, not "0% success".
  EXPECT_DOUBLE_EQ(interval(0, 10, 0, 0).success_rate(), -1.0);
}

TEST(Recovery, BaselineMinTtrAndAvailability) {
  IntervalSeries series = {
      interval(0, 100, 10, 10),     // 1.00  pre-fault
      interval(100, 200, 10, 9),    // 0.90  pre-fault
      interval(200, 300, 10, 5),    // 0.50  during the window
      interval(300, 400, 10, 8),    // 0.80  after, still depressed
      interval(400, 500, 20, 19),   // 0.95  recovered
  };
  RecoveryMetrics r = compute_recovery(series, 200.0, 300.0, 0.05);
  EXPECT_DOUBLE_EQ(r.baseline, 0.95);
  EXPECT_DOUBLE_EQ(r.min_during_fault, 0.5);
  // First interval wholly after the window with success >= 0.95 - 0.05 is
  // [400, 500): recovery time counts from fault ONSET.
  EXPECT_DOUBLE_EQ(r.time_to_recovery, 300.0);
  // Post-onset intervals: 0.50 (no), 0.80 (no), 0.95 (yes).
  EXPECT_NEAR(r.availability, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.epsilon, 0.05);
}

TEST(Recovery, EmptyIntervalsCarryNoSignal) {
  IntervalSeries series = {
      interval(0, 100, 10, 9),    // 0.9 pre-fault
      interval(100, 200, 0, 0),   // empty: must not drag the baseline to 0
      interval(200, 300, 0, 0),   // empty during the fault: not a 0% dip
      interval(300, 400, 10, 9),  // 0.9: recovered
  };
  RecoveryMetrics r = compute_recovery(series, 200.0, 250.0, 0.05);
  EXPECT_DOUBLE_EQ(r.baseline, 0.9);
  EXPECT_DOUBLE_EQ(r.min_during_fault, 0.9);  // only the recovered interval
  EXPECT_DOUBLE_EQ(r.time_to_recovery, 200.0);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
}

TEST(Recovery, NeverRecoveredIsMinusOne) {
  IntervalSeries series = {
      interval(0, 100, 10, 10),
      interval(100, 200, 10, 2),
      interval(200, 300, 10, 3),
  };
  RecoveryMetrics r = compute_recovery(series, 100.0, 100.0, 0.05);
  EXPECT_DOUBLE_EQ(r.time_to_recovery, -1.0);
  EXPECT_DOUBLE_EQ(r.min_during_fault, 0.2);
  EXPECT_DOUBLE_EQ(r.availability, 0.0);
}

// A healthy interval DURING the window (queries resolving on one side of a
// partition) is not the network healing: recovery only counts for intervals
// lying wholly after fault_end.
TEST(Recovery, HealthyIntervalInsideWindowNotCredited) {
  IntervalSeries series = {
      interval(0, 100, 10, 10),
      interval(100, 200, 10, 10),  // inside the window but healthy
      interval(200, 300, 10, 10),  // first interval after the window
  };
  RecoveryMetrics r = compute_recovery(series, 100.0, 250.0, 0.05);
  EXPECT_DOUBLE_EQ(r.time_to_recovery, -1.0);  // [200,300) starts at 200<250
  RecoveryMetrics healed = compute_recovery(series, 100.0, 200.0, 0.05);
  EXPECT_DOUBLE_EQ(healed.time_to_recovery, 200.0);  // 300 - onset
}

TEST(Recovery, NoPreFaultSignalFallsBackToPerfectBaseline) {
  IntervalSeries series = {
      interval(0, 100, 10, 8),  // straddles nothing: fault hits at t=50
  };
  RecoveryMetrics r = compute_recovery(series, 50.0, 50.0, 0.05);
  EXPECT_DOUBLE_EQ(r.baseline, 1.0);
  EXPECT_DOUBLE_EQ(r.min_during_fault, 0.8);
  EXPECT_DOUBLE_EQ(r.availability, 0.0);  // 0.8 < 1.0 - 0.05
}

TEST(Recovery, NoPostOnsetDataDefaultsToBaseline) {
  IntervalSeries series = {
      interval(0, 100, 10, 9),
  };
  RecoveryMetrics r = compute_recovery(series, 100.0, 100.0, 0.05);
  EXPECT_DOUBLE_EQ(r.baseline, 0.9);
  EXPECT_DOUBLE_EQ(r.min_during_fault, 0.9);  // no dip observed
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_DOUBLE_EQ(r.time_to_recovery, -1.0);
  // Degenerate but legal: an empty series.
  RecoveryMetrics empty = compute_recovery({}, 10.0, 20.0, 0.05);
  EXPECT_DOUBLE_EQ(empty.baseline, 1.0);
  EXPECT_DOUBLE_EQ(empty.availability, 1.0);
}

TEST(Metrics, TransportCounterArithmetic) {
  TransportCounters a;
  a.messages_sent = 10;
  a.messages_lost = 4;
  a.timeouts = 3;
  TransportCounters b;
  b.messages_sent = 3;
  b.messages_lost = 1;
  TransportCounters sum = a;
  sum += b;
  EXPECT_EQ(sum.messages_sent, 13u);
  EXPECT_EQ(sum.messages_lost, 5u);
  TransportCounters diff = sum - a;
  EXPECT_EQ(diff.messages_sent, 3u);
  EXPECT_EQ(diff.messages_lost, 1u);
  EXPECT_EQ(diff.timeouts, 0u);
}

TEST(Metrics, CacheHealthDefaultsZeroed) {
  CacheHealth health;
  EXPECT_DOUBLE_EQ(health.fraction_live, 0.0);
  EXPECT_DOUBLE_EQ(health.absolute_live, 0.0);
  EXPECT_DOUBLE_EQ(health.good_entries, 0.0);
  EXPECT_EQ(health.samples, 0u);
}

}  // namespace
}  // namespace guess
