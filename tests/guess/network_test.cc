#include "guess/network.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

SystemParams small_system(std::size_t n = 100) {
  SystemParams system;
  system.network_size = n;
  // Small, fast content model for tests.
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  return system;
}

struct Fixture {
  explicit Fixture(SystemParams system = small_system(),
                   ProtocolParams protocol = ProtocolParams{},
                   bool enable_queries = true, std::uint64_t seed = 7)
      : network(SimulationConfig()
                    .system(system)
                    .protocol(protocol)
                    .enable_queries(enable_queries),
                simulator, Rng(seed)) {
    network.initialize();
  }
  sim::Simulator simulator;
  GuessNetwork network;
};

TEST(Network, InitializePopulatesExactPopulation) {
  Fixture f;
  EXPECT_EQ(f.network.alive_count(), 100u);
  for (PeerId id : f.network.alive_ids()) {
    EXPECT_TRUE(f.network.alive(id));
    EXPECT_NE(f.network.find(id), nullptr);
  }
  EXPECT_FALSE(f.network.alive(99999));
  EXPECT_EQ(f.network.find(99999), nullptr);
}

TEST(Network, InitializeTwiceThrows) {
  Fixture f;
  EXPECT_THROW(f.network.initialize(), CheckError);
}

TEST(Network, CachesSeededWithLiveDistinctPeers) {
  Fixture f;
  for (PeerId id : f.network.alive_ids()) {
    const Peer& peer = *f.network.find(id);
    EXPECT_EQ(peer.cache().size(),
              f.network.system().resolved_cache_seed(100));
    for (const CacheEntry& entry : peer.cache().entries()) {
      EXPECT_NE(entry.id, id);
      EXPECT_TRUE(f.network.alive(entry.id));
    }
  }
}

TEST(Network, PopulationStaysConstantThroughChurn) {
  SystemParams system = small_system();
  system.lifespan_multiplier = 0.02;  // aggressive churn
  Fixture f(system);
  f.simulator.run_until(1800.0);
  EXPECT_EQ(f.network.alive_count(), 100u);
  EXPECT_GT(f.network.deaths(), 50u);
}

TEST(Network, DeadPeersStayDead) {
  SystemParams system = small_system();
  system.lifespan_multiplier = 0.02;
  Fixture f(system);
  std::vector<PeerId> initial = f.network.alive_ids();
  f.simulator.run_until(3600.0);
  // Ids are never reused: every currently alive id either survived from the
  // start or is a fresh (larger) id.
  std::size_t survivors = 0;
  for (PeerId id : initial) {
    if (f.network.alive(id)) ++survivors;
  }
  EXPECT_LT(survivors, initial.size());
}

TEST(Network, BadFractionMaintainedThroughChurn) {
  SystemParams system = small_system(200);
  system.percent_bad_peers = 10.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  system.lifespan_multiplier = 0.05;
  Fixture f(system);
  auto count_bad = [&] {
    std::size_t bad = 0;
    for (PeerId id : f.network.alive_ids()) {
      if (f.network.is_malicious(id)) ++bad;
    }
    return bad;
  };
  EXPECT_EQ(count_bad(), 20u);
  f.simulator.run_until(1200.0);
  EXPECT_GT(f.network.deaths(), 10u);
  EXPECT_EQ(count_bad(), 20u);  // replacements inherit malice
}

TEST(Network, SubmittedQueryForPopularFileIsSatisfied) {
  // Background workload off: the one injected query is the only one.
  Fixture f(small_system(), ProtocolParams{}, /*enable_queries=*/false);
  PeerId origin = f.network.alive_ids().front();
  f.network.submit_query(origin, 0);  // most popular file
  f.network.begin_measurement();
  f.simulator.run_until(300.0);
  auto results = f.network.collect_results();
  EXPECT_EQ(results.queries_completed, 1u);
  EXPECT_EQ(results.queries_satisfied, 1u);
  EXPECT_GE(results.probes.total(), 1u);
}

TEST(Network, NonexistentFileQueryExhaustsAndFails) {
  Fixture f(small_system(), ProtocolParams{}, /*enable_queries=*/false);
  f.network.begin_measurement();
  PeerId origin = f.network.alive_ids().front();
  f.network.submit_query(origin, content::kNonexistentFile);
  f.simulator.run_until(600.0);
  auto results = f.network.collect_results();
  EXPECT_EQ(results.queries_completed, 1u);
  EXPECT_EQ(results.queries_satisfied, 0u);
  // It should have probed far past the initial cache before giving up.
  EXPECT_GT(results.probes.total(),
            f.network.system().resolved_cache_seed(100));
}

TEST(Network, SubmitQueryToDeadPeerThrows) {
  Fixture f;
  EXPECT_THROW(f.network.submit_query(999999, 0), CheckError);
}

TEST(Network, MeasurementWindowExcludesEarlierQueries) {
  Fixture f;
  PeerId origin = f.network.alive_ids().front();
  f.network.submit_query(origin, 0);
  f.simulator.run_until(300.0);  // completes before measurement
  f.network.begin_measurement();
  auto results = f.network.collect_results();
  EXPECT_EQ(results.queries_completed, 0u);
}

TEST(Network, ConceptualOverlayStartsConnected) {
  Fixture f;
  // Seeded random caches of ~5 entries per peer over 100 peers form a
  // connected digraph with overwhelming probability.
  EXPECT_EQ(f.network.largest_component(), 100u);
}

TEST(Network, EdgesOnlyBetweenLivePeers) {
  SystemParams system = small_system();
  system.lifespan_multiplier = 0.05;
  Fixture f(system);
  f.simulator.run_until(600.0);
  f.network.visit_live_edges([&](PeerId from, PeerId to) {
    EXPECT_TRUE(f.network.alive(from));
    EXPECT_TRUE(f.network.alive(to));
  });
}

TEST(Network, CacheHealthSamplesAccumulate) {
  Fixture f;
  f.network.begin_measurement();
  f.simulator.run_until(120.0);
  f.network.sample_cache_health();
  f.simulator.run_until(240.0);
  f.network.sample_cache_health();
  auto results = f.network.collect_results();
  EXPECT_EQ(results.cache_health.samples, 2u);
  EXPECT_GT(results.cache_health.entries, 0.0);
  EXPECT_GT(results.cache_health.fraction_live, 0.0);
  EXPECT_LE(results.cache_health.fraction_live, 1.0);
  EXPECT_LE(results.cache_health.good_entries,
            results.cache_health.entries + 1e-9);
}

TEST(Network, QueriesDisabledMeansNoQueries) {
  SystemParams system = small_system();
  Fixture f(system, ProtocolParams{}, /*enable_queries=*/false);
  f.network.begin_measurement();
  f.simulator.run_until(1200.0);
  auto results = f.network.collect_results();
  EXPECT_EQ(results.queries_completed, 0u);
  EXPECT_GT(results.pings_sent, 0u);  // maintenance still runs
}

TEST(Network, PeerLoadsCoverPopulation) {
  Fixture f;
  f.network.begin_measurement();
  f.simulator.run_until(600.0);
  auto results = f.network.collect_results();
  // All honest peers alive at collection (plus corpses) contribute a sample.
  EXPECT_GE(results.peer_loads.size(), 100u);
}

TEST(Network, TinyNetworkRejected) {
  sim::Simulator simulator;
  SystemParams system = small_system(1);
  EXPECT_THROW(GuessNetwork(SimulationConfig().system(system).protocol(ProtocolParams{}), simulator, Rng(1)),
               CheckError);
}

}  // namespace
}  // namespace guess
