// The adversary zoo (DESIGN.md §11): roster bookkeeping, the shape of each
// behavior's attack pong, the network-level deploy/retire hooks behind
// `at T attack <kind> frac=F for D`, and end-to-end scenario runs for all
// four attacks — including the hardened-detection counters they trigger.
#include "guess/adversary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "faults/scenario.h"
#include "guess/network.h"
#include "guess/simulation.h"

namespace guess {
namespace {

using faults::AttackKind;

SystemParams small_system(std::size_t n = 100) {
  SystemParams system;
  system.network_size = n;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  return system;
}

struct Fixture {
  explicit Fixture(SimulationConfig config, std::uint64_t seed = 7)
      : network(config, simulator, Rng(seed)) {
    network.initialize();
  }
  sim::Simulator simulator;
  GuessNetwork network;
};

/// A config whose scenario is non-empty so the transport modulation hook
/// (severed / withholding) is installed; the engine itself is not scheduled,
/// letting tests drive the fault hooks directly.
SimulationConfig attack_ready(SystemParams system) {
  return SimulationConfig().system(system).scenario(
      faults::Scenario::parse("at 1e9 poison on"));
}

// --- zoo bookkeeping ------------------------------------------------------

TEST(AdversaryZoo, RosterAddRemoveSwapKeepsMembershipConsistent) {
  AdversaryZoo zoo{MaliciousParams{}};
  EXPECT_EQ(zoo.size(), 0u);
  EXPECT_FALSE(zoo.contains(1));
  EXPECT_EQ(zoo.behavior_of(1), nullptr);

  zoo.add(AttackKind::kEclipse, 1);
  zoo.add(AttackKind::kEclipse, 2);
  zoo.add(AttackKind::kEclipse, 3);
  zoo.add(AttackKind::kWithhold, 4);
  EXPECT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo.roster(AttackKind::kEclipse).size(), 3u);
  EXPECT_EQ(zoo.roster(AttackKind::kWithhold).size(), 1u);
  EXPECT_TRUE(zoo.roster(AttackKind::kSybil).empty());

  // Swap-remove from the middle: the roster stays dense and membership
  // lookups keep working for the swapped-in member.
  zoo.remove(1);
  EXPECT_FALSE(zoo.contains(1));
  EXPECT_TRUE(zoo.contains(3));
  const std::vector<PeerId>& roster = zoo.roster(AttackKind::kEclipse);
  EXPECT_EQ(roster.size(), 2u);
  EXPECT_NE(std::find(roster.begin(), roster.end(), 3), roster.end());
  zoo.remove(3);
  zoo.remove(2);
  EXPECT_TRUE(zoo.roster(AttackKind::kEclipse).empty());
  EXPECT_EQ(zoo.size(), 1u);

  // Double-add and unknown-remove are contract violations.
  EXPECT_THROW(zoo.add(AttackKind::kSybil, 4), CheckError);
  EXPECT_THROW(zoo.remove(99), CheckError);
}

TEST(AdversaryZoo, WithholdsOnlyForDeployedWithholders) {
  AdversaryZoo zoo{MaliciousParams{}};
  zoo.add(AttackKind::kWithhold, 7);
  zoo.add(AttackKind::kEclipse, 8);
  EXPECT_TRUE(zoo.withholds(7));
  EXPECT_FALSE(zoo.withholds(8));   // deployed, but a different behavior
  EXPECT_FALSE(zoo.withholds(99));  // not deployed at all
  zoo.remove(7);
  EXPECT_FALSE(zoo.withholds(7));
}

// --- behavior shapes ------------------------------------------------------

TEST(AdversaryBehavior, EclipseAdvertisesFellowColludersUnderTopClaims) {
  MaliciousParams params;
  AdversaryZoo zoo{params};
  const AdversaryBehavior& eclipse = zoo.behavior(AttackKind::kEclipse);
  EXPECT_EQ(eclipse.kind(), AttackKind::kEclipse);
  EXPECT_DOUBLE_EQ(eclipse.ping_interval_factor(),
                   1.0 / params.adversary.eclipse_ping_boost);
  EXPECT_FALSE(eclipse.withholds_replies());
  EXPECT_DOUBLE_EQ(eclipse.identity_lifetime(), 0.0);

  zoo.add(AttackKind::kEclipse, 10);
  Rng rng(5);
  std::vector<CacheEntry> pong;

  // A lone colluder has nobody to advertise.
  zoo.make_pong_into(10, 5, 100.0, rng, pong);
  EXPECT_TRUE(pong.empty());

  zoo.add(AttackKind::kEclipse, 11);
  zoo.add(AttackKind::kEclipse, 12);
  zoo.make_pong_into(10, 5, 100.0, rng, pong);
  ASSERT_EQ(pong.size(), 5u);
  for (const CacheEntry& entry : pong) {
    EXPECT_NE(entry.id, 10u);  // never names itself
    EXPECT_TRUE(entry.id == 11 || entry.id == 12);
    EXPECT_EQ(entry.num_files, params.claimed_num_files);
    EXPECT_EQ(entry.num_res, params.claimed_num_res);
    EXPECT_FALSE(entry.first_hand);  // foreign claims, floor-protectable
    EXPECT_DOUBLE_EQ(entry.ts, 100.0);
  }
}

TEST(AdversaryBehavior, SybilSharesColludingPongAndCarriesLifetime) {
  MaliciousParams params;
  params.adversary.sybil_lifetime = 45.0;
  AdversaryZoo zoo{params};
  const AdversaryBehavior& sybil = zoo.behavior(AttackKind::kSybil);
  EXPECT_DOUBLE_EQ(sybil.identity_lifetime(), 45.0);
  EXPECT_DOUBLE_EQ(sybil.ping_interval_factor(), 1.0);

  zoo.add(AttackKind::kSybil, 20);
  zoo.add(AttackKind::kSybil, 21);
  Rng rng(6);
  std::vector<CacheEntry> pong;
  zoo.make_pong_into(20, 3, 7.0, rng, pong);
  ASSERT_EQ(pong.size(), 3u);
  for (const CacheEntry& entry : pong) EXPECT_EQ(entry.id, 21u);
}

TEST(AdversaryBehavior, PongFloodOversizesFromTheFabricatedPool) {
  MaliciousParams params;
  params.adversary.pong_flood_factor = 4.0;
  AdversaryZoo zoo{params};
  zoo.add(AttackKind::kPongFlood, 30);
  Rng rng(8);
  std::vector<CacheEntry> pong;

  // No pool yet: nothing to fabricate from.
  zoo.make_pong_into(30, 5, 1.0, rng, pong);
  EXPECT_TRUE(pong.empty());

  zoo.set_flood_pool({1000, 1001, 1002});
  zoo.make_pong_into(30, 5, 1.0, rng, pong);
  ASSERT_EQ(pong.size(), 20u);  // 4x PongSize
  for (const CacheEntry& entry : pong) {
    EXPECT_GE(entry.id, 1000u);
    EXPECT_LE(entry.id, 1002u);
    EXPECT_EQ(entry.num_files, params.claimed_num_files);
    EXPECT_FALSE(entry.first_hand);
  }
}

TEST(AdversaryBehavior, WithholdSwallowsRepliesAndBuildsNoPong) {
  AdversaryZoo zoo{MaliciousParams{}};
  const AdversaryBehavior& withhold = zoo.behavior(AttackKind::kWithhold);
  EXPECT_TRUE(withhold.withholds_replies());
  zoo.add(AttackKind::kWithhold, 40);
  Rng rng(9);
  std::vector<CacheEntry> pong = {CacheEntry{1, 0.0, 1, 1}};
  zoo.make_pong_into(40, 5, 1.0, rng, pong);
  EXPECT_TRUE(pong.empty());
}

// --- network deploy/retire hooks ------------------------------------------

TEST(NetworkAttack, StartDeploysCohortAndStopRetiresIt) {
  Fixture f(attack_ready(small_system(100)));
  f.simulator.run_until(50.0);
  ASSERT_EQ(f.network.alive_count(), 100u);

  f.network.fault_start_attack(AttackKind::kEclipse, 0.05);
  EXPECT_EQ(f.network.alive_count(), 105u);  // cohort joins the population
  EXPECT_EQ(f.network.adversary_zoo().size(), 5u);
  EXPECT_EQ(f.network.attack_stats().adversaries_spawned, 5u);
  for (PeerId id : f.network.adversary_zoo().roster(AttackKind::kEclipse)) {
    EXPECT_TRUE(f.network.is_adversary(id));
    EXPECT_TRUE(f.network.is_malicious(id));
    const Peer* peer = f.network.find(id);
    ASSERT_NE(peer, nullptr);
    EXPECT_EQ(peer->num_files(), 0u);  // shares nothing
    // Eclipse members ping eclipse_ping_boost times faster.
    EXPECT_DOUBLE_EQ(peer->ping_interval(),
                     f.network.protocol().ping_interval /
                         SimulationConfig().malicious().adversary
                             .eclipse_ping_boost);
    // Friend-seeded so the cohort can reach victims immediately.
    EXPECT_GT(peer->cache().size(), 0u);
  }

  std::vector<PeerId> cohort =
      f.network.adversary_zoo().roster(AttackKind::kEclipse);
  f.network.fault_stop_attack(AttackKind::kEclipse);
  EXPECT_EQ(f.network.alive_count(), 100u);
  EXPECT_EQ(f.network.adversary_zoo().size(), 0u);
  EXPECT_EQ(f.network.attack_stats().adversaries_retired, 5u);
  for (PeerId id : cohort) {
    EXPECT_FALSE(f.network.alive(id));
    EXPECT_FALSE(f.network.is_adversary(id));
  }
  // The retired cohort stays retired — nothing respawns it.
  f.simulator.run_until(400.0);
  EXPECT_EQ(f.network.adversary_zoo().size(), 0u);
}

TEST(NetworkAttack, CohortIsAtLeastOneEvenForTinyFractions) {
  Fixture f(attack_ready(small_system(50)));
  f.network.fault_start_attack(AttackKind::kWithhold, 0.001);
  EXPECT_EQ(f.network.adversary_zoo().size(), 1u);
  f.network.fault_stop_attack(AttackKind::kWithhold);
}

TEST(NetworkAttack, RestartingAnActiveCohortIsAContractViolation) {
  Fixture f(attack_ready(small_system(50)));
  f.network.fault_start_attack(AttackKind::kEclipse, 0.1);
  EXPECT_THROW(f.network.fault_start_attack(AttackKind::kEclipse, 0.1),
               CheckError);
  // A different kind may overlap freely (combined attacks).
  EXPECT_NO_THROW(f.network.fault_start_attack(AttackKind::kWithhold, 0.1));
}

TEST(NetworkAttack, WithholderSeversInboundButNotOutboundExchanges) {
  Fixture f(attack_ready(small_system(100)));
  f.network.fault_start_attack(AttackKind::kWithhold, 0.03);
  std::vector<PeerId> cohort =
      f.network.adversary_zoo().roster(AttackKind::kWithhold);
  ASSERT_EQ(cohort.size(), 3u);
  PeerId honest = f.network.alive_ids()[0];
  ASSERT_FALSE(f.network.is_adversary(honest));
  const std::uint64_t before = f.network.attack_stats().withheld_exchanges;
  EXPECT_TRUE(f.network.severed(honest, cohort[0]));
  EXPECT_FALSE(f.network.severed(cohort[0], honest));
  EXPECT_EQ(f.network.attack_stats().withheld_exchanges, before + 1);
  f.network.fault_stop_attack(AttackKind::kWithhold);
  EXPECT_FALSE(f.network.severed(honest, cohort[0]));
}

TEST(NetworkAttack, SybilIdentitiesExpireRespawnAndTombstone) {
  SystemParams system = small_system(100);
  MaliciousParams malicious;
  malicious.adversary.sybil_lifetime = 20.0;
  Fixture f(attack_ready(system).malicious(malicious));
  f.simulator.run_until(10.0);
  f.network.fault_start_attack(AttackKind::kSybil, 0.05);
  std::vector<PeerId> first_wave =
      f.network.adversary_zoo().roster(AttackKind::kSybil);
  ASSERT_EQ(first_wave.size(), 5u);

  // Several lifetimes later every original identity has been recycled at
  // least once, but the cohort size is invariant.
  f.simulator.run_until(100.0);
  EXPECT_EQ(f.network.adversary_zoo().size(), 5u);
  EXPECT_GE(f.network.attack_stats().sybil_respawns, 5u);
  EXPECT_EQ(f.network.attack_stats().adversaries_spawned,
            5u + f.network.attack_stats().sybil_respawns);
  for (PeerId id : first_wave) {
    EXPECT_FALSE(f.network.alive(id));       // retired...
    EXPECT_EQ(f.network.find(id), nullptr);  // ...and the id is tombstoned
    EXPECT_FALSE(f.network.is_adversary(id));
  }

  // Stopping the attack also stops the respawn loop.
  f.network.fault_stop_attack(AttackKind::kSybil);
  const std::uint64_t spawned = f.network.attack_stats().adversaries_spawned;
  f.simulator.run_until(300.0);
  EXPECT_EQ(f.network.adversary_zoo().size(), 0u);
  EXPECT_EQ(f.network.attack_stats().adversaries_spawned, spawned);
}

TEST(NetworkAttack, FloodPoolAllocatedAtFirstOnsetAndNeverAlive) {
  Fixture f(attack_ready(small_system(100)));
  EXPECT_TRUE(f.network.adversary_zoo().flood_pool().empty());
  f.network.fault_start_attack(AttackKind::kPongFlood, 0.02);
  const std::vector<PeerId>& pool = f.network.adversary_zoo().flood_pool();
  // flood_pool_factor (4.0) x NetworkSize fabricated addresses.
  ASSERT_EQ(pool.size(), 400u);
  for (PeerId id : pool) EXPECT_FALSE(f.network.alive(id));

  // A second onset reuses the pool instead of leaking a new block.
  f.network.fault_stop_attack(AttackKind::kPongFlood);
  f.network.fault_start_attack(AttackKind::kPongFlood, 0.02);
  EXPECT_EQ(f.network.adversary_zoo().flood_pool().size(), 400u);
}

// A mass kill while a cohort is deployed must retire the victims cleanly —
// adversaries are not churn-registered, so the deschedule path sees unknown
// ids, and the zoo rosters must shrink with the kills.
TEST(NetworkAttack, MassKillDuringAttackRetiresAdversariesCleanly) {
  Fixture f(attack_ready(small_system(100)));
  f.simulator.run_until(20.0);
  f.network.fault_start_attack(AttackKind::kEclipse, 0.1);
  ASSERT_EQ(f.network.alive_count(), 110u);
  f.network.fault_mass_kill(1.0);
  EXPECT_EQ(f.network.alive_count(), 0u);
  EXPECT_EQ(f.network.adversary_zoo().size(), 0u);
  // Stopping the (already dead) cohort is a no-op, and the run continues.
  f.network.fault_stop_attack(AttackKind::kEclipse);
  f.simulator.run_until(200.0);
}

// --- end-to-end scenario runs ---------------------------------------------

SimulationResults run_attack(const char* spec, DetectionParams detection,
                             std::uint64_t seed = 31) {
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMR;
  protocol.query_pong = Policy::kMR;
  protocol.detection = detection;
  auto config = SimulationConfig()
                    .system(small_system(150))
                    .protocol(protocol)
                    .scenario(faults::Scenario::parse(spec))
                    .metrics_interval(50.0)
                    .seed(seed)
                    .warmup(100.0)
                    .measure(400.0);
  GuessSimulation sim(config);
  return sim.run();
}

TEST(AttackEndToEnd, EclipseCohortDeploysAndRetiresThroughTheGrammar) {
  SimulationResults results =
      run_attack("at 200 attack eclipse frac=0.05 for 150", DetectionParams{});
  EXPECT_EQ(results.attack.adversaries_spawned, 7u);  // floor(0.05 * 150)
  EXPECT_EQ(results.attack.adversaries_retired,
            results.attack.adversaries_spawned);
  EXPECT_EQ(results.attack.sybil_respawns, 0u);
  EXPECT_GT(results.queries_satisfied, 0u);
}

TEST(AttackEndToEnd, SybilFlashCrowdRecyclesIdentities) {
  SimulationResults results =
      run_attack("at 200 attack sybil frac=0.05 for 150", DetectionParams{});
  EXPECT_GT(results.attack.sybil_respawns, 0u);
  EXPECT_EQ(results.attack.adversaries_retired,
            results.attack.adversaries_spawned);
  EXPECT_GT(results.queries_satisfied, 0u);
}

TEST(AttackEndToEnd, PongFloodTriggersOversizeDefenseWhenHardened) {
  const char* spec = "at 200 attack pong-flood frac=0.05 for 150";
  SimulationResults open = run_attack(spec, DetectionParams{});
  EXPECT_EQ(open.attack.oversized_pongs, 0u);  // nothing is watching

  SimulationResults hardened = run_attack(spec, DetectionParams::hardened());
  EXPECT_GT(hardened.attack.oversized_pongs, 0u);
  EXPECT_GT(hardened.attack.pong_entries_dropped, 0u);
  EXPECT_GT(hardened.queries_satisfied, 0u);
}

TEST(AttackEndToEnd, WithholdBurnsTimeoutsAndHardenedChargesThem) {
  const char* spec = "at 200 attack withhold frac=0.1 for 150";
  SimulationResults open = run_attack(spec, DetectionParams{});
  EXPECT_GT(open.attack.withheld_exchanges, 0u);
  EXPECT_EQ(open.attack.no_reply_charges, 0u);

  SimulationResults hardened = run_attack(spec, DetectionParams::hardened());
  EXPECT_GT(hardened.attack.no_reply_charges, 0u);
  EXPECT_GT(hardened.queries_satisfied, 0u);
}

// Attack counters land in the results snapshot (not just the live network),
// and a scenario with no attacks keeps them all zero.
TEST(AttackEndToEnd, NoAttackScenarioLeavesCountersZero) {
  SimulationResults results =
      run_attack("at 1000 poison on", DetectionParams{});
  EXPECT_EQ(results.attack.adversaries_spawned, 0u);
  EXPECT_EQ(results.attack.adversaries_retired, 0u);
  EXPECT_EQ(results.attack.withheld_exchanges, 0u);
  EXPECT_EQ(results.attack.oversized_pongs, 0u);
  EXPECT_EQ(results.attack.no_reply_charges, 0u);
}

}  // namespace
}  // namespace guess
