#include "guess/peer.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

Peer make_peer(std::vector<content::FileId> files = {}, bool malicious = false,
               PeerId id = 1) {
  std::sort(files.begin(), files.end());
  return Peer(id, 0.0, content::Library(std::move(files)), 10, malicious);
}

TEST(Peer, AnswersQueryForOwnedFile) {
  Peer peer = make_peer({3, 7, 9});
  EXPECT_EQ(peer.answer_query(7, 1), 1u);
  EXPECT_EQ(peer.answer_query(8, 1), 0u);
  EXPECT_EQ(peer.answer_query(content::kNonexistentFile, 1), 0u);
}

TEST(Peer, AnswerCappedByMaxResults) {
  Peer peer = make_peer({5});
  EXPECT_EQ(peer.answer_query(5, 0), 0u);
  EXPECT_EQ(peer.answer_query(5, 3), 1u);  // one copy per peer
}

TEST(Peer, MaliciousPeersReturnNothing) {
  Peer peer = make_peer({5}, /*malicious=*/true);
  EXPECT_EQ(peer.answer_query(5, 1), 0u);
  EXPECT_TRUE(peer.malicious());
}

TEST(Peer, CapacityWindowLimitsProbes) {
  Peer peer = make_peer();
  // 3 probes/sec: the 4th within the same second is refused.
  EXPECT_TRUE(peer.accept_probe(10.1, 3));
  EXPECT_TRUE(peer.accept_probe(10.5, 3));
  EXPECT_TRUE(peer.accept_probe(10.9, 3));
  EXPECT_FALSE(peer.accept_probe(10.95, 3));
  // A new 1-second window resets the counter.
  EXPECT_TRUE(peer.accept_probe(11.0, 3));
}

TEST(Peer, CapacityWindowsAreWallClockSeconds) {
  Peer peer = make_peer();
  EXPECT_TRUE(peer.accept_probe(10.9, 1));
  EXPECT_FALSE(peer.accept_probe(10.99, 1));
  EXPECT_TRUE(peer.accept_probe(11.01, 1));  // floor(t) changed
}

TEST(Peer, BackoffExpires) {
  Peer peer = make_peer();
  peer.set_backoff(5, 100.0);
  EXPECT_TRUE(peer.backed_off(5, 50.0));
  EXPECT_TRUE(peer.backed_off(5, 99.9));
  EXPECT_FALSE(peer.backed_off(5, 100.0));
  EXPECT_FALSE(peer.backed_off(6, 50.0));  // other peers unaffected
}

// Blacklisting and backoff must agree about a peer (DESIGN.md §11): a
// withholder collects timeout charges while also being backed off, and once
// the blacklist verdict lands the weaker backoff window must go with it.
TEST(Peer, BlacklistSupersedesBackoffWindows) {
  Peer peer = make_peer();
  DetectionParams params;
  params.enabled = true;
  params.min_referrals = 2;
  params.bad_threshold = 0.5;

  peer.set_backoff(5, 1000.0);
  EXPECT_EQ(peer.backoff_entries(), 1u);
  EXPECT_TRUE(peer.backed_off(5, 10.0));

  EXPECT_FALSE(peer.note_referral(5, true, params));
  EXPECT_TRUE(peer.note_referral(5, true, params));  // crosses the threshold
  EXPECT_TRUE(peer.blacklisted(5));
  // The pending backoff window went with the verdict...
  EXPECT_EQ(peer.backoff_entries(), 0u);
  EXPECT_FALSE(peer.backed_off(5, 10.0));
  // ... and no new window can be opened for a blacklisted peer.
  peer.set_backoff(5, 2000.0);
  EXPECT_EQ(peer.backoff_entries(), 0u);
  EXPECT_FALSE(peer.backed_off(5, 10.0));

  // Other peers' windows are untouched.
  peer.set_backoff(6, 1000.0);
  EXPECT_TRUE(peer.backed_off(6, 10.0));
}

// blacklist_now convicts on a single unambiguous observation (an oversized
// pong), sharing the conviction bookkeeping with note_referral — referral
// stats and backoff windows are cleared — and, being proof of an active
// attack rather than a statistical verdict, trips the adaptive MR -> MR*
// switch immediately rather than at switch_threshold.
TEST(Peer, BlacklistNowConvictsImmediately) {
  Peer peer = make_peer();
  DetectionParams params;
  params.enabled = true;
  params.adaptive_policy_switch = true;
  params.switch_threshold = 2;

  // Pending evidence and a backoff window go with the verdict, and the
  // first-hand-only posture follows at once (threshold 2 notwithstanding).
  peer.note_referral(7, true, params);
  peer.set_backoff(7, 1000.0);
  EXPECT_TRUE(peer.blacklist_now(7, params));
  EXPECT_TRUE(peer.blacklisted(7));
  EXPECT_EQ(peer.backoff_entries(), 0u);
  EXPECT_TRUE(peer.first_hand_only());

  // Idempotent: an already-blacklisted source is not convicted twice.
  EXPECT_FALSE(peer.blacklist_now(7, params));
  EXPECT_EQ(peer.blacklist_size(), 1u);

  // Disabled detection never convicts.
  DetectionParams off;
  EXPECT_FALSE(peer.blacklist_now(9, off));
  EXPECT_FALSE(peer.blacklisted(9));

  // Without the adaptive switch the conviction still lands but the
  // ingestion policy is untouched.
  Peer other = make_peer();
  DetectionParams no_switch;
  no_switch.enabled = true;
  no_switch.adaptive_policy_switch = false;
  EXPECT_TRUE(other.blacklist_now(7, no_switch));
  EXPECT_FALSE(other.first_hand_only());
}

// The bounded referral tracker displaces the least-incriminated entry:
// an attacker's accumulated evidence must survive a flood of clean-record
// referrers (exactly the pressure a pong-flood / sybil cohort applies).
TEST(Peer, ReferralEvictionKeepsIncriminatedEntriesUnderPressure) {
  Peer peer = make_peer();  // cache capacity 10 -> tracker bound 40
  DetectionParams track;    // accumulate without ever blacklisting
  track.enabled = true;
  track.min_referrals = 1000;
  track.bad_threshold = 1.0;

  const PeerId attacker = 555;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(peer.note_referral(attacker, true, track));
  }
  // 60 distinct clean referrers churn through the 40-slot tracker.
  for (PeerId id = 1; id <= 60; ++id) {
    EXPECT_FALSE(peer.note_referral(id, false, track));
  }

  // If the attacker's stats survived the churn, one more bad referral under
  // judging thresholds convicts immediately (21 bad / 21 total). Had the
  // entry been recycled, the fresh record (1 bad) would stay under
  // min_referrals and return false.
  DetectionParams judge;
  judge.enabled = true;
  judge.min_referrals = 5;
  judge.bad_threshold = 0.5;
  EXPECT_TRUE(peer.note_referral(attacker, true, judge));
  EXPECT_TRUE(peer.blacklisted(attacker));
  // A clean referrer is not convicted by the same judge.
  EXPECT_FALSE(peer.note_referral(1, false, judge));
  EXPECT_FALSE(peer.blacklisted(1));
}

TEST(Peer, LoadCountersAccumulate) {
  Peer peer = make_peer();
  EXPECT_EQ(peer.probes_received(), 0u);
  peer.count_received_probe();
  peer.count_received_probe();
  peer.count_received_ping();
  EXPECT_EQ(peer.probes_received(), 2u);
  EXPECT_EQ(peer.pings_received(), 1u);
}

TEST(Peer, QueryQueueIsFifo) {
  Peer peer = make_peer();
  EXPECT_FALSE(peer.has_pending_query());
  peer.enqueue_query(10, 1.0);
  peer.enqueue_query(20, 2.5);
  EXPECT_TRUE(peer.has_pending_query());
  Peer::PendingQuery first = peer.pop_pending_query();
  EXPECT_EQ(first.file, 10u);
  EXPECT_EQ(first.issued, 1.0);
  Peer::PendingQuery second = peer.pop_pending_query();
  EXPECT_EQ(second.file, 20u);
  EXPECT_EQ(second.issued, 2.5);
  EXPECT_FALSE(peer.has_pending_query());
  EXPECT_THROW(peer.pop_pending_query(), CheckError);
}

TEST(Peer, VisitPendingQueriesSeesWaitingEntriesInOrder) {
  Peer peer = make_peer();
  peer.enqueue_query(1, 0.5);
  peer.enqueue_query(2, 1.5);
  peer.enqueue_query(3, 2.5);
  (void)peer.pop_pending_query();  // 1 is no longer waiting
  std::vector<double> issued;
  peer.visit_pending_queries(
      [&](const Peer::PendingQuery& q) { issued.push_back(q.issued); });
  ASSERT_EQ(issued.size(), 2u);
  EXPECT_EQ(issued[0], 1.5);
  EXPECT_EQ(issued[1], 2.5);
}

TEST(Peer, QueryActiveFlag) {
  Peer peer = make_peer();
  EXPECT_FALSE(peer.query_active());
  peer.set_query_active(true);
  EXPECT_TRUE(peer.query_active());
}

TEST(Peer, ReportsLibraryMetadata) {
  Peer peer = make_peer({1, 2, 3}, false, 77);
  EXPECT_EQ(peer.id(), 77u);
  EXPECT_EQ(peer.num_files(), 3u);
  EXPECT_DOUBLE_EQ(peer.birth_time(), 0.0);
  EXPECT_EQ(peer.cache().capacity(), 10u);
}

}  // namespace
}  // namespace guess
