#include "guess/peer.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess {
namespace {

Peer make_peer(std::vector<content::FileId> files = {}, bool malicious = false,
               PeerId id = 1) {
  std::sort(files.begin(), files.end());
  return Peer(id, 0.0, content::Library(std::move(files)), 10, malicious);
}

TEST(Peer, AnswersQueryForOwnedFile) {
  Peer peer = make_peer({3, 7, 9});
  EXPECT_EQ(peer.answer_query(7, 1), 1u);
  EXPECT_EQ(peer.answer_query(8, 1), 0u);
  EXPECT_EQ(peer.answer_query(content::kNonexistentFile, 1), 0u);
}

TEST(Peer, AnswerCappedByMaxResults) {
  Peer peer = make_peer({5});
  EXPECT_EQ(peer.answer_query(5, 0), 0u);
  EXPECT_EQ(peer.answer_query(5, 3), 1u);  // one copy per peer
}

TEST(Peer, MaliciousPeersReturnNothing) {
  Peer peer = make_peer({5}, /*malicious=*/true);
  EXPECT_EQ(peer.answer_query(5, 1), 0u);
  EXPECT_TRUE(peer.malicious());
}

TEST(Peer, CapacityWindowLimitsProbes) {
  Peer peer = make_peer();
  // 3 probes/sec: the 4th within the same second is refused.
  EXPECT_TRUE(peer.accept_probe(10.1, 3));
  EXPECT_TRUE(peer.accept_probe(10.5, 3));
  EXPECT_TRUE(peer.accept_probe(10.9, 3));
  EXPECT_FALSE(peer.accept_probe(10.95, 3));
  // A new 1-second window resets the counter.
  EXPECT_TRUE(peer.accept_probe(11.0, 3));
}

TEST(Peer, CapacityWindowsAreWallClockSeconds) {
  Peer peer = make_peer();
  EXPECT_TRUE(peer.accept_probe(10.9, 1));
  EXPECT_FALSE(peer.accept_probe(10.99, 1));
  EXPECT_TRUE(peer.accept_probe(11.01, 1));  // floor(t) changed
}

TEST(Peer, BackoffExpires) {
  Peer peer = make_peer();
  peer.set_backoff(5, 100.0);
  EXPECT_TRUE(peer.backed_off(5, 50.0));
  EXPECT_TRUE(peer.backed_off(5, 99.9));
  EXPECT_FALSE(peer.backed_off(5, 100.0));
  EXPECT_FALSE(peer.backed_off(6, 50.0));  // other peers unaffected
}

TEST(Peer, LoadCountersAccumulate) {
  Peer peer = make_peer();
  EXPECT_EQ(peer.probes_received(), 0u);
  peer.count_received_probe();
  peer.count_received_probe();
  peer.count_received_ping();
  EXPECT_EQ(peer.probes_received(), 2u);
  EXPECT_EQ(peer.pings_received(), 1u);
}

TEST(Peer, QueryQueueIsFifo) {
  Peer peer = make_peer();
  EXPECT_FALSE(peer.has_pending_query());
  peer.enqueue_query(10);
  peer.enqueue_query(20);
  EXPECT_TRUE(peer.has_pending_query());
  EXPECT_EQ(peer.pop_pending_query(), 10u);
  EXPECT_EQ(peer.pop_pending_query(), 20u);
  EXPECT_FALSE(peer.has_pending_query());
  EXPECT_THROW(peer.pop_pending_query(), CheckError);
}

TEST(Peer, QueryActiveFlag) {
  Peer peer = make_peer();
  EXPECT_FALSE(peer.query_active());
  peer.set_query_active(true);
  EXPECT_TRUE(peer.query_active());
}

TEST(Peer, ReportsLibraryMetadata) {
  Peer peer = make_peer({1, 2, 3}, false, 77);
  EXPECT_EQ(peer.id(), 77u);
  EXPECT_EQ(peer.num_files(), 3u);
  EXPECT_DOUBLE_EQ(peer.birth_time(), 0.0);
  EXPECT_EQ(peer.cache().capacity(), 10u);
}

}  // namespace
}  // namespace guess
