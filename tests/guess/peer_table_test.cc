// PeerTable: the dense PeerId -> slot identity layer under GuessNetwork.
// Unit tests pin the slot-allocation discipline (LIFO reuse, generation
// bumps, birth-order alive list) and a model-based fuzz drives churn-burst
// op sequences against a reference map to prove the free list never loses
// or duplicates a slot and a (slot, generation) reference can never
// resurrect a stale PeerId.
#include "guess/peer_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "content/content_model.h"

namespace guess {
namespace {

Peer& birth(PeerTable& table, PeerId id) {
  return table.create(id, /*birth=*/0.0, content::Library{},
                      /*cache_capacity=*/8, /*malicious=*/false,
                      /*selfish=*/false);
}

TEST(PeerTable, CreateFindDestroy) {
  PeerTable table;
  Peer& a = birth(table, 0);
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.alive(0));
  EXPECT_EQ(table.find(0), &a);
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_FALSE(table.alive(1));

  table.destroy(0);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.alive(0));
  EXPECT_EQ(table.find(0), nullptr);
  EXPECT_EQ(table.slot_of(0), PeerTable::kNoSlot);
}

TEST(PeerTable, PeerIdReuseIsRejected) {
  PeerTable table;
  birth(table, 5);
  table.destroy(5);
  // Ids are monotonic in the network; the table enforces it.
  EXPECT_THROW(birth(table, 5), CheckError);
}

TEST(PeerTable, FreedSlotsAreReusedLifo) {
  PeerTable table;
  for (PeerId id = 0; id < 4; ++id) birth(table, id);
  EXPECT_EQ(table.slot_count(), 4u);
  std::uint32_t slot1 = table.slot_of(1);
  std::uint32_t slot3 = table.slot_of(3);
  table.destroy(1);
  table.destroy(3);
  // LIFO: the most recently freed slot is claimed first.
  EXPECT_EQ(table.slot_of(birth(table, 4).id()), slot3);
  EXPECT_EQ(table.slot_of(birth(table, 5).id()), slot1);
  EXPECT_EQ(table.slot_count(), 4u);  // no growth while holes exist
  birth(table, 6);
  EXPECT_EQ(table.slot_count(), 5u);
}

TEST(PeerTable, AliveIdsFollowsBirthOrderWithSwapRemove) {
  PeerTable table;
  for (PeerId id = 0; id < 5; ++id) birth(table, id);
  EXPECT_EQ(table.alive_ids(), (std::vector<PeerId>{0, 1, 2, 3, 4}));
  table.destroy(1);  // back (4) fills the hole
  EXPECT_EQ(table.alive_ids(), (std::vector<PeerId>{0, 4, 2, 3}));
  EXPECT_EQ(table.alive_pos(4), 1u);
  birth(table, 5);
  EXPECT_EQ(table.alive_ids(), (std::vector<PeerId>{0, 4, 2, 3, 5}));
}

TEST(PeerTable, GenerationTagNeverResurrectsStalePeer) {
  PeerTable table;
  Peer& a = birth(table, 0);
  std::uint32_t slot = table.slot_of(0);
  std::uint32_t gen = table.generation(slot);
  EXPECT_EQ(table.peer_in_slot(slot, gen), &a);

  table.destroy(0);
  EXPECT_EQ(table.peer_in_slot(slot, gen), nullptr);

  // The next birth reclaims the same slot (LIFO) under a fresh generation;
  // the stale reference still resolves to nothing.
  Peer& b = birth(table, 1);
  ASSERT_EQ(table.slot_of(1), slot);
  EXPECT_EQ(table.peer_in_slot(slot, gen), nullptr);
  EXPECT_EQ(table.peer_in_slot(slot, table.generation(slot)), &b);
  EXPECT_NE(table.generation(slot), gen);
}

TEST(PeerTable, DebugSeedFreeSlotsControlsBirthOrder) {
  PeerTable table;
  table.debug_seed_free_slots({2, 0, 3, 1});
  EXPECT_EQ(table.slot_count(), 4u);
  EXPECT_EQ(table.slot_of(birth(table, 0).id()), 2u);
  EXPECT_EQ(table.slot_of(birth(table, 1).id()), 0u);
  EXPECT_EQ(table.slot_of(birth(table, 2).id()), 3u);
  EXPECT_EQ(table.slot_of(birth(table, 3).id()), 1u);
  // Seeded or not, the alive list is pure birth order.
  EXPECT_EQ(table.alive_ids(), (std::vector<PeerId>{0, 1, 2, 3}));
}

// Sybil flash crowds (DESIGN.md §11) stress exactly this machinery: a small
// cohort of short-lived identities dies and respawns every few seconds, so
// slots recycle at the sybil lifetime rate while honest peers churn slowly.
// Expired sybil ids must stay tombstoned (find == nullptr, re-create
// rejected) and references taken against a sybil incarnation must never
// resolve to the slot's next tenant — sybil or honest.
TEST(PeerTable, SybilRecyclingTombstonesExpiredIdentities) {
  PeerTable table;
  PeerId next_id = 0;
  for (int i = 0; i < 10; ++i) birth(table, next_id++);  // honest base

  std::vector<std::pair<std::uint32_t, std::uint32_t>> sybil_refs;
  std::vector<PeerId> expired;
  // Five respawn waves of a 4-sybil cohort.
  for (int wave = 0; wave < 5; ++wave) {
    std::vector<PeerId> cohort;
    for (int i = 0; i < 4; ++i) {
      PeerId id = next_id++;
      birth(table, id);
      cohort.push_back(id);
      std::uint32_t slot = table.slot_of(id);
      sybil_refs.emplace_back(slot, table.generation(slot));
    }
    for (PeerId id : cohort) {
      table.destroy(id);
      expired.push_back(id);
    }
  }

  // Every expired identity is tombstoned: not alive, unfindable, and its id
  // can never be re-registered.
  for (PeerId id : expired) {
    EXPECT_FALSE(table.alive(id));
    EXPECT_EQ(table.find(id), nullptr);
    EXPECT_THROW(birth(table, id), CheckError);
  }
  // No reference taken against a sybil incarnation resolves, even though
  // the cohort slots were recycled by later waves (LIFO keeps them hot).
  for (auto [slot, gen] : sybil_refs) {
    EXPECT_EQ(table.peer_in_slot(slot, gen), nullptr);
  }
  // The flash crowd never grew the slab past honest base + one cohort.
  EXPECT_EQ(table.size(), 10u);
  EXPECT_LE(table.slot_count(), 14u);

  // An honest peer claiming a recycled sybil slot is a fresh incarnation.
  Peer& late = birth(table, next_id++);
  std::uint32_t slot = table.slot_of(late.id());
  EXPECT_EQ(table.peer_in_slot(slot, table.generation(slot)), &late);
  for (auto [ref_slot, gen] : sybil_refs) {
    if (ref_slot == slot) {
      EXPECT_EQ(table.peer_in_slot(ref_slot, gen), nullptr);
    }
  }
}

// Model-based fuzz: correlated churn bursts (the fault engine's workload)
// against a reference model. The table must agree with the model on
// liveness, order, and positions after every operation, slots must be
// conserved (live + free == allocated, no duplicates), and stale
// (slot, generation) references taken before a death must never resolve.
TEST(PeerTableFuzz, ChurnBurstsAgainstReferenceModel) {
  Rng rng(20260806);
  PeerTable table;
  // Reference: alive list maintained by push_back/swap-remove, a liveness
  // map, and every (slot, generation) reference retired by a death.
  std::vector<PeerId> model_alive;
  std::unordered_map<PeerId, std::size_t> model_pos;
  struct StaleRef {
    std::uint32_t slot;
    std::uint32_t generation;
  };
  std::vector<StaleRef> stale;
  PeerId next_id = 0;

  auto model_birth = [&](PeerId id) {
    model_pos.emplace(id, model_alive.size());
    model_alive.push_back(id);
  };
  auto model_death = [&](PeerId id) {
    std::size_t pos = model_pos.at(id);
    model_pos.erase(id);
    if (pos != model_alive.size() - 1) {
      model_alive[pos] = model_alive.back();
      model_pos[model_alive[pos]] = pos;
    }
    model_alive.pop_back();
  };

  for (int round = 0; round < 400; ++round) {
    // A churn burst: a batch of births or a batch of correlated deaths.
    if (model_alive.empty() || rng.bernoulli(0.55)) {
      std::size_t count = 1 + rng.index(12);
      for (std::size_t i = 0; i < count; ++i) {
        PeerId id = next_id++;
        birth(table, id);
        model_birth(id);
      }
    } else {
      std::size_t count = std::min<std::size_t>(1 + rng.index(12),
                                                model_alive.size());
      for (std::size_t i = 0; i < count; ++i) {
        PeerId id = model_alive[rng.index(model_alive.size())];
        std::uint32_t slot = table.slot_of(id);
        stale.push_back({slot, table.generation(slot)});
        table.destroy(id);
        model_death(id);
      }
    }

    // Table == model, entry for entry.
    ASSERT_EQ(table.size(), model_alive.size());
    ASSERT_EQ(table.alive_ids(), model_alive);
    for (PeerId id : model_alive) {
      ASSERT_TRUE(table.alive(id));
      ASSERT_EQ(table.alive_pos(id), model_pos.at(id));
      const Peer* peer = table.find(id);
      ASSERT_NE(peer, nullptr);
      ASSERT_EQ(peer->id(), id);
    }
    for (PeerId id = 0; id < next_id; ++id) {
      ASSERT_EQ(table.alive(id), model_pos.count(id) == 1);
    }

    // Slot conservation: each live peer occupies a distinct slot and the
    // slab never grows past the churn high-water mark.
    std::unordered_set<std::uint32_t> occupied;
    for (PeerId id : model_alive) {
      ASSERT_TRUE(occupied.insert(table.slot_of(id)).second)
          << "two live peers share a slot";
    }
    ASSERT_GE(table.slot_count(), model_alive.size());
    ASSERT_LE(table.slot_count(), static_cast<std::size_t>(next_id));

    // No stale reference resolves — even after its slot was re-occupied.
    for (const StaleRef& ref : stale) {
      ASSERT_EQ(table.peer_in_slot(ref.slot, ref.generation), nullptr)
          << "stale (slot, generation) reference resurrected a dead peer";
    }
  }
  EXPECT_GT(stale.size(), 100u);          // deaths actually happened
  EXPECT_LT(table.slot_count(), next_id); // slots actually got reused
}

}  // namespace
}  // namespace guess
