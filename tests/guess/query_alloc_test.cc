// Proves the PR's headline claim for the query hot path: once the network
// has warmed up — peer slab built, query pool at its concurrency high-water
// mark, candidate heaps / dedup sets / pong scratch at capacity — steady-
// state operation (pings, pongs, query submission, probing, completion)
// performs zero heap allocations.
//
// Built as its own test binary because it replaces global operator new /
// delete with counting versions (see tests/sim/event_alloc_test.cc, whose
// pattern this extends from the event core to the full query workload).
//
// Configuration notes: deterministic policies only (kRandom draws are fine
// but the frozen bench workload is the path to pin), detection / payments /
// backoff / adaptive extensions off, and churn slowed to a standstill — a
// death mid-window legitimately allocates (the replacement samples a fresh
// library), so the window is placed where none occur, which the test
// verifies.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "guess/network.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace guess {
namespace {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

class QueryAllocTest : public ::testing::TestWithParam<sim::Scheduler> {};

TEST_P(QueryAllocTest, SteadyStateQueryWorkloadIsAllocationFree) {
  SystemParams system;
  system.network_size = 200;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  // Effectively no churn: median lifetimes stretch far past the run, so no
  // death (and no allocating replacement birth) lands in the window.
  system.lifespan_multiplier = 500.0;
  // The default query rate keeps per-peer utilization below 1 (a hotter
  // rate makes unsatisfiable-query backlogs diverge, and a genuinely
  // growing backlog legitimately reallocates its ring).

  ProtocolParams protocol;  // the frozen bench workload, all deterministic
  protocol.query_probe = Policy::kMR;
  protocol.query_pong = Policy::kMR;
  protocol.ping_probe = Policy::kLRU;
  protocol.ping_pong = Policy::kMFS;
  protocol.cache_replacement = Replacement::kLR;

  auto config = SimulationConfig().system(system).protocol(protocol);
  sim::Simulator simulator(GetParam());
  GuessNetwork network(config, simulator, Rng(42));
  network.initialize();

  // Warm up: grows the peer slab, event slab, query pool, candidate heaps,
  // dedup sets, pong scratch and per-peer pending rings to their
  // steady-state high-water capacities.
  simulator.run_until(400.0);
  const std::uint64_t deaths_before = network.deaths();

  // Measure. No EXPECTs inside the window (gtest assertions can allocate).
  std::uint64_t before = allocation_count();
  simulator.run_until(700.0);
  std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "steady-state query workload allocated " << (after - before)
      << " times";
  // Window preconditions actually held, and work actually happened.
  EXPECT_EQ(network.deaths(), deaths_before);
  network.begin_measurement();  // after the window: only the final check
  simulator.run_until(800.0);
  auto results = network.collect_results();
  EXPECT_GT(results.queries_completed, 100u);
  EXPECT_GT(results.probes.good, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, QueryAllocTest,
                         ::testing::Values(sim::Scheduler::kHeap,
                                           sim::Scheduler::kCalendar),
                         [](const auto& info) {
                           return sim::scheduler_name(info.param);
                         });

// Sanity: the counter actually counts (a direct call cannot be elided).
TEST(QueryAllocCounter, CountsHeapAllocations) {
  std::uint64_t before = allocation_count();
  void* p = ::operator new(32);
  ::operator delete(p);
  EXPECT_EQ(allocation_count(), before + 1);
}

}  // namespace
}  // namespace guess
