// Transport abstraction: synchronous inline semantics, lossy fault
// injection (timeout/retry timing, degenerate loss), SimulationConfig
// validation, and the bitwise-identity contract between the config API and
// the legacy positional API.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "guess/config.h"
#include "guess/simulation.h"
#include "guess/transport.h"
#include "../testsupport/simulation_results_eq.h"

namespace guess {
namespace {

struct Resolution {
  sim::Time at = -1.0;
  DeliveryStatus status = DeliveryStatus::kDelivered;
};

TEST(SynchronousTransport, CompletesInlineWithoutEventsOrRandomness) {
  SynchronousTransport transport;
  bool completed = false;
  transport.exchange(MessageKind::kPing, 1, 2,
                     [&](DeliveryStatus status) {
                       completed = true;
                       EXPECT_EQ(status, DeliveryStatus::kDelivered);
                     });
  // Inline: done before exchange() returned, no simulator involved at all.
  EXPECT_TRUE(completed);
  EXPECT_EQ(transport.counters().messages_sent, 1u);
  EXPECT_EQ(transport.counters().messages_lost, 0u);
  EXPECT_EQ(transport.counters().timeouts, 0u);
}

TEST(LossyTransport, DeliversAtRoundTripLatency) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(0.0);
  params.link_latency = 0.05;
  params.probe_timeout = 2.0;
  LossyTransport transport(params, simulator, Rng(7));

  Resolution res;
  transport.exchange(MessageKind::kQueryProbe, 1, 2,
                     [&](DeliveryStatus status) {
                       res = {simulator.now(), status};
                     });
  EXPECT_EQ(transport.in_flight(), 1u);
  simulator.run_until(10.0);
  EXPECT_EQ(transport.in_flight(), 0u);
  EXPECT_EQ(res.status, DeliveryStatus::kDelivered);
  EXPECT_DOUBLE_EQ(res.at, 0.1);  // two fixed 0.05 s legs
  EXPECT_EQ(transport.counters().messages_sent, 1u);
  EXPECT_EQ(transport.counters().timeouts, 0u);
}

// The ordering contract of the retry chain: with loss=1.0 and fixed backoff
// every attempt times out on schedule —
//   send@0, timeout@2, resend@3, timeout@5, resend@6, timeout@8 -> failed.
TEST(LossyTransport, TimeoutThenRetryOrderingIsExact) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(1.0);
  params.probe_timeout = 2.0;
  params.max_retries = 2;
  params.retry_backoff = 1.0;
  LossyTransport transport(params, simulator, Rng(7));

  Resolution res;
  transport.exchange(MessageKind::kQueryProbe, 1, 2,
                     [&](DeliveryStatus status) {
                       res = {simulator.now(), status};
                     });
  simulator.run_until(100.0);
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_DOUBLE_EQ(res.at, 8.0);
  EXPECT_EQ(transport.counters().messages_sent, 3u);
  EXPECT_EQ(transport.counters().messages_lost, 3u);
  EXPECT_EQ(transport.counters().timeouts, 3u);
  EXPECT_EQ(transport.counters().retransmits, 2u);
  EXPECT_EQ(transport.counters().exchanges_failed, 1u);
  EXPECT_EQ(transport.in_flight(), 0u);
}

// Exponential backoff doubles the wait per retransmit:
//   send@0, timeout@2, resend@3 (+1), timeout@5, resend@7 (+2), timeout@9.
TEST(LossyTransport, ExponentialBackoffDoubles) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(1.0);
  params.probe_timeout = 2.0;
  params.max_retries = 2;
  params.backoff = TransportParams::Backoff::kExponential;
  params.retry_backoff = 1.0;
  LossyTransport transport(params, simulator, Rng(7));

  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(100.0);
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_DOUBLE_EQ(res.at, 9.0);
}

// Regression: the exponential schedule doubles unbounded, so a long retry
// chain used to push retransmits absurdly far into simulated time (attempt
// 40 waited ~2^39 s). max_backoff caps every delay:
//   send@0, timeout@2, +1 -> 3, timeout@5, +2 -> 7, timeout@9, +4 (capped
//   to 3) -> 12, timeout@14, +3 -> 17, timeout@19 -> failed.
TEST(LossyTransport, ExponentialBackoffCappedByMaxBackoff) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(1.0);
  params.probe_timeout = 2.0;
  params.max_retries = 4;
  params.backoff = TransportParams::Backoff::kExponential;
  params.retry_backoff = 1.0;
  params.max_backoff = 3.0;
  LossyTransport transport(params, simulator, Rng(7));

  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(1000.0);
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_DOUBLE_EQ(res.at, 19.0);
}

// Even a pathologically long exponential chain resolves within bounded
// simulated time: retries * (timeout + max_backoff) — not 2^retries.
TEST(LossyTransport, LongRetryChainStaysWithinLinearTimeBound) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(1.0);
  params.probe_timeout = 2.0;
  params.max_retries = 60;  // would be ~2^60 s unbounded
  params.backoff = TransportParams::Backoff::kExponential;
  params.retry_backoff = 1.0;
  params.max_backoff = 30.0;
  LossyTransport transport(params, simulator, Rng(7));

  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(61.0 * 32.0 + 1.0);
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_LE(res.at, 61.0 * 32.0);
  EXPECT_EQ(transport.counters().retransmits, 60u);
}

TEST(LossyTransport, MaxBackoffCapsFixedBackoffToo) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(1.0);
  params.probe_timeout = 2.0;
  params.max_retries = 1;
  params.retry_backoff = 10.0;
  params.max_backoff = 0.5;  // cap below the fixed backoff
  LossyTransport transport(params, simulator, Rng(7));

  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(100.0);
  // send@0, timeout@2, +0.5 -> resend@2.5, timeout@4.5.
  EXPECT_DOUBLE_EQ(res.at, 4.5);
}

/// Scriptable modulation for transport tests.
struct TestModulation : TransportModulation {
  bool severed_flag = false;
  double loss = 0.0;
  double latency = 1.0;
  bool severed(PeerId, PeerId) const override { return severed_flag; }
  double extra_loss() const override { return loss; }
  double latency_factor() const override { return latency; }
};

TEST(Modulation, SeveredExchangeFailsOnSynchronousTransport) {
  SynchronousTransport transport;
  TestModulation modulation;
  modulation.severed_flag = true;
  transport.set_modulation(&modulation);
  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {0.0, status};
  });
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_EQ(transport.counters().messages_sent, 1u);
  EXPECT_EQ(transport.counters().messages_lost, 1u);
  EXPECT_EQ(transport.counters().exchanges_failed, 1u);

  // Clearing the modulation restores delivery.
  transport.set_modulation(nullptr);
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {0.0, status};
  });
  EXPECT_EQ(res.status, DeliveryStatus::kDelivered);
}

TEST(Modulation, SeveredLossyExchangeExhaustsRetriesOnSchedule) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(0.0);
  params.probe_timeout = 2.0;
  params.max_retries = 1;
  params.retry_backoff = 1.0;
  LossyTransport transport(params, simulator, Rng(7));
  TestModulation modulation;
  modulation.severed_flag = true;
  transport.set_modulation(&modulation);

  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(100.0);
  // Severed attempts keep the normal timeout/retry cadence: they fail by
  // timing out, exactly as a partitioned probe would on a real wire.
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_DOUBLE_EQ(res.at, 5.0);  // send@0, timeout@2, resend@3, timeout@5
  EXPECT_EQ(transport.counters().messages_lost, 2u);
}

TEST(Modulation, ExtraLossAddsToConfiguredLoss) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(0.0);  // perfect wire
  params.max_retries = 0;
  LossyTransport transport(params, simulator, Rng(7));
  TestModulation modulation;
  modulation.loss = 1.0;  // 0 + 1, clamped to 1: every leg drops
  transport.set_modulation(&modulation);

  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(100.0);
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_EQ(transport.counters().messages_lost, 1u);
}

TEST(Modulation, LatencyFactorStretchesRoundTrip) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(0.0);
  params.link_latency = 0.05;
  params.probe_timeout = 2.0;
  LossyTransport transport(params, simulator, Rng(7));
  TestModulation modulation;
  modulation.latency = 4.0;
  transport.set_modulation(&modulation);

  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(10.0);
  EXPECT_EQ(res.status, DeliveryStatus::kDelivered);
  EXPECT_DOUBLE_EQ(res.at, 0.4);  // (0.05 + 0.05) * 4

  // A factor that pushes the round trip past the timeout turns the same
  // exchange into a late reply.
  modulation.latency = 100.0;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(100.0);
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_EQ(transport.counters().late_replies, 1u);
}

// Both legs survive but the round trip outlasts the timeout: counted as a
// late reply, resolved as a timeout at exactly probe_timeout.
TEST(LossyTransport, LateReplyCountsAndTimesOut) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(0.0);
  params.link_latency = 1.5;  // rtt = 3.0 > timeout
  params.probe_timeout = 2.0;
  LossyTransport transport(params, simulator, Rng(7));

  Resolution res;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus status) {
    res = {simulator.now(), status};
  });
  simulator.run_until(100.0);
  EXPECT_EQ(res.status, DeliveryStatus::kTimedOut);
  EXPECT_DOUBLE_EQ(res.at, 2.0);
  EXPECT_EQ(transport.counters().late_replies, 1u);
  EXPECT_EQ(transport.counters().messages_lost, 0u);
}

// A completion that immediately starts another exchange exercises slab
// reuse/growth while the callback is live.
TEST(LossyTransport, CompletionMayStartNewExchange) {
  sim::Simulator simulator;
  TransportParams params = TransportParams::lossy(0.0);
  params.link_latency = 0.05;
  LossyTransport transport(params, simulator, Rng(7));

  int completions = 0;
  transport.exchange(MessageKind::kPing, 1, 2, [&](DeliveryStatus) {
    ++completions;
    transport.exchange(MessageKind::kPing, 2, 3,
                       [&](DeliveryStatus) { ++completions; });
  });
  simulator.run_until(10.0);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(transport.counters().messages_sent, 2u);
  EXPECT_EQ(transport.in_flight(), 0u);
}

// With the default SynchronousTransport, the same parameters delivered via
// an explicit SimulationOptions block and via the chained setters must be
// bitwise-identical — the two construction surfaces are one code path.
TEST(TransportIdentity, OptionsBlockBitwiseIdenticalToChainedSetters) {
  SystemParams system;
  system.network_size = 150;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  system.percent_bad_peers = 10.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMR;
  protocol.cache_replacement = Replacement::kLR;
  protocol.detection.enabled = true;
  protocol.do_backoff = true;

  SimulationOptions options;
  options.seed = 17;
  options.warmup = 120.0;
  options.measure = 480.0;
  GuessSimulation via_options_block(
      SimulationConfig().system(system).protocol(protocol).options(options));
  SimulationResults via_legacy = via_options_block.run();

  GuessSimulation modern(SimulationConfig()
                             .system(system)
                             .protocol(protocol)
                             .seed(17)
                             .warmup(120.0)
                             .measure(480.0));
  SimulationResults via_config = modern.run();

  testsupport::expect_identical(via_legacy, via_config);
  // The synchronous transport still accounts for traffic.
  EXPECT_GT(via_config.transport.messages_sent, 0u);
  EXPECT_EQ(via_config.transport.timeouts, 0u);
  EXPECT_EQ(via_config.transport.retransmits, 0u);
}

// loss=1.0 is the degenerate extreme: nothing is ever delivered, every
// query exhausts its (shrinking) candidate set, and the run must still
// terminate with everything unsatisfied.
TEST(TransportFaultInjection, TotalLossRunTerminatesUnsatisfied) {
  SystemParams system;
  system.network_size = 100;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  auto config = SimulationConfig()
                    .system(system)
                    .transport(TransportParams::lossy(1.0))
                    .seed(5)
                    .warmup(100.0)
                    .measure(300.0);
  GuessSimulation sim(config);
  SimulationResults results = sim.run();
  EXPECT_GT(results.queries_completed, 0u);
  EXPECT_EQ(results.queries_satisfied, 0u);
  EXPECT_EQ(results.probes.good, 0u);
  EXPECT_GT(results.transport.exchanges_failed, 0u);
  EXPECT_EQ(results.transport.messages_lost,
            results.transport.messages_sent);
}

// Regression: payments + LossyTransport. With asynchronous resolution every
// probe of a slot is in flight together, so a peer whose credit covers a
// single probe must not pass the affordability check for all of them — the
// cost is reserved at issue time and committed/released at resolution.
// Before the reservation ledger this run aborted with a CheckError from
// spend_credit ("spending unaffordable probe").
TEST(TransportFaultInjection, PaymentsUnderLossDoNotOverdrawCredit) {
  SystemParams system;
  system.network_size = 150;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  ProtocolParams protocol;
  protocol.payments.enabled = true;
  protocol.payments.probe_cost = 1.0;
  protocol.payments.initial_credit = 1.0;  // covers exactly one probe
  protocol.payments.serve_reward = 1.0;    // zero-sum transfers
  protocol.payments.max_stalled_slots = 20;
  protocol.parallel_probes = 3;  // several probes per slot compete for it
  TransportParams transport = TransportParams::lossy(0.2);
  transport.max_retries = 1;
  GuessSimulation sim(SimulationConfig()
                          .system(system)
                          .protocol(protocol)
                          .transport(transport)
                          .seed(11)
                          .warmup(100.0)
                          .measure(400.0));
  SimulationResults results;
  ASSERT_NO_THROW(results = sim.run());
  // The economy actually ran (probes were served and paid for) ...
  EXPECT_GT(results.probes.good, 0u);
  // ... and no peer's ledger went negative or leaked reservations beyond
  // what is genuinely still in flight at the horizon.
  for (PeerId id : sim.network().alive_ids()) {
    const Peer* peer = sim.network().find(id);
    EXPECT_GE(peer->credit(), 0.0);
    EXPECT_GE(peer->credit(),
              static_cast<double>(peer->reserved_probes()) *
                  protocol.payments.probe_cost);
  }
}

// Higher loss must produce (weakly) more timeouts and retransmits per
// message sent — the counters respond monotonically to --loss.
TEST(TransportFaultInjection, TimeoutRateMonotonicInLoss) {
  auto run = [](double loss) {
    SystemParams system;
    system.network_size = 150;
    system.content.catalog_size = 400;
    system.content.query_universe = 500;
    TransportParams transport = TransportParams::lossy(loss);
    transport.max_retries = 2;
    auto config = SimulationConfig()
                      .system(system)
                      .transport(transport)
                      .seed(9)
                      .warmup(100.0)
                      .measure(400.0);
    GuessSimulation sim(config);
    return sim.run();
  };
  SimulationResults none = run(0.0);
  SimulationResults low = run(0.05);
  SimulationResults high = run(0.3);

  EXPECT_EQ(none.transport.timeouts, 0u);
  EXPECT_EQ(none.transport.retransmits, 0u);
  EXPECT_GT(low.transport.timeouts, 0u);
  EXPECT_GT(low.transport.retransmits, 0u);

  auto timeout_rate = [](const SimulationResults& r) {
    return static_cast<double>(r.transport.timeouts) /
           static_cast<double>(r.transport.messages_sent);
  };
  EXPECT_LT(timeout_rate(low), timeout_rate(high));
}

TEST(SimulationConfigValidate, RejectsNonsense) {
  SystemParams tiny;
  tiny.network_size = 1;
  EXPECT_THROW(SimulationConfig().system(tiny).validate(), CheckError);

  EXPECT_THROW(
      SimulationConfig().transport(TransportParams::lossy(-0.1)).validate(),
      CheckError);
  EXPECT_THROW(
      SimulationConfig().transport(TransportParams::lossy(1.5)).validate(),
      CheckError);

  TransportParams no_timeout = TransportParams::lossy(0.1);
  no_timeout.probe_timeout = 0.0;
  EXPECT_THROW(SimulationConfig().transport(no_timeout).validate(),
               CheckError);

  TransportParams negative_backoff = TransportParams::lossy(0.1);
  negative_backoff.retry_backoff = -1.0;
  EXPECT_THROW(SimulationConfig().transport(negative_backoff).validate(),
               CheckError);

  // A negative retry count wrapped through an unsigned cast must not pass
  // as an effectively unbounded retry policy.
  TransportParams wrapped_retries = TransportParams::lossy(0.1);
  wrapped_retries.max_retries = static_cast<std::size_t>(-1);
  EXPECT_THROW(SimulationConfig().transport(wrapped_retries).validate(),
               CheckError);

  SystemParams negative_rate;
  negative_rate.query_rate = -1.0;
  EXPECT_THROW(SimulationConfig().system(negative_rate).validate(),
               CheckError);

  ProtocolParams no_ping;
  no_ping.ping_interval = 0.0;
  EXPECT_THROW(SimulationConfig().protocol(no_ping).validate(), CheckError);

  EXPECT_THROW(SimulationConfig().threads(-1).validate(), CheckError);

  // The defaults are valid, and validate() chains.
  EXPECT_NO_THROW(SimulationConfig().validate());
  EXPECT_NO_THROW(
      SimulationConfig().transport(TransportParams::lossy(0.05)).validate());
}

TEST(SimulationConfigValidate, ConstructorsValidate) {
  SystemParams tiny;
  tiny.network_size = 1;
  EXPECT_THROW(GuessSimulation sim(SimulationConfig().system(tiny)),
               CheckError);
  EXPECT_THROW(
      GuessSimulation sim(
          SimulationConfig().transport(TransportParams::lossy(2.0))),
      CheckError);
}

TEST(TransportParamsDescribe, MentionsTheKnobs) {
  EXPECT_NE(describe(TransportParams{}).find("Synchronous"),
            std::string::npos);
  TransportParams lossy = TransportParams::lossy(0.25);
  lossy.max_retries = 3;
  std::string text = describe(lossy);
  EXPECT_NE(text.find("0.25"), std::string::npos);
  EXPECT_NE(text.find("retries=3"), std::string::npos);
}

}  // namespace
}  // namespace guess
