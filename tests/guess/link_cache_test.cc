#include "guess/link_cache.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <set>

namespace guess {
namespace {

constexpr PeerId kOwner = 999;

CacheEntry entry(PeerId id, sim::Time ts = 0.0, std::uint32_t files = 0,
                 std::uint32_t res = 0) {
  return CacheEntry{id, ts, files, res};
}

TEST(LinkCache, InsertAndLookup) {
  LinkCache cache(kOwner, 4);
  cache.insert_free(entry(1, 5.0, 10, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains(1));
  auto got = cache.get(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->ts, 5.0);
  EXPECT_EQ(got->num_files, 10u);
  EXPECT_EQ(got->num_res, 2u);
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(LinkCache, InsertFreePreconditions) {
  LinkCache cache(kOwner, 1);
  EXPECT_THROW(cache.insert_free(entry(kOwner)), CheckError);  // self
  cache.insert_free(entry(1));
  EXPECT_THROW(cache.insert_free(entry(2)), CheckError);  // full
  LinkCache cache2(kOwner, 2);
  cache2.insert_free(entry(1));
  EXPECT_THROW(cache2.insert_free(entry(1)), CheckError);  // duplicate
}

TEST(LinkCache, OfferFillsFreeSpace) {
  LinkCache cache(kOwner, 2);
  Rng rng(1);
  EXPECT_TRUE(cache.offer(entry(1), Replacement::kLFS, rng));
  EXPECT_TRUE(cache.offer(entry(2), Replacement::kLFS, rng));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LinkCache, OfferRejectsSelfAndDuplicates) {
  LinkCache cache(kOwner, 4);
  Rng rng(1);
  EXPECT_FALSE(cache.offer(entry(kOwner), Replacement::kRandom, rng));
  EXPECT_TRUE(cache.offer(entry(1, 1.0), Replacement::kRandom, rng));
  // Second offer for the same id is ignored; fields stay as first stored.
  EXPECT_FALSE(cache.offer(entry(1, 99.0), Replacement::kRandom, rng));
  EXPECT_EQ(cache.get(1)->ts, 1.0);
}

TEST(LinkCache, LfsReplacementKeepsBigSharers) {
  LinkCache cache(kOwner, 3);
  Rng rng(1);
  cache.insert_free(entry(1, 0.0, 10, 0));
  cache.insert_free(entry(2, 0.0, 50, 0));
  cache.insert_free(entry(3, 0.0, 100, 0));
  // Candidate with more files than the minimum replaces the minimum.
  EXPECT_TRUE(cache.offer(entry(4, 0.0, 60, 0), Replacement::kLFS, rng));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(4));
  // Candidate weaker than every entry is rejected.
  EXPECT_FALSE(cache.offer(entry(5, 0.0, 5, 0), Replacement::kLFS, rng));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LinkCache, LrReplacementKeepsProductivePeers) {
  LinkCache cache(kOwner, 2);
  Rng rng(1);
  cache.insert_free(entry(1, 0.0, 0, 5));
  cache.insert_free(entry(2, 0.0, 0, 1));
  EXPECT_TRUE(cache.offer(entry(3, 0.0, 0, 3), Replacement::kLR, rng));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LinkCache, LruReplacementEvictsStalest) {
  LinkCache cache(kOwner, 2);
  Rng rng(1);
  cache.insert_free(entry(1, 10.0));
  cache.insert_free(entry(2, 90.0));
  EXPECT_TRUE(cache.offer(entry(3, 50.0), Replacement::kLRU, rng));
  EXPECT_FALSE(cache.contains(1));
}

TEST(LinkCache, MruReplacementEvictsFreshest) {
  // The paper's pathological "fairness" policy: stale entries survive.
  LinkCache cache(kOwner, 2);
  Rng rng(1);
  cache.insert_free(entry(1, 10.0));
  cache.insert_free(entry(2, 90.0));
  EXPECT_TRUE(cache.offer(entry(3, 50.0), Replacement::kMRU, rng));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
}

TEST(LinkCache, RandomReplacementAlwaysInserts) {
  LinkCache cache(kOwner, 5);
  Rng rng(1);
  for (PeerId id = 1; id <= 5; ++id) cache.insert_free(entry(id));
  for (PeerId id = 100; id < 150; ++id) {
    EXPECT_TRUE(cache.offer(entry(id), Replacement::kRandom, rng));
    EXPECT_EQ(cache.size(), 5u);
    EXPECT_TRUE(cache.contains(id));
  }
}

TEST(LinkCache, EvictRemovesAndReports) {
  LinkCache cache(kOwner, 3);
  cache.insert_free(entry(1));
  cache.insert_free(entry(2));
  EXPECT_TRUE(cache.evict(1));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.evict(1));  // already gone
  EXPECT_TRUE(cache.contains(2));
}

TEST(LinkCache, TouchAndSetNumResUpdateFields) {
  LinkCache cache(kOwner, 2);
  cache.insert_free(entry(1, 0.0, 10, 0));
  cache.touch(1, 42.0);
  cache.set_num_res(1, 3);
  EXPECT_EQ(cache.get(1)->ts, 42.0);
  EXPECT_EQ(cache.get(1)->num_res, 3u);
  // No-ops for absent ids.
  cache.touch(9, 1.0);
  cache.set_num_res(9, 1);
}

TEST(LinkCache, SelectBestFollowsPolicy) {
  LinkCache cache(kOwner, 4);
  Rng rng(1);
  cache.insert_free(entry(1, 10.0, 5, 1));
  cache.insert_free(entry(2, 90.0, 50, 0));
  cache.insert_free(entry(3, 50.0, 20, 9));
  EXPECT_EQ(cache.select_best(Policy::kMRU, rng)->id, 2u);
  EXPECT_EQ(cache.select_best(Policy::kLRU, rng)->id, 1u);
  EXPECT_EQ(cache.select_best(Policy::kMFS, rng)->id, 2u);
  EXPECT_EQ(cache.select_best(Policy::kMR, rng)->id, 3u);
}

TEST(LinkCache, SelectBestOnEmptyReturnsNothing) {
  LinkCache cache(kOwner, 2);
  Rng rng(1);
  EXPECT_FALSE(cache.select_best(Policy::kRandom, rng).has_value());
}

TEST(LinkCache, SelectTopReturnsDescendingByPolicy) {
  LinkCache cache(kOwner, 5);
  Rng rng(1);
  for (PeerId id = 1; id <= 5; ++id) {
    cache.insert_free(entry(id, 0.0, static_cast<std::uint32_t>(id * 10), 0));
  }
  auto top = cache.select_top(Policy::kMFS, 3, rng);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[1].id, 4u);
  EXPECT_EQ(top[2].id, 3u);
}

TEST(LinkCache, SelectTopBreaksScoreTiesByInsertionIndex) {
  // Duplicate scores: partial_sort is unstable, so without an explicit
  // index tie-break the winners among equal-score entries would depend on
  // the stdlib's pivot choices. Insertion (index) order is the contract.
  LinkCache cache(kOwner, 6);
  Rng rng(1);
  cache.insert_free(entry(10, 0.0, 50, 0));
  cache.insert_free(entry(20, 0.0, 50, 0));
  cache.insert_free(entry(30, 0.0, 50, 0));
  cache.insert_free(entry(40, 0.0, 50, 0));
  cache.insert_free(entry(50, 0.0, 99, 0));
  cache.insert_free(entry(60, 0.0, 50, 0));
  for (int round = 0; round < 20; ++round) {
    auto top = cache.select_top(Policy::kMFS, 3, rng);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].id, 50u);  // unique max first
    EXPECT_EQ(top[1].id, 10u);  // then ties in insertion order
    EXPECT_EQ(top[2].id, 20u);
  }
}

TEST(LinkCache, SelectTopAllTiedReturnsPrefixInInsertionOrder) {
  LinkCache cache(kOwner, 8);
  Rng rng(3);
  for (PeerId id = 1; id <= 8; ++id) {
    cache.insert_free(entry(id, 0.0, 7, 0));
  }
  auto top = cache.select_top(Policy::kMFS, 4, rng);
  ASSERT_EQ(top.size(), 4u);
  for (PeerId i = 0; i < 4; ++i) EXPECT_EQ(top[i].id, i + 1);
}

TEST(LinkCache, SelectTopClampsToSize) {
  LinkCache cache(kOwner, 4);
  Rng rng(1);
  cache.insert_free(entry(1));
  auto top = cache.select_top(Policy::kRandom, 10, rng);
  EXPECT_EQ(top.size(), 1u);
  EXPECT_TRUE(cache.select_top(Policy::kRandom, 0, rng).empty());
}

TEST(LinkCache, SelectTopRandomIsDistinct) {
  LinkCache cache(kOwner, 10);
  Rng rng(1);
  for (PeerId id = 1; id <= 10; ++id) cache.insert_free(entry(id));
  for (int round = 0; round < 50; ++round) {
    auto top = cache.select_top(Policy::kRandom, 5, rng);
    std::set<PeerId> ids;
    for (const auto& e : top) ids.insert(e.id);
    EXPECT_EQ(ids.size(), 5u);
  }
}

TEST(LinkCache, RandomSelectionIsRoughlyUniform) {
  LinkCache cache(kOwner, 4);
  Rng rng(1);
  for (PeerId id = 0; id < 4; ++id) cache.insert_free(entry(id + 1));
  std::map<PeerId, int> counts;
  for (int i = 0; i < 8000; ++i) {
    ++counts[cache.select_best(Policy::kRandom, rng)->id];
  }
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / 8000.0, 0.25, 0.03)
        << "peer " << id;
  }
}

TEST(LinkCache, CountIfMatchesPredicate) {
  LinkCache cache(kOwner, 4);
  cache.insert_free(entry(1, 0.0, 10, 0));
  cache.insert_free(entry(2, 0.0, 30, 0));
  cache.insert_free(entry(3, 0.0, 50, 0));
  EXPECT_EQ(cache.count_if([](const CacheEntry& e) {
    return e.num_files >= 30;
  }),
            2u);
}

TEST(LinkCache, ZeroCapacityRejected) {
  EXPECT_THROW(LinkCache(kOwner, 0), CheckError);
}

// --- first-hand floor (eclipse resistance, DESIGN.md §11) ------------------

TEST(LinkCacheFloor, FirstHandCountTracksObservationsAndEvictions) {
  LinkCache cache(kOwner, 4);
  EXPECT_EQ(cache.first_hand_count(), 0u);
  cache.insert_free(entry(1));
  cache.insert_free(entry(2));
  EXPECT_EQ(cache.first_hand_count(), 0u);  // pong entries are foreign
  cache.set_num_res(1, 3);                  // own probe observation
  EXPECT_EQ(cache.first_hand_count(), 1u);
  cache.set_num_res(1, 5);                  // already first-hand: no double count
  EXPECT_EQ(cache.first_hand_count(), 1u);
  cache.set_num_res(2, 0);
  EXPECT_EQ(cache.first_hand_count(), 2u);
  cache.evict(1);
  EXPECT_EQ(cache.first_hand_count(), 1u);
  cache.evict(2);
  EXPECT_EQ(cache.first_hand_count(), 0u);
}

TEST(LinkCacheFloor, RefusesDisplacingProtectedFirstHandEntries) {
  LinkCache cache(kOwner, 2);
  cache.set_first_hand_floor(2);
  Rng rng(3);
  cache.insert_free(entry(1, 0.0, 10, 0));
  cache.insert_free(entry(2, 0.0, 20, 0));
  cache.set_num_res(1, 1);
  cache.set_num_res(2, 1);
  ASSERT_EQ(cache.first_hand_count(), 2u);

  // A foreign candidate with arbitrarily strong claims cannot dig into the
  // protected reserve — under scored retention...
  EXPECT_FALSE(cache.offer(entry(50, 0.0, 100000, 0), Replacement::kLFS, rng));
  // ... or random retention (which otherwise always inserts when full).
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(
        cache.offer(entry(60 + i, 0.0, 100000, 0), Replacement::kRandom, rng));
  }
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LinkCacheFloor, ReplacementAllowedDownToTheFloorNotBelow) {
  LinkCache cache(kOwner, 3);
  cache.set_first_hand_floor(1);
  Rng rng(4);
  cache.insert_free(entry(1, 0.0, 1, 0));
  cache.insert_free(entry(2, 0.0, 2, 0));
  cache.insert_free(entry(3, 0.0, 3, 0));
  for (PeerId id = 1; id <= 3; ++id) cache.set_num_res(id, 1);
  ASSERT_EQ(cache.first_hand_count(), 3u);

  // Above the floor, better foreign candidates replace first-hand victims
  // normally (LFS victim = fewest files).
  EXPECT_TRUE(cache.offer(entry(50, 0.0, 1000, 0), Replacement::kLFS, rng));
  EXPECT_EQ(cache.first_hand_count(), 2u);
  EXPECT_TRUE(cache.offer(entry(51, 0.0, 1000, 0), Replacement::kLFS, rng));
  EXPECT_EQ(cache.first_hand_count(), 1u);
  // Now the last first-hand entry is protected.
  EXPECT_FALSE(cache.offer(entry(52, 0.0, 1000, 0), Replacement::kLFS, rng));
  EXPECT_EQ(cache.first_hand_count(), 1u);
  EXPECT_TRUE(cache.contains(3));
}

TEST(LinkCacheFloor, FirstHandCandidatesAndNonFirstHandVictimsUnaffected) {
  LinkCache cache(kOwner, 2);
  cache.set_first_hand_floor(2);
  Rng rng(5);
  cache.insert_free(entry(1, 0.0, 10, 0));
  cache.insert_free(entry(2, 0.0, 20, 0));
  cache.set_num_res(1, 1);  // entry 2 stays foreign

  // LFS picks entry 1 (fewest files) as the victim; it is first-hand and
  // the count (1) is within the floor, so a foreign candidate is refused.
  EXPECT_FALSE(cache.offer(entry(50, 0.0, 1000, 0), Replacement::kLFS, rng));

  // A first-hand candidate may displace into the reserve (the guard only
  // blocks *foreign* candidates).
  CacheEntry own = entry(51, 0.0, 1000, 0);
  own.first_hand = true;
  EXPECT_TRUE(cache.offer(own, Replacement::kLFS, rng));
  EXPECT_EQ(cache.first_hand_count(), 1u);  // swapped one first-hand for another

  // With the floor disabled the reserve vanishes.
  cache.set_first_hand_floor(0);
  EXPECT_TRUE(cache.offer(entry(52, 0.0, 5000, 0), Replacement::kLFS, rng));
}

TEST(LinkCacheFloor, EvictionsIgnoreTheFloor) {
  LinkCache cache(kOwner, 2);
  cache.set_first_hand_floor(2);
  cache.insert_free(entry(1));
  cache.set_num_res(1, 1);
  // Dead/blacklisted peers must always be removable: the floor protects
  // against displacement, not against maintenance.
  EXPECT_TRUE(cache.evict(1));
  EXPECT_EQ(cache.first_hand_count(), 0u);
}

}  // namespace
}  // namespace guess
