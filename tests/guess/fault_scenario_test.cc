// Fault-scenario hooks on GuessNetwork (DESIGN.md §9): bulk churn leaves
// the liveness/edge state consistent, partitions sever exactly the
// cross-group pairs, degradation windows modulate the transport, the poison
// toggle changes attacker behavior, the interval series is well formed, and
// a mid-flight mass kill cannot trip the payment reservation ledger.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "common/check.h"
#include "faults/scenario.h"
#include "guess/network.h"
#include "guess/simulation.h"

namespace guess {
namespace {

SystemParams small_system(std::size_t n = 100) {
  SystemParams system;
  system.network_size = n;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  return system;
}

struct Fixture {
  explicit Fixture(SimulationConfig config, std::uint64_t seed = 7)
      : network(config, simulator, Rng(seed)) {
    network.initialize();
  }
  sim::Simulator simulator;
  GuessNetwork network;
};

// --- bulk churn -----------------------------------------------------------

TEST(FaultMassKill, RemovesExactFloorFractionWithoutReplacement) {
  Fixture f(SimulationConfig().system(small_system(100)));
  f.simulator.run_until(50.0);
  const std::uint64_t deaths_before = f.network.deaths();

  f.network.fault_mass_kill(0.30);
  EXPECT_EQ(f.network.alive_count(), 70u);  // floor(0.30 * 100) victims
  // Scenario kills are not churn deaths: no on_death, no replacement birth.
  EXPECT_EQ(f.network.deaths(), deaths_before);
  for (PeerId id : f.network.alive_ids()) {
    EXPECT_TRUE(f.network.alive(id));
    EXPECT_NE(f.network.find(id), nullptr);
  }
  // The conceptual overlay only spans live peers.
  f.network.visit_live_edges([&](PeerId owner, PeerId target) {
    EXPECT_TRUE(f.network.alive(owner));
    EXPECT_TRUE(f.network.alive(target));
  });
  EXPECT_LE(f.network.largest_component(), 70u);
}

// The victims' scheduled natural deaths must be descheduled: otherwise the
// stale death events would fire against vanished ids ("death of unknown
// peer") as the run continues. Natural churn then maintains the REDUCED
// population 1:1.
TEST(FaultMassKill, DescheduledDeathsAndReducedPopulationStable) {
  SystemParams system = small_system(100);
  system.lifespan_multiplier = 0.02;  // aggressive churn
  Fixture f(SimulationConfig().system(system));
  f.simulator.run_until(100.0);
  f.network.fault_mass_kill(0.30);
  ASSERT_EQ(f.network.alive_count(), 70u);

  // Long enough that every victim's original lifetime has long expired.
  f.simulator.run_until(3600.0);
  EXPECT_EQ(f.network.alive_count(), 70u);
  EXPECT_GT(f.network.deaths(), 50u);  // natural churn kept going
}

TEST(FaultMassKill, KillEveryoneLeavesAnEmptyStableNetwork) {
  Fixture f(SimulationConfig().system(small_system(50)));
  f.simulator.run_until(10.0);
  f.network.fault_mass_kill(1.0);
  EXPECT_EQ(f.network.alive_count(), 0u);
  EXPECT_EQ(f.network.active_queries(), 0u);
  // Nothing left can fire a birth; the run continues without incident.
  f.simulator.run_until(500.0);
  EXPECT_EQ(f.network.alive_count(), 0u);
}

TEST(FaultMassJoin, NewbornsAreWiredIntoOverlayAndChurn) {
  SystemParams system = small_system(100);
  system.lifespan_multiplier = 0.05;
  Fixture f(SimulationConfig().system(system));
  f.simulator.run_until(50.0);

  std::set<PeerId> before(f.network.alive_ids().begin(),
                          f.network.alive_ids().end());
  f.network.fault_mass_join(50);
  EXPECT_EQ(f.network.alive_count(), 150u);
  for (PeerId id : f.network.alive_ids()) {
    if (before.contains(id)) continue;
    const Peer* newborn = f.network.find(id);
    ASSERT_NE(newborn, nullptr);
    // Friend-seeded: a flash-crowd newborn starts with cache entries.
    EXPECT_GT(newborn->cache().size(), 0u);
    EXPECT_FALSE(f.network.is_malicious(id));
  }
  // Joins are registered with churn: the GROWN population is maintained 1:1.
  f.simulator.run_until(2000.0);
  EXPECT_EQ(f.network.alive_count(), 150u);
  EXPECT_GT(f.network.deaths(), 20u);
}

TEST(FaultMassKill, RepeatedBurstsCompose) {
  Fixture f(SimulationConfig().system(small_system(100)));
  f.network.fault_mass_kill(0.50);
  EXPECT_EQ(f.network.alive_count(), 50u);
  f.network.fault_mass_kill(0.50);
  EXPECT_EQ(f.network.alive_count(), 25u);
  f.network.fault_mass_join(75);
  EXPECT_EQ(f.network.alive_count(), 100u);
}

// --- partitions -----------------------------------------------------------

TEST(FaultPartition, SeversExactlyCrossGroupPairs) {
  Fixture f(SimulationConfig().system(small_system(100)));
  EXPECT_EQ(f.network.partition_ways(), 0);
  EXPECT_FALSE(f.network.severed(f.network.alive_ids()[0],
                                 f.network.alive_ids()[1]));

  f.network.fault_set_partition(3);
  EXPECT_EQ(f.network.partition_ways(), 3);
  std::set<int> groups;
  for (PeerId id : f.network.alive_ids()) {
    int group = f.network.partition_group(id);
    ASSERT_GE(group, 0);
    ASSERT_LT(group, 3);
    groups.insert(group);
  }
  EXPECT_EQ(groups.size(), 3u);  // 100 draws hit all three groups
  for (PeerId a : f.network.alive_ids()) {
    for (PeerId b : f.network.alive_ids()) {
      EXPECT_EQ(f.network.severed(a, b),
                f.network.partition_group(a) != f.network.partition_group(b));
    }
  }
  // Unknown / dead-pool addresses are never "severed": a probe to a corpse
  // should time out on its own, not be short-circuited by the partition.
  EXPECT_FALSE(f.network.severed(f.network.alive_ids()[0], 999999));

  f.network.fault_clear_partition();
  EXPECT_EQ(f.network.partition_ways(), 0);
  EXPECT_EQ(f.network.partition_group(f.network.alive_ids()[0]), -1);
  EXPECT_FALSE(f.network.severed(f.network.alive_ids()[0],
                                 f.network.alive_ids()[1]));
}

TEST(FaultPartition, NewbornsDrawAGroupAtBirth) {
  Fixture f(SimulationConfig().system(small_system(100)));
  f.network.fault_set_partition(2);
  std::set<PeerId> before(f.network.alive_ids().begin(),
                          f.network.alive_ids().end());
  f.network.fault_mass_join(20);
  for (PeerId id : f.network.alive_ids()) {
    if (before.contains(id)) continue;
    EXPECT_GE(f.network.partition_group(id), 0);
  }
}

// End to end: a partition window under the lossy transport forces real
// cross-group failures (counted as losses), and the network still satisfies
// queries after the heal.
TEST(FaultPartition, WindowUnderLossyTransportRecovers) {
  SystemParams system = small_system(150);
  TransportParams transport = TransportParams::lossy(0.0);
  auto config = SimulationConfig()
                    .system(system)
                    .transport(transport)
                    .scenario(faults::Scenario::parse(
                        "at 250 partition 2 for 150"))
                    .metrics_interval(50.0)
                    .seed(11)
                    .warmup(100.0)
                    .measure(500.0);
  GuessSimulation sim(config);
  SimulationResults results = sim.run();
  // Cross-partition sends were severed (loss=0, so every lost message is
  // the partition's doing)...
  EXPECT_GT(results.transport.messages_lost, 0u);
  EXPECT_GT(results.transport.exchanges_failed, 0u);
  // ... and the post-heal network still works.
  EXPECT_GT(results.queries_satisfied, 0u);
  RecoveryMetrics recovery =
      compute_recovery(results.interval_series, 250.0, 400.0);
  EXPECT_GT(recovery.baseline, 0.5);
  EXPECT_LE(recovery.min_during_fault, recovery.baseline);
}

// --- degradation windows --------------------------------------------------

TEST(FaultDegrade, ModulationStateTogglesAndClamps) {
  Fixture f(SimulationConfig().system(small_system(50)));
  EXPECT_DOUBLE_EQ(f.network.extra_loss(), 0.0);
  EXPECT_DOUBLE_EQ(f.network.latency_factor(), 1.0);
  f.network.fault_set_degradation(0.5, 4.0);
  EXPECT_DOUBLE_EQ(f.network.extra_loss(), 0.5);
  EXPECT_DOUBLE_EQ(f.network.latency_factor(), 4.0);
  f.network.fault_clear_degradation();
  EXPECT_DOUBLE_EQ(f.network.extra_loss(), 0.0);
  EXPECT_DOUBLE_EQ(f.network.latency_factor(), 1.0);
}

// A degrade window on the synchronous transport is a configuration error —
// there is no wire to degrade — and must be rejected up front, not ignored.
TEST(FaultDegrade, RequiresLossyTransport) {
  auto config = SimulationConfig().system(small_system(50)).scenario(
      faults::Scenario::parse("at 100 degrade loss=0.5 for 50"));
  EXPECT_THROW(config.validate(), CheckError);
  config.transport(TransportParams::lossy(0.0));
  EXPECT_NO_THROW(config.validate());
}

TEST(FaultDegrade, WindowRaisesLossRateDuringWindowOnly) {
  TransportParams transport = TransportParams::lossy(0.0);
  auto run = [&](const char* spec) {
    auto config = SimulationConfig()
                      .system(small_system(150))
                      .transport(transport)
                      .scenario(faults::Scenario::parse(spec))
                      .metrics_interval(50.0)
                      .seed(13)
                      .warmup(100.0)
                      .measure(400.0);
    GuessSimulation sim(config);
    return sim.run();
  };
  // The poison toggle at the horizon is a no-op fault: same run shape, no
  // degradation, so every transport loss below is the window's.
  SimulationResults calm = run("at 500 poison on");
  SimulationResults degraded = run("at 200 degrade loss=0.6 for 100");
  EXPECT_EQ(calm.transport.messages_lost, 0u);
  EXPECT_GT(degraded.transport.messages_lost, 0u);
  // Losses happened inside the window's intervals and only there.
  for (const IntervalSample& s : degraded.interval_series) {
    if (s.end <= 200.0 || s.start >= 300.0) {
      EXPECT_EQ(s.transport.messages_lost, 0u)
          << "loss outside the window, interval " << s.start;
    }
  }
}

// --- poisoning toggle -----------------------------------------------------

TEST(FaultPoison, ToggleFlipsIntrospectionState) {
  SystemParams system = small_system(100);
  system.percent_bad_peers = 10.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  Fixture f(SimulationConfig().system(system));
  EXPECT_TRUE(f.network.poisoning_active());
  f.network.fault_set_poisoning(false);
  EXPECT_FALSE(f.network.poisoning_active());
  f.network.fault_set_poisoning(true);
  EXPECT_TRUE(f.network.poisoning_active());
}

// With poisoning disabled for the whole run, attackers answer honestly and
// the trusting MFS policy is no longer steered into their inflated claims:
// cache health must be strictly better than under active poisoning.
TEST(FaultPoison, DisablingPoisonImprovesCacheHealth) {
  SystemParams system = small_system(150);
  system.percent_bad_peers = 20.0;
  system.bad_pong_behavior = BadPongBehavior::kBad;
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMFS;
  protocol.query_pong = Policy::kMFS;
  protocol.cache_replacement = Replacement::kLFS;
  auto run = [&](const char* spec) {
    auto config = SimulationConfig()
                      .system(system)
                      .protocol(protocol)
                      .scenario(faults::Scenario::parse(spec))
                      .seed(17)
                      .warmup(150.0)
                      .measure(600.0);
    GuessSimulation sim(config);
    return sim.run();
  };
  SimulationResults poisoned = run("at 2000 poison on");  // no-op: always on
  SimulationResults honest = run("at 0 poison off");
  EXPECT_GT(honest.cache_health.good_entries,
            poisoned.cache_health.good_entries);
}

// --- in-flight exchanges vs mass kill -------------------------------------

// A mass kill under the lossy transport leaves the victims' in-flight
// exchanges unresolved at kill time; they must drain as dead/timed-out
// without tripping any invariant — in particular the payment reservation
// ledger, whose release path runs inside the stale-token resolutions.
TEST(FaultMassKill, InFlightLossyExchangesResolveWithoutTrippingPayments) {
  SystemParams system = small_system(150);
  ProtocolParams protocol;
  protocol.payments.enabled = true;
  protocol.payments.probe_cost = 1.0;
  protocol.payments.initial_credit = 1.0;
  protocol.payments.serve_reward = 1.0;
  protocol.payments.max_stalled_slots = 20;
  protocol.parallel_probes = 3;
  TransportParams transport = TransportParams::lossy(0.2);
  transport.max_retries = 1;
  auto config = SimulationConfig()
                    .system(system)
                    .protocol(protocol)
                    .transport(transport)
                    .scenario(faults::Scenario::parse(
                        "at 200 kill 0.5; at 350 join 75"))
                    .seed(19)
                    .warmup(100.0)
                    .measure(500.0);
  GuessSimulation sim(config);
  SimulationResults results;
  ASSERT_NO_THROW(results = sim.run());
  EXPECT_GT(results.probes.good, 0u);
  for (PeerId id : sim.network().alive_ids()) {
    const Peer* peer = sim.network().find(id);
    EXPECT_GE(peer->credit(), 0.0);
    EXPECT_GE(peer->credit(),
              static_cast<double>(peer->reserved_probes()) *
                  protocol.payments.probe_cost);
  }
}

// --- interval series ------------------------------------------------------

TEST(IntervalSeries, ContiguousFromTimeZeroWithLivePopulation) {
  auto config = SimulationConfig()
                    .system(small_system(100))
                    .metrics_interval(100.0)
                    .seed(23)
                    .warmup(200.0)
                    .measure(400.0);
  GuessSimulation sim(config);
  SimulationResults results = sim.run();

  // Horizon 600 = 6 exact 100 s intervals; the sampler fires at the horizon
  // so there is no trailing partial.
  ASSERT_EQ(results.interval_series.size(), 6u);
  sim::Time expected_start = 0.0;
  std::uint64_t total_completed = 0;
  for (const IntervalSample& s : results.interval_series) {
    EXPECT_DOUBLE_EQ(s.start, expected_start);
    EXPECT_DOUBLE_EQ(s.end, expected_start + 100.0);
    expected_start = s.end;
    EXPECT_EQ(s.live_peers, 100u);
    EXPECT_GE(s.queries_completed, s.queries_satisfied);
    total_completed += s.queries_completed;
  }
  // The series spans warmup too, so it counts at least the measured queries.
  EXPECT_GE(total_completed, results.queries_completed);
  EXPECT_GT(total_completed, 0u);
}

TEST(IntervalSeries, TrailingPartialIntervalAppended) {
  auto config = SimulationConfig()
                    .system(small_system(100))
                    .metrics_interval(90.0)  // 600 / 90 leaves a 60 s tail
                    .seed(23)
                    .warmup(200.0)
                    .measure(400.0);
  GuessSimulation sim(config);
  SimulationResults results = sim.run();
  ASSERT_EQ(results.interval_series.size(), 7u);
  const IntervalSample& tail = results.interval_series.back();
  EXPECT_DOUBLE_EQ(tail.start, 540.0);
  EXPECT_DOUBLE_EQ(tail.end, 600.0);
}

TEST(IntervalSeries, DisabledByDefault) {
  auto config = SimulationConfig()
                    .system(small_system(100))
                    .seed(23)
                    .warmup(100.0)
                    .measure(200.0);
  GuessSimulation sim(config);
  EXPECT_TRUE(sim.run().interval_series.empty());
}

// A kill at an interval boundary: the sample closing at that instant already
// reflects the post-kill population (faults are scheduled before the
// sampler, so they win the time tie), and later samples show the reduced
// population.
TEST(IntervalSeries, KillAtBoundaryReflectedInClosingSample) {
  auto config = SimulationConfig()
                    .system(small_system(100))
                    .scenario(faults::Scenario::parse("at 300 kill 0.3"))
                    .metrics_interval(100.0)
                    .seed(29)
                    .warmup(200.0)
                    .measure(400.0);
  GuessSimulation sim(config);
  SimulationResults results = sim.run();
  ASSERT_EQ(results.interval_series.size(), 6u);
  EXPECT_EQ(results.interval_series[1].live_peers, 100u);  // 100..200
  EXPECT_EQ(results.interval_series[2].live_peers, 70u);   // 200..300
  EXPECT_EQ(results.interval_series[5].live_peers, 70u);   // 500..600
}

// --- config validation ----------------------------------------------------

TEST(ScenarioConfig, NonFiniteFieldsRejectedByValidate) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SystemParams bad_system = small_system(100);
  bad_system.query_rate = nan;
  EXPECT_THROW(SimulationConfig().system(bad_system).validate(), CheckError);

  TransportParams bad_transport = TransportParams::lossy(0.1);
  bad_transport.max_backoff = nan;
  EXPECT_THROW(SimulationConfig().transport(bad_transport).validate(),
               CheckError);

  EXPECT_THROW(SimulationConfig().metrics_interval(nan).validate(),
               CheckError);
  EXPECT_THROW(SimulationConfig().metrics_interval(-1.0).validate(),
               CheckError);
  EXPECT_NO_THROW(SimulationConfig().metrics_interval(60.0).validate());
}

}  // namespace
}  // namespace guess
