// SimulationConfig::validate() bounds audit: every numeric field rejects
// out-of-range AND non-finite values (NaN compares false against every
// range check, so each field needs an explicit isfinite guard).
#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"
#include "guess/config.h"

namespace guess {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ConfigValidate, DefaultsAreValid) {
  EXPECT_NO_THROW(SimulationConfig().validate());
}

// --- SystemParams (Table 1) ---

TEST(ConfigValidate, SystemBounds) {
  auto with = [](auto mutate) {
    SystemParams system;
    mutate(system);
    return SimulationConfig().system(system);
  };
  EXPECT_THROW(with([](SystemParams& s) { s.network_size = 1; }).validate(),
               CheckError);
  EXPECT_THROW(
      with([](SystemParams& s) { s.num_desired_results = 0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](SystemParams& s) { s.lifespan_multiplier = 0.0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](SystemParams& s) { s.lifespan_multiplier = kNaN; }).validate(),
      CheckError);
  EXPECT_THROW(with([](SystemParams& s) { s.query_rate = -1.0; }).validate(),
               CheckError);
  EXPECT_THROW(with([](SystemParams& s) { s.query_rate = kNaN; }).validate(),
               CheckError);
  EXPECT_THROW(
      with([](SystemParams& s) { s.percent_bad_peers = 101.0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](SystemParams& s) { s.percent_bad_peers = kNaN; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](SystemParams& s) { s.percent_selfish_peers = -0.5; }).validate(),
      CheckError);
  EXPECT_THROW(with([](SystemParams& s) {
                 s.percent_bad_peers = 60.0;
                 s.percent_selfish_peers = 60.0;  // together > 100
               }).validate(),
               CheckError);
  EXPECT_THROW(with([](SystemParams& s) {
                 s.burst_min = 5;
                 s.burst_max = 2;
               }).validate(),
               CheckError);
}

// --- ProtocolParams (Table 2) ---

TEST(ConfigValidate, ProtocolBounds) {
  auto with = [](auto mutate) {
    ProtocolParams protocol;
    mutate(protocol);
    return SimulationConfig().protocol(protocol);
  };
  EXPECT_THROW(
      with([](ProtocolParams& p) { p.ping_interval = 0.0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](ProtocolParams& p) { p.probe_interval = -1.0; }).validate(),
      CheckError);
  EXPECT_THROW(with([](ProtocolParams& p) { p.cache_size = 0; }).validate(),
               CheckError);
  EXPECT_THROW(with([](ProtocolParams& p) { p.pong_size = 0; }).validate(),
               CheckError);
  EXPECT_THROW(with([](ProtocolParams& p) { p.intro_prob = 1.5; }).validate(),
               CheckError);
  EXPECT_THROW(
      with([](ProtocolParams& p) { p.parallel_probes = 0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](ProtocolParams& p) { p.backoff_duration = -1.0; }).validate(),
      CheckError);
}

// --- TransportParams (DESIGN.md §8) ---

TEST(ConfigValidate, TransportBounds) {
  auto with = [](auto mutate) {
    TransportParams transport;
    mutate(transport);
    return SimulationConfig().transport(transport);
  };
  EXPECT_THROW(with([](TransportParams& t) { t.loss = 1.5; }).validate(),
               CheckError);
  EXPECT_THROW(with([](TransportParams& t) { t.loss = kNaN; }).validate(),
               CheckError);
  EXPECT_THROW(
      with([](TransportParams& t) { t.probe_timeout = 0.0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](TransportParams& t) { t.link_latency = -0.1; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](TransportParams& t) { t.link_latency = kInf; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](TransportParams& t) { t.retry_backoff = -1.0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](TransportParams& t) { t.max_retries = 1001; }).validate(),
      CheckError);
  EXPECT_THROW(with([](TransportParams& t) { t.max_backoff = 0.0; }).validate(),
               CheckError);
}

// --- Run control ---

TEST(ConfigValidate, RunControlBounds) {
  EXPECT_THROW(SimulationConfig().warmup(-1.0).validate(), CheckError);
  EXPECT_THROW(SimulationConfig().warmup(kNaN).validate(), CheckError);
  EXPECT_THROW(SimulationConfig().measure(-1.0).validate(), CheckError);
  EXPECT_THROW(SimulationConfig().measure(kInf).validate(), CheckError);
  EXPECT_THROW(SimulationConfig().metrics_interval(-60.0).validate(),
               CheckError);
  EXPECT_THROW(SimulationConfig().metrics_interval(kNaN).validate(),
               CheckError);
  EXPECT_THROW(SimulationConfig().threads(-1).validate(), CheckError);
}

// --- Open-loop arrivals + overload control (DESIGN.md §13) ---

TEST(ConfigValidate, OpenLoopRequiresPositiveOfferedRate) {
  EXPECT_THROW(
      SimulationConfig().arrival(sim::ArrivalMode::kOpen).validate(),
      CheckError);
  EXPECT_THROW(SimulationConfig()
                   .arrival(sim::ArrivalMode::kOpen)
                   .offered_qps(-5.0)
                   .validate(),
               CheckError);
  EXPECT_THROW(SimulationConfig()
                   .arrival(sim::ArrivalMode::kOpen)
                   .offered_qps(kNaN)
                   .validate(),
               CheckError);
  EXPECT_NO_THROW(SimulationConfig()
                      .arrival(sim::ArrivalMode::kOpen)
                      .offered_qps(10.0)
                      .validate());
}

TEST(ConfigValidate, ClosedLoopRejectsOpenLoopKnobs) {
  // offered_qps without --arrival=open is a silent no-op the user almost
  // certainly did not intend; validate turns it into a hard error.
  EXPECT_THROW(SimulationConfig().offered_qps(10.0).validate(), CheckError);
  EXPECT_THROW(
      SimulationConfig().overload_policy(OverloadPolicy::kAdmit).validate(),
      CheckError);
}

TEST(ConfigValidate, SloMustBePositiveAndFinite) {
  EXPECT_THROW(SimulationConfig().slo(0.0).validate(), CheckError);
  EXPECT_THROW(SimulationConfig().slo(-2.0).validate(), CheckError);
  EXPECT_THROW(SimulationConfig().slo(kNaN).validate(), CheckError);
}

TEST(ConfigValidate, OverloadParamBounds) {
  auto with = [](auto mutate) {
    OverloadParams overload;
    mutate(overload);
    return SimulationConfig()
        .arrival(sim::ArrivalMode::kOpen)
        .offered_qps(10.0)
        .overload(overload);
  };
  EXPECT_THROW(with([](OverloadParams& o) { o.max_in_flight = 0; }).validate(),
               CheckError);
  EXPECT_THROW(with([](OverloadParams& o) { o.queue_capacity = 0; }).validate(),
               CheckError);
  EXPECT_THROW(with([](OverloadParams& o) { o.shed_watermark = 0; }).validate(),
               CheckError);
  EXPECT_THROW(with([](OverloadParams& o) {
                 o.queue_capacity = 8;
                 o.shed_watermark = 9;  // > queue_capacity
               }).validate(),
               CheckError);
  EXPECT_THROW(
      with([](OverloadParams& o) { o.target_failure_rate = 1.5; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](OverloadParams& o) { o.target_failure_rate = kNaN; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](OverloadParams& o) { o.additive_increase = 0.0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](OverloadParams& o) { o.additive_increase = kNaN; }).validate(),
      CheckError);
  EXPECT_THROW(with([](OverloadParams& o) {
                 o.multiplicative_decrease = 1.0;  // must shrink
               }).validate(),
               CheckError);
  EXPECT_THROW(with([](OverloadParams& o) {
                 o.multiplicative_decrease = 0.0;
               }).validate(),
               CheckError);
  EXPECT_THROW(with([](OverloadParams& o) { o.min_window = 0; }).validate(),
               CheckError);
  EXPECT_THROW(with([](OverloadParams& o) {
                 o.min_window = 64;
                 o.max_window = 32;
               }).validate(),
               CheckError);
  EXPECT_THROW(
      with([](OverloadParams& o) { o.control_interval = 0.0; }).validate(),
      CheckError);
  EXPECT_THROW(
      with([](OverloadParams& o) { o.control_interval = kNaN; }).validate(),
      CheckError);
  EXPECT_NO_THROW(with([](OverloadParams& o) {
                    o.policy = OverloadPolicy::kBackpressure;
                  }).validate());
}

// --- Backend tuning blocks ---

TEST(ConfigValidate, BackendBlockBounds) {
  {
    FloodBackendParams flood;
    flood.ttl = 0;
    EXPECT_THROW(SimulationConfig().flood(flood).validate(), CheckError);
  }
  {
    FloodBackendParams flood;
    flood.target_degree = 8;
    flood.max_degree = 4;
    EXPECT_THROW(SimulationConfig().flood(flood).validate(), CheckError);
  }
  {
    IterativeBackendParams iterative;
    iterative.schedule = {10, 10};  // not strictly increasing
    EXPECT_THROW(SimulationConfig().iterative(iterative).validate(),
                 CheckError);
  }
  {
    OneHopBackendParams onehop;
    onehop.dissemination_delay = -1.0;
    EXPECT_THROW(SimulationConfig().onehop(onehop).validate(), CheckError);
  }
  {
    GossipBackendParams gossip;
    gossip.fanout = 0;
    EXPECT_THROW(SimulationConfig().gossip(gossip).validate(), CheckError);
  }
  {
    GossipBackendParams gossip;
    gossip.probe_interval = 0.0;
    EXPECT_THROW(SimulationConfig().gossip(gossip).validate(), CheckError);
  }
}

}  // namespace
}  // namespace guess
