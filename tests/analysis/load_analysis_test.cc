#include "analysis/load_analysis.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess::analysis {
namespace {

TEST(Gini, UniformLoadIsZero) {
  EXPECT_DOUBLE_EQ(gini_coefficient({5.0, 5.0, 5.0, 5.0}), 0.0);
}

TEST(Gini, SinglePeerCarryingEverything) {
  // One-hot load over n peers has Gini (n-1)/n.
  EXPECT_NEAR(gini_coefficient({0.0, 0.0, 0.0, 10.0}), 0.75, 1e-12);
}

TEST(Gini, KnownTwoValueCase) {
  // loads {1, 3}: mean 2, Gini = 0.25.
  EXPECT_NEAR(gini_coefficient({1.0, 3.0}), 0.25, 1e-12);
}

TEST(Gini, EdgeCases) {
  EXPECT_DOUBLE_EQ(gini_coefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({7.0}), 0.0);
  EXPECT_THROW(gini_coefficient({1.0, -1.0}), CheckError);
}

TEST(Gini, MoreSkewMeansHigherGini) {
  double even = gini_coefficient({4.0, 5.0, 6.0});
  double skewed = gini_coefficient({1.0, 1.0, 13.0});
  EXPECT_GT(skewed, even);
}

TEST(TopShare, ComputesHeadFraction) {
  std::vector<double> loads = {1.0, 1.0, 1.0, 1.0, 6.0};
  // Top 20% = 1 peer = 6 of total 10.
  EXPECT_NEAR(top_share(loads, 0.2), 0.6, 1e-12);
  // Top 100% is everything.
  EXPECT_NEAR(top_share(loads, 1.0), 1.0, 1e-12);
}

TEST(TopShare, AlwaysAtLeastOnePeer) {
  std::vector<double> loads = {2.0, 8.0};
  EXPECT_NEAR(top_share(loads, 0.01), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(top_share({}, 0.5), 0.0);
  EXPECT_THROW(top_share(loads, 0.0), CheckError);
}

TEST(LoadSummary, AggregatesSample) {
  SampleSet loads;
  for (double v : {0.0, 1.0, 2.0, 3.0, 14.0}) loads.add(v);
  auto summary = summarize_load(loads);
  EXPECT_DOUBLE_EQ(summary.total, 20.0);
  EXPECT_DOUBLE_EQ(summary.mean, 4.0);
  EXPECT_DOUBLE_EQ(summary.max, 14.0);
  EXPECT_GT(summary.gini, 0.3);
  EXPECT_GT(summary.top1pct_share, 0.5);
}

TEST(LoadSummary, EmptySampleIsZeroes) {
  auto summary = summarize_load(SampleSet{});
  EXPECT_DOUBLE_EQ(summary.total, 0.0);
  EXPECT_DOUBLE_EQ(summary.gini, 0.0);
}

TEST(RankedCurve, DescendingLogSpacedRanks) {
  SampleSet loads;
  for (int i = 1; i <= 1000; ++i) loads.add(static_cast<double>(i));
  auto curve = ranked_curve(loads, 10);
  ASSERT_GE(curve.size(), 5u);
  EXPECT_EQ(curve.front().first, 1u);
  EXPECT_DOUBLE_EQ(curve.front().second, 1000.0);  // rank 1 = heaviest
  EXPECT_EQ(curve.back().first, 1000u);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].first, curve[i - 1].first);     // ranks increase
    EXPECT_LE(curve[i].second, curve[i - 1].second);   // loads decrease
  }
}

TEST(RankedCurve, EmptyAndValidation) {
  EXPECT_TRUE(ranked_curve(SampleSet{}, 10).empty());
  SampleSet one;
  one.add(5.0);
  EXPECT_THROW(ranked_curve(one, 1), CheckError);
  auto curve = ranked_curve(one, 5);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].first, 1u);
}

}  // namespace
}  // namespace guess::analysis
