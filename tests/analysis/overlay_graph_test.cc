#include "analysis/overlay_graph.h"

#include <gtest/gtest.h>

namespace guess::analysis {
namespace {

TEST(OverlayGraph, EmptyGraph) {
  OverlayGraph graph;
  EXPECT_EQ(graph.node_count(), 0u);
  EXPECT_EQ(graph.largest_weak_component(), 0u);
  EXPECT_EQ(graph.largest_strong_component(), 0u);
  EXPECT_DOUBLE_EQ(graph.mean_out_degree(), 0.0);
}

TEST(OverlayGraph, IsolatedNodesAreSingletons) {
  OverlayGraph graph;
  graph.add_node(1);
  graph.add_node(2);
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.largest_weak_component(), 1u);
  EXPECT_EQ(graph.largest_strong_component(), 1u);
}

TEST(OverlayGraph, DirectedChainIsWeaklyConnected) {
  OverlayGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  graph.add_edge(3, 4);
  EXPECT_EQ(graph.largest_weak_component(), 4u);
  // No cycles: every strong component is a single node.
  EXPECT_EQ(graph.largest_strong_component(), 1u);
}

TEST(OverlayGraph, CycleIsStronglyConnected) {
  OverlayGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  graph.add_edge(3, 1);
  EXPECT_EQ(graph.largest_strong_component(), 3u);
  EXPECT_EQ(graph.largest_weak_component(), 3u);
}

TEST(OverlayGraph, DisconnectedComponentsReportLargest) {
  OverlayGraph graph;
  // Component A: 4 nodes weakly connected.
  graph.add_edge(1, 2);
  graph.add_edge(1, 3);
  graph.add_edge(1, 4);
  // Component B: 2 nodes.
  graph.add_edge(10, 11);
  // Singleton.
  graph.add_node(20);
  EXPECT_EQ(graph.node_count(), 7u);
  EXPECT_EQ(graph.largest_weak_component(), 4u);
}

TEST(OverlayGraph, StrongComponentInsideLargerWeakOne) {
  OverlayGraph graph;
  // 1 <-> 2 cycle plus a tail 2 -> 3 -> 4.
  graph.add_edge(1, 2);
  graph.add_edge(2, 1);
  graph.add_edge(2, 3);
  graph.add_edge(3, 4);
  EXPECT_EQ(graph.largest_weak_component(), 4u);
  EXPECT_EQ(graph.largest_strong_component(), 2u);
}

TEST(OverlayGraph, TwoCyclesDifferentSizes) {
  OverlayGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 1);
  for (int i = 10; i < 14; ++i) {
    graph.add_edge(static_cast<OverlayGraph::NodeId>(i),
                   static_cast<OverlayGraph::NodeId>(i + 1));
  }
  graph.add_edge(14, 10);  // 5-cycle
  EXPECT_EQ(graph.largest_strong_component(), 5u);
}

TEST(OverlayGraph, ParallelEdgesAllowedAndCounted) {
  OverlayGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(1, 2);
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(graph.mean_out_degree(), 1.0);
}

TEST(OverlayGraph, SparseIdsHandled) {
  OverlayGraph graph;
  graph.add_edge(1'000'000'000ULL, 42);
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.largest_weak_component(), 2u);
}

TEST(OverlayGraph, DeepChainDoesNotOverflowStack) {
  // The iterative Tarjan must handle paths far beyond thread stack depth.
  OverlayGraph graph;
  const std::size_t n = 200000;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    graph.add_edge(i, i + 1);
  }
  EXPECT_EQ(graph.largest_weak_component(), n);
  EXPECT_EQ(graph.largest_strong_component(), 1u);
}

}  // namespace
}  // namespace guess::analysis
