// Steady-state allocation freedom of the open-loop machinery (DESIGN.md
// §13): once the backend's pools and the driver's structures are at their
// high-water marks, the arrival process (inline self-rescheduling thunk),
// the admission controller (no queue for kAdmit) and the per-query observer
// path (histogram add + counter bumps) run without touching the heap.
//
// Built as its own test binary because it replaces global operator new /
// delete with counting versions (the tests/guess/query_alloc_test.cc
// pattern, extended from the GUESS hot path to the open-loop driver that
// wraps it).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "search/backend.h"
#include "search/open_loop.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace guess::search {
namespace {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

class OpenLoopAllocTest : public ::testing::TestWithParam<sim::Scheduler> {};

TEST_P(OpenLoopAllocTest, SteadyStateOpenLoopGuessIsAllocationFree) {
  SystemParams system;
  system.network_size = 200;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  // Churn stilled: a death mid-window legitimately allocates (replacement
  // birth samples a fresh library), so none may land in the window.
  system.lifespan_multiplier = 500.0;

  ProtocolParams protocol;  // the frozen deterministic bench workload
  protocol.query_probe = Policy::kMR;
  protocol.query_pong = Policy::kMR;
  protocol.ping_probe = Policy::kLRU;
  protocol.ping_pong = Policy::kMFS;
  protocol.cache_replacement = Replacement::kLR;

  OverloadParams overload;
  overload.policy = OverloadPolicy::kAdmit;  // bounded in-flight, no queue
  overload.max_in_flight = 32;

  auto config = SimulationConfig()
                    .system(system)
                    .protocol(protocol)
                    .arrival(sim::ArrivalMode::kOpen)
                    .offered_qps(2.0)
                    .overload(overload)
                    .seed(42);
  config.validate();

  sim::Simulator simulator(GetParam());
  auto backend = make_backend(config, simulator, Rng(config.seed()));
  backend->bootstrap();
  OpenLoopDriver driver(config, simulator, *backend);
  driver.start();

  // Warm up: peer slab, event slab, query pool and per-peer rings grow to
  // their steady-state high-water capacities; ~800 open-loop queries flow
  // through the driver.
  simulator.run_until(400.0);
  // Only the driver's measurement flag flips here (counter bumps +
  // fixed-array histogram adds); the backend's own samplers grow vectors,
  // so its begin_measurement waits until after the window — the
  // query_alloc_test convention.
  driver.begin_measurement();

  // Measure. No EXPECTs inside the window (gtest assertions can allocate).
  std::uint64_t before = allocation_count();
  simulator.run_until(700.0);
  std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "steady-state open-loop workload allocated " << (after - before)
      << " times";

  // Work actually flowed through the driver during the run.
  backend->begin_measurement();
  simulator.run_until(750.0);
  SearchResults results = backend->collect();
  driver.finalize(results);
  EXPECT_GT(results.overload.arrivals, 300u);
  EXPECT_GT(results.overload.completed, 300u);
  EXPECT_GT(results.overload.latency.count(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, OpenLoopAllocTest,
                         ::testing::Values(sim::Scheduler::kHeap,
                                           sim::Scheduler::kCalendar),
                         [](const auto& info) {
                           return sim::scheduler_name(info.param);
                         });

// Sanity: the counter actually counts (a direct call cannot be elided).
TEST(OpenLoopAllocCounter, CountsHeapAllocations) {
  std::uint64_t before = allocation_count();
  void* p = ::operator new(32);
  ::operator delete(p);
  EXPECT_EQ(allocation_count(), before + 1);
}

}  // namespace
}  // namespace guess::search
