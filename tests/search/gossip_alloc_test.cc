// The gossip backend inherits the repo's hot-path discipline
// (tests/guess/query_alloc_test.cc): once the peer slots, knowledge caches
// (reserved to capacity), probe permutation scratch and event slab have
// reached their steady-state high-water marks, gossip rounds and queries
// perform zero heap allocations.
//
// Own test binary: it replaces global operator new / delete with counting
// versions, which must not leak into the other test binaries.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "search/gossip.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace guess::search {
namespace {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

class GossipAllocTest : public ::testing::TestWithParam<sim::Scheduler> {};

TEST_P(GossipAllocTest, SteadyStateGossipWorkloadIsAllocationFree) {
  SystemParams system;
  system.network_size = 200;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  // Effectively no churn: a death mid-window legitimately allocates (the
  // replacement samples a fresh library), so none may land in it.
  system.lifespan_multiplier = 500.0;

  auto config = SimulationConfig().system(system);
  sim::Simulator simulator(GetParam());
  GossipBackend backend(config, simulator, Rng(42));
  backend.bootstrap();

  // Warm up: slots and knowledge caches at reserved capacity, probe
  // permutation scratch grown, event slab at its high-water mark.
  simulator.run_until(400.0);

  // Measure. Stats collection stays off: SampleSet growth is a legitimate
  // measurement-time allocation, not a hot-path one (same placement as the
  // GUESS alloc test). No EXPECTs inside the window (gtest can allocate).
  std::uint64_t before = allocation_count();
  simulator.run_until(700.0);
  std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "steady-state gossip workload allocated " << (after - before)
      << " times";
  // Work actually happened: the measured window after the check shows the
  // workload is live (queries flow, exchanges run).
  backend.begin_measurement();
  simulator.run_until(800.0);
  SearchResults results = backend.collect();
  EXPECT_GT(results.queries_completed, 50u);
  EXPECT_GT(results.maintenance_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, GossipAllocTest,
                         ::testing::Values(sim::Scheduler::kHeap,
                                           sim::Scheduler::kCalendar),
                         [](const auto& info) {
                           return sim::scheduler_name(info.param);
                         });

TEST(GossipAllocCounter, CountsHeapAllocations) {
  std::uint64_t before = allocation_count();
  void* p = ::operator new(32);
  ::operator delete(p);
  EXPECT_EQ(allocation_count(), before + 1);
}

}  // namespace
}  // namespace guess::search
