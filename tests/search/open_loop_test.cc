// Open-loop arrivals + overload control through run_search (DESIGN.md §13):
// conservation of every offered query, censored accounting of in-flight work
// at window close, bitwise determinism across schedulers and thread counts,
// and the overload columns of the interval series.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/check.h"
#include "guess/config.h"
#include "search/backend.h"

namespace guess::search {
namespace {

SystemParams small_system(std::size_t n = 120) {
  SystemParams system;
  system.network_size = n;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  return system;
}

SimulationConfig open_config(OverloadPolicy policy, double qps,
                             std::uint64_t seed = 7) {
  return SimulationConfig()
      .system(small_system())
      .seed(seed)
      .warmup(0.0)
      .measure(150.0)
      .arrival(sim::ArrivalMode::kOpen)
      .offered_qps(qps)
      .overload_policy(policy);
}

void expect_identical(const OverloadStats& a, const OverloadStats& b) {
  EXPECT_EQ(a.open_loop, b.open_loop);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.satisfied, b.satisfied);
  EXPECT_EQ(a.slo_ok, b.slo_ok);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.open_at_close, b.open_at_close);
  EXPECT_TRUE(a.latency == b.latency) << "latency histograms differ";
}

// Every offered query must be accounted for exactly once:
//   arrivals = completed + rejected + shed + abandoned + open_at_close
// and the latency histogram holds completions plus censored open queries.
// Requires warmup == 0: with a warmup, queries admitted before the window
// complete inside it (counted as completed but never as an arrival).
void expect_conserved(const OverloadStats& s) {
  EXPECT_EQ(s.arrivals,
            s.completed + s.rejected + s.shed + s.abandoned + s.open_at_close);
  EXPECT_EQ(s.latency.count(), s.completed + s.open_at_close);
  EXPECT_LE(s.admitted, s.arrivals);
  EXPECT_LE(s.slo_ok, s.satisfied);
  EXPECT_LE(s.satisfied, s.completed);
}

TEST(OpenLoop, ClosedLoopRunsCarryZeroOverloadStats) {
  auto config = SimulationConfig()
                    .system(small_system())
                    .seed(3)
                    .warmup(50.0)
                    .measure(100.0);
  SearchResults r = run_search(config);
  EXPECT_FALSE(r.overload.open_loop);
  EXPECT_EQ(r.overload.arrivals, 0u);
  EXPECT_TRUE(r.overload.latency.empty());
  EXPECT_GT(r.queries_completed, 0u);  // the closed-loop clock still ran
}

TEST(OpenLoop, ConservationHoldsForEveryPolicy) {
  for (OverloadPolicy policy :
       {OverloadPolicy::kNone, OverloadPolicy::kAdmit, OverloadPolicy::kShed,
        OverloadPolicy::kBackpressure}) {
    SCOPED_TRACE(overload_policy_name(policy));
    SearchResults r = run_search(open_config(policy, 5.0));
    EXPECT_TRUE(r.overload.open_loop);
    EXPECT_EQ(r.overload.policy, policy);
    EXPECT_GT(r.overload.arrivals, 0u);
    EXPECT_GT(r.overload.completed, 0u);
    expect_conserved(r.overload);
  }
}

TEST(OpenLoop, ConservationHoldsOnEveryBackend) {
  for (SearchBackendId id : registered_backends()) {
    SCOPED_TRACE(backend_name(id));
    SearchResults r =
        run_search(open_config(OverloadPolicy::kNone, 5.0).backend(id));
    EXPECT_TRUE(r.overload.open_loop);
    EXPECT_GT(r.overload.arrivals, 0u);
    EXPECT_GT(r.overload.completed, 0u);
    expect_conserved(r.overload);
  }
}

TEST(OpenLoop, InFlightQueriesAtCloseAreCensoredNotDropped) {
  // Regression for the closed-loop assumption this PR removes: GUESS
  // queries span many probe slots, so at a continuous 20 q/s some are
  // always mid-flight when the window closes. They must surface as
  // open_at_close with their ages in the histogram — not silently vanish
  // (which would let an overloaded run hide its backlog).
  SearchResults r = run_search(open_config(OverloadPolicy::kNone, 20.0));
  EXPECT_GT(r.overload.open_at_close, 0u);
  expect_conserved(r.overload);
  EXPECT_EQ(r.overload.latency.count(),
            r.overload.completed + r.overload.open_at_close);
}

TEST(OpenLoop, AdmissionControlRejectsPastItsWindow) {
  OverloadParams overload;
  overload.policy = OverloadPolicy::kAdmit;
  overload.max_in_flight = 4;
  SearchResults r =
      run_search(open_config(OverloadPolicy::kAdmit, 20.0).overload(overload));
  EXPECT_GT(r.overload.rejected, 0u);
  EXPECT_EQ(r.overload.shed, 0u);  // admission control never queues
  expect_conserved(r.overload);
}

TEST(OpenLoop, SheddingDropsQueuedWorkPastTheWatermark) {
  OverloadParams overload;
  overload.policy = OverloadPolicy::kShed;
  overload.max_in_flight = 4;
  overload.queue_capacity = 16;
  overload.shed_watermark = 4;
  SearchResults r =
      run_search(open_config(OverloadPolicy::kShed, 20.0).overload(overload));
  EXPECT_GT(r.overload.shed, 0u);
  expect_conserved(r.overload);
}

TEST(OpenLoop, SameSeedIsBitwiseReproducible) {
  SearchResults a = run_search(open_config(OverloadPolicy::kShed, 10.0));
  SearchResults b = run_search(open_config(OverloadPolicy::kShed, 10.0));
  expect_identical(a.overload, b.overload);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
}

TEST(OpenLoop, BitwiseIdenticalAcrossSchedulers) {
  for (OverloadPolicy policy :
       {OverloadPolicy::kNone, OverloadPolicy::kBackpressure}) {
    SCOPED_TRACE(overload_policy_name(policy));
    SearchResults heap = run_search(
        open_config(policy, 8.0).scheduler(sim::Scheduler::kHeap));
    SearchResults calendar = run_search(
        open_config(policy, 8.0).scheduler(sim::Scheduler::kCalendar));
    expect_identical(heap.overload, calendar.overload);
    EXPECT_EQ(heap.queries_completed, calendar.queries_completed);
    EXPECT_EQ(heap.probes, calendar.probes);
  }
}

TEST(OpenLoop, BitwiseIdenticalAcrossThreadCounts) {
  auto config = open_config(OverloadPolicy::kAdmit, 8.0);
  auto serial = run_search_seeds(config.threads(1), 3);
  auto parallel = run_search_seeds(config.threads(3), 3);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i].overload, parallel[i].overload);
    EXPECT_EQ(serial[i].queries_completed, parallel[i].queries_completed);
  }
}

TEST(OpenLoop, AttachingTheDriverDoesNotPerturbDifferentSeeds) {
  // The arrival and workload RNG streams are salted off the config seed;
  // two different seeds must still produce different runs (the salt is not
  // collapsing the stream).
  SearchResults a = run_search(open_config(OverloadPolicy::kNone, 5.0, 7));
  SearchResults b = run_search(open_config(OverloadPolicy::kNone, 5.0, 8));
  EXPECT_NE(a.overload.arrivals, 0u);
  EXPECT_FALSE(a.overload.latency == b.overload.latency);
}

TEST(OpenLoop, IntervalSeriesCarriesOverloadColumns) {
  SearchResults r = run_search(
      open_config(OverloadPolicy::kNone, 8.0).metrics_interval(30.0));
  ASSERT_FALSE(r.interval_series.empty());
  std::uint64_t arrivals = 0;
  std::uint64_t slo_ok = 0;
  for (const IntervalSample& row : r.interval_series) {
    EXPECT_GT(row.end, row.start);
    arrivals += row.arrivals;
    slo_ok += row.slo_ok;
  }
  EXPECT_GT(arrivals, 0u);
  // Interval rows stop at the last sampled boundary; totals cover the whole
  // window, so the series can only undercount.
  EXPECT_LE(arrivals, r.overload.arrivals);
  EXPECT_LE(slo_ok, r.overload.slo_ok);
}

TEST(OpenLoop, DriverProvidesIntervalRowsForHookFreeBackends) {
  // The iterative backend has no interval hooks of its own; in open-loop
  // mode the driver's rows (observer-fed) populate the series instead.
  SearchResults r = run_search(open_config(OverloadPolicy::kNone, 8.0)
                                   .backend(SearchBackendId::kIterative)
                                   .metrics_interval(30.0));
  ASSERT_FALSE(r.interval_series.empty());
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  for (const IntervalSample& row : r.interval_series) {
    arrivals += row.arrivals;
    completed += row.queries_completed;
  }
  EXPECT_GT(arrivals, 0u);
  EXPECT_GT(completed, 0u);
}

TEST(OpenLoop, GoodputAndViolationRateAreConsistent) {
  SearchResults r = run_search(open_config(OverloadPolicy::kAdmit, 10.0));
  const OverloadStats& s = r.overload;
  EXPECT_DOUBLE_EQ(s.goodput(r.measure_duration),
                   static_cast<double>(s.slo_ok) / r.measure_duration);
  double rate = s.slo_violation_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

}  // namespace
}  // namespace guess::search
