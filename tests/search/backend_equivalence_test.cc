// The ported-silo contract (DESIGN.md §12.2): every legacy protocol driven
// through run_search() is bitwise-identical to its legacy free-standing
// driver — same construction order, same RNG consumption, same event
// schedule. Each test replicates a silo's legacy driver sequence verbatim
// (the sequences the pre-§12 benches used) and compares the legacy results
// struct riding in the extension slot field by field, under both event-queue
// backends. "Bitwise" is literal: doubles compare ==.
#include <gtest/gtest.h>

#include "baseline/iterative_deepening.h"
#include "common/check.h"
#include "baseline/static_population.h"
#include "content/content_model.h"
#include "gnutella/dynamic_overlay.h"
#include "guess/simulation.h"
#include "onehop/one_hop_dht.h"
#include "search/backend.h"
#include "sim/simulator.h"
#include "../testsupport/simulation_results_eq.h"

namespace guess::search {
namespace {

SystemParams small_system(std::size_t n = 150) {
  SystemParams system;
  system.network_size = n;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  return system;
}

void expect_identical(const RunningStat& a, const RunningStat& b) {
  testsupport::expect_identical(a, b);
}

void expect_identical(const SampleSet& a, const SampleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.values(), b.values());
}

class BackendEquivalenceTest : public ::testing::TestWithParam<sim::Scheduler> {
};

// --- GUESS ------------------------------------------------------------------

TEST_P(BackendEquivalenceTest, GuessMatchesLegacySimulation) {
  auto config = SimulationConfig()
                    .system(small_system())
                    .protocol(ProtocolParams{})
                    .seed(11)
                    .warmup(200.0)
                    .measure(400.0)
                    .scheduler(GetParam());

  SimulationResults legacy = GuessSimulation(config).run();
  SearchResults unified = run_search(config);

  const auto* extra = unified.extra_as<SimulationResults>();
  ASSERT_NE(extra, nullptr);
  testsupport::expect_identical(legacy, *extra);

  // The unified mapping is arithmetic over the legacy struct.
  EXPECT_EQ(unified.backend, "guess");
  EXPECT_EQ(unified.queries_completed, legacy.queries_completed);
  EXPECT_EQ(unified.queries_satisfied, legacy.queries_satisfied);
  EXPECT_EQ(unified.probes, legacy.probes.total());
  EXPECT_EQ(unified.deaths, legacy.deaths);
  EXPECT_EQ(unified.measure_duration, 400.0);
  expect_identical(unified.probe_samples, legacy.query_probes);
  EXPECT_GT(unified.queries_completed, 0u);
  EXPECT_GT(unified.bytes_on_wire(), 0u);
}

TEST_P(BackendEquivalenceTest, GuessMatchesLegacyUnderFaultsAndLossAndIntervals) {
  // The loaded variant: lossy transport, a fault scenario, the interval
  // series and connectivity sampling all at once — every optional code path
  // of the driver loop must stay in lockstep with GuessSimulation::run().
  auto config = SimulationConfig()
                    .system(small_system())
                    .protocol(ProtocolParams{})
                    .transport(TransportParams::lossy(0.05))
                    .scenario(faults::Scenario::parse(
                        "at 300 kill 0.2\nat 360 join 30"))
                    .metrics_interval(60.0)
                    .sample_connectivity(true)
                    .seed(23)
                    .warmup(200.0)
                    .measure(400.0)
                    .scheduler(GetParam());

  SimulationResults legacy = GuessSimulation(config).run();
  SearchResults unified = run_search(config);

  const auto* extra = unified.extra_as<SimulationResults>();
  ASSERT_NE(extra, nullptr);
  testsupport::expect_identical(legacy, *extra);
  testsupport::expect_identical(unified.interval_series,
                                legacy.interval_series);
  EXPECT_GT(unified.interval_series.size(), 0u);
}

// --- Gnutella flooding ------------------------------------------------------

void expect_identical(const gnutella::DynamicResults& a,
                      const gnutella::DynamicResults& b) {
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_satisfied, b.queries_satisfied);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.peers_reached, b.peers_reached);
  expect_identical(a.response_time, b.response_time);
  expect_identical(a.peer_loads, b.peer_loads);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(a.repairs, b.repairs);
  expect_identical(a.query_reach, b.query_reach);
}

TEST_P(BackendEquivalenceTest, FloodMatchesLegacyDriver) {
  SystemParams system = small_system();

  // The legacy driver sequence (bench_gnutella_compare's flood lane): the
  // workload fields on DynamicParams, everything else at its defaults —
  // which are exactly the FloodBackendParams defaults.
  gnutella::DynamicParams params;
  params.network_size = system.network_size;
  params.content = system.content;
  params.query_rate = system.query_rate;
  params.num_desired_results = system.num_desired_results;
  params.ttl = FloodBackendParams{}.ttl;
  sim::Simulator simulator(GetParam());
  gnutella::DynamicOverlay overlay(params, simulator, Rng(31));
  overlay.initialize();
  simulator.run_until(200.0);
  overlay.begin_measurement();
  simulator.run_until(600.0);
  gnutella::DynamicResults legacy = overlay.results();

  SearchResults unified = run_search(SimulationConfig()
                                         .system(system)
                                         .backend(SearchBackendId::kFlood)
                                         .seed(31)
                                         .warmup(200.0)
                                         .measure(400.0)
                                         .scheduler(GetParam()));

  const auto* extra = unified.extra_as<gnutella::DynamicResults>();
  ASSERT_NE(extra, nullptr);
  expect_identical(legacy, *extra);

  EXPECT_EQ(unified.backend, "flood");
  EXPECT_EQ(unified.queries_completed, legacy.queries_completed);
  EXPECT_EQ(unified.probes, legacy.peers_reached);
  EXPECT_EQ(unified.query_messages, legacy.messages);
  EXPECT_EQ(unified.maintenance_messages, 2 * legacy.repairs);
  EXPECT_GT(unified.queries_completed, 0u);
}

// --- One-hop DHT ------------------------------------------------------------

void expect_identical(const onehop::OneHopResults& a,
                      const onehop::OneHopResults& b) {
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.one_hop, b.one_hop);
  EXPECT_EQ(a.corrective_hops, b.corrective_hops);
  EXPECT_EQ(a.timeouts, b.timeouts);
  expect_identical(a.probes_per_lookup, b.probes_per_lookup);
  expect_identical(a.lookup_probes, b.lookup_probes);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(a.membership_events, b.membership_events);
}

TEST_P(BackendEquivalenceTest, OneHopMatchesLegacyDriver) {
  SystemParams system = small_system();

  // The legacy driver sequence (bench_onehop's): the adapter maps
  // system.query_rate onto lookup_rate, so the legacy run uses the same
  // value explicitly.
  onehop::OneHopParams params;
  params.network_size = system.network_size;
  params.lifespan_multiplier = system.lifespan_multiplier;
  params.lookup_rate = system.query_rate;
  params.dissemination_delay = OneHopBackendParams{}.dissemination_delay;
  sim::Simulator simulator(GetParam());
  onehop::OneHopDht dht(params, simulator, Rng(37));
  dht.initialize();
  simulator.run_until(200.0);
  dht.begin_measurement();
  simulator.run_until(600.0);
  onehop::OneHopResults legacy = dht.results();

  SearchResults unified = run_search(SimulationConfig()
                                         .system(system)
                                         .backend(SearchBackendId::kOneHop)
                                         .seed(37)
                                         .warmup(200.0)
                                         .measure(400.0)
                                         .scheduler(GetParam()));

  const auto* extra = unified.extra_as<onehop::OneHopResults>();
  ASSERT_NE(extra, nullptr);
  expect_identical(legacy, *extra);

  EXPECT_EQ(unified.backend, "onehop");
  EXPECT_EQ(unified.queries_completed, legacy.lookups);
  EXPECT_EQ(unified.queries_satisfied, legacy.lookups);  // exact-match DHT
  EXPECT_EQ(unified.maintenance_messages,
            legacy.membership_events * system.network_size);
  EXPECT_GT(unified.queries_completed, 0u);
}

// --- Iterative deepening ----------------------------------------------------

TEST_P(BackendEquivalenceTest, IterativeMatchesLegacyDriver) {
  SystemParams system = small_system();
  const std::size_t num_queries = 2000;

  // The legacy driver sequence (bench_fig08's): model, population from the
  // run's RNG, then the Monte-Carlo batch from the same RNG.
  content::ContentModel model(system.content);
  Rng rng(41);
  baseline::StaticPopulation population(model, system.network_size, rng);
  baseline::DeepeningResult legacy = baseline::evaluate_iterative_deepening(
      population, model, baseline::default_schedule(system.network_size),
      num_queries,
      static_cast<std::uint32_t>(system.num_desired_results), rng);

  IterativeBackendParams tuning;
  tuning.num_queries = num_queries;
  SearchResults unified = run_search(SimulationConfig()
                                         .system(system)
                                         .backend(SearchBackendId::kIterative)
                                         .iterative(tuning)
                                         .seed(41)
                                         .scheduler(GetParam()));

  const auto* extra = unified.extra_as<baseline::DeepeningResult>();
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(legacy.avg_cost, extra->avg_cost);
  EXPECT_EQ(legacy.unsatisfied_rate, extra->unsatisfied_rate);

  EXPECT_EQ(unified.backend, "iterative");
  EXPECT_EQ(unified.queries_completed, num_queries);
  EXPECT_EQ(unified.probe_samples.size(), num_queries);
  EXPECT_GT(unified.probes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, BackendEquivalenceTest,
                         ::testing::Values(sim::Scheduler::kHeap,
                                           sim::Scheduler::kCalendar),
                         [](const auto& info) {
                           return sim::scheduler_name(info.param);
                         });

// --- registry ---------------------------------------------------------------

TEST(BackendRegistry, AllFiveBackendsRegistered) {
  std::vector<SearchBackendId> ids = registered_backends();
  ASSERT_EQ(ids.size(), 5u);
  for (SearchBackendId id : ids) {
    sim::Simulator simulator;
    auto backend = make_backend(
        SimulationConfig().system(small_system(50)).backend(id), simulator,
        Rng(1));
    ASSERT_NE(backend, nullptr);
    EXPECT_STREQ(backend->name(), backend_name(id));
  }
}

TEST(BackendRegistry, BackendNamesRoundTrip) {
  for (SearchBackendId id : registered_backends()) {
    EXPECT_EQ(parse_backend(backend_name(id)), id);
  }
  EXPECT_THROW(parse_backend("carrier-pigeon"), CheckError);
}

TEST(BackendRegistry, NonGuessBackendsRejectUnsupportedFaults) {
  sim::Simulator simulator;
  auto backend = make_backend(SimulationConfig()
                                  .system(small_system(50))
                                  .backend(SearchBackendId::kFlood),
                              simulator, Rng(1));
  EXPECT_THROW(backend->fault_set_poisoning(true), CheckError);
  EXPECT_THROW(backend->fault_set_partition(2), CheckError);
}

TEST(BackendRegistry, EveryBackendSupportsMassKillAndJoin) {
  for (SearchBackendId id : registered_backends()) {
    sim::Simulator simulator;
    auto backend = make_backend(
        SimulationConfig().system(small_system(50)).backend(id), simulator,
        Rng(1));
    backend->bootstrap();
    std::size_t before = backend->live_peers();
    EXPECT_NO_THROW(backend->fault_mass_kill(0.2)) << backend->name();
    EXPECT_LT(backend->live_peers(), before) << backend->name();
    EXPECT_NO_THROW(backend->fault_mass_join(10)) << backend->name();
  }
}

}  // namespace
}  // namespace guess::search
