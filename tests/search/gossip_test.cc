// Gossip backend (DESIGN.md §12.4): rumor spread, TTL/staleness expiry,
// query-tier resolution, fault handling, and the determinism contracts every
// backend inherits (scheduler- and thread-count-independence).
#include "search/gossip.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "sim/simulator.h"
#include "../testsupport/simulation_results_eq.h"

namespace guess::search {
namespace {

SystemParams tiny_system(std::size_t n) {
  SystemParams system;
  system.network_size = n;
  system.content.catalog_size = 60;
  system.content.query_universe = 80;
  system.num_desired_results = 1;
  // Effectively no churn / no background query bursts: tests drive rounds
  // and queries by hand and advance time through an empty event queue.
  system.lifespan_multiplier = 500.0;
  system.query_rate = 1e-9;
  return system;
}

/// A two-peer world with huge timer periods: gossip_now() is the only way
/// ads move, and the partner draw has exactly one choice.
SimulationConfig pair_config(double ad_ttl = 50.0) {
  GossipBackendParams tuning;
  tuning.gossip_interval = 1e9;
  tuning.fanout = 1;
  tuning.ad_ttl = ad_ttl;
  tuning.ads_per_exchange = 8;
  tuning.residual_pushes = 2;
  return SimulationConfig().system(tiny_system(2)).gossip(tuning);
}

/// First file `id` has a cached ad for, scanning the catalog; the content
/// catalog is small enough to scan exhaustively.
content::FileId first_known_file(const GossipBackend& backend,
                                 std::uint64_t id,
                                 std::size_t catalog_size) {
  for (content::FileId file = 0; file < catalog_size; ++file) {
    if (backend.knows(id, file)) return file;
  }
  return content::kNonexistentFile;
}

/// A two-peer world where gossip verifiably flowed: `knower` holds a cached
/// ad for `file`, and `provider` (the only other peer) is its source and
/// owns the file. Peer libraries come from the paper's sharing
/// distribution, which includes free riders sharing nothing — some seeds
/// are silent worlds, so construction scans seeds until rumors flow. The
/// scan is deterministic: the same seed succeeds every run.
struct PairWorld {
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<GossipBackend> backend;
  std::uint64_t provider = 0;
  std::uint64_t knower = 0;
  content::FileId file = 0;
};

PairWorld make_pair_world(const SimulationConfig& config,
                          std::uint64_t start_seed = 1) {
  std::size_t catalog = config.system().content.catalog_size;
  for (std::uint64_t seed = start_seed; seed < start_seed + 64; ++seed) {
    PairWorld world;
    world.simulator = std::make_unique<sim::Simulator>();
    world.backend =
        std::make_unique<GossipBackend>(config, *world.simulator, Rng(seed));
    world.backend->bootstrap();
    std::uint64_t a = world.backend->alive_ids()[0];
    std::uint64_t b = world.backend->alive_ids()[1];
    for (int round = 0; round < 8; ++round) {
      world.backend->gossip_now(a);
      world.backend->gossip_now(b);
    }
    for (std::uint64_t knower : {a, b}) {
      content::FileId file = first_known_file(*world.backend, knower, catalog);
      if (file == content::kNonexistentFile) continue;
      world.knower = knower;
      world.provider = knower == a ? b : a;  // the only possible source
      world.file = file;
      return world;
    }
  }
  ADD_FAILURE() << "no seed in [" << start_seed << ", " << start_seed + 64
                << ") produced a flowing two-peer world";
  return PairWorld{};
}

TEST(Gossip, ExchangeSpreadsAdsIntoKnowledgeCaches) {
  PairWorld world = make_pair_world(pair_config());
  ASSERT_NE(world.backend, nullptr);
  // The cached ad names a file its provider actually owns: a fresh-enough
  // query resolves through it (knowledge hit, one fetch probe).
  EXPECT_GT(world.backend->knowledge_entries(world.knower), 0u);
  world.backend->begin_measurement();
  world.backend->submit_query(world.knower, world.file);
  SearchResults results = world.backend->collect();
  const auto* stats = results.extra_as<GossipStats>();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->queries_satisfied, 1u);
  EXPECT_EQ(stats->knowledge_hits, 1u);
  EXPECT_EQ(stats->fallback_queries, 0u);
  EXPECT_EQ(stats->probes, 1u);  // one direct fetch from the provider
}

TEST(Gossip, ExpiredAdsAreDiscardedOnAccessAndCounted) {
  SimulationConfig config = pair_config(/*ad_ttl=*/50.0);
  PairWorld world = make_pair_world(config);
  ASSERT_NE(world.backend, nullptr);

  // Past the TTL the cached ad is stale: discarded on access, tallied, and
  // the query falls back to direct probing.
  world.simulator->run_until(60.0);  // > ad_ttl; timer phases are ~1e9
  ASSERT_TRUE(world.backend->knows(world.knower, world.file));
  world.backend->begin_measurement();
  world.backend->submit_query(world.knower, world.file);
  SearchResults stale = world.backend->collect();
  const auto* stats = stale.extra_as<GossipStats>();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->stale_ads_expired, 1u);
  EXPECT_EQ(stats->knowledge_hits, 0u);
  EXPECT_FALSE(world.backend->knows(world.knower, world.file));
}

TEST(Gossip, DeadProviderAdsAreDiscardedOnAccessAndCounted) {
  SimulationConfig config = pair_config(/*ad_ttl=*/1e6);
  // The mass-kill victim draw is random; scan worlds until the draw takes
  // the provider and leaves the knower (deterministic, like the seed scan).
  for (std::uint64_t start = 1; start < 256; start += 1) {
    PairWorld world = make_pair_world(config, start);
    ASSERT_NE(world.backend, nullptr);
    world.backend->fault_mass_kill(0.5);  // one of the two, at random
    if (!world.backend->alive_ids().empty() &&
        world.backend->alive_ids()[0] == world.knower) {
      world.backend->begin_measurement();
      world.backend->submit_query(world.knower, world.file);
      SearchResults results = world.backend->collect();
      const auto* stats = results.extra_as<GossipStats>();
      ASSERT_NE(stats, nullptr);
      EXPECT_GE(stats->stale_ads_dead, 1u);
      EXPECT_EQ(stats->knowledge_hits, 0u);
      EXPECT_FALSE(world.backend->knows(world.knower, world.file));
      return;
    }
  }
  FAIL() << "no kill draw ever took the provider and spared the knower";
}

TEST(Gossip, OwnLibraryHitResolvesWithZeroProbes) {
  PairWorld world = make_pair_world(pair_config());
  ASSERT_NE(world.backend, nullptr);
  // The provider owns the advertised file, so its own query for it is a
  // tier-1 local hit: satisfied with zero probes and zero wait.
  world.backend->begin_measurement();
  world.backend->submit_query(world.provider, world.file);
  SearchResults results = world.backend->collect();
  const auto* stats = results.extra_as<GossipStats>();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->local_hits, 1u);
  EXPECT_EQ(stats->queries_satisfied, 1u);
  EXPECT_EQ(stats->probes, 0u);
  EXPECT_EQ(stats->response_time.min(), 0.0);
}

TEST(Gossip, PartitionSeversQueriesAndClearingHeals) {
  SimulationConfig config = pair_config(/*ad_ttl=*/1e6);
  PairWorld world = make_pair_world(config);
  ASSERT_NE(world.backend, nullptr);

  // Each fault_set_partition redraws groups; with 8 ways the pair usually
  // separates. Severed links drop the knowledge fetch AND the fallback
  // probes, so the query goes unsatisfied — the observable sever signal.
  bool severed = false;
  for (int attempt = 0; attempt < 64 && !severed; ++attempt) {
    world.backend->fault_set_partition(8);
    world.backend->begin_measurement();
    world.backend->submit_query(world.knower, world.file);
    SearchResults results = world.backend->collect();
    const auto* stats = results.extra_as<GossipStats>();
    ASSERT_NE(stats, nullptr);
    severed = stats->queries_satisfied == 0;
  }
  ASSERT_TRUE(severed) << "partition draws never separated the pair";
  // The unanswered probe must not have evicted the ad (the provider is
  // alive, the ad fresh — only delivery failed).
  EXPECT_TRUE(world.backend->knows(world.knower, world.file));

  // Healing the partition restores resolution through the same ad.
  world.backend->fault_clear_partition();
  world.backend->begin_measurement();
  world.backend->submit_query(world.knower, world.file);
  SearchResults healed = world.backend->collect();
  const auto* stats = healed.extra_as<GossipStats>();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->queries_satisfied, 1u);
  EXPECT_EQ(stats->knowledge_hits, 1u);
}

TEST(Gossip, MassJoinGrowsPopulation) {
  sim::Simulator simulator;
  GossipBackend backend(pair_config(), simulator, Rng(9));
  backend.bootstrap();
  EXPECT_EQ(backend.live_peers(), 2u);
  backend.fault_mass_join(3);
  EXPECT_EQ(backend.live_peers(), 5u);
  EXPECT_THROW(backend.fault_set_poisoning(true), CheckError);
}

// --- full-run determinism contracts ----------------------------------------

SimulationConfig run_config() {
  SystemParams system;
  system.network_size = 200;
  system.content.catalog_size = 400;
  system.content.query_universe = 500;
  return SimulationConfig()
      .system(system)
      .backend(SearchBackendId::kGossip)
      .seed(17)
      .warmup(150.0)
      .measure(300.0);
}

void expect_identical(const SearchResults& a, const SearchResults& b) {
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.network_size, b.network_size);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_satisfied, b.queries_satisfied);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.query_messages, b.query_messages);
  EXPECT_EQ(a.maintenance_messages, b.maintenance_messages);
  EXPECT_EQ(a.query_bytes, b.query_bytes);
  EXPECT_EQ(a.maintenance_bytes, b.maintenance_bytes);
  EXPECT_EQ(a.deaths, b.deaths);
  testsupport::expect_identical(a.response_time, b.response_time);
  ASSERT_EQ(a.probe_samples.size(), b.probe_samples.size());
  EXPECT_EQ(a.probe_samples.values(), b.probe_samples.values());
  const auto* ea = a.extra_as<GossipStats>();
  const auto* eb = b.extra_as<GossipStats>();
  ASSERT_NE(ea, nullptr);
  ASSERT_NE(eb, nullptr);
  EXPECT_EQ(ea->local_hits, eb->local_hits);
  EXPECT_EQ(ea->knowledge_hits, eb->knowledge_hits);
  EXPECT_EQ(ea->fallback_queries, eb->fallback_queries);
  EXPECT_EQ(ea->stale_ads_expired, eb->stale_ads_expired);
  EXPECT_EQ(ea->stale_ads_dead, eb->stale_ads_dead);
  EXPECT_EQ(ea->gossip_exchanges, eb->gossip_exchanges);
  EXPECT_EQ(ea->gossip_legs, eb->gossip_legs);
  EXPECT_EQ(ea->ads_sent, eb->ads_sent);
  testsupport::expect_identical(ea->knowledge_size, eb->knowledge_size);
}

TEST(GossipDeterminism, SchedulerChoiceNeverChangesResults) {
  SearchResults heap =
      run_search(run_config().scheduler(sim::Scheduler::kHeap));
  SearchResults calendar =
      run_search(run_config().scheduler(sim::Scheduler::kCalendar));
  expect_identical(heap, calendar);
  EXPECT_GT(heap.queries_completed, 0u);
  EXPECT_GT(heap.maintenance_messages, 0u);
}

TEST(GossipDeterminism, SeedSweepIsThreadCountInvariant) {
  const int seeds = 4;
  std::vector<SearchResults> serial =
      run_search_seeds(run_config().threads(1), seeds);
  std::vector<SearchResults> threaded =
      run_search_seeds(run_config().threads(4), seeds);
  ASSERT_EQ(serial.size(), threaded.size());
  for (int i = 0; i < seeds; ++i) {
    SCOPED_TRACE("seed offset " + std::to_string(i));
    expect_identical(serial[static_cast<std::size_t>(i)],
                     threaded[static_cast<std::size_t>(i)]);
  }
  // Distinct seeds produce distinct runs (the sweep actually varies).
  EXPECT_NE(serial[0].probes, serial[1].probes);
}

TEST(GossipDeterminism, WarmNetworkAnswersSomeQueriesWithoutFallback) {
  SearchResults results = run_search(run_config());
  const auto* stats = results.extra_as<GossipStats>();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->local_hits + stats->knowledge_hits, 0u);
  EXPECT_GT(stats->gossip_legs, 0u);
  EXPECT_GT(stats->knowledge_size.mean(), 0.0);
  // A hit resolved before fallback is necessarily satisfied; every fallback
  // started as a completed query.
  EXPECT_LE(stats->local_hits + stats->knowledge_hits,
            stats->queries_satisfied);
  EXPECT_LE(stats->fallback_queries, stats->queries_completed);
}

TEST(GossipDeterminism, IntervalSeriesCoversRunAndCountsQueries) {
  SearchResults results = run_search(run_config().metrics_interval(75.0));
  ASSERT_GT(results.interval_series.size(), 0u);
  std::uint64_t total = 0;
  for (const IntervalSample& sample : results.interval_series) {
    EXPECT_GT(sample.live_peers, 0u);
    total += sample.queries_completed;
  }
  // Intervals span warmup + measure, so they see at least the measured load.
  EXPECT_GE(total, results.queries_completed);
}

}  // namespace
}  // namespace guess::search
