#include "content/content_model.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <map>

namespace guess::content {
namespace {

ContentParams small_params() {
  ContentParams params;
  params.catalog_size = 500;
  params.query_universe = 600;
  return params;
}

TEST(Library, SortedDistinctAndSearchable) {
  Library lib({1, 5, 9});
  EXPECT_EQ(lib.size(), 3u);
  EXPECT_TRUE(lib.contains(1));
  EXPECT_TRUE(lib.contains(5));
  EXPECT_TRUE(lib.contains(9));
  EXPECT_FALSE(lib.contains(2));
  EXPECT_FALSE(lib.contains(kNonexistentFile));
}

TEST(Library, RejectsUnsortedOrDuplicateFiles) {
  EXPECT_THROW(Library({3, 1}), CheckError);
  EXPECT_THROW(Library({1, 1, 2}), CheckError);
}

TEST(Library, EmptyLibraryContainsNothing) {
  Library lib;
  EXPECT_TRUE(lib.empty());
  EXPECT_FALSE(lib.contains(0));
}

TEST(ContentModel, FreeRiderFractionRespected) {
  ContentModel model(small_params());
  Rng rng(3);
  int free_riders = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (model.sample_file_count(rng) == 0) ++free_riders;
  }
  EXPECT_NEAR(static_cast<double>(free_riders) / trials, 0.25, 0.03);
}

TEST(ContentModel, LibraryHasRequestedSizeAndValidFiles) {
  ContentModel model(small_params());
  Rng rng(5);
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{50}}) {
    Library lib = model.sample_library(count, rng);
    EXPECT_EQ(lib.size(), count);
    for (FileId f : lib.files()) EXPECT_LT(f, 500u);
  }
}

TEST(ContentModel, LibrarySizeCapEnforced) {
  ContentModel model(small_params());
  Rng rng(7);
  // Cap is 20% of 500 = 100.
  EXPECT_THROW(model.sample_library(101, rng), CheckError);
  Library lib = model.sample_library(100, rng);
  EXPECT_EQ(lib.size(), 100u);
}

TEST(ContentModel, PopularFilesMoreReplicated) {
  ContentModel model(small_params());
  Rng rng(9);
  int head = 0, tail = 0;
  for (int peer = 0; peer < 2000; ++peer) {
    Library lib = model.sample_peer_library(rng);
    if (lib.contains(0)) ++head;          // most popular file
    if (lib.contains(499)) ++tail;        // least popular file
  }
  EXPECT_GT(head, tail * 3);
}

TEST(ContentModel, QueriesIncludeNonexistentTail) {
  ContentModel model(small_params());
  Rng rng(11);
  int nonexistent = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    FileId f = model.draw_query(rng);
    if (f == kNonexistentFile) {
      ++nonexistent;
    } else {
      EXPECT_LT(f, 500u);
    }
  }
  double observed = static_cast<double>(nonexistent) / trials;
  EXPECT_NEAR(observed, model.nonexistent_query_mass(), 0.01);
  EXPECT_GT(observed, 0.0);
}

TEST(ContentModel, DefaultNonexistentMassNearPaperFloor) {
  // The paper reports ~6% of queries unsatisfiable at NetworkSize=1000;
  // the out-of-catalog mass supplies a few points of that floor (rare
  // zero-replica files supply the rest).
  ContentModel model(ContentParams{});
  EXPECT_GT(model.nonexistent_query_mass(), 0.01);
  EXPECT_LT(model.nonexistent_query_mass(), 0.08);
}

TEST(ContentModel, QueryPopularitySkewedToHead) {
  ContentModel model(small_params());
  Rng rng(13);
  std::map<FileId, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[model.draw_query(rng)];
  EXPECT_GT(counts[0], counts.count(400) ? counts[400] * 2 : 2);
}

TEST(ContentModel, InvalidParamsRejected) {
  ContentParams params;
  params.catalog_size = 0;
  EXPECT_THROW(ContentModel{params}, CheckError);
  params = ContentParams{};
  params.query_universe = params.catalog_size - 1;
  EXPECT_THROW(ContentModel{params}, CheckError);
  params = ContentParams{};
  params.free_rider_fraction = 1.0;
  EXPECT_THROW(ContentModel{params}, CheckError);
}

TEST(ContentModel, SharingDistributionIsHeavyTailed) {
  const auto& dist = ContentModel::sharing_distribution();
  // Median sharer offers tens of files; the tail offers thousands.
  EXPECT_LT(dist.quantile(0.5), 100.0);
  EXPECT_GT(dist.quantile(0.99), 1000.0);
}

}  // namespace
}  // namespace guess::content
