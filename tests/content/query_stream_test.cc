#include "content/query_stream.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace guess::content {
namespace {

TEST(QueryStream, BurstSizeWithinBounds) {
  QueryStream stream(BurstParams{0.01, 1, 5});
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    std::size_t size = stream.next_burst_size(rng);
    EXPECT_GE(size, 1u);
    EXPECT_LE(size, 5u);
  }
}

TEST(QueryStream, MeanBurstSizeIsMidpoint) {
  QueryStream stream(BurstParams{0.01, 1, 5});
  EXPECT_DOUBLE_EQ(stream.mean_burst_size(), 3.0);
  QueryStream fixed(BurstParams{0.01, 4, 4});
  EXPECT_DOUBLE_EQ(fixed.mean_burst_size(), 4.0);
}

TEST(QueryStream, BurstRateDeliversTargetQueryRate) {
  // rate = queries/sec; bursts of mean size B arrive at rate/B.
  BurstParams params{9.26e-3, 1, 5};
  QueryStream stream(params);
  EXPECT_NEAR(stream.burst_rate(), 9.26e-3 / 3.0, 1e-12);

  // Empirically: total queries over simulated gaps ≈ rate × time.
  Rng rng(7);
  double elapsed = 0.0;
  double queries = 0.0;
  for (int i = 0; i < 20000; ++i) {
    elapsed += stream.next_burst_gap(rng);
    queries += static_cast<double>(stream.next_burst_size(rng));
  }
  EXPECT_NEAR(queries / elapsed, params.query_rate,
              params.query_rate * 0.05);
}

TEST(QueryStream, GapsAreExponentialish) {
  QueryStream stream(BurstParams{0.1, 1, 1});
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += stream.next_burst_gap(rng);
  EXPECT_NEAR(sum / n, 1.0 / stream.burst_rate(), 0.3);
}

TEST(QueryStream, InvalidParamsRejected) {
  EXPECT_THROW(QueryStream(BurstParams{0.0, 1, 5}), CheckError);
  EXPECT_THROW(QueryStream(BurstParams{0.01, 0, 5}), CheckError);
  EXPECT_THROW(QueryStream(BurstParams{0.01, 6, 5}), CheckError);
}

}  // namespace
}  // namespace guess::content
