// Event-core throughput harness: measures raw scheduler events/sec on a
// churn-heavy synthetic workload (self-rescheduling ping chains with
// death-driven cancellations — the simulator's dominant event pattern), and
// end-to-end GUESS simulation throughput, for
//
//   legacy    — the pre-slab queue (std::function callbacks, one
//               shared_ptr<bool> allocated per schedule), embedded below as
//               the before/after baseline;
//   heap      — the slab-backed binary-heap backend;
//   calendar  — the slab-backed calendar-queue backend.
//
// Results are printed as a table and written to BENCH_events.json (override
// with --out=...). --events, --peers, --seed scale the synthetic phase;
// --network, --measure scale the end-to-end phase; --full uses the larger
// defaults quoted in README.md.
#include <chrono>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "guess/simulation.h"
#include "sim/event_queue.h"

namespace guess {
namespace {

// --- The pre-slab event queue, verbatim from the original sim/event_queue
// (names prefixed), kept here so one binary measures before and after. -----

class LegacyEventHandle {
 public:
  LegacyEventHandle() = default;
  void cancel() {
    if (auto p = alive_.lock()) *p = false;
  }
  bool pending() const {
    auto p = alive_.lock();
    return p && *p;
  }

  explicit LegacyEventHandle(std::weak_ptr<bool> alive)
      : alive_(std::move(alive)) {}

 private:
  std::weak_ptr<bool> alive_;
};

class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  LegacyEventHandle schedule(sim::Time at, Callback fn) {
    auto alive = std::make_shared<bool>(true);
    LegacyEventHandle handle{std::weak_ptr<bool>(alive)};
    heap_.push(Entry{at, next_seq_++, std::move(fn), std::move(alive)});
    ++live_;
    return handle;
  }

  bool empty() const {
    drop_dead();
    return heap_.empty();
  }

  Callback pop(sim::Time& at) {
    drop_dead();
    GUESS_CHECK(!heap_.empty());
    auto& top = const_cast<Entry&>(heap_.top());
    at = top.at;
    Callback fn = std::move(top.fn);
    *top.alive = false;
    heap_.pop();
    --live_;
    return fn;
  }

 private:
  struct Entry {
    sim::Time at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const {
    while (!heap_.empty() && !*heap_.top().alive) {
      heap_.pop();
      --live_;
    }
  }

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

// --- Synthetic churn-heavy workload ---------------------------------------

struct Throughput {
  double seconds = 0.0;
  long long events = 0;
  double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
  double ns_per_event() const {
    return events > 0 ? seconds * 1e9 / static_cast<double>(events) : 0.0;
  }
};

// Every peer keeps one self-rescheduling ping timer; each fired event has a
// 1-in-16 chance of a peer death, which cancels a random peer's pending
// timer and arms a replacement — the schedule/cancel/pop mix a churning
// GUESS network generates.
template <class Queue>
Throughput run_churn_workload(Queue& queue, int peers, long long events,
                              std::uint64_t seed) {
  Rng rng(seed);
  using Handle = decltype(queue.schedule(0.0, [] {}));
  std::vector<Handle> ping(static_cast<std::size_t>(peers));
  int last = -1;
  auto timer_cb = [&last](int p) {
    return [&last, p] { last = p; };
  };
  sim::Time now = 0.0;
  for (int p = 0; p < peers; ++p) {
    ping[static_cast<std::size_t>(p)] =
        queue.schedule(now + rng.uniform(0.0, 1.0), timer_cb(p));
  }

  auto start = std::chrono::steady_clock::now();
  long long fired = 0;
  while (fired < events) {
    sim::Time at = 0.0;
    queue.pop(at)();
    now = at;
    ++fired;
    int reborn = -1;
    if (rng.bernoulli(1.0 / 16.0)) {
      int victim = static_cast<int>(rng.index(static_cast<std::size_t>(peers)));
      auto& h = ping[static_cast<std::size_t>(victim)];
      h.cancel();
      h = queue.schedule(now + rng.uniform(0.5, 1.5), timer_cb(victim));
      reborn = victim;
    }
    if (last != reborn) {
      ping[static_cast<std::size_t>(last)] =
          queue.schedule(now + rng.uniform(0.5, 1.5), timer_cb(last));
    }
  }
  auto stop = std::chrono::steady_clock::now();
  Throughput out;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  out.events = fired;
  return out;
}

// --- End-to-end: a churn-heavy GUESS run under each backend ---------------

struct EndToEnd {
  Throughput throughput;
  SimulationResults results;
};

EndToEnd run_simulation(sim::Scheduler scheduler, std::size_t network,
                        sim::Duration measure, std::uint64_t seed) {
  SystemParams system;
  system.network_size = network;
  system.lifespan_multiplier = 0.2;  // the paper's churn-strain setting
  system.content.catalog_size = 800;
  system.content.query_universe = 1000;
  ProtocolParams protocol;
  SimulationOptions options;
  options.seed = seed;
  options.warmup = measure / 4.0;
  options.measure = measure;
  options.scheduler = scheduler;
  GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(options));
  auto start = std::chrono::steady_clock::now();
  EndToEnd out;
  out.results = sim.run();
  auto stop = std::chrono::steady_clock::now();
  out.throughput.seconds =
      std::chrono::duration<double>(stop - start).count();
  out.throughput.events =
      static_cast<long long>(sim.simulator().events_fired());
  return out;
}

void write_json(const std::string& path, int peers, long long events,
                const Throughput& legacy, const Throughput& heap,
                const Throughput& calendar, std::size_t network,
                sim::Duration measure, const EndToEnd& e2e_heap,
                const EndToEnd& e2e_calendar, bool identical) {
  std::ofstream out(path);
  GUESS_CHECK_MSG(out.good(), "cannot write " << path);
  out << std::fixed << std::setprecision(1);
  auto queue_obj = [&](const char* name, const Throughput& t,
                       const Throughput& baseline, bool last) {
    out << "    \"" << name << "\": {\"events_per_sec\": "
        << t.events_per_sec() << ", \"ns_per_event\": " << t.ns_per_event()
        << ", \"speedup_vs_legacy\": " << std::setprecision(3)
        << (baseline.seconds > 0.0 ? t.events_per_sec() /
                                         baseline.events_per_sec()
                                   : 0.0)
        << std::setprecision(1) << "}" << (last ? "" : ",") << "\n";
  };
  out << "{\n";
  out << "  \"workload\": {\"peers\": " << peers << ", \"events\": " << events
      << "},\n";
  out << "  \"queues\": {\n";
  queue_obj("legacy_heap", legacy, legacy, false);
  queue_obj("slab_heap", heap, legacy, false);
  queue_obj("slab_calendar", calendar, legacy, true);
  out << "  },\n";
  out << "  \"end_to_end\": {\n";
  out << "    \"network_size\": " << network
      << ", \"measure_seconds\": " << measure << ",\n";
  out << "    \"heap\": {\"wall_seconds\": " << std::setprecision(3)
      << e2e_heap.throughput.seconds
      << ", \"events\": " << e2e_heap.throughput.events
      << ", \"events_per_sec\": " << std::setprecision(1)
      << e2e_heap.throughput.events_per_sec() << "},\n";
  out << "    \"calendar\": {\"wall_seconds\": " << std::setprecision(3)
      << e2e_calendar.throughput.seconds
      << ", \"events\": " << e2e_calendar.throughput.events
      << ", \"events_per_sec\": " << std::setprecision(1)
      << e2e_calendar.throughput.events_per_sec() << "},\n";
  out << "    \"schedulers_bitwise_identical\": "
      << (identical ? "true" : "false") << "\n";
  out << "  }\n";
  out << "}\n";
}

}  // namespace
}  // namespace guess

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  const bool full = flags.full();
  const int peers = static_cast<int>(flags.get_int("peers", 512));
  const long long events =
      flags.get_int("events", full ? 4'000'000 : 1'000'000);
  const auto network =
      static_cast<std::size_t>(flags.get_int("network", full ? 1000 : 400));
  const double measure = flags.get_double("measure", full ? 1200.0 : 300.0);
  const std::uint64_t seed = flags.seed();
  const std::string out_path =
      flags.get_string("out", "BENCH_events.json");

  std::cout << "# Event-core throughput — churn-heavy workload (peers="
            << peers << ", events=" << events << ", seed=" << seed << ")\n";

  LegacyEventQueue legacy_queue;
  Throughput legacy = run_churn_workload(legacy_queue, peers, events, seed);
  sim::EventQueue heap_queue(sim::Scheduler::kHeap);
  Throughput heap = run_churn_workload(heap_queue, peers, events, seed);
  sim::EventQueue calendar_queue(sim::Scheduler::kCalendar);
  Throughput calendar =
      run_churn_workload(calendar_queue, peers, events, seed);

  TablePrinter table({"queue", "events/sec", "ns/event", "vs legacy"});
  auto row = [&](const char* name, const Throughput& t) {
    table.add_row({std::string(name),
                   static_cast<std::int64_t>(t.events_per_sec()),
                   static_cast<std::int64_t>(t.ns_per_event()),
                   t.events_per_sec() / legacy.events_per_sec()});
  };
  row("legacy_heap", legacy);
  row("slab_heap", heap);
  row("slab_calendar", calendar);
  table.print(std::cout, "synthetic churn-heavy workload");

  std::cout << "\n# End-to-end GUESS simulation (network=" << network
            << ", measure=" << measure << "s, LifespanMultiplier=0.2)\n";
  EndToEnd e2e_heap =
      run_simulation(sim::Scheduler::kHeap, network, measure, seed);
  EndToEnd e2e_calendar =
      run_simulation(sim::Scheduler::kCalendar, network, measure, seed);
  bool identical =
      e2e_heap.results.queries_completed ==
          e2e_calendar.results.queries_completed &&
      e2e_heap.results.queries_satisfied ==
          e2e_calendar.results.queries_satisfied &&
      e2e_heap.results.probes.good == e2e_calendar.results.probes.good &&
      e2e_heap.results.deaths == e2e_calendar.results.deaths;

  TablePrinter e2e({"scheduler", "wall s", "events", "events/sec"});
  auto e2e_row = [&](const char* name, const EndToEnd& e) {
    e2e.add_row({std::string(name), e.throughput.seconds,
                 static_cast<std::int64_t>(e.throughput.events),
                 static_cast<std::int64_t>(
                     e.throughput.events_per_sec())});
  };
  e2e_row("heap", e2e_heap);
  e2e_row("calendar", e2e_calendar);
  e2e.print(std::cout, "end-to-end GUESS simulation");
  std::cout << "schedulers bitwise identical: "
            << (identical ? "yes" : "NO — BUG") << "\n";

  write_json(out_path, peers, events, legacy, heap, calendar, network,
             measure, e2e_heap, e2e_calendar, identical);
  std::cout << "wrote " << out_path << "\n";
  return identical ? 0 : 1;
}
