// Figure 8: cost-vs-quality tradeoff of fixed extent (Gnutella), coarse
// flexible extent (iterative deepening) and fine flexible extent (GUESS).
//
// Paper anchors (NetworkSize=1000, defaults):
//   GUESS Random:        ~99 probes at ~6% unsatisfied
//   GUESS QueryPong=MFS: ~17 probes at ~8% unsatisfied
//   Fixed extent:        ~1000 probes for 6%, ~540 probes for 8%
//   Iterative deepening: in between ("fairly good balance")
// Shape: the flexible-extent mechanisms sit over an order of magnitude left
// of the fixed-extent curve at equal unsatisfaction.
#include <iostream>

#include "baseline/fixed_extent.h"
#include "baseline/iterative_deepening.h"
#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;  // paper defaults
  ProtocolParams protocol;

  experiments::print_header(
      std::cout, "Figure 8 — flexible vs fixed query extent",
      "GUESS achieves the same unsatisfaction as fixed extent at over an "
      "order of magnitude fewer probes; iterative deepening lands between",
      system, protocol, scale);

  // --- fixed-extent curve over the same content model ---
  content::ContentModel model(system.content);
  Rng rng(scale.base_seed);
  baseline::StaticPopulation population(model, system.network_size, rng);
  std::size_t queries = scale.full ? 50000 : 10000;

  TablePrinter curve({"mechanism", "probes/query", "unsatisfied"});
  for (std::size_t extent :
       {1u, 2u, 5u, 10u, 20u, 50u, 100u, 200u, 350u, 540u, 750u, 1000u}) {
    auto point = baseline::evaluate_fixed_extent(population, model, extent,
                                                 queries, 1, rng);
    curve.add_row({std::string("fixed extent ") + std::to_string(extent),
                   static_cast<double>(extent), point.unsatisfied_rate});
  }

  auto deepening = baseline::evaluate_iterative_deepening(
      population, model, baseline::default_schedule(system.network_size),
      queries, 1, rng);
  curve.add_row({std::string("iterative deepening (200/500/1000)"),
                 deepening.avg_cost, deepening.unsatisfied_rate});

  // --- GUESS points from the full simulator ---
  auto ran = experiments::run_config(system, protocol, scale);
  curve.add_row({std::string("GUESS (Random)"), ran.probes_per_query,
                 ran.unsatisfied_rate});

  ProtocolParams mfs_pong = protocol;
  mfs_pong.query_pong = Policy::kMFS;
  auto mfs = experiments::run_config(system, mfs_pong, scale);
  curve.add_row({std::string("GUESS (QueryPong=MFS)"), mfs.probes_per_query,
                 mfs.unsatisfied_rate});

  curve.print(std::cout, "Figure 8 (cost vs unsatisfaction)");
  std::cout << "\nPaper anchors: GUESS Random ~99 probes @ ~6% unsat, "
               "QueryPong=MFS ~17 probes @ ~8%;\nfixed extent needs "
               "~540-1000 probes for the same quality.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << curve.to_csv();
  return 0;
}
