// Figures 19, 20 and 21: robustness to cache poisoning WITH collusion
// (BadPongBehavior = Bad: attackers advertise each other).
//
// Shapes to reproduce:
//   Fig 19/20 — now MR collapses too (each probe of a liar imports
//               PongSize fresh liars: they enter faster than LR evicts);
//               MFS collapses as before; MR* and Random stay robust;
//   Fig 21   — good cache entries collapse for BOTH MR and MFS;
//   and at 0% bad peers the efficiency order is MFS < MR < MR* (the paper
//   quotes ~4, ~7 and ~17 probes/query).
#include <iostream>
#include <vector>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams base;
  base.bad_pong_behavior = BadPongBehavior::kBad;

  experiments::print_header(
      std::cout, "Figures 19/20/21 — cache poisoning with collusion (Bad)",
      "collusion defeats MR as well as MFS; MR* (first-hand experience "
      "only) and Random survive, with MR* clearly cheaper than Random",
      base, ProtocolParams{}, scale);

  TablePrinter table({"combo", "PercentBad", "Probes/Query", "+-",
                      "Unsatisfied", "+-", "Good Cache Entries"});
  const double bad_levels[] = {0.0, 5.0, 10.0, 15.0, 20.0};
  std::vector<experiments::ConfigJob> jobs;
  for (const auto& combo : experiments::robustness_combos()) {
    ProtocolParams protocol = combo.apply(ProtocolParams{});
    for (double bad : bad_levels) {
      SystemParams system = base;
      system.percent_bad_peers = bad;
      jobs.push_back({system, protocol, scale.options()});
    }
  }
  auto averages = experiments::run_configs(jobs, scale);
  std::size_t next = 0;
  for (const auto& combo : experiments::robustness_combos()) {
    for (double bad : bad_levels) {
      const auto& avg = averages[next++];
      table.add_row({combo.name, bad, avg.probes_per_query,
                     avg.probes_per_query_se, avg.unsatisfied_rate,
                     avg.unsatisfied_rate_se, avg.good_entries});
    }
  }
  table.print(std::cout, "Figures 19+20+21 (colluding pong poisoning)");
  std::cout << "\nPaper anchors: MR and MFS hit ~0% satisfaction at 20% bad "
               "(Fig 20) and their\ngood cache entries collapse (Fig 21); "
               "MR* and Random remain robust, and at\n0% bad the order is "
               "MFS(~4) < MR(~7) < MR*(~17) probes/query.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
