// Message-loss sweep (transport fault injection, DESIGN.md §8).
//
// The paper's §5.1 model assumes every probe and its reply complete within
// the timeout; this harness relaxes that assumption and measures how GUESS
// degrades when the wire drops messages. Each lost round trip looks like a
// dead peer to the prober (timeout -> eviction), so loss both slows queries
// (stalled timeout windows) and erodes link caches. Retries buy the fidelity
// back at the price of extra traffic.
//
//   ./build/bench/bench_loss_sweep [--max-retries=2] [--probe-timeout=2] ...
#include <iostream>

#include "common/table.h"
#include "experiments/harness.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;  // paper defaults
  ProtocolParams protocol;

  // The sweep template: every point is lossy; --max-retries /
  // --probe-timeout / --link-latency tune the recovery policy, --loss is
  // overridden per point.
  TransportParams transport = scale.transport;
  transport.kind = TransportParams::Kind::kLossy;

  experiments::print_header(
      std::cout, "Message-loss sweep (transport fault injection)",
      "relaxing the §5.1 in-timeout assumption: loss inflates response time "
      "by whole timeout windows and erodes caches; retries trade traffic "
      "for fidelity",
      system, protocol, scale);
  std::cout << "Retry policy: timeout=" << transport.probe_timeout
            << "s max_retries=" << transport.max_retries << "\n\n";

  TablePrinter table({"loss", "unsat %", "probes/query", "mean resp (s)",
                      "timeouts/query", "retransmits/query", "failed/query"});
  for (double loss : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    TransportParams point = transport;
    point.loss = loss;
    auto config = scale.config()
                      .system(system)
                      .protocol(protocol)
                      .transport(point);
    auto runs = run_seeds(config, scale.seeds);
    auto avg = average(runs);
    double timeouts = 0.0;
    double retransmits = 0.0;
    double failed = 0.0;
    for (const auto& r : runs) {
      auto queries =
          static_cast<double>(std::max<std::uint64_t>(r.queries_completed, 1));
      auto n = static_cast<double>(runs.size());
      timeouts += static_cast<double>(r.transport.timeouts) / queries / n;
      retransmits +=
          static_cast<double>(r.transport.retransmits) / queries / n;
      failed += static_cast<double>(r.transport.exchanges_failed) / queries / n;
    }
    table.add_row({loss, 100.0 * avg.unsatisfied_rate, avg.probes_per_query,
                   avg.response_time, timeouts, retransmits, failed});
  }
  table.print(std::cout, "loss sweep (per completed query)");

  std::cout << "\nReading: at loss=0 the lossy transport reproduces the "
               "synchronous results\n(modulo latency pacing); rising loss "
               "stretches response time by ~timeout per\nlost round trip "
               "while probes/query stays near-flat — GUESS retries other\n"
               "candidates rather than flooding, so loss costs time, not "
               "traffic.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
