// Ablations of the design choices DESIGN.md calls out: the query cache
// (§2.3), the introduction probability, PongSize, and adaptive ping
// maintenance (§6.1). Each block isolates one mechanism under the default
// Table 1/2 configuration.
#include <iostream>
#include <iterator>
#include <vector>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;
  ProtocolParams base;

  experiments::print_header(
      std::cout, "Ablations — query cache, IntroProb, PongSize, adaptive ping",
      "each mechanism isolated under paper defaults",
      system, base, scale);

  // --- query cache on/off (§2.3) ---
  {
    TablePrinter table({"query cache", "Probes/Query", "Unsatisfied",
                        "query-cache peers"});
    for (bool use : {true, false}) {
      ProtocolParams p = base;
      p.use_query_cache = use;
      SimulationOptions options = scale.options();
      GuessSimulation sim(SimulationConfig().system(system).protocol(p).options(options));
      auto r = sim.run();
      table.add_row({std::string(use ? "on" : "off"), r.probes_per_query(),
                     r.unsatisfied_rate(),
                     r.query_cache_population.mean()});
    }
    table.print(std::cout, "ablation: query cache (extent beyond the link "
                           "cache, §2.3)");
  }

  // --- IntroProb sweep (§2.2) ---
  {
    const double intro_probs[] = {0.0, 0.05, 0.1, 0.3, 1.0};
    std::vector<experiments::ConfigJob> jobs;
    for (double p_intro : intro_probs) {
      ProtocolParams p = base;
      p.intro_prob = p_intro;
      jobs.push_back({system, p, scale.options()});
    }
    auto averages = experiments::run_configs(jobs, scale);
    TablePrinter table({"IntroProb", "Probes/Query", "Unsatisfied",
                        "fraction live"});
    for (std::size_t i = 0; i < std::size(intro_probs); ++i) {
      const auto& avg = averages[i];
      table.add_row({intro_probs[i], avg.probes_per_query,
                     avg.unsatisfied_rate, avg.fraction_live});
    }
    table.print(std::cout,
                "ablation: IntroProb (how new peers enter circulation)");
  }

  // --- PongSize sweep (§2.2/§2.3) ---
  {
    const std::size_t pong_sizes[] = {1, 2, 5, 10, 20};
    std::vector<experiments::ConfigJob> jobs;
    for (std::size_t pong : pong_sizes) {
      ProtocolParams p = base;
      p.pong_size = pong;
      jobs.push_back({system, p, scale.options()});
    }
    auto averages = experiments::run_configs(jobs, scale);
    TablePrinter table({"PongSize", "Probes/Query", "Unsatisfied",
                        "fraction live"});
    for (std::size_t i = 0; i < std::size(pong_sizes); ++i) {
      const auto& avg = averages[i];
      table.add_row({static_cast<std::int64_t>(pong_sizes[i]),
                     avg.probes_per_query, avg.unsatisfied_rate,
                     avg.fraction_live});
    }
    table.print(std::cout, "ablation: PongSize (entry-sharing bandwidth)");
  }

  // --- NumDesiredResults (Table 1's satisfaction knob) ---
  {
    TablePrinter table({"NumDesiredResults", "Probes/Query", "Unsatisfied",
                        "resp time (s)"});
    for (std::size_t desired : {1u, 3u, 5u, 10u}) {
      SystemParams s = system;
      s.num_desired_results = desired;
      SimulationOptions options = scale.options();
      GuessSimulation sim(SimulationConfig().system(s).protocol(base).options(options));
      auto r = sim.run();
      table.add_row({static_cast<std::int64_t>(desired),
                     r.probes_per_query(), r.unsatisfied_rate(),
                     r.response_time.mean()});
    }
    table.print(std::cout,
                "ablation: NumDesiredResults (how much evidence a query "
                "demands)");
  }

  // --- adaptive ping maintenance (§6.1 guideline) ---
  {
    TablePrinter table({"multiplier", "ping mode", "pings sent",
                        "pings to dead", "fraction live"});
    for (double multiplier : {1.0, 0.2}) {
      for (bool adaptive : {false, true}) {
        SystemParams s = system;
        s.lifespan_multiplier = multiplier;
        ProtocolParams p = base;
        p.adaptive_ping.enabled = adaptive;
        p.adaptive_ping.window = 5;
        p.adaptive_ping.dead_low = 0.25;
        SimulationOptions options = scale.options();
        options.enable_queries = false;  // isolate maintenance traffic
        options.warmup = 600.0;
        options.measure = scale.full ? 7200.0 : 3000.0;
        GuessSimulation sim(SimulationConfig().system(s).protocol(p).options(options));
        auto r = sim.run();
        table.add_row({multiplier, std::string(adaptive ? "adaptive" : "30s"),
                       static_cast<std::int64_t>(r.pings_sent),
                       static_cast<std::int64_t>(r.pings_to_dead),
                       r.cache_health.fraction_live});
      }
    }
    table.print(std::cout,
                "ablation: adaptive PingInterval (overhead vs freshness)");
  }

  std::cout << "\nReading guide: no query cache caps extent at the link "
               "cache (unsatisfaction up);\nIntroProb=0 starves circulation "
               "of newborn peers; tiny pongs slow discovery;\nadaptive ping "
               "matches maintenance overhead to churn.\n";
  return 0;
}
