// Figures 14 and 15: limited peer capacity (MaxProbesPerSecond) under the
// load-concentrating MR policies.
//
// Shapes to reproduce:
//   Fig 14 — refused probes/query GROW with network size as capacity
//            shrinks (hot peers sit in many caches), while good and dead
//            probes stay roughly flat;
//   Fig 15 — query satisfaction is barely affected even when many probes
//            are refused (the implicit throttle reroutes load).
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams base;
  ProtocolParams protocol =
      experiments::PolicyCombo::from_name("MR").apply(ProtocolParams{});

  experiments::print_header(
      std::cout, "Figures 14/15 — capacity limits (MR policies)",
      "refused probes grow with network size under tight capacity, but "
      "satisfaction stays flat",
      base, protocol, scale);

  TablePrinter table({"NetworkSize", "MaxProbes/s", "Good/Query",
                      "Refused/Query", "DeadIPs/Query", "Unsatisfied"});

  const std::size_t network_sizes[] = {500, 1000, 2000, 5000};
  const std::uint32_t caps[] = {50, 10, 5, 1};
  std::vector<experiments::ConfigJob> jobs;
  for (std::size_t n : network_sizes) {
    for (std::uint32_t cap : caps) {
      SystemParams system = base;
      system.network_size = n;
      system.max_probes_per_second = cap;
      SimulationOptions options = scale.options();
      double shrink = std::min(1.0, 1000.0 / static_cast<double>(n));
      options.measure = std::max(scale.measure * shrink, 300.0);
      jobs.push_back({system, protocol, options});
    }
  }
  auto averages = experiments::run_configs(jobs, scale);
  std::size_t next = 0;
  for (std::size_t n : network_sizes) {
    for (std::uint32_t cap : caps) {
      const auto& avg = averages[next++];
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(cap), avg.good_per_query,
                     avg.refused_per_query, avg.dead_per_query,
                     avg.unsatisfied_rate});
    }
  }
  table.print(std::cout, "Figures 14+15 (probe breakdown and satisfaction)");
  std::cout << "\nPaper anchors: refused probes rise with NetworkSize at "
               "tight caps (Fig 14)\nwhile the unsatisfied rate barely "
               "moves (Fig 15).\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
