// GUESS vs a live Gnutella (§3, made quantitative).
//
// The same workload (Table 1 system, identical content model, churn and
// bursty query arrivals) is run through the non-forwarding GUESS protocol
// and through a live forwarding overlay with TTL flooding and connection
// repair. The §3 qualitative comparison becomes numbers: per-query network
// cost, satisfaction, response time, load skew, and a TTL sweep showing the
// fixed-extent dilemma on a living network.
#include <iostream>

#include "analysis/load_analysis.h"
#include "common/table.h"
#include "experiments/harness.h"
#include "gnutella/dynamic_overlay.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;  // Table 1 defaults
  experiments::print_header(
      std::cout, "GUESS vs live Gnutella (same workload)",
      "non-forwarding search costs over an order of magnitude fewer "
      "messages at equal satisfaction; flooding wins on response time",
      system, ProtocolParams{}, scale);

  TablePrinter table({"mechanism", "msgs/query", "unsat", "resp (s)",
                      "load gini"});

  auto add_guess_row = [&](const char* name, ProtocolParams protocol) {
    GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(scale.options()));
    auto results = sim.run();
    table.add_row({std::string(name), results.probes_per_query(),
                   results.unsatisfied_rate(), results.response_time.mean(),
                   analysis::gini_coefficient(results.peer_loads.values())});
  };
  add_guess_row("GUESS (Random)", ProtocolParams{});
  {
    ProtocolParams mfs;
    mfs.query_pong = Policy::kMFS;
    add_guess_row("GUESS (QueryPong=MFS)", mfs);
  }
  {
    ProtocolParams parallel;
    parallel.query_pong = Policy::kMFS;
    parallel.parallel_probes = 5;
    add_guess_row("GUESS (MFS, k=5 walks)", parallel);
  }

  auto run_gnutella = [&](std::size_t ttl) {
    gnutella::DynamicParams params;
    params.network_size = system.network_size;
    params.content = system.content;
    params.query_rate = system.query_rate;
    params.num_desired_results = system.num_desired_results;
    params.ttl = ttl;
    sim::Simulator simulator;
    gnutella::DynamicOverlay overlay(params, simulator, Rng(scale.base_seed));
    overlay.initialize();
    simulator.run_until(scale.warmup);
    overlay.begin_measurement();
    simulator.run_until(scale.warmup + scale.measure);
    return overlay.results();
  };
  for (std::size_t ttl : {2u, 3u, 4u, 5u}) {
    auto results = run_gnutella(ttl);
    table.add_row({std::string("Gnutella flood TTL=") + std::to_string(ttl),
                   results.messages_per_query(), results.unsatisfied_rate(),
                   results.response_time.mean(),
                   analysis::gini_coefficient(results.peer_loads.values())});
  }

  table.print(std::cout, "forwarding vs non-forwarding, live networks");
  std::cout << "\nReading guide: at the TTL where flooding matches GUESS's "
               "satisfaction, its\nmessage cost is 1-2 orders of magnitude "
               "higher (§3.1); its response time is\nbetter — the §6.2 "
               "parallel walks close most of that gap. Smaller TTLs are\n"
               "cheap but miss rare items: the fixed-extent dilemma.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
