// Response time and parallel probes (§6.2, discussion after Figure 12).
//
// The GUESS spec paces one probe per 0.2 s, so response time is linear in
// the probe count; k parallel probes cut it by ~k while adding at most k-1
// probes. Paper example: QueryPong=MFS needs ~17 probes, and with k=5 the
// probe count stays ≤ ~21 while mean response time drops under a second.
#include <iostream>

#include "common/table.h"
#include "experiments/harness.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;  // paper defaults
  ProtocolParams base;
  base.query_pong = Policy::kMFS;  // the §6.2 efficient configuration

  experiments::print_header(
      std::cout, "Response time — parallel probes (§6.2)",
      "k parallel probes add at most k-1 probes per query but divide "
      "response time by ~k",
      system, base, scale);

  TablePrinter table({"parallel k", "probes/query", "mean resp (s)",
                      "extra probes vs k=1", "speedup vs k=1"});
  double base_probes = 0.0;
  double base_time = 0.0;
  for (std::size_t k : {1u, 2u, 5u, 10u, 20u}) {
    ProtocolParams p = base;
    p.parallel_probes = k;
    auto avg = experiments::run_config(system, p, scale);
    if (k == 1) {
      base_probes = avg.probes_per_query;
      base_time = avg.response_time;
    }
    table.add_row({static_cast<std::int64_t>(k), avg.probes_per_query,
                   avg.response_time, avg.probes_per_query - base_probes,
                   base_time / std::max(avg.response_time, 1e-9)});
  }
  table.print(std::cout, "parallel probe walks (QueryPong=MFS)");

  // §6.2's closing suggestion: "a more sophisticated solution may
  // adaptively increase k if successive sets of parallel probes are
  // unsuccessful" — compare the worst-case tail.
  TablePrinter adaptive_table({"mode", "probes/query", "mean resp (s)",
                               "max resp (s)"});
  for (bool adaptive : {false, true}) {
    ProtocolParams p = base;
    p.adaptive_parallel = adaptive;
    p.adaptive_parallel_trigger = 5;
    SimulationOptions options = scale.options();
    GuessSimulation sim(SimulationConfig().system(system).protocol(p).options(options));
    auto results = sim.run();
    adaptive_table.add_row(
        {std::string(adaptive ? "adaptive k (x2 per 5 dry slots)"
                              : "fixed k=1"),
         results.probes_per_query(), results.response_time.mean(),
         results.response_time.max()});
  }
  adaptive_table.print(std::cout,
                       "adaptive probe-rate ramp (worst-case tail)");

  std::cout << "\nPaper anchor: k=5 keeps probes ≤ ~baseline+4 while mean "
               "response time falls\nbelow one second for the MFS "
               "configuration; the adaptive ramp compresses the\nworst-case "
               "tail that fixed serial probing leaves (50+ seconds).\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
