// Selfish peers and probe payments (§3.3).
//
// A selfish peer ignores serial probing and blasts a wide batch of probes
// per slot, slashing its own response time while loading everyone else —
// "if all peers act according to their best interests, the system might
// fail as if under a DoS attack." The paper's sketched countermeasure is to
// make peers pay per probe (via a PPay-style mechanism); the probe-payment
// economy implements it: a peer's long-run probe rate is capped by the rate
// at which it serves others.
#include <iostream>

#include "common/table.h"
#include "experiments/harness.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams base;
  base.selfish_parallel_probes = 100;
  base.max_probes_per_second = 20;  // capacity tight enough to feel the blast

  experiments::print_header(
      std::cout, "Selfish peers & probe payments (§3.3)",
      "selfish blasting buys response time at everyone's expense; probe "
      "payments cap a peer's probe rate at its serve rate",
      base, ProtocolParams{}, scale);

  TablePrinter table({"selfish %", "payments", "selfish resp (s)",
                      "honest resp (s)", "selfish probes/q",
                      "honest probes/q", "refused/q", "honest unsat",
                      "stalled out"});

  for (double selfish_pct : {0.0, 10.0, 30.0}) {
    for (bool payments : {false, true}) {
      if (selfish_pct == 0.0 && payments) continue;
      SystemParams system = base;
      system.percent_selfish_peers = selfish_pct;
      ProtocolParams protocol;
      // An economy only works if honest demand is affordable: pair payments
      // with the efficient QueryPong=MFS configuration (~17 probes/query),
      // which a peer's serve income easily covers. (§3.3: payments motivate
      // peers "to probe as few peers as possible".)
      protocol.query_pong = Policy::kMFS;
      protocol.payments.enabled = payments;
      SimulationOptions options = scale.options();
      GuessSimulation sim(SimulationConfig().system(system).protocol(protocol).options(options));
      auto results = sim.run();
      table.add_row(
          {selfish_pct, std::string(payments ? "on" : "off"),
           results.selfish.response_time.mean(),
           results.honest.response_time.mean(),
           results.selfish.probes_per_query(),
           results.honest.probes_per_query(),
           results.refused_probes_per_query(),
           results.honest.unsatisfied_rate(),
           static_cast<std::int64_t>(results.queries_stalled_out)});
    }
  }
  table.print(std::cout, "selfish behaviour with and without payments");
  std::cout << "\nReading guide: without payments, selfish peers answer in a "
               "fraction of the\nhonest response time while blasting ~100 "
               "probes per slot; with payments their\nprobe volume collapses "
               "to what their serving earns, and the blast advantage\n"
               "largely disappears.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
