// Head-to-head backend matrix (DESIGN.md §12): every registered search
// backend through the one run_search() code path, across the same workload
// columns — static membership, paper churn, lossy transport, and a
// mid-measurement fault burst — reporting success rate, mean/median/p95
// probes per query, and bytes-on-wire per query under the shared wire
// model (§12.3).
//
// Results are printed as one table per column and written to
// BENCH_backends.json (override with --out=...). Two gates make the bench
// a CI check rather than a report:
//   * the design gate: gossip must beat flooding on bytes-on-wire per query
//     at equal-or-better success rate (within --epsilon) in at least one
//     column — the reason the gossip backend exists;
//   * the regression gate (--check=<baseline.json>): success rate must not
//     drop and bytes per query must not grow beyond --tolerance against a
//     previously checked-in baseline, per (backend, column) cell.
// Cells whose backend rejects a column's fault actions (the ported silos
// predate the FaultHost interface) are reported as unsupported, not failed.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "faults/scenario.h"
#include "search/backend.h"

namespace guess {
namespace {

struct Column {
  std::string name;
  double lifespan_multiplier = 1.0;
  double loss = 0.0;
  bool fault_burst = false;
};

std::vector<Column> columns() {
  return {
      {"static", 500.0, 0.0, false},  // membership frozen in place
      {"churn", 1.0, 0.0, false},     // the paper's lifetime distribution
      {"loss", 1.0, 0.05, false},     // churn + 5% i.i.d. message loss
      {"burst", 1.0, 0.0, true},      // churn + mass kill, later mass join
  };
}

struct Cell {
  bool supported = false;
  search::SearchResults results;
};

SimulationConfig cell_config(SearchBackendId backend, const Column& column,
                             std::size_t n, double warmup, double measure,
                             std::uint64_t seed) {
  SystemParams system;
  system.network_size = n;
  system.lifespan_multiplier = column.lifespan_multiplier;
  auto config = SimulationConfig()
                    .system(system)
                    .backend(backend)
                    .seed(seed)
                    .warmup(warmup)
                    .measure(measure);
  if (column.loss > 0.0) {
    config.transport(TransportParams::lossy(column.loss));
  }
  if (column.fault_burst) {
    // Kill 30% a third into the window, replace them two thirds in: the
    // recovery shape matters as much as the dip.
    std::ostringstream spec;
    spec << "at " << warmup + measure / 3.0 << " kill 0.3\n"
         << "at " << warmup + 2.0 * measure / 3.0 << " join "
         << static_cast<std::size_t>(0.3 * static_cast<double>(n));
    config.scenario(faults::Scenario::parse(spec.str()));
  }
  return config;
}

Cell run_cell(SearchBackendId backend, const Column& column, std::size_t n,
              double warmup, double measure, std::uint64_t seed) {
  Cell cell;
  try {
    cell.results =
        search::run_search(cell_config(backend, column, n, warmup, measure,
                                       seed));
    cell.supported = true;
  } catch (const CheckError&) {
    // The backend rejected a fault action the column injects (the silo
    // predates FaultHost); the matrix reports the hole honestly.
    cell.supported = false;
  }
  return cell;
}

using Matrix = std::map<std::string, std::map<std::string, Cell>>;

// --- output ----------------------------------------------------------------

void print_tables(const Matrix& matrix) {
  for (const Column& column : columns()) {
    TablePrinter table({"backend", "queries", "success", "probes/q", "p50",
                        "p95", "bytes/q", "maint B/q", "deaths"});
    for (const auto& [backend, cells] : matrix) {
      const Cell& cell = cells.at(column.name);
      if (!cell.supported) {
        table.add_row({backend, std::string("-"), std::string("n/a"),
                       std::string("-"), std::string("-"), std::string("-"),
                       std::string("-"), std::string("-"), std::string("-")});
        continue;
      }
      const search::SearchResults& r = cell.results;
      double maintenance_per_query =
          r.queries_completed == 0
              ? 0.0
              : static_cast<double>(r.maintenance_bytes) /
                    static_cast<double>(r.queries_completed);
      table.add_row({backend,
                     static_cast<std::int64_t>(r.queries_completed),
                     r.success_rate(), r.probes_per_query(),
                     r.probes_percentile(50.0), r.probes_percentile(95.0),
                     r.bytes_per_query(), maintenance_per_query,
                     static_cast<std::int64_t>(r.deaths)});
    }
    table.print(std::cout, "column: " + column.name);
  }
}

void write_json(const std::string& path, const Matrix& matrix, std::size_t n,
                double warmup, double measure, std::uint64_t seed,
                const std::vector<std::string>& winning_columns) {
  std::ofstream out(path);
  GUESS_CHECK_MSG(out.good(), "cannot write " << path);
  out << "{\n";
  out << "  \"config\": {\"network_size\": " << n << ", \"warmup\": "
      << std::fixed << std::setprecision(0) << warmup << ", \"measure\": "
      << measure << ", \"seed\": " << seed << "},\n";
  out << "  \"matrix\": {\n";
  std::size_t backend_index = 0;
  for (const auto& [backend, cells] : matrix) {
    out << "    \"" << backend << "\": {\n";
    std::size_t column_index = 0;
    for (const Column& column : columns()) {
      const Cell& cell = cells.at(column.name);
      out << "      \"" << column.name << "\": ";
      if (!cell.supported) {
        out << "{\"supported\": false}";
      } else {
        const search::SearchResults& r = cell.results;
        out << "{\"supported\": true, \"queries_completed\": "
            << r.queries_completed << ", \"success_rate\": "
            << std::setprecision(4) << r.success_rate()
            << ", \"probes_per_query\": " << std::setprecision(2)
            << r.probes_per_query() << ", \"probes_p50\": "
            << r.probes_percentile(50.0) << ", \"probes_p95\": "
            << r.probes_percentile(95.0) << ", \"bytes_per_query\": "
            << std::setprecision(1) << r.bytes_per_query()
            << ", \"query_bytes\": " << r.query_bytes
            << ", \"maintenance_bytes\": " << r.maintenance_bytes
            << ", \"deaths\": " << r.deaths << "}";
      }
      out << (++column_index < columns().size() ? "," : "") << "\n";
    }
    out << "    }" << (++backend_index < matrix.size() ? "," : "") << "\n";
  }
  out << "  },\n";
  out << "  \"gossip_beats_flood_columns\": [";
  for (std::size_t i = 0; i < winning_columns.size(); ++i) {
    out << "\"" << winning_columns[i] << "\""
        << (i + 1 < winning_columns.size() ? ", " : "");
  }
  out << "]\n";
  out << "}\n";
}

// --- design gate -----------------------------------------------------------

std::vector<std::string> gossip_wins(const Matrix& matrix, double epsilon) {
  std::vector<std::string> wins;
  for (const Column& column : columns()) {
    const Cell& gossip = matrix.at("gossip").at(column.name);
    const Cell& flood = matrix.at("flood").at(column.name);
    if (!gossip.supported || !flood.supported) continue;
    bool equal_success = gossip.results.success_rate() >=
                         flood.results.success_rate() - epsilon;
    bool cheaper =
        gossip.results.bytes_per_query() < flood.results.bytes_per_query();
    if (equal_success && cheaper) wins.push_back(column.name);
  }
  return wins;
}

// --- regression gate (--check=...) -----------------------------------------
//
// Reads the (backend, column) cells back out of a previously written
// BENCH_backends.json. The parser only needs to understand this file's own
// output format, so a line/keyword scan is enough (the same approach as
// bench_query_throughput's baseline reader).

struct BaselineCell {
  double success_rate = 0.0;
  double bytes_per_query = 0.0;
};

std::map<std::string, std::map<std::string, BaselineCell>> read_baseline(
    const std::string& path) {
  std::ifstream in(path);
  GUESS_CHECK_MSG(in.good(), "cannot read baseline " << path);
  std::map<std::string, std::map<std::string, BaselineCell>> baseline;
  std::string line;
  std::string backend;
  bool in_matrix = false;
  while (std::getline(in, line)) {
    if (line.find("\"matrix\"") != std::string::npos) {
      in_matrix = true;
      continue;
    }
    if (!in_matrix) continue;
    auto key_start = line.find('"');
    if (key_start == std::string::npos) continue;
    auto key_end = line.find('"', key_start + 1);
    if (key_end == std::string::npos) continue;
    std::string key = line.substr(key_start + 1, key_end - key_start - 1);
    if (line.find("\"supported\"") == std::string::npos) {
      backend = key;  // a backend header line: "gossip": {
      continue;
    }
    auto spos = line.find("\"success_rate\": ");
    auto bpos = line.find("\"bytes_per_query\": ");
    if (spos == std::string::npos || bpos == std::string::npos) continue;
    BaselineCell cell;
    cell.success_rate = std::strtod(
        line.c_str() + spos + std::string("\"success_rate\": ").size(),
        nullptr);
    cell.bytes_per_query = std::strtod(
        line.c_str() + bpos + std::string("\"bytes_per_query\": ").size(),
        nullptr);
    baseline[backend][key] = cell;
  }
  return baseline;
}

bool check_against_baseline(
    const std::map<std::string, std::map<std::string, BaselineCell>>& baseline,
    const Matrix& matrix, double tolerance) {
  bool ok = true;
  for (const auto& [backend, cells] : baseline) {
    auto live_backend = matrix.find(backend);
    if (live_backend == matrix.end()) continue;
    for (const auto& [column, base] : cells) {
      auto live_cell = live_backend->second.find(column);
      if (live_cell == live_backend->second.end() ||
          !live_cell->second.supported) {
        continue;
      }
      const search::SearchResults& r = live_cell->second.results;
      std::cout << "check " << backend << "/" << column << ": success "
                << std::fixed << std::setprecision(3) << r.success_rate()
                << " vs " << base.success_rate << ", bytes/q "
                << std::setprecision(1) << r.bytes_per_query() << " vs "
                << base.bytes_per_query << "\n";
      if (r.success_rate() < base.success_rate - tolerance) {
        std::cout << "REGRESSION: " << backend << "/" << column
                  << " success rate fell beyond tolerance " << tolerance
                  << "\n";
        ok = false;
      }
      if (base.bytes_per_query > 0.0 &&
          r.bytes_per_query() > base.bytes_per_query * (1.0 + tolerance)) {
        std::cout << "REGRESSION: " << backend << "/" << column
                  << " bytes/query grew beyond " << tolerance * 100.0
                  << "%\n";
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace
}  // namespace guess

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", flags.full() ? 1000 : 500));
  const double warmup = flags.get_double("warmup", 300.0);
  const double measure =
      flags.get_double("measure", flags.full() ? 2400.0 : 900.0);
  const std::uint64_t seed = flags.seed();
  const double epsilon = flags.get_double("epsilon", 0.02);
  const std::string out_path =
      flags.get_string("out", "BENCH_backends.json");
  const std::string check_path = flags.get_string("check", "");
  const double tolerance = flags.get_double("tolerance", 0.10);

  std::cout << "# Backend matrix — n=" << n << " warmup=" << warmup
            << " measure=" << measure << " seed=" << seed << "\n\n";

  Matrix matrix;
  for (SearchBackendId id : search::registered_backends()) {
    for (const Column& column : columns()) {
      matrix[backend_name(id)][column.name] =
          run_cell(id, column, n, warmup, measure, seed);
    }
  }

  print_tables(matrix);

  std::vector<std::string> wins = gossip_wins(matrix, epsilon);
  std::cout << "gossip beats flood (bytes/query at equal success, epsilon="
            << epsilon << "): ";
  if (wins.empty()) {
    std::cout << "NOWHERE\n";
  } else {
    for (std::size_t i = 0; i < wins.size(); ++i) {
      std::cout << wins[i] << (i + 1 < wins.size() ? ", " : "\n");
    }
  }

  write_json(out_path, matrix, n, warmup, measure, seed, wins);
  std::cout << "wrote " << out_path << "\n";

  if (wins.empty()) {
    std::cout << "DESIGN GATE FAILED: the gossip backend never beat "
                 "flooding on bytes-on-wire at equal success rate\n";
    return 1;
  }
  if (!check_path.empty()) {
    auto baseline = read_baseline(check_path);
    GUESS_CHECK_MSG(!baseline.empty(),
                    "no matrix cells found in " << check_path);
    if (!check_against_baseline(baseline, matrix, tolerance)) return 1;
  }
  return 0;
}
