// Figures 6 and 7: overlay connectivity vs PingInterval.
//
// Maintenance-only runs (queries disabled, isolating Ping/Pong traffic,
// §6.1) under the strain setting LifespanMultiplier=0.2. Shapes:
//   Fig 6 — (N=1000) the largest connected component shrinks as
//           PingInterval grows; SMALL caches fragment first (connectivity
//           needs absolute live entries, which small caches lack);
//   Fig 7 — (CacheSize=20) the RELATIVE largest component at a given
//           PingInterval is nearly independent of network size.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams base;
  base.lifespan_multiplier = 0.2;
  ProtocolParams protocol;

  experiments::print_header(
      std::cout, "Figures 6/7 — connectivity vs PingInterval",
      "long ping intervals fragment the conceptual overlay; small caches "
      "fragment first; relative connectivity is independent of network size",
      base, protocol, scale);

  auto connectivity_job = [&](std::size_t n, std::size_t cache,
                              double interval) {
    SystemParams system = base;
    system.network_size = n;
    ProtocolParams p = protocol;
    p.cache_size = cache;
    p.ping_interval = interval;
    SimulationOptions options = scale.options();
    options.enable_queries = false;
    options.sample_connectivity = true;
    // Connectivity decays over a few mean lifetimes (~3000 s at the 0.2
    // multiplier); warm up past the initial fully-seeded state and sample
    // late. Maintenance-only runs are cheap even at N=2000.
    options.warmup = 2400.0;
    options.measure = scale.full ? 9600.0 : 3600.0;
    options.connectivity_sample_interval = 600.0;
    return experiments::ConfigJob{system, p, options};
  };

  const double intervals[] = {10, 60, 120, 240, 480, 600};
  const std::size_t fig6_caches[] = {10, 20, 50, 100, 200, 500};
  const std::size_t fig7_sizes[] = {200, 500, 1000, 2000};

  // Both figures' sweeps go to one shared worker pool.
  std::vector<experiments::ConfigJob> jobs;
  for (std::size_t cache : fig6_caches) {
    for (double interval : intervals) {
      jobs.push_back(connectivity_job(1000, cache, interval));
    }
  }
  for (std::size_t n : fig7_sizes) {
    for (double interval : intervals) {
      jobs.push_back(connectivity_job(n, 20, interval));
    }
  }
  auto averages = experiments::run_configs(jobs, scale);
  std::size_t next = 0;

  TablePrinter fig6({"PingInterval", "CacheSize", "LCC", "LCC fraction",
                     "strong LCC (final)"});
  for (std::size_t cache : fig6_caches) {
    for (double interval : intervals) {
      const auto& avg = averages[next++];
      fig6.add_row({interval, static_cast<std::int64_t>(cache),
                    avg.largest_component, avg.largest_component / 1000.0,
                    avg.final_largest_strong_component});
    }
  }
  fig6.print(std::cout, "Figure 6 (NetworkSize=1000)");

  TablePrinter fig7({"PingInterval", "NetworkSize", "LCC", "LCC fraction",
                     "strong LCC (final)"});
  for (std::size_t n : fig7_sizes) {
    for (double interval : intervals) {
      const auto& avg = averages[next++];
      fig7.add_row({interval, static_cast<std::int64_t>(n),
                    avg.largest_component,
                    avg.largest_component / static_cast<double>(n),
                    avg.final_largest_strong_component});
    }
  }
  fig7.print(std::cout, "Figure 7 (CacheSize=20)");
  std::cout << "\nPaper anchors: Fig 6 stays near 1000 for short intervals "
               "and decays with\nPingInterval, small caches worst; Fig 7's "
               "LCC fraction is roughly the same\nacross network sizes at "
               "each interval. The strong component (one-way pointers,\n"
               "Figure 2's asymmetry) is smaller than the weak one the "
               "paper plots.\n";
  if (scale.csv) {
    std::cout << "\nCSV fig6:\n" << fig6.to_csv();
    std::cout << "\nCSV fig7:\n" << fig7.to_csv();
  }
  return 0;
}
