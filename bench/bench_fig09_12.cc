// Figures 9, 10, 11 and 12: per-policy-type query efficiency.
//
// Each policy type is varied in isolation (all other types stay Random,
// §6.2). Shapes to reproduce:
//   Fig 9  — QueryProbe policy matters least (≤ ~25% swing);
//   Fig 10 — QueryPong = MFS cuts cost by ~4x vs Random;
//   Fig 11 — CacheReplacement = LFS cuts cost by ~5x; MRU is pathological
//            (mostly dead probes);
//   Fig 12 — unsatisfaction stays in the 6-14% band for QueryPong policies.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;  // paper defaults
  ProtocolParams base;

  experiments::print_header(
      std::cout, "Figures 9-12 — policy comparison (one type at a time)",
      "QueryPong and CacheReplacement dominate performance (4-5x swings); "
      "QueryProbe barely matters; MRU replacement wastes probes on the dead",
      system, base, scale);

  // All 15 configurations (3 policy types × 5 policies) share one worker
  // pool; rows are emitted from the ordered results afterwards.
  const Policy policies[] = {Policy::kRandom, Policy::kMRU, Policy::kLRU,
                             Policy::kMFS, Policy::kMR};
  const Replacement replacements[] = {Replacement::kRandom, Replacement::kLRU,
                                      Replacement::kMRU, Replacement::kLFS,
                                      Replacement::kLR};
  std::vector<experiments::ConfigJob> jobs;
  for (Policy policy : policies) {
    ProtocolParams p = base;
    p.query_probe = policy;
    jobs.push_back({system, p, scale.options()});
  }
  for (Policy policy : policies) {
    ProtocolParams p = base;
    p.query_pong = policy;
    jobs.push_back({system, p, scale.options()});
  }
  for (Replacement policy : replacements) {
    ProtocolParams p = base;
    p.cache_replacement = policy;
    jobs.push_back({system, p, scale.options()});
  }
  auto averages = experiments::run_configs(jobs, scale);
  std::size_t next = 0;

  auto policy_row = [&](TablePrinter& table, const std::string& name) {
    const auto& avg = averages[next++];
    table.add_row({name, avg.probes_per_query, avg.good_per_query,
                   avg.dead_per_query, avg.unsatisfied_rate});
  };

  TablePrinter fig9({"QueryProbe", "Probes/Query", "Good", "DeadIPs",
                     "Unsatisfied"});
  for (Policy policy : policies) policy_row(fig9, to_string(policy));
  fig9.print(std::cout, "Figure 9 (QueryProbe varied)");

  TablePrinter fig10({"QueryPong", "Probes/Query", "Good", "DeadIPs",
                      "Unsatisfied"});
  for (Policy policy : policies) policy_row(fig10, to_string(policy));
  fig10.print(std::cout, "Figure 10 (QueryPong varied) — also Figure 12's "
                         "unsatisfaction column");

  TablePrinter fig11({"CacheReplacement", "Probes/Query", "Good", "DeadIPs",
                      "Unsatisfied"});
  for (Replacement policy : replacements)
    policy_row(fig11, to_string(policy));
  fig11.print(std::cout, "Figure 11 (CacheReplacement varied)");

  std::cout << "\nPaper anchors: Fig 10 MFS ~4x cheaper than Random; Fig 11 "
               "LFS ~5x cheaper,\nMRU dominated by dead probes; Fig 9 swing "
               "~25%; Fig 12 unsatisfaction 6-14%.\n";
  if (scale.csv) {
    std::cout << "\nCSV fig9:\n" << fig9.to_csv();
    std::cout << "\nCSV fig10:\n" << fig10.to_csv();
    std::cout << "\nCSV fig11:\n" << fig11.to_csv();
  }
  return 0;
}
