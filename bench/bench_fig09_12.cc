// Figures 9, 10, 11 and 12: per-policy-type query efficiency.
//
// Each policy type is varied in isolation (all other types stay Random,
// §6.2). Shapes to reproduce:
//   Fig 9  — QueryProbe policy matters least (≤ ~25% swing);
//   Fig 10 — QueryPong = MFS cuts cost by ~4x vs Random;
//   Fig 11 — CacheReplacement = LFS cuts cost by ~5x; MRU is pathological
//            (mostly dead probes);
//   Fig 12 — unsatisfaction stays in the 6-14% band for QueryPong policies.
#include <iostream>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;  // paper defaults
  ProtocolParams base;

  experiments::print_header(
      std::cout, "Figures 9-12 — policy comparison (one type at a time)",
      "QueryPong and CacheReplacement dominate performance (4-5x swings); "
      "QueryProbe barely matters; MRU replacement wastes probes on the dead",
      system, base, scale);

  auto run = [&](ProtocolParams p) {
    return experiments::run_config(system, p, scale);
  };

  TablePrinter fig9({"QueryProbe", "Probes/Query", "Good", "DeadIPs",
                     "Unsatisfied"});
  for (Policy policy : {Policy::kRandom, Policy::kMRU, Policy::kLRU,
                        Policy::kMFS, Policy::kMR}) {
    ProtocolParams p = base;
    p.query_probe = policy;
    auto avg = run(p);
    fig9.add_row({to_string(policy), avg.probes_per_query, avg.good_per_query,
                  avg.dead_per_query, avg.unsatisfied_rate});
  }
  fig9.print(std::cout, "Figure 9 (QueryProbe varied)");

  TablePrinter fig10({"QueryPong", "Probes/Query", "Good", "DeadIPs",
                      "Unsatisfied"});
  for (Policy policy : {Policy::kRandom, Policy::kMRU, Policy::kLRU,
                        Policy::kMFS, Policy::kMR}) {
    ProtocolParams p = base;
    p.query_pong = policy;
    auto avg = run(p);
    fig10.add_row({to_string(policy), avg.probes_per_query,
                   avg.good_per_query, avg.dead_per_query,
                   avg.unsatisfied_rate});
  }
  fig10.print(std::cout, "Figure 10 (QueryPong varied) — also Figure 12's "
                         "unsatisfaction column");

  TablePrinter fig11({"CacheReplacement", "Probes/Query", "Good", "DeadIPs",
                      "Unsatisfied"});
  for (Replacement policy :
       {Replacement::kRandom, Replacement::kLRU, Replacement::kMRU,
        Replacement::kLFS, Replacement::kLR}) {
    ProtocolParams p = base;
    p.cache_replacement = policy;
    auto avg = run(p);
    fig11.add_row({to_string(policy), avg.probes_per_query,
                   avg.good_per_query, avg.dead_per_query,
                   avg.unsatisfied_rate});
  }
  fig11.print(std::cout, "Figure 11 (CacheReplacement varied)");

  std::cout << "\nPaper anchors: Fig 10 MFS ~4x cheaper than Random; Fig 11 "
               "LFS ~5x cheaper,\nMRU dominated by dead probes; Fig 9 swing "
               "~25%; Fig 12 unsatisfaction 6-14%.\n";
  if (scale.csv) {
    std::cout << "\nCSV fig9:\n" << fig9.to_csv();
    std::cout << "\nCSV fig10:\n" << fig10.to_csv();
    std::cout << "\nCSV fig11:\n" << fig11.to_csv();
  }
  return 0;
}
