// Fault-scenario recovery study (DESIGN.md §9).
//
// Three canned correlated-fault scenarios — a 30% mass departure, a 2-way
// network partition, and a transport loss window — each run against the
// paper-default network with the time-resolved interval series enabled. For
// every scenario the harness reports the per-interval success-rate series
// (pooled across seeds: same boundaries, summed counts) and the derived
// recovery metrics: pre-fault baseline, minimum success during the fault,
// time to recovery, and post-onset availability.
//
//   ./build/bench/bench_fault_scenarios [--interval=60] [--seeds=3]
//       [--scenario="at 800 kill 0.5"]      # replace the canned set
//
// Scenario runs are bitwise deterministic: the same seed produces the same
// series under --scheduler=heap and =calendar and any --threads value (the
// determinism suite asserts this).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "experiments/harness.h"
#include "faults/scenario.h"
#include "guess/simulation.h"

namespace {

using namespace guess;

/// Pool the per-seed interval series: boundaries are identical across seeds
/// (same horizon, same width), so counts sum and live populations average.
IntervalSeries pool_series(const std::vector<SimulationResults>& runs) {
  IntervalSeries pooled;
  for (const SimulationResults& run : runs) {
    const IntervalSeries& series = run.interval_series;
    if (pooled.size() < series.size()) pooled.resize(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      pooled[i].start = series[i].start;
      pooled[i].end = series[i].end;
      pooled[i].queries_completed += series[i].queries_completed;
      pooled[i].queries_satisfied += series[i].queries_satisfied;
      pooled[i].probes += series[i].probes;
      pooled[i].live_peers += series[i].live_peers;
      pooled[i].transport += series[i].transport;
    }
  }
  if (!runs.empty()) {
    for (IntervalSample& s : pooled) s.live_peers /= runs.size();
  }
  return pooled;
}

struct NamedScenario {
  std::string name;
  faults::Scenario scenario;
  /// Loss-window scenarios degrade the transport and need the lossy kind.
  bool needs_lossy = false;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);
  double interval =
      scale.metrics_interval > 0.0 ? scale.metrics_interval : 60.0;
  scale.metrics_interval = interval;

  SystemParams system;  // paper defaults
  ProtocolParams protocol;

  // Canned scenarios, placed a quarter into the measurement window so both
  // the pre-fault baseline and the recovery tail have room.
  const sim::Time t0 = scale.warmup + 0.25 * scale.measure;
  const sim::Duration window = 0.15 * scale.measure;
  std::vector<NamedScenario> scenarios;
  if (!scale.scenario.empty()) {
    // --scenario / --scenario-file replaces the canned set.
    scenarios.push_back({"custom", scale.scenario,
                         scale.scenario.uses_degradation()});
  } else {
    faults::Scenario kill;
    kill.add({faults::FaultKind::kKill, t0, /*fraction=*/0.30});
    faults::Scenario partition;
    {
      faults::FaultAction a;
      a.kind = faults::FaultKind::kPartition;
      a.at = t0;
      a.ways = 2;
      a.duration = window;
      partition.add(a);
    }
    faults::Scenario loss_window;
    {
      faults::FaultAction a;
      a.kind = faults::FaultKind::kDegrade;
      a.at = t0;
      a.duration = window;
      a.loss = 0.5;
      a.latency_factor = 2.0;
      loss_window.add(a);
    }
    scenarios.push_back({"mass kill 30%", kill, false});
    scenarios.push_back({"2-way partition", partition, false});
    scenarios.push_back({"loss window 0.5", loss_window, true});
  }

  experiments::print_header(
      std::cout, "Fault-scenario recovery (correlated failures)",
      "GUESS self-heals after correlated faults: success dips while caches "
      "hold corpses or the overlay is cut, then ping eviction and pong "
      "gossip restore the pre-fault baseline",
      system, protocol, scale);
  std::cout << "Faults at t=" << t0 << "s (windows " << window
            << "s); interval " << interval << "s; success pooled over "
            << scale.seeds << " seed(s)\n";

  TablePrinter summary({"scenario", "baseline %", "min during %",
                        "recovery (s)", "availability %"});
  for (const NamedScenario& entry : scenarios) {
    entry.scenario.validate();
    TransportParams transport = scale.transport;
    if (entry.needs_lossy) transport.kind = TransportParams::Kind::kLossy;
    auto config = scale.config()
                      .system(system)
                      .protocol(protocol)
                      .transport(transport)
                      .scenario(entry.scenario);
    auto runs = run_seeds(config, scale.seeds);
    IntervalSeries pooled = pool_series(runs);
    RecoveryMetrics recovery =
        compute_recovery(pooled, entry.scenario.first_fault_time(),
                         entry.scenario.last_fault_end());

    std::cout << "\n--- " << entry.name << ": "
              << entry.scenario.describe() << " ---\n"
              << "  start    end   success%  queries  live\n";
    for (const IntervalSample& s : pooled) {
      std::cout << "  " << s.start << "  " << s.end << "  ";
      if (s.queries_completed == 0) {
        std::cout << "-";
      } else {
        std::cout << 100.0 * s.success_rate();
      }
      std::cout << "  " << s.queries_completed << "  " << s.live_peers
                << "\n";
    }
    summary.add_row(
        {entry.name, 100.0 * recovery.baseline,
         100.0 * recovery.min_during_fault,
         recovery.time_to_recovery < 0.0
             ? TablePrinter::Cell{std::string("never")}
             : TablePrinter::Cell{recovery.time_to_recovery},
         100.0 * recovery.availability});
  }
  std::cout << "\n";
  summary.print(std::cout,
                "recovery metrics (epsilon = 0.05 of baseline success)");

  std::cout << "\nReading: the mass kill dips success while dead cache "
               "entries linger and\nrecovers as pings evict them; the "
               "partition forces cross-group probes to\ntime out until it "
               "heals; the loss window degrades every exchange, and\n"
               "recovery is immediate once the wire clears.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << summary.to_csv();
  return 0;
}
