// Open-loop overload matrix (DESIGN.md §13): offered load swept past
// saturation — 0.5×/1×/2×/5×/10× of a calibrated capacity — for each
// overload policy (none / admit / shed / backpressure) in each environment
// (static membership, paper churn, churn + 5% loss), reporting tail latency
// (p50/p95/p99/p99.9, censored at window close), goodput and SLO-violation
// rate.
//
// Capacity is measured, not assumed: a calibration cell per environment runs
// admission control against a deliberately excessive offered rate and takes
// the completion rate as the sustainable throughput (for GUESS the paper's
// global probe-rate cap is the bottleneck, so capacity is nearly independent
// of network size).
//
// Results are printed as one table per environment and written to
// BENCH_overload.json (override with --out=...). Two gates make the bench a
// CI check rather than a report:
//   * the design gate: at 2× capacity the uncontrolled baseline must
//     degrade (violation rate at least --degrade-margin above its own
//     light-load 0.5× cell) AND at least one policy must hold — violation
//     rate within --hold-margin of that light-load cell at no less than its
//     goodput — in at least one environment. This is the reason the
//     overload controller exists.
//   * the regression gate (--check=<baseline.json>): per cell, goodput must
//     not drop and the violation rate must not grow beyond --tolerance
//     against a previously checked-in baseline.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "guess/config.h"
#include "search/backend.h"

namespace guess {
namespace {

struct Environment {
  std::string name;
  double lifespan_multiplier = 1.0;
  double loss = 0.0;
};

std::vector<Environment> environments() {
  return {
      {"static", 500.0, 0.0},  // membership frozen in place
      {"churn", 1.0, 0.0},     // the paper's lifetime distribution
      {"loss", 1.0, 0.05},     // churn + 5% i.i.d. message loss
  };
}

const std::vector<double>& load_multiples() {
  static const std::vector<double> kLoads = {0.5, 1.0, 2.0, 5.0, 10.0};
  return kLoads;
}

const std::vector<OverloadPolicy>& policies() {
  static const std::vector<OverloadPolicy> kPolicies = {
      OverloadPolicy::kNone, OverloadPolicy::kAdmit, OverloadPolicy::kShed,
      OverloadPolicy::kBackpressure};
  return kPolicies;
}

struct BenchParams {
  std::size_t n = 250;
  double warmup = 150.0;
  double measure = 300.0;
  double slo = 10.0;
  std::uint64_t seed = 42;
};

/// What the calibration cell measured about one environment.
struct Calibration {
  double capacity_qps = 0.0;   ///< sustainable completions per second
  double service_p50 = 0.0;    ///< median unqueued query latency, seconds
};

/// The calibration (zeroed during calibration itself) tunes the controller
/// to the environment:
///   * the queue is sized to the SLO — a full queue must drain in about
///     slo/2 at sustainable throughput, else it is pure bufferbloat (every
///     admitted query blows the SLO waiting, and shedding/backpressure can
///     only look worse than rejecting at the door);
///   * the AIMD window floor is Little's-law sized (capacity × median
///     service time) so that a fully-backed-off window still keeps the
///     system at its sustainable throughput — a floor below that turns
///     sustained overload into a self-inflicted throughput collapse, since
///     queue backlog never clears at 2× offered and the window would pin
///     at the floor forever.
SimulationConfig cell_config(const Environment& env, OverloadPolicy policy,
                             double offered_qps, const BenchParams& params,
                             const Calibration& calibration) {
  SystemParams system;
  system.network_size = params.n;
  system.lifespan_multiplier = env.lifespan_multiplier;
  OverloadParams overload;
  overload.policy = policy;
  double capacity = calibration.capacity_qps;
  if (capacity > 0.0 && (policy == OverloadPolicy::kShed ||
                         policy == OverloadPolicy::kBackpressure)) {
    auto depth = static_cast<std::size_t>(
        std::max(4.0, capacity * params.slo / 2.0));
    overload.queue_capacity = depth;
    overload.shed_watermark = depth;
    auto floor = static_cast<std::size_t>(
        std::max(4.0, std::ceil(capacity * calibration.service_p50)));
    overload.min_window = floor;
    overload.max_window = std::max<std::size_t>(overload.max_window,
                                                4 * floor);
    overload.max_in_flight = 2 * floor;  // the AIMD initial window
    // Tolerate the loss environment's baseline failure rate and adapt
    // faster than the default 10 s tick.
    overload.target_failure_rate = 0.15;
    overload.control_interval = 5.0;
  }
  auto config = SimulationConfig()
                    .system(system)
                    .seed(params.seed)
                    .warmup(params.warmup)
                    .measure(params.measure)
                    .arrival(sim::ArrivalMode::kOpen)
                    .offered_qps(offered_qps)
                    .overload(overload)
                    .slo(params.slo);
  if (env.loss > 0.0) {
    config.transport(TransportParams::lossy(env.loss));
  }
  return config;
}

/// Measure one environment: admission control against an offered rate far
/// past saturation. Whatever completes per second is the sustainable
/// throughput, and (admission control never queues) the median completion
/// latency is the unqueued service time.
Calibration calibrate(const Environment& env, const BenchParams& params,
                      double probe_qps) {
  auto config = cell_config(env, OverloadPolicy::kAdmit, probe_qps, params,
                            Calibration{});
  search::SearchResults r = search::run_search(config);
  Calibration calibration;
  calibration.capacity_qps =
      static_cast<double>(r.overload.completed) / params.measure;
  calibration.service_p50 = r.overload.latency_percentile(50.0);
  GUESS_CHECK_MSG(calibration.capacity_qps > 0.0,
                  "calibration produced zero throughput in " << env.name);
  return calibration;
}

struct CellMetrics {
  double offered = 0.0;
  OverloadStats stats;
  double duration = 0.0;

  double p50() const { return stats.latency_percentile(50.0); }
  double p95() const { return stats.latency_percentile(95.0); }
  double p99() const { return stats.latency_percentile(99.0); }
  double p999() const { return stats.latency_percentile(99.9); }
  double goodput() const { return stats.goodput(duration); }
  double violation_rate() const { return stats.slo_violation_rate(); }
};

using Matrix =
    std::map<std::string, std::map<std::string, std::map<std::string,
                                                         CellMetrics>>>;

std::string multiple_key(double multiple) {
  std::ostringstream key;
  key << multiple << "x";
  return key.str();
}

// --- output ----------------------------------------------------------------

void print_tables(const Matrix& matrix, double slo) {
  for (const Environment& env : environments()) {
    TablePrinter table({"policy", "load", "offered", "arrivals", "rejected",
                        "shed", "p50", "p99", "p99.9", "goodput",
                        "viol%"});
    for (OverloadPolicy policy : policies()) {
      const auto& by_load = matrix.at(env.name).at(overload_policy_name(policy));
      for (double multiple : load_multiples()) {
        const CellMetrics& cell = by_load.at(multiple_key(multiple));
        table.add_row({overload_policy_name(policy), multiple_key(multiple),
                       cell.offered,
                       static_cast<std::int64_t>(cell.stats.arrivals),
                       static_cast<std::int64_t>(cell.stats.rejected),
                       static_cast<std::int64_t>(cell.stats.shed), cell.p50(),
                       cell.p99(), cell.p999(), cell.goodput(),
                       cell.violation_rate() * 100.0});
      }
    }
    std::ostringstream title;
    title << "environment: " << env.name << " (slo=" << slo << "s)";
    table.print(std::cout, title.str());
  }
}

void write_json(const std::string& path, const Matrix& matrix,
                const std::map<std::string, Calibration>& capacities,
                const BenchParams& params) {
  std::ofstream out(path);
  GUESS_CHECK_MSG(out.good(), "cannot write " << path);
  out << "{\n";
  out << "  \"config\": {\"network_size\": " << params.n << ", \"warmup\": "
      << std::fixed << std::setprecision(0) << params.warmup
      << ", \"measure\": " << params.measure << ", \"slo\": "
      << std::setprecision(1) << params.slo << ", \"seed\": " << params.seed
      << "},\n";
  out << "  \"capacity_qps\": {";
  std::size_t env_index = 0;
  for (const Environment& env : environments()) {
    out << "\"" << env.name << "\": " << std::setprecision(3)
        << capacities.at(env.name).capacity_qps
        << (++env_index < environments().size() ? ", " : "");
  }
  out << "},\n";
  out << "  \"matrix\": {\n";
  env_index = 0;
  for (const Environment& env : environments()) {
    out << "    \"" << env.name << "\": {\n";
    std::size_t policy_index = 0;
    for (OverloadPolicy policy : policies()) {
      out << "      \"" << overload_policy_name(policy) << "\": {\n";
      std::size_t load_index = 0;
      for (double multiple : load_multiples()) {
        const CellMetrics& cell = matrix.at(env.name)
                                      .at(overload_policy_name(policy))
                                      .at(multiple_key(multiple));
        out << "        \"" << multiple_key(multiple) << "\": {"
            << "\"offered_qps\": " << std::setprecision(3) << cell.offered
            << ", \"arrivals\": " << cell.stats.arrivals
            << ", \"admitted\": " << cell.stats.admitted
            << ", \"rejected\": " << cell.stats.rejected
            << ", \"shed\": " << cell.stats.shed
            << ", \"completed\": " << cell.stats.completed
            << ", \"abandoned\": " << cell.stats.abandoned
            << ", \"open_at_close\": " << cell.stats.open_at_close
            << ", \"p50\": " << std::setprecision(4) << cell.p50()
            << ", \"p95\": " << cell.p95()
            << ", \"p99\": " << cell.p99()
            << ", \"p999\": " << cell.p999()
            << ", \"goodput\": " << cell.goodput()
            << ", \"violation_rate\": " << cell.violation_rate() << "}"
            << (++load_index < load_multiples().size() ? "," : "") << "\n";
      }
      out << "      }" << (++policy_index < policies().size() ? "," : "")
          << "\n";
    }
    out << "    }" << (++env_index < environments().size() ? "," : "") << "\n";
  }
  out << "  }\n";
  out << "}\n";
}

// --- design gate -----------------------------------------------------------

struct GateResult {
  bool baseline_degrades = false;
  std::vector<std::string> holding_policies;
};

// A fraction of queries violate the SLO even unloaded (unsatisfied queries
// count as violations), so "degrades" and "holds" are both measured against
// the light-load operating point — the none/0.5× cell:
//   * the baseline degrades when its 2× violation rate rises at least
//     --degrade-margin above the light-load rate;
//   * a policy holds when its 2× violation rate stays within --hold-margin
//     of the light-load rate AND its goodput at 2× offered is at least the
//     light-load goodput (scaled by 1 - --epsilon).
GateResult evaluate_gate(const Matrix& matrix, const std::string& env,
                         double degrade_margin, double hold_margin,
                         double epsilon) {
  GateResult gate;
  const CellMetrics& light =
      matrix.at(env).at("none").at(multiple_key(0.5));
  const CellMetrics& none =
      matrix.at(env).at("none").at(multiple_key(2.0));
  gate.baseline_degrades =
      none.violation_rate() >= light.violation_rate() + degrade_margin;
  for (OverloadPolicy policy : policies()) {
    if (policy == OverloadPolicy::kNone) continue;
    const CellMetrics& cell =
        matrix.at(env).at(overload_policy_name(policy)).at(multiple_key(2.0));
    bool tail_held =
        cell.violation_rate() <= light.violation_rate() + hold_margin;
    bool goodput_held = cell.goodput() >= light.goodput() * (1.0 - epsilon);
    if (tail_held && goodput_held) {
      gate.holding_policies.push_back(overload_policy_name(policy));
    }
  }
  return gate;
}

// --- regression gate (--check=...) -----------------------------------------
//
// Reads the cells back out of a previously written BENCH_overload.json.
// The parser only needs to understand this file's own output format, so a
// line/keyword scan is enough (the bench_backend_matrix approach).

struct BaselineCell {
  double goodput = 0.0;
  double violation_rate = 0.0;
};

std::map<std::string, BaselineCell> read_baseline(const std::string& path) {
  std::ifstream in(path);
  GUESS_CHECK_MSG(in.good(), "cannot read baseline " << path);
  std::map<std::string, BaselineCell> baseline;
  std::string line;
  std::string env;
  std::string policy;
  bool in_matrix = false;
  while (std::getline(in, line)) {
    if (line.find("\"matrix\"") != std::string::npos) {
      in_matrix = true;
      continue;
    }
    if (!in_matrix) continue;
    auto key_start = line.find('"');
    if (key_start == std::string::npos) continue;
    auto key_end = line.find('"', key_start + 1);
    if (key_end == std::string::npos) continue;
    std::string key = line.substr(key_start + 1, key_end - key_start - 1);
    auto gpos = line.find("\"goodput\": ");
    if (gpos == std::string::npos) {
      // A header line. Indentation distinguishes environment ("    \"churn\"")
      // from policy ("      \"admit\"").
      if (line.rfind("    \"", 0) == 0) {
        env = key;
      } else {
        policy = key;
      }
      continue;
    }
    auto vpos = line.find("\"violation_rate\": ");
    if (vpos == std::string::npos) continue;
    BaselineCell cell;
    cell.goodput = std::strtod(
        line.c_str() + gpos + std::string("\"goodput\": ").size(), nullptr);
    cell.violation_rate = std::strtod(
        line.c_str() + vpos + std::string("\"violation_rate\": ").size(),
        nullptr);
    baseline[env + "/" + policy + "/" + key] = cell;
  }
  return baseline;
}

bool check_against_baseline(const std::map<std::string, BaselineCell>& baseline,
                            const Matrix& matrix, double tolerance) {
  bool ok = true;
  for (const Environment& env : environments()) {
    for (OverloadPolicy policy : policies()) {
      for (double multiple : load_multiples()) {
        std::string key = env.name + "/" +
                          overload_policy_name(policy) + "/" +
                          multiple_key(multiple);
        auto it = baseline.find(key);
        if (it == baseline.end()) continue;
        const CellMetrics& cell = matrix.at(env.name)
                                      .at(overload_policy_name(policy))
                                      .at(multiple_key(multiple));
        std::cout << "check " << key << ": goodput " << std::fixed
                  << std::setprecision(3) << cell.goodput() << " vs "
                  << it->second.goodput << ", viol " << cell.violation_rate()
                  << " vs " << it->second.violation_rate << "\n";
        if (cell.goodput() <
            it->second.goodput * (1.0 - tolerance)) {
          std::cout << "REGRESSION: " << key
                    << " goodput fell beyond tolerance " << tolerance << "\n";
          ok = false;
        }
        if (cell.violation_rate() >
            it->second.violation_rate + tolerance) {
          std::cout << "REGRESSION: " << key
                    << " violation rate grew beyond tolerance " << tolerance
                    << "\n";
          ok = false;
        }
      }
    }
  }
  return ok;
}

}  // namespace
}  // namespace guess

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  BenchParams params;
  params.n = static_cast<std::size_t>(
      flags.get_int("n", flags.full() ? 1000 : 250));
  params.warmup = flags.get_double("warmup", 150.0);
  params.measure = flags.get_double("measure", flags.full() ? 900.0 : 300.0);
  params.slo = flags.slo_ms() / 1000.0;
  params.seed = flags.seed();
  const double probe_qps = flags.get_double("calibration-qps", 50.0);
  const double degrade_margin = flags.get_double("degrade-margin", 0.10);
  const double hold_margin = flags.get_double("hold-margin", 0.05);
  const double epsilon = flags.get_double("epsilon", 0.10);
  const std::string out_path = flags.get_string("out", "BENCH_overload.json");
  const std::string check_path = flags.get_string("check", "");
  const double tolerance = flags.get_double("tolerance", 0.10);

  std::cout << "# Overload matrix — n=" << params.n << " warmup="
            << params.warmup << " measure=" << params.measure << " slo="
            << params.slo << "s seed=" << params.seed << "\n\n";

  std::map<std::string, Calibration> capacities;
  for (const Environment& env : environments()) {
    capacities[env.name] = calibrate(env, params, probe_qps);
    std::cout << "capacity[" << env.name << "] = " << std::fixed
              << std::setprecision(2) << capacities[env.name].capacity_qps
              << " q/s (service p50 "
              << capacities[env.name].service_p50 << "s)\n";
  }
  std::cout << "\n";

  Matrix matrix;
  for (const Environment& env : environments()) {
    for (OverloadPolicy policy : policies()) {
      for (double multiple : load_multiples()) {
        double offered = multiple * capacities[env.name].capacity_qps;
        CellMetrics cell;
        cell.offered = offered;
        cell.duration = params.measure;
        search::SearchResults r = search::run_search(cell_config(
            env, policy, offered, params, capacities[env.name]));
        cell.stats = r.overload;
        matrix[env.name][overload_policy_name(policy)]
              [multiple_key(multiple)] = cell;
      }
    }
  }

  print_tables(matrix, params.slo);
  write_json(out_path, matrix, capacities, params);
  std::cout << "wrote " << out_path << "\n";

  // Design gate: somewhere, uncontrolled 2× load must hurt and a policy
  // must fix it.
  bool gate_ok = false;
  for (const Environment& env : environments()) {
    GateResult gate = evaluate_gate(matrix, env.name, degrade_margin,
                                    hold_margin, epsilon);
    std::cout << "gate[" << env.name << "]: baseline at 2x "
              << (gate.baseline_degrades ? "degrades" : "holds (no overload)")
              << "; holding policies:";
    if (gate.holding_policies.empty()) {
      std::cout << " none";
    } else {
      for (const std::string& name : gate.holding_policies) {
        std::cout << " " << name;
      }
    }
    std::cout << "\n";
    if (gate.baseline_degrades && !gate.holding_policies.empty()) {
      gate_ok = true;
    }
  }
  if (!gate_ok) {
    std::cout << "DESIGN GATE FAILED: no environment shows the no-control "
                 "baseline degrading at 2x capacity while a policy holds "
                 "tail latency and goodput\n";
    return 1;
  }

  if (!check_path.empty()) {
    auto baseline = read_baseline(check_path);
    GUESS_CHECK_MSG(!baseline.empty(),
                    "no matrix cells found in " << check_path);
    if (!check_against_baseline(baseline, matrix, tolerance)) return 1;
  }
  return 0;
}
