// Figures 16, 17 and 18: robustness to cache poisoning WITHOUT collusion
// (BadPongBehavior = Dead: attackers hand out fabricated dead addresses).
//
// Policy combos per the paper: all three query-side types set together
// (e.g. MFS = MFS/MFS/LFS). Shapes to reproduce:
//   Fig 16 — probes/query grows with PercentBadPeers, worst for MFS;
//   Fig 17 — MFS satisfaction collapses toward 0% at 20% bad peers while
//            Random, MR and MR* stay robust;
//   Fig 18 — MFS's good link-cache entries collapse; the others hold
//            (MR evicts liars as soon as they return zero results).
#include <iostream>
#include <vector>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams base;
  base.bad_pong_behavior = BadPongBehavior::kDead;

  experiments::print_header(
      std::cout, "Figures 16/17/18 — cache poisoning, no collusion (Dead)",
      "MFS (trusting NumFiles claims) collapses as attackers grow; Random, "
      "MR and MR* stay robust because dead addresses evict after one probe",
      base, ProtocolParams{}, scale);

  TablePrinter table({"combo", "PercentBad", "Probes/Query", "+-",
                      "Unsatisfied", "+-", "Good Cache Entries"});
  const double bad_levels[] = {0.0, 5.0, 10.0, 15.0, 20.0};
  std::vector<experiments::ConfigJob> jobs;
  for (const auto& combo : experiments::robustness_combos()) {
    ProtocolParams protocol = combo.apply(ProtocolParams{});
    for (double bad : bad_levels) {
      SystemParams system = base;
      system.percent_bad_peers = bad;
      jobs.push_back({system, protocol, scale.options()});
    }
  }
  auto averages = experiments::run_configs(jobs, scale);
  std::size_t next = 0;
  for (const auto& combo : experiments::robustness_combos()) {
    for (double bad : bad_levels) {
      const auto& avg = averages[next++];
      table.add_row({combo.name, bad, avg.probes_per_query,
                     avg.probes_per_query_se, avg.unsatisfied_rate,
                     avg.unsatisfied_rate_se, avg.good_entries});
    }
  }
  table.print(std::cout, "Figures 16+17+18 (Dead pong poisoning)");
  std::cout << "\nPaper anchors: MFS reaches ~0% satisfaction at 20% bad "
               "peers and its good\ncache entries drop off; MR stays nearly "
               "flat (liars evicted after one probe);\nMR* tracks MR; Random "
               "is robust but expensive.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
