// Figure 13: ranked per-peer load under different QueryProbe /
// CacheReplacement combinations.
//
// Shape to reproduce: MFS/LFS and MR/LR concentrate the load on a handful
// of peers (steep head on the ranked curve, high Gini); Random/Random is
// far flatter but its total probe volume is many times larger.
#include <iostream>

#include "analysis/load_analysis.h"
#include "common/table.h"
#include "experiments/harness.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;  // paper defaults
  ProtocolParams base;

  experiments::print_header(
      std::cout, "Figure 13 — ranked load distribution per policy combo",
      "efficient policies (MFS/LFS, MR/LR) pile the probes onto a few "
      "peers; Random/Random spreads them but sends ~8x more total probes",
      system, base, scale);

  struct Combo {
    const char* name;
    Policy probe;
    Replacement replacement;
  };
  const Combo combos[] = {
      {"Random/Random", Policy::kRandom, Replacement::kRandom},
      {"MFS/LFS", Policy::kMFS, Replacement::kLFS},
      {"MR/LR", Policy::kMR, Replacement::kLR},
      {"MRU/LRU", Policy::kMRU, Replacement::kLRU},
  };

  TablePrinter summary({"combo", "total probes", "gini", "top-1% share",
                        "max load", "p99 load"});
  TablePrinter curves({"combo", "rank", "load (probes received)"});

  for (const Combo& combo : combos) {
    ProtocolParams p = base;
    p.query_probe = combo.probe;
    p.cache_replacement = combo.replacement;
    // One representative seed: the ranked curve is a distribution over
    // peers, already thousands of samples.
    GuessSimulation sim(SimulationConfig().system(system).protocol(p).options(scale.options()));
    auto results = sim.run();
    auto load = analysis::summarize_load(results.peer_loads);
    summary.add_row({std::string(combo.name), load.total, load.gini,
                     load.top1pct_share, load.max, load.p99});
    for (auto [rank, value] : analysis::ranked_curve(results.peer_loads, 12)) {
      curves.add_row({std::string(combo.name),
                      static_cast<std::int64_t>(rank), value});
    }
  }

  summary.print(std::cout, "Figure 13 (load concentration summary)");
  curves.print(std::cout, "Figure 13 (ranked load curves, log-spaced ranks)");
  std::cout << "\nPaper anchors: MFS/LFS and MR/LR heads reach thousands of "
               "probes on rank-1 peers\nwhile their tails idle; "
               "Random/Random is level but with ~8x total probes.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << curves.to_csv();
  return 0;
}
