// Table 3: breakdown of live cache entries for varying cache sizes.
//
// Paper (NetworkSize=1000, LifespanMultiplier=0.2, Random policies):
//   CacheSize  FractionLive  AbsoluteLive
//   10         .822           8.0
//   20         .759          14.8
//   50         .605          28.5
//   100        .418          36.2
//   200        .330          41.9
//   500        .309          41.9
// Shape to reproduce: the live FRACTION falls as the cache grows (the fixed
// ping effort is spread too thin) while the ABSOLUTE number of live entries
// rises and saturates.
//
// Like the PingInterval study in the same section, the table isolates
// maintenance traffic: queries are disabled (query-driven Pong sharing
// would keep caches substantially fresher, see EXPERIMENTS.md).
#include <iostream>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;
  system.lifespan_multiplier = 0.2;  // the §6.1 strain setting
  ProtocolParams protocol;

  experiments::print_header(
      std::cout, "Table 3 — live link-cache entries vs CacheSize",
      "fraction live falls with cache size; absolute live entries rise "
      "and saturate",
      system, protocol, scale);

  TablePrinter table({"CacheSize", "Fraction Live", "Absolute Live",
                      "Entries", "paper fraction", "paper absolute"});
  const double paper_fraction[] = {.822, .759, .605, .418, .330, .309};
  const double paper_absolute[] = {8.0, 14.8, 28.5, 36.2, 41.9, 41.9};
  const std::size_t cache_sizes[] = {10, 20, 50, 100, 200, 500};

  std::vector<experiments::ConfigJob> jobs;
  for (std::size_t cache : cache_sizes) {
    ProtocolParams p = protocol;
    p.cache_size = cache;
    // Maintenance-only, with a long window: large caches take several mean
    // lifetimes to reach their (stale) steady state. Cheap without queries.
    SimulationOptions options = scale.options();
    options.enable_queries = false;
    options.warmup = scale.full ? 4000.0 : 2000.0;
    options.measure = scale.full ? 12000.0 : 4000.0;
    jobs.push_back({system, p, options});
  }
  auto averages = experiments::run_configs(jobs, scale);
  for (std::size_t i = 0; i < std::size(cache_sizes); ++i) {
    const auto& avg = averages[i];
    table.add_row({static_cast<std::int64_t>(cache_sizes[i]),
                   avg.fraction_live, avg.absolute_live,
                   avg.absolute_live / std::max(avg.fraction_live, 1e-9),
                   paper_fraction[i], paper_absolute[i]});
  }
  table.print(std::cout, "Table 3 (measured vs paper)");
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
