// Micro-benchmarks (google-benchmark) for the hot data structures: the
// per-probe costs that bound how large a network the simulator can sweep.
#include <benchmark/benchmark.h>

#include "analysis/overlay_graph.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "content/content_model.h"
#include "guess/link_cache.h"
#include "guess/query_execution.h"
#include "sim/event_queue.h"

namespace guess {
namespace {

LinkCache filled_cache(std::size_t size, Rng& rng) {
  LinkCache cache(0, size);
  for (PeerId id = 1; id <= size; ++id) {
    cache.insert_free(CacheEntry{
        id, rng.uniform(0.0, 1000.0),
        static_cast<std::uint32_t>(rng.uniform_int(0, 2000)),
        static_cast<std::uint32_t>(rng.uniform_int(0, 5))});
  }
  return cache;
}

void BM_LinkCacheOfferLfs(benchmark::State& state) {
  Rng rng(1);
  LinkCache cache = filled_cache(static_cast<std::size_t>(state.range(0)),
                                 rng);
  PeerId next = 10000;
  for (auto _ : state) {
    CacheEntry entry{next++, 0.0,
                     static_cast<std::uint32_t>(rng.uniform_int(0, 2000)), 0};
    benchmark::DoNotOptimize(cache.offer(entry, Replacement::kLFS, rng));
  }
}
BENCHMARK(BM_LinkCacheOfferLfs)->Arg(20)->Arg(100)->Arg(500);

void BM_LinkCacheOfferRandom(benchmark::State& state) {
  Rng rng(1);
  LinkCache cache = filled_cache(static_cast<std::size_t>(state.range(0)),
                                 rng);
  PeerId next = 10000;
  for (auto _ : state) {
    CacheEntry entry{next++, 0.0, 10, 0};
    benchmark::DoNotOptimize(cache.offer(entry, Replacement::kRandom, rng));
  }
}
BENCHMARK(BM_LinkCacheOfferRandom)->Arg(100)->Arg(500);

void BM_LinkCacheSelectTopMfs(benchmark::State& state) {
  Rng rng(1);
  LinkCache cache = filled_cache(static_cast<std::size_t>(state.range(0)),
                                 rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.select_top(Policy::kMFS, 5, rng));
  }
}
BENCHMARK(BM_LinkCacheSelectTopMfs)->Arg(20)->Arg(100)->Arg(500);

void BM_LinkCacheSelectTopRandom(benchmark::State& state) {
  Rng rng(1);
  LinkCache cache = filled_cache(static_cast<std::size_t>(state.range(0)),
                                 rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.select_top(Policy::kRandom, 5, rng));
  }
}
BENCHMARK(BM_LinkCacheSelectTopRandom)->Arg(100)->Arg(500);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 0.8);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_QueryCandidateChurn(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    QueryExecution query(0, 1, 1, Policy::kMR, 0.0);
    for (PeerId id = 1; id <= 200; ++id) {
      query.add_candidate(
          CacheEntry{id, 0.0, 0,
                     static_cast<std::uint32_t>(rng.uniform_int(0, 5))},
          rng);
    }
    while (query.next_candidate()) {
    }
    benchmark::DoNotOptimize(query.seen());
  }
}
BENCHMARK(BM_QueryCandidateChurn);

// Event-queue benchmarks run under both backends: range(0) selects the
// scheduler (0 = heap, 1 = calendar).
sim::Scheduler bench_scheduler(const benchmark::State& state) {
  return state.range(0) == 0 ? sim::Scheduler::kHeap
                             : sim::Scheduler::kCalendar;
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue(bench_scheduler(state));
    for (int i = 0; i < 1000; ++i) {
      queue.schedule(rng.uniform(0.0, 100.0), [] {});
    }
    sim::Time at = 0.0;
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop(at));
    }
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop)
    ->Arg(0)->Arg(1)
    ->ArgName("scheduler");

// Steady-state hold-and-replace: the simulator's dominant pattern (every
// pop schedules a successor), measured per event at a fixed population.
void BM_EventQueueSteadyState(benchmark::State& state) {
  Rng rng(1);
  sim::EventQueue queue(bench_scheduler(state));
  sim::Time now = 0.0;
  for (int i = 0; i < 4096; ++i) {
    queue.schedule(now + rng.uniform(0.0, 10.0), [] {});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.pop(now));
    queue.schedule(now + rng.uniform(0.0, 10.0), [] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyState)->Arg(0)->Arg(1)->ArgName("scheduler");

// Cancellation-heavy: half the scheduled events are cancelled before they
// can fire, the footprint of churn (peer death revokes its timers).
void BM_EventQueueScheduleCancelPop(benchmark::State& state) {
  Rng rng(1);
  sim::EventQueue queue(bench_scheduler(state));
  sim::Time now = 0.0;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 2048; ++i) {
    handles.push_back(queue.schedule(now + rng.uniform(0.0, 10.0), [] {}));
  }
  std::size_t victim = 0;
  for (auto _ : state) {
    auto& h = handles[victim++ % handles.size()];
    // The victim may already have fired via pop; replace it only when the
    // cancel actually removed an event, keeping the population constant.
    bool was_pending = h.pending();
    h.cancel();
    benchmark::DoNotOptimize(queue.pop(now));
    h = queue.schedule(now + rng.uniform(0.0, 10.0), [] {});
    if (!was_pending) continue;
    queue.schedule(now + rng.uniform(0.0, 10.0), [] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleCancelPop)
    ->Arg(0)->Arg(1)
    ->ArgName("scheduler");

// Periodic series firing from slab-resident slots: no slot churn at all.
void BM_EventQueuePeriodicFire(benchmark::State& state) {
  sim::EventQueue queue(bench_scheduler(state));
  for (int i = 0; i < 256; ++i) {
    queue.schedule_periodic(1.0 + 0.01 * i, 1.0, [] {});
  }
  sim::Time now = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.pop(now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePeriodicFire)->Arg(0)->Arg(1)->ArgName("scheduler");

void BM_OverlayLargestWeakComponent(benchmark::State& state) {
  Rng rng(1);
  auto n = static_cast<std::size_t>(state.range(0));
  analysis::OverlayGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    for (int e = 0; e < 10; ++e) {
      graph.add_edge(i, rng.index(n));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.largest_weak_component());
  }
}
BENCHMARK(BM_OverlayLargestWeakComponent)->Arg(1000)->Arg(5000);

void BM_SampleLibrary(benchmark::State& state) {
  content::ContentModel model{content::ContentParams{}};
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.sample_library(static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_SampleLibrary)->Arg(30)->Arg(300)->Arg(1500);

}  // namespace
}  // namespace guess
