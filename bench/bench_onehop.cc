// One-hop DHT vs GUESS (§1's positioning against reference [1]).
//
// Both avoid message forwarding; the costs land in different places. The
// DHT guarantees (near-)one-hop lookups but must disseminate every
// membership event to every peer, so its maintenance bill scales with
// churn × population and it only supports search-by-identifier. GUESS pays
// per query (an adaptive number of probes) with maintenance bounded by its
// small link cache — and supports flexible search.
#include <iostream>

#include "common/table.h"
#include "experiments/harness.h"
#include "guess/simulation.h"
#include "onehop/one_hop_dht.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams system;
  experiments::print_header(
      std::cout, "One-hop DHT vs GUESS (non-forwarding, two ways)",
      "the DHT's lookups are ~1 probe but its maintenance scales with "
      "churn x N; GUESS pays per query with O(cache) maintenance",
      system, ProtocolParams{}, scale);

  TablePrinter table({"system", "churn x", "probes per op", "1-hop %",
                      "maint msgs/peer/s", "unsat"});

  auto run_dht = [&](double multiplier, double delay) {
    onehop::OneHopParams params;
    params.network_size = system.network_size;
    params.lifespan_multiplier = multiplier;
    params.dissemination_delay = delay;
    sim::Simulator simulator;
    onehop::OneHopDht dht(params, simulator, Rng(scale.base_seed));
    dht.initialize();
    simulator.run_until(scale.warmup);
    dht.begin_measurement();
    simulator.run_until(scale.warmup + scale.measure);
    auto results = dht.results();
    table.add_row(
        {std::string("one-hop DHT (D=") + std::to_string(int(delay)) + "s)",
         multiplier, results.mean_probes(),
         100.0 * results.one_hop_fraction(),
         results.maintenance_msgs_per_peer_per_sec(scale.measure),
         std::string("n/a (exact-match)")});
  };

  auto run_guess = [&](double multiplier) {
    SystemParams s = system;
    s.lifespan_multiplier = multiplier;
    ProtocolParams protocol;
    protocol.query_pong = Policy::kMFS;
    GuessSimulation sim(SimulationConfig().system(s).protocol(protocol).options(scale.options()));
    auto results = sim.run();
    // GUESS maintenance: one ping per PingInterval per peer.
    table.add_row({std::string("GUESS (QueryPong=MFS)"), multiplier,
                   results.probes_per_query(), 0.0, 1.0 / 30.0,
                   results.unsatisfied_rate()});
  };

  for (double multiplier : {1.0, 0.2}) {
    run_dht(multiplier, 30.0);
    run_dht(multiplier, 120.0);
    run_guess(multiplier);
  }

  table.print(std::cout, "lookup cost vs maintenance cost under churn");
  std::cout << "\nReading guide: the DHT answers in ~1 probe but every peer "
               "pays the global\nmembership-event rate (2N/mean-lifetime "
               "msgs/s — it grows 5x at 0.2x lifespans\nand linearly with "
               "N); GUESS maintenance is a constant 1 ping per 30 s\n"
               "regardless of N, with the cost shifted to an adaptive "
               "per-query probe count.\nThe DHT also answers only exact "
               "identifier lookups (§1) — 'unsat' does not\napply: keys "
               "always resolve to their owner.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
