// Fragmentation attacks and flooding amplification (§3).
//
// Two qualitative claims from the Gnutella comparison:
//   * power-law overlays (the kind peer autonomy naturally produces)
//     fragment when high-degree peers are attacked; degree-capped random
//     overlays degrade gracefully;
//   * flooding amplifies one query into orders of magnitude more messages
//     than the peers it actually reaches (the DoS lever of §3.3).
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "gnutella/flood.h"
#include "gnutella/topology.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto n = static_cast<std::size_t>(
      flags.get_int("n", flags.full() ? 10000 : 2000));
  Rng rng(flags.seed());

  std::cout << "Fragmentation & amplification (§3), overlays of " << n
            << " peers\n";

  auto power_law = gnutella::power_law_topology(n, 2, rng);
  auto random = gnutella::random_topology(n, 2, rng);

  TablePrinter frag({"overlay", "removed top-degree", "removed %", "LCC",
                     "LCC fraction"});
  for (auto* graph : {&power_law, &random}) {
    const char* name = graph == &power_law ? "power-law" : "random";
    auto order = graph->nodes_by_degree();
    for (double pct : {0.0, 1.0, 2.0, 5.0, 10.0, 20.0}) {
      auto remove = static_cast<std::size_t>(pct / 100.0 *
                                             static_cast<double>(n));
      std::vector<char> alive(n, 1);
      for (std::size_t i = 0; i < remove; ++i) alive[order[i]] = 0;
      std::size_t lcc = graph->largest_component(alive);
      frag.add_row({std::string(name), static_cast<std::int64_t>(remove),
                    pct, static_cast<std::int64_t>(lcc),
                    static_cast<double>(lcc) /
                        static_cast<double>(n - remove)});
    }
  }
  frag.print(std::cout,
             "fragmentation attack (network-level DoS on hubs, §3.3)");

  TablePrinter amp({"overlay", "TTL", "peers reached", "messages",
                    "amplification (msgs/reached)"});
  for (auto* graph : {&power_law, &random}) {
    const char* name = graph == &power_law ? "power-law" : "random";
    for (std::size_t ttl : {2u, 4u, 6u, 8u}) {
      // Average over a few random origins.
      double reached = 0.0, messages = 0.0;
      const int origins = 50;
      for (int i = 0; i < origins; ++i) {
        auto result = gnutella::flood_reach(*graph, rng.index(n), ttl);
        reached += static_cast<double>(result.peers_reached);
        messages += static_cast<double>(result.messages);
      }
      reached /= origins;
      messages /= origins;
      amp.add_row({std::string(name), static_cast<std::int64_t>(ttl),
                   reached, messages, messages / std::max(reached, 1.0)});
    }
  }
  amp.print(std::cout, "flooding amplification (§3.1/§3.3)");
  std::cout << "\nReading guide: the power-law overlay loses far more of its "
               "largest component\nthan the random overlay at equal removals; "
               "flood messages exceed peers reached\nby a growing factor — "
               "GUESS probes cost exactly one message each.\n";
  return 0;
}
