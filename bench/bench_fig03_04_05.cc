// Figures 3, 4 and 5: query performance vs CacheSize across network sizes.
//
// Paper setup: LifespanMultiplier=0.2, Random policies, NetworkSize in
// {200, 500, 1000, 2000, 5000}, CacheSize swept from 5 up to the network
// size. Shapes to reproduce:
//   Fig 3 — probes/query RISES with cache size, at every network size;
//   Fig 4 — unsatisfaction has a MINIMUM at moderate cache size (20–70),
//           roughly independent of network size;
//   Fig 5 — the extra probes at large caches are DEAD probes; good probes
//           peak at a moderate cache size (N=1000 slice).
#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "common/table.h"
#include "experiments/harness.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);
  // 34-point sweep: trends are across configs, so default to a single seed
  // unless the caller asks for more.
  if (flags.seeds() == 0 && !scale.full) scale.seeds = 1;

  SystemParams base;
  base.lifespan_multiplier = 0.2;
  ProtocolParams protocol;

  experiments::print_header(
      std::cout, "Figures 3/4/5 — cache size sweep",
      "probes/query rises with cache size; unsatisfaction is minimized at "
      "a moderate cache size (20-70); the growth is all dead probes",
      base, protocol, scale);

  const std::size_t network_sizes[] = {200, 500, 1000, 2000, 5000};
  const std::size_t cache_sizes[] = {5, 10, 20, 50, 100, 200, 500};

  TablePrinter fig34({"NetworkSize", "CacheSize", "Probes/Query",
                      "Unsatisfied", "Good/Query", "Dead/Query"});
  TablePrinter fig5({"CacheSize", "Good Probes/Query", "Dead Probes/Query"});

  // Collect the whole 34-point sweep, then run every replication on one
  // shared worker pool (the sweep parallelizes across configs, so even the
  // default single-seed run saturates the machine).
  std::vector<experiments::ConfigJob> jobs;
  std::vector<std::pair<std::size_t, std::size_t>> points;  // (n, c)
  for (std::size_t n : network_sizes) {
    SystemParams system = base;
    system.network_size = n;
    for (std::size_t c : cache_sizes) {
      if (c > n) continue;
      ProtocolParams p = protocol;
      p.cache_size = c;
      // Larger networks generate proportionally more queries per simulated
      // second; shrink the window to keep per-config cost flat without
      // losing sample size.
      SimulationOptions options = scale.options();
      double shrink = std::min(1.0, 1000.0 / static_cast<double>(n));
      options.measure = std::max(scale.measure * shrink, 300.0);
      jobs.push_back({system, p, options});
      points.emplace_back(n, c);
    }
  }
  auto averages = experiments::run_configs(jobs, scale);
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto [n, c] = points[i];
    const auto& avg = averages[i];
    fig34.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(c),
                   avg.probes_per_query, avg.unsatisfied_rate,
                   avg.good_per_query, avg.dead_per_query});
    if (n == 1000) {
      fig5.add_row({static_cast<std::int64_t>(c), avg.good_per_query,
                    avg.dead_per_query});
    }
  }

  fig34.print(std::cout,
              "Figures 3+4 (probes/query and unsatisfaction vs cache size)");
  fig5.print(std::cout, "Figure 5 (good vs dead probes, NetworkSize=1000)");
  std::cout << "\nPaper anchors: Fig 4's minimum at CacheSize 20-70 for all "
               "network sizes;\nFig 5's good probes peak near CacheSize=20 "
               "while dead probes keep growing.\n";
  if (scale.csv) {
    std::cout << "\nCSV fig3+4:\n" << fig34.to_csv();
    std::cout << "\nCSV fig5:\n" << fig5.to_csv();
  }
  return 0;
}
