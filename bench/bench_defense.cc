// Defense-in-depth ablation against colluding cache poisoning (§6.4 future
// work, §6.1 healing): plain MR vs MR + detection vs MR + detection +
// pong-server rebootstrap.
//
// Shape: plain MR collapses (Figures 19-21); detection alone stops probes
// from being wasted on known attackers but cannot rebuild the collapsed
// overlay (a fragmented overlay "is unlikely to heal" without a bootstrap
// server, §6.1); detection + rebootstrap restores service.
#include <iostream>

#include "common/table.h"
#include "experiments/harness.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);

  SystemParams base;
  base.bad_pong_behavior = BadPongBehavior::kBad;

  ProtocolParams mr = experiments::PolicyCombo::from_name("MR")
                          .apply(ProtocolParams{});

  experiments::print_header(
      std::cout, "Defense ablation — detection and rebootstrap vs collusion",
      "detection (blacklists + adaptive MR->MR* switch) stops the bleeding; "
      "the pong-server rebootstrap heals the overlay; both are needed",
      base, mr, scale);

  TablePrinter table({"PercentBad", "defense", "Probes/Query", "Unsatisfied",
                      "Good Cache Entries"});
  for (double bad : {10.0, 20.0}) {
    SystemParams system = base;
    system.percent_bad_peers = bad;
    for (int mode = 0; mode < 3; ++mode) {
      ProtocolParams protocol = mr;
      if (mode >= 1) protocol.detection.enabled = true;
      if (mode >= 2) protocol.bootstrap.pong_server_reseed = true;
      const char* name = mode == 0   ? "none"
                         : mode == 1 ? "detection"
                                     : "detection+reseed";
      SimulationOptions options = scale.options();
      // Steady state matters here: the attack needs time to saturate and
      // the defense time to recover.
      options.warmup = std::max(options.warmup, 1200.0);
      auto avg = experiments::run_config(system, protocol, scale, options);
      table.add_row({bad, std::string(name), avg.probes_per_query,
                     avg.unsatisfied_rate, avg.good_entries});
    }
  }
  table.print(std::cout, "MR under collusion, defense layers");
  std::cout << "\nReading guide: 'none' reproduces the Figure 20 collapse; "
               "'detection' cuts\nwasted probes but satisfaction stays poor "
               "(the overlay is already fragmented);\n'detection+reseed' "
               "restores good cache entries and satisfaction.\n";
  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return 0;
}
