// Defense-vs-attack matrix (DESIGN.md §11).
//
// Every adversary in the zoo — eclipse, sybil flash crowd, pong-flood
// amplification, reply withholding — is run against three detection
// settings: off, the paper-default detector (§6.4), and the hardened
// preset (tight thresholds + oversize-pong caps + no-reply charging +
// first-hand cache floor). Each cell reports the success rate during the
// attack window, the §9 recovery metrics (baseline, minimum, time to
// recovery, availability), and the raw AttackStats counters.
//
//   ./build/bench/bench_adversary_matrix [--n=200] [--frac=0.15]
//       [--seeds=2] [--interval=60] [--out=BENCH_adversary.json]
//
// The headline claim the checked-in BENCH_adversary.json pins: hardened
// detection beats the default detector on success rate under attack
// (the worst attack-window interval — the depth of the dip) and time to
// recovery for every attack kind ("hardened_beats_default": true per
// attack). Attack runs are bitwise deterministic (the determinism suite
// asserts heap/calendar and thread-count invariance for each kind).
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "experiments/harness.h"
#include "faults/scenario.h"
#include "guess/simulation.h"

namespace guess {
namespace {

/// Pool the per-seed interval series (same boundaries across seeds: counts
/// sum, live population averages) — the bench_fault_scenarios convention.
IntervalSeries pool_series(const std::vector<SimulationResults>& runs) {
  IntervalSeries pooled;
  for (const SimulationResults& run : runs) {
    const IntervalSeries& series = run.interval_series;
    if (pooled.size() < series.size()) pooled.resize(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      pooled[i].start = series[i].start;
      pooled[i].end = series[i].end;
      pooled[i].queries_completed += series[i].queries_completed;
      pooled[i].queries_satisfied += series[i].queries_satisfied;
      pooled[i].probes += series[i].probes;
      pooled[i].live_peers += series[i].live_peers;
      pooled[i].transport += series[i].transport;
    }
  }
  if (!runs.empty()) {
    for (IntervalSample& s : pooled) s.live_peers /= runs.size();
  }
  return pooled;
}

struct Cell {
  RecoveryMetrics recovery;
  double success_during = 0.0;  // pooled over samples inside the window
  AttackStats attack;           // summed over seeds
};

/// Pooled success rate over the samples that lie inside [t0, t1].
double success_in_window(const IntervalSeries& series, sim::Time t0,
                         sim::Time t1) {
  std::uint64_t completed = 0;
  std::uint64_t satisfied = 0;
  for (const IntervalSample& s : series) {
    if (s.start >= t0 - 1e-9 && s.end <= t1 + 1e-9) {
      completed += s.queries_completed;
      satisfied += s.queries_satisfied;
    }
  }
  return completed == 0 ? 0.0
                        : static_cast<double>(satisfied) /
                              static_cast<double>(completed);
}

/// Time to recovery with "never" (-1) ordered after every finite value.
bool ttr_no_worse(double hardened, double fallback) {
  if (hardened < 0.0) return fallback < 0.0;
  return fallback < 0.0 || hardened <= fallback;
}

bool ttr_strictly_better(double hardened, double fallback) {
  if (hardened < 0.0) return false;
  return fallback < 0.0 || hardened < fallback;
}

/// The headline comparison. Success under attack is judged by the worst
/// attack-window interval (the depth of the dip), not the window mean:
/// the default detector, fed a pong flood's fabricated identities, ends
/// up blacklisting them en masse and rides the resulting cache hygiene
/// to a window *mean* above its own pre-attack baseline — while still
/// dipping deeper and recovering later than the hardened preset, which
/// never ingests the flood at all. The dip is what a user experiences at
/// the attack's peak; the overshoot is a side effect of cleanup.
bool hardened_beats(const Cell& hard, const Cell& def) {
  double floor_h = hard.recovery.min_during_fault;
  double floor_d = def.recovery.min_during_fault;
  return floor_h >= floor_d &&
         ttr_no_worse(hard.recovery.time_to_recovery,
                      def.recovery.time_to_recovery) &&
         (floor_h > floor_d ||
          ttr_strictly_better(hard.recovery.time_to_recovery,
                              def.recovery.time_to_recovery));
}

struct DetectionSetting {
  const char* name;
  DetectionParams detection;
};

struct AttackCase {
  const char* name;    // scenario-grammar kind
  const char* effect;  // one-line mechanism note for the table
};

void json_cell(std::ostream& out, const char* name, const Cell& cell,
               bool trailing_comma) {
  const RecoveryMetrics& r = cell.recovery;
  out << "      \"" << name << "\": {\"baseline\": " << std::fixed
      << std::setprecision(4) << r.baseline
      << ", \"success_during\": " << cell.success_during
      << ", \"min_during\": " << r.min_during_fault
      << ", \"time_to_recovery\": " << std::setprecision(1)
      << r.time_to_recovery << ", \"availability\": " << std::setprecision(4)
      << r.availability << ",\n        \"spawned\": "
      << cell.attack.adversaries_spawned
      << ", \"sybil_respawns\": " << cell.attack.sybil_respawns
      << ", \"withheld\": " << cell.attack.withheld_exchanges
      << ", \"oversized_pongs\": " << cell.attack.oversized_pongs
      << ", \"no_reply_charges\": " << cell.attack.no_reply_charges << "}"
      << (trailing_comma ? "," : "") << "\n";
}

}  // namespace
}  // namespace guess

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  auto scale = experiments::Scale::from_flags(flags);
  double interval =
      scale.metrics_interval > 0.0 ? scale.metrics_interval : 60.0;
  scale.metrics_interval = interval;
  // Withholders are only expensive when timeouts cost wall-clock: default
  // to a lightly lossy transport unless the user picked one.
  if (scale.transport.kind == TransportParams::Kind::kSynchronous &&
      !flags.has_transport_flags()) {
    scale.transport = TransportParams::lossy(0.05);
    scale.transport.max_retries = 2;
  }

  SystemParams system;
  system.network_size =
      static_cast<std::size_t>(flags.get_int("n", scale.full ? 1000 : 200));
  const double frac = flags.get_double("frac", 0.15);
  const std::string out_path =
      flags.get_string("out", "BENCH_adversary.json");

  // Query-side MR/MR with LR replacement: the score-driven configuration
  // every cache-targeting attack aims at (fabricated top-of-distribution
  // claims go straight to the front of MR selection).
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMR;
  protocol.query_pong = Policy::kMR;
  protocol.cache_replacement = Replacement::kLR;
  protocol.do_backoff = true;

  const sim::Time t0 = scale.warmup + 0.25 * scale.measure;
  const sim::Duration window = 0.3 * scale.measure;

  const AttackCase kAttacks[] = {
      {"eclipse", "colluders crowd victim caches with each other"},
      {"sybil", "short-lived identities outrun per-id evidence"},
      {"pong-flood", "oversized pongs mass-seed fabricated addresses"},
      {"withhold", "accepted probes never answered; timeouts burn time"},
  };
  DetectionParams default_detection;
  default_detection.enabled = true;
  const DetectionSetting kSettings[] = {
      {"off", DetectionParams{}},
      {"default", default_detection},
      {"hardened", DetectionParams::hardened()},
  };

  experiments::print_header(
      std::cout, "Adversary matrix (attack x detection)",
      "hardened detection (oversize caps, no-reply charging, first-hand "
      "floor) restores availability that the default detector loses to "
      "every zoo adversary",
      system, protocol, scale);
  std::cout << "Attacks at t=" << t0 << "s for " << window << "s, frac="
            << frac << "; interval " << interval << "s; pooled over "
            << scale.seeds << " seed(s)\n\n";

  TablePrinter table({"attack", "detection", "baseline %", "during %",
                      "min %", "recovery (s)", "avail %"});
  bool all_beat = true;
  std::vector<std::pair<std::string, std::vector<Cell>>> matrix;
  for (const AttackCase& attack : kAttacks) {
    std::string spec = "at " + std::to_string(t0) + " attack " +
                       attack.name + " frac=" + std::to_string(frac) +
                       " for " + std::to_string(window);
    std::vector<Cell> cells;
    for (const DetectionSetting& setting : kSettings) {
      ProtocolParams cell_protocol = protocol;
      cell_protocol.detection = setting.detection;
      auto config = scale.config()
                        .system(system)
                        .protocol(cell_protocol)
                        .scenario(faults::Scenario::parse(spec));
      auto runs = run_seeds(config, scale.seeds);
      Cell cell;
      IntervalSeries pooled = pool_series(runs);
      cell.recovery = compute_recovery(pooled, t0, t0 + window);
      cell.success_during = success_in_window(pooled, t0, t0 + window);
      for (const SimulationResults& run : runs) {
        cell.attack.adversaries_spawned += run.attack.adversaries_spawned;
        cell.attack.adversaries_retired += run.attack.adversaries_retired;
        cell.attack.sybil_respawns += run.attack.sybil_respawns;
        cell.attack.withheld_exchanges += run.attack.withheld_exchanges;
        cell.attack.oversized_pongs += run.attack.oversized_pongs;
        cell.attack.pong_entries_dropped += run.attack.pong_entries_dropped;
        cell.attack.no_reply_charges += run.attack.no_reply_charges;
      }
      GUESS_CHECK_MSG(cell.attack.adversaries_spawned > 0,
                      "attack " << attack.name << " never deployed");
      table.add_row(
          {std::string(attack.name), std::string(setting.name),
           100.0 * cell.recovery.baseline, 100.0 * cell.success_during,
           100.0 * cell.recovery.min_during_fault,
           cell.recovery.time_to_recovery < 0.0
               ? TablePrinter::Cell{std::string("never")}
               : TablePrinter::Cell{cell.recovery.time_to_recovery},
           100.0 * cell.recovery.availability});
      cells.push_back(cell);
    }
    bool beats = hardened_beats(cells[2], cells[1]);
    std::cout << attack.name << ": " << attack.effect
              << " -> hardened beats default: " << (beats ? "yes" : "NO")
              << "\n";
    all_beat = all_beat && beats;
    matrix.emplace_back(attack.name, std::move(cells));
  }

  std::cout << "\n";
  table.print(std::cout, "attack x detection matrix (success pooled over "
                         "seeds; epsilon = 0.05 of baseline)");

  std::ofstream out(out_path);
  GUESS_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << "{\n  \"config\": {\"network\": " << system.network_size
      << ", \"seeds\": " << scale.seeds << ", \"frac\": " << frac
      << ", \"attack_start\": " << t0 << ", \"attack_window\": " << window
      << ", \"seed\": " << scale.base_seed << "},\n  \"matrix\": {\n";
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const auto& [name, cells] = matrix[i];
    bool beats = hardened_beats(cells[2], cells[1]);
    out << "    \"" << name << "\": {\n";
    for (std::size_t j = 0; j < cells.size(); ++j) {
      json_cell(out, kSettings[j].name, cells[j], true);
    }
    out << "      \"hardened_beats_default\": " << (beats ? "true" : "false")
        << "\n    }" << (i + 1 < matrix.size() ? "," : "") << "\n";
  }
  out << "  },\n  \"hardened_beats_default_all\": "
      << (all_beat ? "true" : "false") << "\n}\n";
  std::cout << "\nwrote " << out_path << "\n";

  if (scale.csv) std::cout << "\nCSV:\n" << table.to_csv();
  return all_beat ? 0 : 1;
}
