// Query-path throughput harness: measures end-to-end GUESS simulation
// throughput (queries/sec and probes/sec of wall-clock time) at several
// network sizes, plus micro-benchmarks of the query-path data structures
// with the legacy (pre-dense-table) implementations embedded as the
// before/after baseline — the same structure bench_event_throughput uses
// for the event core.
//
// Results are printed as tables and written to BENCH_queries.json
// (override with --out=...). --full adds the N=50k point quoted in
// README.md; --check=<baseline.json> compares the measured end-to-end
// queries/sec against a checked-in baseline and exits nonzero on a
// regression beyond --tolerance (default 0.30) — the CI benchmark-smoke
// gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/epoch_set.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "guess/link_cache.h"
#include "guess/simulation.h"

namespace guess {
namespace {

// --- End-to-end: a churn-heavy, deterministic-policy GUESS run ------------
//
// The workload is frozen: MR/MR query policies with LR replacement and
// LRU/MFS maintenance policies (every policy deterministic, exercising the
// incremental score index), default churn and content. Simulated duration
// scales down as N grows so every point costs a few wall-seconds.

struct EndToEnd {
  std::size_t network = 0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  SimulationResults results;

  double queries_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(results.queries_completed) / wall_seconds
               : 0.0;
  }
  double probes_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(results.probes.total()) / wall_seconds
               : 0.0;
  }
  double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }
};

sim::Duration measure_for(std::size_t network) {
  if (network >= 50000) return 60.0;
  if (network >= 10000) return 300.0;
  return 1200.0;
}

SimulationConfig config_for(std::size_t network, sim::Duration measure,
                            std::uint64_t seed, sim::Scheduler scheduler) {
  SystemParams system;
  system.network_size = network;
  ProtocolParams protocol;
  protocol.query_probe = Policy::kMR;
  protocol.query_pong = Policy::kMR;
  protocol.ping_probe = Policy::kLRU;
  protocol.ping_pong = Policy::kMFS;
  protocol.cache_replacement = Replacement::kLR;
  return SimulationConfig()
      .system(system)
      .protocol(protocol)
      .seed(seed)
      .warmup(measure / 4.0)
      .measure(measure)
      .scheduler(scheduler);
}

EndToEnd run_end_to_end(std::size_t network, sim::Duration measure,
                        std::uint64_t seed, sim::Scheduler scheduler) {
  GuessSimulation sim(config_for(network, measure, seed, scheduler));
  EndToEnd out;
  out.network = network;
  auto start = std::chrono::steady_clock::now();
  out.results = sim.run();
  auto stop = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(stop - start).count();
  out.events = sim.simulator().events_fired();
  return out;
}

// --- Micro: query-path data structures, legacy vs dense -------------------
//
// Each micro pits the pre-PR structure (embedded here as the before
// baseline, the way bench_event_throughput embeds the node-based event
// queue) against its replacement on the operation mix the query hot path
// actually performs. The cache-selection micro needs no embedded copy: an
// unconfigured LinkCache *is* the legacy full-rescan path, bitwise.

struct Micro {
  std::string name;
  double legacy_ops_per_sec = 0.0;
  double dense_ops_per_sec = 0.0;
  double speedup() const {
    return legacy_ops_per_sec > 0.0 ? dense_ops_per_sec / legacy_ops_per_sec
                                    : 0.0;
  }
};

template <typename Fn>
double ops_per_sec(std::uint64_t ops, Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto stop = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(stop - start).count();
  return secs > 0.0 ? static_cast<double>(ops) / secs : 0.0;
}

// Per-query dedup: fill/probe/discard cycles, the seen-set lifecycle of one
// query execution. Legacy: an unordered_set cleared per query.
Micro micro_dedup() {
  constexpr int kQueries = 60000;
  constexpr std::uint64_t kCandidates = 96;  // cache + pong fan-in
  std::uint64_t sink = 0;
  Micro m{"dedup (per-query seen-set)"};
  {
    std::unordered_set<PeerId> seen;
    m.legacy_ops_per_sec =
        ops_per_sec(static_cast<std::uint64_t>(kQueries) * kCandidates, [&] {
          std::uint64_t id = 1;
          for (int q = 0; q < kQueries; ++q) {
            seen.clear();
            for (std::uint64_t i = 0; i < kCandidates; ++i) {
              id = id * 6364136223846793005ULL + 1442695040888963407ULL;
              sink += seen.insert(id >> 40).second ? 1 : 0;
            }
          }
        });
  }
  {
    EpochSet seen;
    seen.reserve(kCandidates);
    m.dense_ops_per_sec =
        ops_per_sec(static_cast<std::uint64_t>(kQueries) * kCandidates, [&] {
          std::uint64_t id = 1;
          for (int q = 0; q < kQueries; ++q) {
            seen.clear();
            for (std::uint64_t i = 0; i < kCandidates; ++i) {
              id = id * 6364136223846793005ULL + 1442695040888963407ULL;
              sink += seen.insert(id >> 40) ? 1 : 0;
            }
          }
        });
  }
  GUESS_CHECK(sink > 0);
  return m;
}

// Peer registry: id -> peer resolution under churn, the single hottest
// lookup in the simulator. Legacy: unordered_map registry. Dense: the
// id-indexed slot vector (two array indexings), exactly PeerTable's layout.
Micro micro_registry() {
  constexpr std::size_t kPopulation = 10000;
  constexpr std::uint64_t kLookups = 20000000;
  Micro m{"registry (id -> peer lookup)"};
  std::uint64_t sink = 0;
  // Same liveness pattern on both sides: every 5th id dead.
  {
    std::unordered_map<PeerId, std::uint32_t> legacy;
    legacy.reserve(kPopulation);
    for (std::size_t id = 0; id < kPopulation; ++id) {
      if (id % 5 != 0) legacy.emplace(id, static_cast<std::uint32_t>(id));
    }
    m.legacy_ops_per_sec = ops_per_sec(kLookups, [&] {
      std::uint64_t x = 1;
      for (std::uint64_t i = 0; i < kLookups; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        auto it = legacy.find((x >> 33) % kPopulation);
        if (it != legacy.end()) sink += it->second;
      }
    });
  }
  {
    struct IdRef {
      std::uint32_t slot = 0xFFFFFFFFu;
      std::uint32_t generation = 0;
    };
    std::vector<IdRef> id_to_slot(kPopulation);
    std::vector<std::uint32_t> slots(kPopulation);
    for (std::size_t id = 0; id < kPopulation; ++id) {
      if (id % 5 != 0) {
        id_to_slot[id].slot = static_cast<std::uint32_t>(id);
        slots[id] = static_cast<std::uint32_t>(id);
      }
    }
    m.dense_ops_per_sec = ops_per_sec(kLookups, [&] {
      std::uint64_t x = 1;
      for (std::uint64_t i = 0; i < kLookups; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint32_t slot = id_to_slot[(x >> 33) % kPopulation].slot;
        if (slot != 0xFFFFFFFFu) sink += slots[slot];
      }
    });
  }
  GUESS_CHECK(sink > 0);
  return m;
}

// Cache policy selection: the offer + select_top mix every Pong triggers.
// Legacy: the unconfigured LinkCache's full-rescan scoring (kept in-tree as
// the reference path). Dense: the same cache with incremental ScoreIndex
// orderings configured.
Micro micro_selection(bool configure) {
  constexpr int kRounds = 40000;
  constexpr std::size_t kCapacity = 40;
  LinkCache cache(/*owner=*/0, kCapacity);
  if (configure) {
    cache.configure_indices({Policy::kMR, Policy::kLRU, Policy::kMFS},
                            Replacement::kLR);
  }
  Rng rng(7);
  std::vector<CacheEntry> out;
  std::uint64_t sink = 0;
  double ops = ops_per_sec(kRounds, [&] {
    std::uint64_t x = 1;
    for (int round = 0; round < kRounds; ++round) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      CacheEntry candidate;
      candidate.id = 1 + (x >> 33) % 4096;
      candidate.ts = static_cast<sim::Time>(round % 1000);
      candidate.num_files = static_cast<std::uint32_t>(x % 100);
      candidate.num_res = static_cast<std::uint32_t>(x % 7);
      cache.offer(candidate, Replacement::kLR, rng);
      cache.select_top_into(Policy::kMR, 10, rng, out);
      sink += out.size();
    }
  });
  GUESS_CHECK(sink > 0);
  Micro m{"cache (offer + select_top 10/40)"};
  (configure ? m.dense_ops_per_sec : m.legacy_ops_per_sec) = ops;
  return m;
}

std::vector<Micro> run_micros() {
  std::vector<Micro> micros;
  micros.push_back(micro_dedup());
  micros.push_back(micro_registry());
  Micro selection = micro_selection(/*configure=*/false);
  selection.dense_ops_per_sec =
      micro_selection(/*configure=*/true).dense_ops_per_sec;
  micros.push_back(selection);
  return micros;
}

// --- JSON output ----------------------------------------------------------

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<EndToEnd>& points,
                const std::vector<Micro>& micros, bool identical) {
  std::ofstream out(path);
  GUESS_CHECK_MSG(out.good(), "cannot write " << path);
  out << "{\n";
  out << "  \"workload\": {\"policies\": \"probe=MR pong=MR ping=LRU/MFS "
         "replace=LR\", \"seed\": "
      << seed << "},\n";
  out << "  \"end_to_end\": {\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const EndToEnd& p = points[i];
    out << "    \"n" << p.network << "\": {"
        << "\"measure_seconds\": " << std::fixed << std::setprecision(0)
        << measure_for(p.network) << ", \"wall_seconds\": "
        << std::setprecision(3) << p.wall_seconds
        << ", \"queries_completed\": " << p.results.queries_completed
        << ", \"probes\": " << p.results.probes.total()
        << ", \"events\": " << p.events << ",\n"
        << "      \"queries_per_sec\": " << std::setprecision(1)
        << p.queries_per_sec() << ", \"probes_per_sec\": "
        << p.probes_per_sec() << ", \"events_per_sec\": "
        << p.events_per_sec() << "}" << (i + 1 < points.size() ? "," : "")
        << "\n";
  }
  out << "  },\n";
  out << "  \"micro\": {\n";
  for (std::size_t i = 0; i < micros.size(); ++i) {
    const Micro& m = micros[i];
    out << "    \"" << m.name << "\": {\"legacy_ops_per_sec\": " << std::fixed
        << std::setprecision(0) << m.legacy_ops_per_sec
        << ", \"dense_ops_per_sec\": " << m.dense_ops_per_sec
        << ", \"speedup\": " << std::setprecision(2) << m.speedup() << "}"
        << (i + 1 < micros.size() ? "," : "") << "\n";
  }
  out << "  },\n";
  out << "  \"schedulers_bitwise_identical\": "
      << (identical ? "true" : "false") << "\n";
  out << "}\n";
}

// --- Baseline check (--check=...) -----------------------------------------
//
// Reads "nNNN": {... "queries_per_sec": X ...} pairs out of a previously
// written BENCH_queries.json. The parser only needs to understand this
// file's own output format, so a line/keyword scan is enough.

struct BaselinePoint {
  std::size_t network = 0;
  double queries_per_sec = 0.0;
};

std::vector<BaselinePoint> read_baseline(const std::string& path) {
  std::ifstream in(path);
  GUESS_CHECK_MSG(in.good(), "cannot read baseline " << path);
  std::vector<BaselinePoint> points;
  std::string line;
  std::size_t current_n = 0;
  bool in_end_to_end = false;
  while (std::getline(in, line)) {
    if (line.find("\"end_to_end\"") != std::string::npos) {
      in_end_to_end = true;
      continue;
    }
    if (!in_end_to_end) continue;
    auto npos = line.find("\"n");
    if (npos != std::string::npos) {
      current_n = static_cast<std::size_t>(
          std::strtoull(line.c_str() + npos + 2, nullptr, 10));
    }
    auto qpos = line.find("\"queries_per_sec\": ");
    if (qpos != std::string::npos && current_n != 0) {
      double qps = std::strtod(
          line.c_str() + qpos + std::string("\"queries_per_sec\": ").size(),
          nullptr);
      points.push_back({current_n, qps});
      current_n = 0;
    }
  }
  return points;
}

// Returns false (regression) if any network size present in both the
// baseline and the live run lost more than `tolerance` of its queries/sec.
bool check_against_baseline(const std::vector<BaselinePoint>& baseline,
                            const std::vector<EndToEnd>& points,
                            double tolerance) {
  bool ok = true;
  for (const BaselinePoint& b : baseline) {
    for (const EndToEnd& p : points) {
      if (p.network != b.network || b.queries_per_sec <= 0.0) continue;
      double ratio = p.queries_per_sec() / b.queries_per_sec;
      std::cout << "check n=" << p.network << ": " << std::fixed
                << std::setprecision(1) << p.queries_per_sec()
                << " queries/sec vs baseline " << b.queries_per_sec << " ("
                << std::setprecision(2) << ratio << "x)\n";
      if (ratio < 1.0 - tolerance) {
        std::cout << "REGRESSION: n=" << p.network << " lost "
                  << std::setprecision(0) << (1.0 - ratio) * 100.0
                  << "% queries/sec (tolerance "
                  << tolerance * 100.0 << "%)\n";
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace
}  // namespace guess

int main(int argc, char** argv) {
  using namespace guess;
  Flags flags(argc, argv);
  const bool full = flags.full();
  const std::uint64_t seed = flags.seed();
  const std::string out_path = flags.get_string("out", "BENCH_queries.json");
  const std::string check_path = flags.get_string("check", "");
  const double tolerance = flags.get_double("tolerance", 0.30);
  const long long only_n = flags.get_int("n", 0);
  const double measure_override = flags.get_double("measure", 0.0);

  std::vector<std::size_t> sizes;
  if (only_n > 0) {
    sizes.push_back(static_cast<std::size_t>(only_n));
  } else {
    sizes = {1000, 10000};
    if (full) sizes.push_back(50000);
  }

  std::cout << "# Query-path throughput — MR/MR + LR, LRU/MFS maintenance "
               "(seed="
            << seed << ")\n";

  // Cross-scheduler identity gate at the smallest size: the dense table and
  // incremental index must not perturb the heap/calendar equivalence.
  {
    std::size_t n = sizes.front();
    sim::Duration m = std::min(measure_for(n),
                               measure_override > 0.0 ? measure_override
                                                      : measure_for(n));
    auto heap = run_end_to_end(n, m, seed, sim::Scheduler::kHeap);
    auto calendar = run_end_to_end(n, m, seed, sim::Scheduler::kCalendar);
    bool identical =
        heap.results.queries_completed ==
            calendar.results.queries_completed &&
        heap.results.queries_satisfied ==
            calendar.results.queries_satisfied &&
        heap.results.probes.good == calendar.results.probes.good &&
        heap.results.deaths == calendar.results.deaths;
    std::cout << "schedulers bitwise identical (n=" << n
              << "): " << (identical ? "yes" : "NO — BUG") << "\n\n";
    if (!identical) return 1;
  }

  std::vector<EndToEnd> points;
  for (std::size_t n : sizes) {
    sim::Duration m =
        measure_override > 0.0 ? measure_override : measure_for(n);
    points.push_back(run_end_to_end(n, m, seed, sim::Scheduler::kHeap));
  }

  TablePrinter table(
      {"network", "wall s", "queries/sec", "probes/sec", "events/sec"});
  for (const EndToEnd& p : points) {
    table.add_row({static_cast<std::int64_t>(p.network), p.wall_seconds,
                   static_cast<std::int64_t>(p.queries_per_sec()),
                   static_cast<std::int64_t>(p.probes_per_sec()),
                   static_cast<std::int64_t>(p.events_per_sec())});
  }
  table.print(std::cout, "end-to-end GUESS simulation (heap scheduler)");

  std::vector<Micro> micros = run_micros();
  TablePrinter micro_table(
      {"structure", "legacy Mops/s", "dense Mops/s", "speedup"});
  for (const Micro& m : micros) {
    micro_table.add_row({m.name, m.legacy_ops_per_sec / 1e6,
                         m.dense_ops_per_sec / 1e6, m.speedup()});
  }
  micro_table.print(std::cout,
                    "query-path structures, legacy vs dense (embedded)");

  write_json(out_path, seed, points, micros, true);
  std::cout << "wrote " << out_path << "\n";

  if (!check_path.empty()) {
    auto baseline = read_baseline(check_path);
    GUESS_CHECK_MSG(!baseline.empty(),
                    "no end_to_end points found in " << check_path);
    if (!check_against_baseline(baseline, points, tolerance)) return 1;
  }
  return 0;
}
