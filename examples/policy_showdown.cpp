// policy_showdown: run the same workload under each named policy combo and
// compare efficiency, satisfaction and fairness — a compact tour of the
// paper's §6.2/§6.3 story.
//
//   ./build/examples/policy_showdown [--seed=N] [--measure=SECONDS]
#include <iostream>

#include "analysis/load_analysis.h"
#include "common/flags.h"
#include "common/table.h"
#include "experiments/harness.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  guess::Flags flags(argc, argv);

  guess::SystemParams system;
  guess::ProtocolParams base;

  guess::SimulationOptions options;
  options.seed = flags.seed();
  options.warmup = flags.get_double("warmup", 400.0);
  options.measure = flags.get_double("measure", 1600.0);

  const char* combos[] = {"Ran", "MRU", "LRU", "MFS", "MR", "MR*"};

  guess::TablePrinter table({"combo", "probes/query", "good", "dead",
                             "unsat%", "resp time (s)", "load gini",
                             "top-peer load"});
  std::cout << "Policy showdown: QueryProbe/QueryPong/CacheReplacement set "
               "together per combo\n"
            << "(system: " << guess::describe(system) << ")\n";

  for (const char* name : combos) {
    auto combo = guess::experiments::PolicyCombo::from_name(name);
    guess::GuessSimulation simulation(guess::SimulationConfig().system(system).protocol(combo.apply(base)).options(options));
    guess::SimulationResults results = simulation.run();
    auto load = guess::analysis::summarize_load(results.peer_loads);
    table.add_row({std::string(name), results.probes_per_query(),
                   results.good_probes_per_query(),
                   results.dead_probes_per_query(),
                   100.0 * results.unsatisfied_rate(),
                   results.response_time.mean(), load.gini, load.max});
  }
  table.print(std::cout, "policy comparison (one seed)");
  std::cout << "\nReading guide: MFS slashes probes/query but concentrates "
               "load (gini, top-peer);\nMRU wastes probes on stale entries; "
               "Random is fair but expensive — §6.2/§6.3.\n";
  return 0;
}
