// Quickstart: simulate a 1000-peer GUESS network with the paper's default
// parameters (Tables 1 and 2) and print the headline metrics.
//
//   ./build/examples/quickstart [--seed=N] [--measure=SECONDS]
#include <iostream>

#include "common/flags.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  guess::Flags flags(argc, argv);

  guess::SystemParams system;      // Table 1 defaults: 1000 peers, ...
  guess::ProtocolParams protocol;  // Table 2 defaults: Random policies, ...

  auto config = guess::SimulationConfig()
                    .system(system)
                    .protocol(protocol)
                    .seed(flags.seed())
                    .warmup(flags.get_double("warmup", 600.0))
                    .measure(flags.get_double("measure", 1800.0));

  std::cout << "GUESS quickstart\n"
            << "  system:   " << guess::describe(system) << "\n"
            << "  protocol: " << guess::describe(protocol) << "\n"
            << "  simulating " << config.options().warmup << "s warmup + "
            << config.options().measure << "s measurement...\n";

  guess::GuessSimulation simulation(config);
  guess::SimulationResults results = simulation.run();

  std::cout << "\nResults (measurement window only):\n"
            << "  queries completed:    " << results.queries_completed << "\n"
            << "  unsatisfied:          " << 100.0 * results.unsatisfied_rate()
            << " %\n"
            << "  probes per query:     " << results.probes_per_query() << "\n"
            << "    good:               " << results.good_probes_per_query()
            << "\n"
            << "    dead (wasted):      " << results.dead_probes_per_query()
            << "\n"
            << "    refused:            " << results.refused_probes_per_query()
            << "\n"
            << "  mean response time:   " << results.response_time.mean()
            << " s\n"
            << "  query-cache size:     "
            << results.query_cache_population.mean() << " peers/query\n"
            << "  link-cache health:    " << results.cache_health.fraction_live
            << " live fraction, " << results.cache_health.absolute_live
            << " live entries\n"
            << "  peer deaths:          " << results.deaths << "\n";
  return 0;
}
