// poisoning_attack: watch a cache-poisoning attack unfold (§6.4).
//
// Runs the MFS, MR and MR* policy combos against colluding attackers at a
// configurable PercentBadPeers and reports how query satisfaction and cache
// health degrade.
//
//   ./build/examples/poisoning_attack [--bad=10] [--behavior=Bad|Dead]
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "experiments/harness.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  guess::Flags flags(argc, argv);
  double bad_percent = flags.get_double("bad", 10.0);
  std::string behavior = flags.get_string("behavior", "Bad");

  guess::SystemParams system;
  system.percent_bad_peers = bad_percent;
  system.bad_pong_behavior = behavior == "Dead"
                                 ? guess::BadPongBehavior::kDead
                                 : guess::BadPongBehavior::kBad;

  guess::SimulationOptions options;
  options.seed = flags.seed();
  options.warmup = flags.get_double("warmup", 400.0);
  options.measure = flags.get_double("measure", 1600.0);

  std::cout << "Cache poisoning: " << bad_percent << "% malicious peers, "
            << "BadPongBehavior=" << behavior << "\n"
            << (behavior == "Bad"
                    ? "(colluding: attackers advertise each other)\n"
                    : "(non-colluding: attackers advertise dead addresses)\n");

  guess::TablePrinter table({"combo", "probes/query", "unsat%",
                             "good cache entries", "live fraction"});
  for (const char* name : {"Ran", "MR", "MR*", "MFS"}) {
    auto combo = guess::experiments::PolicyCombo::from_name(name);
    guess::ProtocolParams protocol = combo.apply(guess::ProtocolParams{});
    guess::GuessSimulation simulation(guess::SimulationConfig().system(system).protocol(protocol).options(options));
    guess::SimulationResults results = simulation.run();
    table.add_row({std::string(name), results.probes_per_query(),
                   100.0 * results.unsatisfied_rate(),
                   results.cache_health.good_entries,
                   results.cache_health.fraction_live});
  }
  table.print(std::cout, "robustness under cache poisoning");
  std::cout << "\nReading guide: trusting policies (MFS, and MR under "
               "collusion) lose their good\ncache entries and stop "
               "satisfying queries; MR* trusts only first-hand results\n"
               "and degrades gracefully — §6.4, Figures 16-21.\n";
  return 0;
}
