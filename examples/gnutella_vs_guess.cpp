// gnutella_vs_guess: the §3 comparison made concrete.
//
// Floods queries over a Gnutella-style overlay (fixed extent, amplified
// messages) and runs the same workload through GUESS probing, then compares
// messages per query and satisfaction. Also demonstrates the §3.3
// fragmentation attack on a power-law overlay.
//
//   ./build/examples/gnutella_vs_guess [--n=1000] [--ttl=4]
#include <iostream>

#include "baseline/static_population.h"
#include "common/flags.h"
#include "common/table.h"
#include "gnutella/flood.h"
#include "gnutella/topology.h"
#include "guess/simulation.h"

int main(int argc, char** argv) {
  guess::Flags flags(argc, argv);
  auto n = static_cast<std::size_t>(flags.get_int("n", 1000));
  auto ttl = static_cast<std::size_t>(flags.get_int("ttl", 4));
  guess::Rng rng(flags.seed());

  guess::SystemParams system;
  system.network_size = n;
  guess::content::ContentModel model(system.content);
  guess::baseline::StaticPopulation population(model, n, rng);

  // --- Gnutella: flood over a power-law overlay ---
  auto topology = guess::gnutella::power_law_topology(n, 3, rng);
  std::size_t queries = 2000;
  std::uint64_t messages = 0;
  std::size_t satisfied = 0;
  double reached = 0.0;
  for (std::size_t q = 0; q < queries; ++q) {
    auto origin = rng.index(n);
    auto file = model.draw_query(rng);
    auto flood =
        guess::gnutella::flood_query(topology, population, origin, file, ttl);
    messages += flood.messages;
    reached += static_cast<double>(flood.peers_reached);
    if (flood.results >= 1) ++satisfied;
  }

  // --- GUESS: adaptive probing, QueryPong = MFS (§6.2's efficient choice) ---
  guess::ProtocolParams protocol;
  protocol.query_pong = guess::Policy::kMFS;
  guess::SimulationOptions options;
  options.seed = flags.seed();
  options.warmup = 400.0;
  options.measure = 1600.0;
  guess::GuessSimulation simulation(guess::SimulationConfig().system(system).protocol(protocol).options(options));
  auto results = simulation.run();

  guess::TablePrinter table(
      {"mechanism", "msgs/query", "peers contacted", "unsat%"});
  table.add_row({std::string("Gnutella flood (TTL=") + std::to_string(ttl) +
                     ")",
                 static_cast<double>(messages) / static_cast<double>(queries),
                 reached / static_cast<double>(queries),
                 100.0 * (1.0 - static_cast<double>(satisfied) /
                                    static_cast<double>(queries))});
  table.add_row({std::string("GUESS (QueryPong=MFS)"),
                 results.probes_per_query(), results.probes_per_query(),
                 100.0 * results.unsatisfied_rate()});
  table.print(std::cout, "forwarding vs non-forwarding search");

  // --- §3.3: fragmentation attack on the power-law overlay ---
  guess::TablePrinter frag({"overlay", "top peers removed", "LCC"});
  auto random_graph = guess::gnutella::random_topology(n, 3, rng);
  for (auto* graph : {&topology, &random_graph}) {
    const char* name =
        graph == &topology ? "power-law" : "degree-capped random";
    auto order = graph->nodes_by_degree();
    for (std::size_t removed : {std::size_t{0}, n / 50, n / 10}) {
      std::vector<char> alive(n, 1);
      for (std::size_t i = 0; i < removed; ++i) alive[order[i]] = 0;
      frag.add_row({std::string(name),
                    static_cast<std::int64_t>(removed),
                    static_cast<std::int64_t>(graph->largest_component(alive))});
    }
  }
  frag.print(std::cout, "fragmentation attack (remove highest-degree peers)");
  std::cout << "\nReading guide: flooding amplifies each query into "
               "thousands of messages at fixed\nextent; GUESS contacts an "
               "adaptive number of peers. Power-law overlays shatter\nwhen "
               "hubs are attacked; degree-capped overlays do not — §3.\n";
  return 0;
}
