// trace_viewer: replay a short GUESS run with the event tracer attached and
// print the tail of the event log — the debugging workflow for policy
// investigations (reproduce with the same --seed, read what happened).
//
//   ./build/examples/trace_viewer --seconds=120 --last=60
//   ./build/examples/trace_viewer --categories=attack --bad=20
#include <iostream>

#include "common/flags.h"
#include "common/trace.h"
#include "guess/simulation.h"

namespace {

unsigned parse_categories(const std::string& spec) {
  if (spec == "all") return guess::kTraceAll;
  unsigned mask = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string name = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (name == "churn") mask |= static_cast<unsigned>(guess::TraceCategory::kChurn);
    else if (name == "ping") mask |= static_cast<unsigned>(guess::TraceCategory::kPing);
    else if (name == "query") mask |= static_cast<unsigned>(guess::TraceCategory::kQuery);
    else if (name == "cache") mask |= static_cast<unsigned>(guess::TraceCategory::kCache);
    else if (name == "attack") mask |= static_cast<unsigned>(guess::TraceCategory::kAttack);
    else {
      std::cerr << "unknown category: " << name
                << " (use churn,ping,query,cache,attack or all)\n";
      std::exit(1);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  guess::Flags flags(argc, argv);
  double seconds = flags.get_double("seconds", 120.0);
  auto last = static_cast<std::size_t>(flags.get_int("last", 80));
  unsigned mask = parse_categories(flags.get_string("categories", "all"));

  guess::SystemParams system;
  system.network_size =
      static_cast<std::size_t>(flags.get_int("n", 100));
  system.lifespan_multiplier = flags.get_double("lifespan", 0.2);
  system.percent_bad_peers = flags.get_double("bad", 0.0);
  system.bad_pong_behavior = guess::BadPongBehavior::kBad;

  guess::ProtocolParams protocol;
  if (system.percent_bad_peers > 0.0) {
    // Watching an attack: MR policies plus detection make the attack and
    // the response visible in the log.
    protocol.query_probe = guess::Policy::kMR;
    protocol.query_pong = guess::Policy::kMR;
    protocol.cache_replacement = guess::Replacement::kLR;
    protocol.detection.enabled = true;
  }

  guess::sim::Simulator simulator;
  guess::GuessNetwork network(
      guess::SimulationConfig().system(system).protocol(protocol), simulator,
      guess::Rng(flags.seed()));
  guess::Tracer tracer(mask, 1u << 20);
  network.set_tracer(&tracer);
  network.initialize();
  simulator.run_until(seconds);

  auto records = tracer.snapshot();
  std::size_t begin = records.size() > last ? records.size() - last : 0;
  std::cout << "recorded " << tracer.total_recorded() << " events over "
            << seconds << " simulated seconds; showing the last "
            << records.size() - begin << ":\n\n";
  guess::Tracer tail(mask, last + 1);
  for (std::size_t i = begin; i < records.size(); ++i) {
    tail.record(records[i].category, records[i].at, records[i].line);
  }
  tail.dump(std::cout);
  return 0;
}
