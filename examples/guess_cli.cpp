// guess_cli: a command-line front end exposing every Table 1/2 parameter
// plus the extension knobs — the tool a downstream user runs to explore
// configurations without writing code.
//
//   ./build/examples/guess_cli --help
//   ./build/examples/guess_cli --n=2000 --query-pong=MFS --cache-size=50
//       --bad=10 --bad-behavior=Bad --detection --measure=3600
#include <iostream>

#include "analysis/load_analysis.h"
#include "common/check.h"
#include "common/flags.h"
#include "faults/scenario.h"
#include "guess/simulation.h"
#include "search/backend.h"
#include "search/gossip.h"

namespace {

void print_help() {
  std::cout << R"(guess_cli — simulate a GUESS network (paper defaults unless overridden)

System (Table 1):
  --n=1000                 NetworkSize
  --desired=1              NumDesiredResults
  --lifespan=1.0           LifespanMultiplier
  --query-rate=0.00926     queries per user per second
  --max-probes-per-sec=100 MaxProbesPerSecond
  --bad=0                  PercentBadPeers (0..100)
  --bad-behavior=Dead      Dead | Bad (collusion)
  --selfish=0              percent of selfish peers (§3.3)

Protocol (Table 2):
  --query-probe=Ran --query-pong=Ran --ping-probe=Ran --ping-pong=Ran
                           Ran | MRU | LRU | MFS | MR
  --replacement=Ran        Ran | LRU | MRU | LFS | LR (what gets evicted)
  --ping-interval=30 --cache-size=100 --pong-size=5 --intro-prob=0.1
  --reset-num-results      MR* ingestion (first-hand NumRes only)
  --backoff                DoBackoff on refused probes
  --parallel=1             probes per slot (§6.2 walks)

Extensions:
  --payments               probe-payment economy (§3.3)
  --detection              malicious-peer detection + adaptive MR->MR* (§6.4)
  --detection-hardened     hardened preset (DESIGN.md §11): enables detection
                           plus oversize-pong caps, no-reply charging and a
                           first-hand cache floor
  --max-pong-entries=0     discard pongs above this many entries and
                           blacklist the sender (0 = off)
  --charge-no-reply        charge peers whose pings/probes time out
  --first-hand-floor=0     LinkCache keeps at least this many first-hand
                           entries against foreign displacement (0 = off)
  --reseed                 pong-server rebootstrap (§6.1)
  --adaptive-ping          adaptive PingInterval (§6.1)
  --adaptive-parallel      adaptive probe-rate ramp (§6.2)
  --no-query-cache         ablate the query cache (§2.3)

Transport fault injection (presence of any switches on LossyTransport):
  --loss=0.05              i.i.d. per-message loss probability
  --link-latency=0.05      one-way link latency (s)
  --probe-timeout=2        per-attempt round-trip timeout (s)
  --max-retries=0          retransmits after the first timeout
  --max-backoff=60         cap on a single retransmit backoff delay (s)

Fault scenarios (DESIGN.md §9) and attacks (DESIGN.md §11):
  --scenario="at 600 kill 0.3; at 600 partition 2 for 300"
                           inline fault-scenario spec
  --scenario="at 600 attack eclipse frac=0.1 for 300"
                           adversary attack window; kinds: eclipse | sybil |
                           pong-flood | withhold
  --scenario-file=PATH     load the spec from a file
  --interval=60            time-resolved metrics interval (s); defaults to
                           60 when a scenario is given, else off

Search backend (DESIGN.md §12; all run through the SearchBackend API):
  --backend=guess          guess | flood | iterative | onehop | gossip
                           non-GUESS backends print the unified results
                           (success rate, probes/query, bytes on wire)

Open-loop arrivals + overload control (DESIGN.md §13):
  --arrival=closed         closed (population query clocks) | open (arrival
                           process at --offered-qps, any backend)
  --offered-qps=0          offered load in queries/s (required when open)
  --arrival-dist=poisson   poisson | uniform inter-arrival gaps
  --overload-policy=none   none | admit | shed | backpressure
  --slo-ms=10000           latency SLO (ms) for goodput accounting

Run control:
  --seed=42 --warmup=600 --measure=2400 --connectivity
)";
}

}  // namespace

int main(int argc, char** argv) {
  guess::Flags flags(argc, argv);
  if (flags.has("help")) {
    print_help();
    return 0;
  }

  guess::SystemParams system;
  system.network_size =
      static_cast<std::size_t>(flags.get_int("n", 1000));
  system.num_desired_results =
      static_cast<std::size_t>(flags.get_int("desired", 1));
  system.lifespan_multiplier = flags.get_double("lifespan", 1.0);
  system.query_rate = flags.get_double("query-rate", 9.26e-3);
  system.max_probes_per_second =
      static_cast<std::uint32_t>(flags.get_int("max-probes-per-sec", 100));
  system.percent_bad_peers = flags.get_double("bad", 0.0);
  system.bad_pong_behavior =
      flags.get_string("bad-behavior", "Dead") == "Bad"
          ? guess::BadPongBehavior::kBad
          : guess::BadPongBehavior::kDead;
  system.percent_selfish_peers = flags.get_double("selfish", 0.0);

  guess::ProtocolParams protocol;
  protocol.query_probe =
      guess::parse_policy(flags.get_string("query-probe", "Ran"));
  protocol.query_pong =
      guess::parse_policy(flags.get_string("query-pong", "Ran"));
  protocol.ping_probe =
      guess::parse_policy(flags.get_string("ping-probe", "Ran"));
  protocol.ping_pong =
      guess::parse_policy(flags.get_string("ping-pong", "Ran"));
  protocol.cache_replacement =
      guess::parse_replacement(flags.get_string("replacement", "Ran"));
  protocol.ping_interval = flags.get_double("ping-interval", 30.0);
  protocol.cache_size =
      static_cast<std::size_t>(flags.get_int("cache-size", 100));
  protocol.pong_size =
      static_cast<std::size_t>(flags.get_int("pong-size", 5));
  protocol.intro_prob = flags.get_double("intro-prob", 0.1);
  protocol.reset_num_results = flags.get_bool("reset-num-results", false);
  protocol.do_backoff = flags.get_bool("backoff", false);
  protocol.parallel_probes =
      static_cast<std::size_t>(flags.get_int("parallel", 1));
  protocol.payments.enabled = flags.get_bool("payments", false);
  if (flags.get_bool("detection-hardened", false)) {
    protocol.detection = guess::DetectionParams::hardened();
  }
  protocol.detection.enabled =
      flags.get_bool("detection", protocol.detection.enabled);
  protocol.detection.max_pong_entries = static_cast<std::size_t>(
      flags.get_int("max-pong-entries",
                    static_cast<int>(protocol.detection.max_pong_entries)));
  protocol.detection.charge_no_reply =
      flags.get_bool("charge-no-reply", protocol.detection.charge_no_reply);
  protocol.detection.first_hand_floor = static_cast<std::size_t>(
      flags.get_int("first-hand-floor",
                    static_cast<int>(protocol.detection.first_hand_floor)));
  protocol.bootstrap.pong_server_reseed = flags.get_bool("reseed", false);
  protocol.adaptive_ping.enabled = flags.get_bool("adaptive-ping", false);
  protocol.adaptive_parallel = flags.get_bool("adaptive-parallel", false);
  protocol.use_query_cache = !flags.get_bool("no-query-cache", false);

  guess::TransportParams transport;
  if (flags.has_transport_flags()) {
    transport.kind = guess::TransportParams::Kind::kLossy;
    transport.loss = flags.loss();
    transport.link_latency = flags.link_latency();
    transport.probe_timeout = flags.probe_timeout();
    transport.max_retries = static_cast<std::size_t>(flags.max_retries());
    transport.max_backoff = flags.max_backoff();
  }

  GUESS_CHECK_MSG(!(flags.has("scenario") && flags.has("scenario-file")),
                  "--scenario and --scenario-file are mutually exclusive");
  guess::faults::Scenario scenario;
  if (!flags.scenario().empty()) {
    scenario = guess::faults::Scenario::parse(flags.scenario());
  } else if (!flags.scenario_file().empty()) {
    scenario = guess::faults::Scenario::load_file(flags.scenario_file());
  }
  double interval = flags.metrics_interval();
  if (!scenario.empty() && interval == 0.0 && !flags.has("interval")) {
    interval = 60.0;
  }

  guess::SearchBackendId backend = guess::parse_backend(flags.backend());
  auto config = guess::SimulationConfig()
                    .backend(backend)
                    .system(system)
                    .protocol(protocol)
                    .transport(transport)
                    .scenario(scenario)
                    .metrics_interval(interval)
                    .seed(flags.seed())
                    .warmup(flags.get_double("warmup", 600.0))
                    .measure(flags.get_double("measure", 2400.0))
                    .sample_connectivity(flags.get_bool("connectivity", false));
  config.arrival(guess::sim::parse_arrival_mode(flags.arrival()))
      .offered_qps(flags.offered_qps())
      .arrival_dist(guess::sim::parse_arrival_dist(flags.arrival_dist()))
      .overload_policy(guess::parse_overload_policy(flags.overload_policy()))
      .slo(flags.slo_ms() / 1000.0);

  std::cout << "backend:  " << guess::backend_name(backend) << "\n"
            << "system:   " << guess::describe(system) << "\n"
            << "protocol: " << guess::describe(protocol) << "\n";
  if (transport.kind == guess::TransportParams::Kind::kLossy) {
    std::cout << "transport: " << guess::describe(transport) << "\n";
  }
  if (!scenario.empty()) {
    std::cout << "scenario: " << scenario.describe() << "\n";
  }
  std::cout << "running " << config.options().warmup << "s warmup + "
            << config.options().measure << "s measurement (seed "
            << config.seed() << ")...\n\n";

  // Every backend runs through the one SearchBackend code path; for GUESS
  // this is bitwise-identical to the legacy GuessSimulation driver.
  guess::search::SearchResults unified = guess::search::run_search(config);

  std::cout << "queries completed     " << unified.queries_completed << "\n"
            << "unsatisfied           " << 100.0 * unified.unsatisfied_rate()
            << " %\n"
            << "probes/query          " << unified.probes_per_query()
            << "  (p95 " << unified.probes_percentile(95.0) << ")\n"
            << "messages              " << unified.query_messages
            << " query + " << unified.maintenance_messages
            << " maintenance\n"
            << "bytes on wire         " << unified.bytes_on_wire() << " ("
            << unified.bytes_per_query() << " per query)\n"
            << "peer deaths           " << unified.deaths << "\n";

  if (unified.overload.open_loop) {
    const guess::OverloadStats& ol = unified.overload;
    std::cout << "offered load          " << ol.offered_qps << " q/s, policy "
              << guess::overload_policy_name(ol.policy) << "\n"
              << "arrivals              " << ol.arrivals << " (admitted "
              << ol.admitted << ", rejected " << ol.rejected << ", shed "
              << ol.shed << ", abandoned " << ol.abandoned << ", open at close "
              << ol.open_at_close << ")\n"
              << "latency (s)           p50 " << ol.latency_percentile(50.0)
              << ", p95 " << ol.latency_percentile(95.0) << ", p99 "
              << ol.latency_percentile(99.0) << ", p99.9 "
              << ol.latency_percentile(99.9) << "\n"
              << "slo " << ol.slo << " s            " << ol.slo_ok
              << " within (" << 100.0 * ol.slo_violation_rate()
              << "% violations), goodput "
              << ol.goodput(unified.measure_duration) << " q/s\n";
  }

  if (const auto* results = unified.extra_as<guess::SimulationResults>()) {
    auto load = guess::analysis::summarize_load(results->peer_loads);
    std::cout << "probe split           good "
              << results->good_probes_per_query() << ", dead "
              << results->dead_probes_per_query() << ", refused "
              << results->refused_probes_per_query() << "\n"
              << "response time         " << results->response_time.mean()
              << " s mean, " << results->response_time.max() << " s max\n"
              << "cache health          "
              << results->cache_health.fraction_live << " live fraction, "
              << results->cache_health.good_entries << " good entries\n"
              << "load                  gini " << load.gini << ", top peer "
              << load.max << " probes\n";
    if (transport.kind == guess::TransportParams::Kind::kLossy) {
      const guess::TransportCounters& tc = results->transport;
      std::cout << "transport             " << tc.messages_sent << " sent, "
                << tc.messages_lost << " lost, " << tc.timeouts
                << " timeouts, " << tc.retransmits << " retransmits, "
                << tc.late_replies << " late replies, "
                << tc.exchanges_failed << " failed exchanges\n";
    }
    if (scenario.uses_attacks()) {
      const guess::AttackStats& as = results->attack;
      std::cout << "attack                " << as.adversaries_spawned
                << " spawned, " << as.adversaries_retired << " retired, "
                << as.sybil_respawns << " sybil respawns, "
                << as.withheld_exchanges << " withheld, "
                << as.oversized_pongs << " oversized pongs ("
                << as.pong_entries_dropped << " entries dropped), "
                << as.no_reply_charges << " no-reply charges\n";
    }
    if (config.options().sample_connectivity) {
      std::cout << "largest component     "
                << results->largest_component.mean()
                << " (mean of samples)\n";
    }
    if (system.percent_selfish_peers > 0.0) {
      std::cout << "honest:  " << results->honest.probes_per_query()
                << " probes/q, "
                << 100.0 * results->honest.unsatisfied_rate() << "% unsat, "
                << results->honest.response_time.mean() << " s\n"
                << "selfish: " << results->selfish.probes_per_query()
                << " probes/q, "
                << 100.0 * results->selfish.unsatisfied_rate() << "% unsat, "
                << results->selfish.response_time.mean() << " s\n";
    }
  }
  if (const auto* gossip = unified.extra_as<guess::search::GossipStats>()) {
    std::cout << "gossip                " << gossip->local_hits << " local, "
              << gossip->knowledge_hits << " knowledge, "
              << gossip->fallback_queries << " fallback; stale ads "
              << gossip->stale_ads_expired << " expired + "
              << gossip->stale_ads_dead << " dead; knowledge "
              << gossip->knowledge_size.mean() << " entries/peer\n";
  }
  if (!unified.interval_series.empty()) {
    std::cout << "\ninterval series (start..end  success  queries  probes/q"
                 "  live):\n";
    for (const guess::IntervalSample& s : unified.interval_series) {
      std::cout << "  " << s.start << " .. " << s.end << "  ";
      if (s.queries_completed == 0) {
        std::cout << "   -  ";
      } else {
        std::cout << 100.0 * s.success_rate() << "%";
      }
      std::cout << "  " << s.queries_completed << "  "
                << s.probes_per_query() << "  " << s.live_peers << "\n";
    }
    if (!scenario.empty()) {
      guess::RecoveryMetrics recovery = guess::compute_recovery(
          unified.interval_series, scenario.first_fault_time(),
          scenario.last_fault_end());
      std::cout << "recovery: baseline " << 100.0 * recovery.baseline
                << "%, min during fault "
                << 100.0 * recovery.min_during_fault << "%, time to recovery ";
      if (recovery.time_to_recovery < 0.0) {
        std::cout << "never";
      } else {
        std::cout << recovery.time_to_recovery << " s";
      }
      std::cout << ", availability " << 100.0 * recovery.availability
                << "% (epsilon " << recovery.epsilon << ")\n";
    }
  }
  return 0;
}
