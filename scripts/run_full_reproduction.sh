#!/usr/bin/env bash
# Full paper-scale reproduction: every bench at --full scale with CSV
# output, one file per table/figure under results/.
#
# Reduced-scale (default) runs finish in minutes and preserve every shape;
# --full uses the paper's longer windows and more seeds and can take a few
# hours in total. Usage:
#
#   ./scripts/run_full_reproduction.sh [results_dir] [extra bench flags...]
set -euo pipefail

cd "$(dirname "$0")/.."
RESULTS="${1:-results}"
shift || true

cmake -B build -G Ninja
cmake --build build

mkdir -p "$RESULTS"
for bench in build/bench/bench_*; do
  name="$(basename "$bench")"
  if [ "$name" = "bench_micro" ]; then
    # google-benchmark harness: no --full/--csv vocabulary.
    echo "=== $name ==="
    "$bench" --benchmark_format=csv > "$RESULTS/$name.csv" || true
    continue
  fi
  echo "=== $name (--full) ==="
  "$bench" --full --csv "$@" | tee "$RESULTS/$name.txt"
done

echo
echo "Done. Text + CSV outputs in $RESULTS/."
