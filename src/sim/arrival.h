// Open-loop arrival process (DESIGN.md §13.1).
//
// The paper drives load with a closed per-peer query clock: each live peer
// issues bursts at SystemParams::query_rate, so offered load scales with the
// population and can never exceed what the population sustains. A serving
// system is evaluated the other way around — arrivals come from outside at a
// configured offered rate regardless of how the system is doing — which is
// the only way to push offered load past saturation and observe overload
// behaviour (the open-loop vs closed-loop distinction from the load-testing
// literature).
//
// ArrivalProcess generates that external arrival stream on the simulator's
// event queue: Poisson (exponential gaps, the default) or uniform
// (deterministic 1/rate gaps) at `rate` arrivals per simulated second. It
// owns a dedicated RNG stream so its draws never perturb the backend's —
// attaching an arrival process to a run cannot change how the protocol
// itself unfolds, only what workload hits it.
//
// Steady-state allocation-free: the self-rescheduling event is an inline
// thunk (static_assert'd to fit the queue's inline callback storage) and the
// sink is installed once at start().
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace guess::sim {

/// How queries are injected into a run (SimulationOptions::arrival,
/// --arrival={closed,open}).
enum class ArrivalMode {
  kClosed,  ///< the paper's per-peer query clock (load tracks population)
  kOpen,    ///< external ArrivalProcess at a fixed offered rate
};

/// Gap distribution of the open-loop process (--arrival-dist).
enum class ArrivalDist {
  kPoisson,  ///< exponential inter-arrival gaps (memoryless, the default)
  kUniform,  ///< deterministic 1/rate gaps (isolates queueing from burstiness)
};

const char* arrival_mode_name(ArrivalMode mode);
ArrivalMode parse_arrival_mode(const std::string& name);
const char* arrival_dist_name(ArrivalDist dist);
ArrivalDist parse_arrival_dist(const std::string& name);

class ArrivalProcess {
 public:
  /// `rate` is arrivals per simulated second (> 0). `rng` should be a
  /// dedicated stream (the callers derive it as Rng(seed ^ salt)).
  ArrivalProcess(Simulator& simulator, ArrivalDist dist, double rate, Rng rng);

  /// Install the sink and schedule the first arrival (one gap from now).
  /// Call exactly once; the process then reschedules itself forever (events
  /// past the run horizon simply never fire).
  void start(std::function<void()> sink);

  std::uint64_t arrivals() const { return arrivals_; }

 private:
  struct ArrivalFired {
    ArrivalProcess* process;
    void operator()() const { process->fire(); }
  };
  static_assert(EventQueue::Callback::stores_inline<ArrivalFired>(),
                "arrival thunk must not heap-allocate");

  void fire();
  void schedule_next();

  Simulator& simulator_;
  ArrivalDist dist_;
  double rate_;
  Rng rng_;
  std::function<void()> sink_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace guess::sim
