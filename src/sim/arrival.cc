#include "sim/arrival.h"

#include <utility>

#include "common/check.h"

namespace guess::sim {

const char* arrival_mode_name(ArrivalMode mode) {
  switch (mode) {
    case ArrivalMode::kClosed: return "closed";
    case ArrivalMode::kOpen: return "open";
  }
  GUESS_CHECK_MSG(false, "unknown ArrivalMode");
  return "?";
}

ArrivalMode parse_arrival_mode(const std::string& name) {
  if (name == "closed") return ArrivalMode::kClosed;
  if (name == "open") return ArrivalMode::kOpen;
  GUESS_CHECK_MSG(false, "unknown arrival mode '" << name
                                                  << "' (expected closed | open)");
  return ArrivalMode::kClosed;
}

const char* arrival_dist_name(ArrivalDist dist) {
  switch (dist) {
    case ArrivalDist::kPoisson: return "poisson";
    case ArrivalDist::kUniform: return "uniform";
  }
  GUESS_CHECK_MSG(false, "unknown ArrivalDist");
  return "?";
}

ArrivalDist parse_arrival_dist(const std::string& name) {
  if (name == "poisson") return ArrivalDist::kPoisson;
  if (name == "uniform") return ArrivalDist::kUniform;
  GUESS_CHECK_MSG(false, "unknown arrival distribution '"
                             << name << "' (expected poisson | uniform)");
  return ArrivalDist::kPoisson;
}

ArrivalProcess::ArrivalProcess(Simulator& simulator, ArrivalDist dist,
                               double rate, Rng rng)
    : simulator_(simulator), dist_(dist), rate_(rate), rng_(std::move(rng)) {
  GUESS_CHECK_MSG(rate_ > 0.0, "arrival rate must be > 0, got " << rate_);
}

void ArrivalProcess::start(std::function<void()> sink) {
  GUESS_CHECK_MSG(!sink_, "ArrivalProcess::start called twice");
  GUESS_CHECK(sink);
  sink_ = std::move(sink);
  schedule_next();
}

void ArrivalProcess::fire() {
  ++arrivals_;
  sink_();
  schedule_next();
}

void ArrivalProcess::schedule_next() {
  Duration gap = dist_ == ArrivalDist::kPoisson ? rng_.exponential(rate_)
                                                : 1.0 / rate_;
  simulator_.after(gap, ArrivalFired{this});
}

}  // namespace guess::sim
