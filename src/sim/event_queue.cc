#include "sim/event_queue.h"

#include "common/check.h"

namespace guess::sim {

EventHandle EventQueue::schedule(Time at, Callback fn) {
  GUESS_CHECK_MSG(fn != nullptr, "null event callback");
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{std::weak_ptr<bool>(alive)};
  heap_.push(Entry{at, next_seq_++, std::move(fn), std::move(alive)});
  ++live_;
  return handle;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty() && !*heap_.top().alive) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_dead();
  GUESS_CHECK(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Callback EventQueue::pop(Time& at) {
  drop_dead();
  GUESS_CHECK(!heap_.empty());
  // priority_queue::top() is const; the entry is moved out via const_cast,
  // which is safe because it is popped immediately after.
  auto& top = const_cast<Entry&>(heap_.top());
  at = top.at;
  Callback fn = std::move(top.fn);
  *top.alive = false;
  heap_.pop();
  --live_;
  return fn;
}

}  // namespace guess::sim
