#include "sim/event_queue.h"

#include <algorithm>

#include "common/check.h"

namespace guess::sim {

namespace {
// Calendar sizing bounds: the ring starts at kMinBuckets and doubles while
// the live population exceeds 2× the bucket count (shrinks below 1/8th), so
// average occupancy stays at a few entries per bucket.
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
}  // namespace

const char* scheduler_name(Scheduler scheduler) {
  return scheduler == Scheduler::kHeap ? "heap" : "calendar";
}

Scheduler parse_scheduler(const std::string& name) {
  if (name == "heap") return Scheduler::kHeap;
  if (name == "calendar") return Scheduler::kCalendar;
  GUESS_CHECK_MSG(false, "unknown scheduler: " << name
                             << " (expected heap or calendar)");
  return Scheduler::kHeap;
}

EventQueue::EventQueue(Scheduler scheduler) : scheduler_(scheduler) {
  if (scheduler_ == Scheduler::kCalendar) buckets_.assign(kMinBuckets, {});
}

EventHandle EventQueue::schedule(Time at, Callback fn) {
  GUESS_CHECK_MSG(fn != nullptr, "null event callback");
  return arm(at, 0.0, std::move(fn));
}

EventHandle EventQueue::schedule_periodic(Time first, Duration period,
                                          Callback fn) {
  GUESS_CHECK_MSG(fn != nullptr, "null event callback");
  GUESS_CHECK_MSG(period > 0.0, "period must be positive");
  return arm(first, period, std::move(fn));
}

EventHandle EventQueue::arm(Time at, Duration period, Callback fn) {
  std::uint32_t s = acquire_slot();
  Slot& slot = slots_[s];
  slot.fn = std::move(fn);
  slot.period = period;
  slot.armed = true;
  insert(Entry{at, next_seq_++, slot.generation, s});
  ++live_;
  if (scheduler_ == Scheduler::kCalendar) calendar_maybe_resize();
  return EventHandle{this, s, slot.generation};
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    std::uint32_t s = free_head_;
    free_head_ = slots_[s].next_free;
    return s;
  }
  GUESS_CHECK_MSG(slots_.size() < kNilSlot, "event slab full");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.fn = Callback();
  slot.period = 0.0;
  ++slot.generation;  // stale handles and index entries become inert
  slot.armed = false;
  slot.next_free = free_head_;
  free_head_ = s;
}

void EventQueue::cancel(std::uint32_t s, std::uint64_t generation) {
  if (s >= slots_.size()) return;
  Slot& slot = slots_[s];
  if (!slot.armed || slot.generation != generation) return;
  release_slot(s);
  --live_;
  if (scheduler_ == Scheduler::kCalendar) calendar_maybe_resize();
}

bool EventQueue::pending(std::uint32_t s, std::uint64_t generation) const {
  return s < slots_.size() && slots_[s].armed &&
         slots_[s].generation == generation;
}

void EventQueue::insert(const Entry& entry) {
  if (scheduler_ == Scheduler::kHeap) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  } else {
    calendar_insert(entry);
  }
}

const EventQueue::Entry& EventQueue::find_min() const {
  if (scheduler_ == Scheduler::kHeap) {
    // live_ > 0 (checked by callers) guarantees a live entry exists.
    for (;;) {
      const Entry& top = heap_.front();
      if (live(top)) return top;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }
  return calendar_find_min();
}

EventQueue::Entry EventQueue::take_min() {
  Entry out = find_min();
  auto& heap = scheduler_ == Scheduler::kHeap ? heap_ : day_bucket();
  std::pop_heap(heap.begin(), heap.end(), Later{});
  heap.pop_back();
  return out;
}

Time EventQueue::next_time() const {
  GUESS_CHECK(live_ > 0);
  return find_min().at;
}

EventQueue::Callback EventQueue::pop(Time& at) {
  GUESS_CHECK(live_ > 0);
  Entry entry = take_min();
  Slot& slot = slots_[entry.slot];
  at = entry.at;
  Callback fn;
  if (slot.period > 0.0) {
    // The series keeps its callback and slot; fire from a copy so the
    // callback may cancel its own series (or grow the slab) safely.
    fn = slot.fn;
    insert(Entry{entry.at + slot.period, next_seq_++, entry.generation,
                 entry.slot});
  } else {
    fn = std::move(slot.fn);
    release_slot(entry.slot);
    --live_;
    if (scheduler_ == Scheduler::kCalendar) calendar_maybe_resize();
  }
  return fn;
}

// --- calendar backend ------------------------------------------------------

void EventQueue::calendar_insert(const Entry& entry) {
  std::uint64_t day = day_of(entry.at);
  if (day < day_) {
    // Behind the cursor (only possible before the first pop, or when a
    // caller schedules into the past): pull the window back.
    day_ = day;
    day_heaped_ = false;
  }
  auto& bucket = buckets_[day & (buckets_.size() - 1)];
  bucket.push_back(entry);
  if (day_heaped_ && &bucket == &day_bucket()) {
    std::push_heap(bucket.begin(), bucket.end(), Later{});
  }
}

const EventQueue::Entry& EventQueue::calendar_find_min() const {
  std::size_t scanned = 0;
  for (;;) {
    auto& bucket = day_bucket();
    if (!day_heaped_) {
      std::make_heap(bucket.begin(), bucket.end(), Later{});
      day_heaped_ = true;
    }
    while (!bucket.empty() && !live(bucket.front())) {
      std::pop_heap(bucket.begin(), bucket.end(), Later{});
      bucket.pop_back();
    }
    // Bucket membership and eligibility use the same day_of() computation,
    // so boundary rounding can never strand an entry: the front is the
    // global minimum iff it belongs to the cursor's day (or an earlier one,
    // after a pull-back).
    if (!bucket.empty() && day_of(bucket.front().at) <= day_) {
      return bucket.front();
    }
    ++day_;
    day_heaped_ = false;
    if (++scanned >= buckets_.size()) {
      // A full rotation of empty days: every pending event is more than one
      // rotation ahead. Jump straight to the earliest.
      calendar_jump_to_min();
      scanned = 0;
    }
  }
}

void EventQueue::calendar_jump_to_min() const {
  const Entry* best = nullptr;
  for (auto& bucket : buckets_) {
    std::erase_if(bucket, [this](const Entry& e) { return !live(e); });
    for (const Entry& e : bucket) {
      if (best == nullptr || e.at < best->at ||
          (e.at == best->at && e.seq < best->seq)) {
        best = &e;
      }
    }
  }
  GUESS_CHECK_MSG(best != nullptr, "calendar jump with no live entries");
  day_ = day_of(best->at);
  day_heaped_ = false;
}

void EventQueue::calendar_maybe_resize() {
  const std::size_t n = buckets_.size();
  if (live_ > n * 2 && n < kMaxBuckets) {
    calendar_rebuild(n * 2);
  } else if (n > kMinBuckets && live_ < n / 8) {
    calendar_rebuild(n / 2);
  }
}

void EventQueue::calendar_rebuild(std::size_t nbuckets) {
  std::vector<Entry> entries;
  entries.reserve(live_);
  for (auto& bucket : buckets_) {
    for (const Entry& e : bucket) {
      if (live(e)) entries.push_back(e);
    }
    bucket.clear();
  }
  buckets_.assign(nbuckets, {});
  day_heaped_ = false;
  if (entries.empty()) {
    width_ = 1.0;
    day_ = 0;
    return;
  }
  Time lo = entries.front().at;
  Time hi = lo;
  for (const Entry& e : entries) {
    lo = std::min(lo, e.at);
    hi = std::max(hi, e.at);
  }
  // Brown's rule of thumb: a few events per bucket on average. Span 0 (all
  // events simultaneous) degenerates to one bucket, which is still correct.
  double span = hi - lo;
  width_ = span > 0.0
               ? std::max(3.0 * span / static_cast<double>(entries.size()),
                          1e-9)
               : 1.0;
  day_ = day_of(lo);
  for (const Entry& e : entries) {
    buckets_[day_of(e.at) & (nbuckets - 1)].push_back(e);
  }
}

}  // namespace guess::sim
