// Single-threaded discrete-event simulator.
//
// The simulator owns the clock and the event queue. Components schedule
// callbacks at absolute or relative times; run_until() executes events in
// timestamp order until the horizon. Determinism: same seed + same schedule
// order => identical runs (events at equal times fire in scheduling order).
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace guess::sim {

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedule at an absolute time (>= now).
  EventHandle at(Time when, EventQueue::Callback fn);

  /// Schedule after a relative delay (>= 0).
  EventHandle after(Duration delay, EventQueue::Callback fn);

  /// Schedule `fn` every `period` seconds starting at now + phase. The
  /// callback may cancel the series via the returned handle's cancel() —
  /// cancelling stops all future firings.
  EventHandle every(Duration period, Duration phase,
                    std::function<void()> fn);

  /// Run until the queue drains or the clock reaches `horizon` (events
  /// scheduled exactly at the horizon do fire).
  void run_until(Time horizon);

  /// Run until the queue is empty.
  void run_all();

  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct PeriodicState;

  Time now_ = kTimeZero;
  EventQueue queue_;
};

}  // namespace guess::sim
