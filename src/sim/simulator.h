// Single-threaded discrete-event simulator.
//
// The simulator owns the clock and the event queue. Components schedule
// callbacks at absolute or relative times; run_until() executes events in
// timestamp order until the horizon. Determinism: same seed + same schedule
// order => identical runs (events at equal times fire in scheduling order),
// under either scheduler backend — kHeap and kCalendar pop in the same
// (time, seq) order, so they produce bit-identical simulations.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace guess::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  explicit Simulator(Scheduler scheduler = Scheduler::kHeap)
      : queue_(scheduler) {}

  Time now() const { return now_; }
  Scheduler scheduler() const { return queue_.scheduler(); }

  /// Schedule at an absolute time (>= now).
  EventHandle at(Time when, Callback fn);

  /// Schedule after a relative delay (>= 0).
  EventHandle after(Duration delay, Callback fn);

  /// Schedule `fn` every `period` seconds starting at now + phase. The
  /// callback may cancel the series via the returned handle's cancel() —
  /// cancelling stops all future firings.
  EventHandle every(Duration period, Duration phase, Callback fn);

  /// Run until the queue drains or the clock reaches `horizon` (events
  /// scheduled exactly at the horizon do fire).
  void run_until(Time horizon);

  /// Run until the queue is empty.
  void run_all();

  std::size_t pending_events() const { return queue_.size(); }

  /// Number of events executed so far (the denominator of events/sec).
  std::uint64_t events_fired() const { return fired_; }

 private:
  Time now_ = kTimeZero;
  std::uint64_t fired_ = 0;
  EventQueue queue_;
};

}  // namespace guess::sim
