// Small-buffer-optimized type-erased callable for the event core.
//
// InlineCallback<N> stores any copyable `void()` callable of up to N bytes
// inside the object itself — scheduling an event with such a callback
// performs no heap allocation. Larger callables transparently fall back to
// the heap (correct, just not allocation-free); `stores_inline<F>()` lets
// hot call sites assert at compile time that they stay on the fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace guess::sim {

template <std::size_t BufferSize>
class InlineCallback {
 public:
  /// True if callables of type F live in the inline buffer (no allocation).
  template <typename F>
  static constexpr bool stores_inline() {
    return sizeof(F) <= BufferSize &&
           alignof(F) <= alignof(std::max_align_t);
  }

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    static_assert(std::is_copy_constructible_v<D>,
                  "event callbacks must be copyable (periodic events are "
                  "re-fired from a copy)");
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &heap_ops<D>;
    }
  }

  InlineCallback(const InlineCallback& other) : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->copy(buf_, other.buf_);
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(const InlineCallback& other) {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->copy(buf_, other.buf_);
        ops_ = other.ops_;
      }
    }
    return *this;
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->relocate(buf_, other.buf_);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineCallback& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const InlineCallback& f, std::nullptr_t) {
    return f.ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*copy)(void* dst, const void* src);
    /// Move-construct dst from src and destroy src (full transfer).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* self) { (*static_cast<D*>(self))(); },
      [](void* dst, const void* src) {
        ::new (dst) D(*static_cast<const D*>(src));
      },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* self) { static_cast<D*>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* self) { (**static_cast<D**>(self))(); },
      [](void* dst, const void* src) {
        ::new (dst) D*(new D(**static_cast<D* const*>(src)));
      },
      [](void* dst, void* src) {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* self) { delete *static_cast<D**>(self); },
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[BufferSize];
  const Ops* ops_ = nullptr;
};

}  // namespace guess::sim
