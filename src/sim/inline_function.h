// Small-buffer-optimized type-erased callable for the event core.
//
// InlineFunction<R(Args...), N> stores any copyable callable of up to N
// bytes inside the object itself — binding such a callable performs no heap
// allocation. Larger callables transparently fall back to the heap (correct,
// just not allocation-free); `stores_inline<F>()` lets hot call sites assert
// at compile time that they stay on the fast path.
//
// InlineCallback<N> is the event queue's `void()` specialization; the
// transport layer uses a `void(DeliveryStatus)` instantiation for exchange
// completions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace guess::sim {

template <typename Signature, std::size_t BufferSize>
class InlineFunction;

template <typename R, typename... Args, std::size_t BufferSize>
class InlineFunction<R(Args...), BufferSize> {
 public:
  /// True if callables of type F live in the inline buffer (no allocation).
  template <typename F>
  static constexpr bool stores_inline() {
    return sizeof(F) <= BufferSize &&
           alignof(F) <= alignof(std::max_align_t);
  }

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    static_assert(std::is_copy_constructible_v<D>,
                  "inline-function callables must be copyable (periodic "
                  "events are re-fired from a copy)");
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &heap_ops<D>;
    }
  }

  InlineFunction(const InlineFunction& other) : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->copy(buf_, other.buf_);
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(const InlineFunction& other) {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->copy(buf_, other.buf_);
        ops_ = other.ops_;
      }
    }
    return *this;
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->relocate(buf_, other.buf_);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) {
    return f.ops_ != nullptr;
  }

 private:
  struct Ops {
    R (*invoke)(void* self, Args&&...);
    void (*copy)(void* dst, const void* src);
    /// Move-construct dst from src and destroy src (full transfer).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* self, Args&&... args) -> R {
        return (*static_cast<D*>(self))(std::forward<Args>(args)...);
      },
      [](void* dst, const void* src) {
        ::new (dst) D(*static_cast<const D*>(src));
      },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* self) { static_cast<D*>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* self, Args&&... args) -> R {
        return (**static_cast<D**>(self))(std::forward<Args>(args)...);
      },
      [](void* dst, const void* src) {
        ::new (dst) D*(new D(**static_cast<D* const*>(src)));
      },
      [](void* dst, void* src) {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* self) { delete *static_cast<D**>(self); },
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[BufferSize];
  const Ops* ops_ = nullptr;
};

/// The event queue's callback type: a `void()` inline function.
template <std::size_t BufferSize>
using InlineCallback = InlineFunction<void(), BufferSize>;

}  // namespace guess::sim
