// The simulation's event core: a slab-backed arena of pending events with a
// pluggable ordering backend.
//
// Events live in a contiguous free-list slab; scheduling in steady state
// (slab warm, callback within the small-buffer size) performs zero heap
// allocations. Handles are POD {slot, generation} pairs: cancellation bumps
// the slot's generation, which makes every outstanding reference to the old
// occupant — handles and index entries alike — inert. The index over the
// slab is one of two schedulers:
//
//  * kHeap      — binary min-heap of (time, seq), the classic choice.
//  * kCalendar  — a calendar queue (bucketed timing wheel, Brown 1988):
//                 O(1) expected schedule/pop for the mostly-periodic traffic
//                 (pings, probe slots, churn) these simulations generate.
//
// Both backends pop in exactly (time, seq) order — equal-time events fire in
// scheduling order — so they produce bit-identical simulations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/inline_function.h"
#include "sim/time.h"

namespace guess::sim {

/// Ordering backend for the event queue (SimulationOptions::scheduler,
/// --scheduler={heap,calendar}).
enum class Scheduler { kHeap, kCalendar };

/// "heap" / "calendar".
const char* scheduler_name(Scheduler scheduler);

/// Inverse of scheduler_name; throws CheckError on anything else.
Scheduler parse_scheduler(const std::string& name);

class EventQueue;

/// Handle used to cancel a scheduled event: a POD (queue, slot, generation)
/// triple. Default-constructed handles are inert. A stale handle — one whose
/// slot has since fired, been cancelled, or been reused by a later event —
/// compares generations and is also inert. Handles must not outlive their
/// queue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly, on
  /// stale handles, and on default-constructed handles.
  void cancel();

  /// True if the event is still pending (scheduled, not fired, not
  /// cancelled). For a periodic series: true until the series is cancelled.
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint64_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

class EventQueue {
 public:
  /// Event callback: any copyable void() callable. Callables up to
  /// kInlineCallbackSize bytes are stored inline (no heap allocation);
  /// larger ones fall back to the heap.
  static constexpr std::size_t kInlineCallbackSize = 48;
  using Callback = InlineCallback<kInlineCallbackSize>;

  explicit EventQueue(Scheduler scheduler = Scheduler::kHeap);

  Scheduler scheduler() const { return scheduler_; }

  /// Schedule `fn` to fire once at absolute time `at`.
  EventHandle schedule(Time at, Callback fn);

  /// Schedule `fn` to fire at `first`, then every `period` thereafter. The
  /// series occupies one slot for its whole life; each firing re-arms the
  /// next occurrence without touching the slab. Cancelling the returned
  /// handle stops all future firings.
  EventHandle schedule_periodic(Time first, Duration period, Callback fn);

  bool empty() const { return live_ == 0; }

  /// Number of pending occurrences (cancellation takes effect immediately;
  /// a periodic series counts as one).
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event; must not be empty().
  Time next_time() const;

  /// Pop and return the earliest pending event's callback; must not be
  /// empty(). Sets `at` to its firing time. A periodic event returns a copy
  /// of its callback and re-arms itself at `at + period`.
  Callback pop(Time& at);

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct Slot {
    Callback fn;
    Duration period = 0.0;  // 0 = one-shot
    std::uint64_t generation = 0;
    std::uint32_t next_free = kNilSlot;
    bool armed = false;
  };

  /// Index entry: POD reference into the slab. Stale entries (generation
  /// mismatch after cancel/reuse) are dropped lazily when they surface.
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint64_t generation;
    std::uint32_t slot;
  };

  /// Heap comparator: `a < b` iff a fires later — makes the std heap
  /// algorithms yield the earliest (time, seq) on top.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // --- slab ---
  EventHandle arm(Time at, Duration period, Callback fn);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  bool live(const Entry& entry) const {
    return slots_[entry.slot].generation == entry.generation;
  }
  void cancel(std::uint32_t slot, std::uint64_t generation);
  bool pending(std::uint32_t slot, std::uint64_t generation) const;

  // --- backend dispatch ---
  void insert(const Entry& entry);
  /// Position the backend so its earliest live entry is accessible and
  /// return it. Requires live_ > 0. Mutable work only (drops stale entries,
  /// advances the calendar cursor) — observable state is unchanged.
  const Entry& find_min() const;
  Entry take_min();

  // --- calendar backend ---
  std::uint64_t day_of(Time at) const {
    return static_cast<std::uint64_t>(at / width_);
  }
  std::vector<Entry>& day_bucket() const {
    return buckets_[day_ & (buckets_.size() - 1)];
  }
  const Entry& calendar_find_min() const;
  void calendar_insert(const Entry& entry);
  void calendar_jump_to_min() const;
  void calendar_maybe_resize();
  void calendar_rebuild(std::size_t nbuckets);

  Scheduler scheduler_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;

  // kHeap: binary heap over Entry (std::push_heap/pop_heap with Later).
  // Mutable: find_min drops stale entries from a const context.
  mutable std::vector<Entry> heap_;

  // kCalendar: power-of-two ring of buckets, each a vector of entries for
  // the times `t` with `day_of(t) % nbuckets == index`. Only the cursor's
  // bucket is kept heap-ordered (day_heaped_); others are unsorted until the
  // cursor reaches them. See DESIGN.md "Calendar scheduler".
  mutable std::vector<std::vector<Entry>> buckets_;
  mutable double width_ = 1.0;     // bucket width in simulated seconds
  mutable std::uint64_t day_ = 0;  // absolute bucket number of the cursor
  mutable bool day_heaped_ = false;
};

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->pending(slot_, generation_);
}

}  // namespace guess::sim
