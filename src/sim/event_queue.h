// Priority queue of timestamped events with stable ordering and cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace guess::sim {

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert. Cancellation is lazy: the queue drops cancelled entries on pop.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly.
  void cancel() {
    if (auto p = alive_.lock()) *p = false;
  }

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  bool pending() const {
    auto p = alive_.lock();
    return p && *p;
  }

 private:
  friend class EventQueue;
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

/// Min-heap of (time, sequence) ordered events. Events at equal times fire in
/// scheduling order (the sequence number breaks ties), which keeps runs
/// deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to fire at absolute time `at`.
  EventHandle schedule(Time at, Callback fn);

  bool empty() const;

  /// Number of scheduled-but-unfired entries. Entries cancelled while buried
  /// in the heap are still counted until they surface, so this is an upper
  /// bound on the number of events that will actually fire.
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event; must not be empty().
  Time next_time() const;

  /// Pop and return the earliest pending event's callback, advancing past any
  /// cancelled entries; must not be empty(). Sets `at` to its firing time.
  Callback pop(Time& at);

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace guess::sim
