#include "sim/simulator.h"

#include "common/check.h"

namespace guess::sim {

EventHandle Simulator::at(Time when, Callback fn) {
  GUESS_CHECK_MSG(when >= now_, "scheduling into the past");
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::after(Duration delay, Callback fn) {
  GUESS_CHECK_MSG(delay >= 0.0, "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventHandle Simulator::every(Duration period, Duration phase, Callback fn) {
  GUESS_CHECK_MSG(period > 0.0, "period must be positive");
  GUESS_CHECK_MSG(phase >= 0.0, "negative phase");
  // Periodic series are native to the event queue: one slab slot for the
  // series' whole life, re-armed on each pop with no allocation.
  return queue_.schedule_periodic(now_ + phase, period, std::move(fn));
}

void Simulator::run_until(Time horizon) {
  GUESS_CHECK(horizon >= now_);
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    Time at = kTimeZero;
    auto fn = queue_.pop(at);
    now_ = at;
    ++fired_;
    fn();
  }
  now_ = horizon;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Time at = kTimeZero;
    auto fn = queue_.pop(at);
    now_ = at;
    ++fired_;
    fn();
  }
}

}  // namespace guess::sim
