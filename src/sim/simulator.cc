#include "sim/simulator.h"

#include <memory>

#include "common/check.h"

namespace guess::sim {

EventHandle Simulator::at(Time when, EventQueue::Callback fn) {
  GUESS_CHECK_MSG(when >= now_, "scheduling into the past");
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::after(Duration delay, EventQueue::Callback fn) {
  GUESS_CHECK_MSG(delay >= 0.0, "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

// Periodic events re-arm themselves; a shared control block lets the caller's
// single handle govern every future firing.
struct Simulator::PeriodicState {
  std::function<void()> fn;
  Duration period;
  std::shared_ptr<bool> alive = std::make_shared<bool>(true);
};

EventHandle Simulator::every(Duration period, Duration phase,
                             std::function<void()> fn) {
  GUESS_CHECK_MSG(period > 0.0, "period must be positive");
  GUESS_CHECK_MSG(phase >= 0.0, "negative phase");
  auto state = std::make_shared<PeriodicState>();
  state->fn = std::move(fn);
  state->period = period;
  // Self-rescheduling callable: holds the shared control block so the
  // caller's handle can stop all future firings.
  struct Rearm {
    Simulator* sim;
    std::shared_ptr<PeriodicState> state;
    void operator()() const {
      if (!*state->alive) return;
      state->fn();
      if (!*state->alive) return;
      sim->queue_.schedule(sim->now_ + state->period, Rearm{sim, state});
    }
  };
  queue_.schedule(now_ + phase, Rearm{this, state});
  return EventHandle{std::weak_ptr<bool>(state->alive)};
}

void Simulator::run_until(Time horizon) {
  GUESS_CHECK(horizon >= now_);
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    Time at = kTimeZero;
    auto fn = queue_.pop(at);
    now_ = at;
    fn();
  }
  now_ = horizon;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Time at = kTimeZero;
    auto fn = queue_.pop(at);
    now_ = at;
    fn();
  }
}

}  // namespace guess::sim
