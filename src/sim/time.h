// Simulated time.
//
// Time is a double in seconds since simulation start. All protocol constants
// in the paper (PingInterval = 30 s, probe slot = 0.2 s, capacity windows of
// 1 s) are natural in these units.
#pragma once

#include <limits>

namespace guess::sim {

using Time = double;
using Duration = double;

inline constexpr Time kTimeZero = 0.0;

/// Sentinel horizon: later than any event ("run to exhaustion").
inline constexpr Time kTimeInfinity = std::numeric_limits<double>::infinity();

/// Seconds per minute/hour, for readable experiment configs.
inline constexpr Duration kMinute = 60.0;
inline constexpr Duration kHour = 3600.0;

}  // namespace guess::sim
