#include "baseline/fixed_extent.h"

#include "common/check.h"

namespace guess::baseline {

ExtentPoint evaluate_fixed_extent(const StaticPopulation& population,
                                  const content::ContentModel& model,
                                  std::size_t extent,
                                  std::size_t num_queries,
                                  std::uint32_t desired_results, Rng& rng) {
  GUESS_CHECK(num_queries > 0);
  GUESS_CHECK(desired_results >= 1);
  std::size_t unsatisfied = 0;
  for (std::size_t q = 0; q < num_queries; ++q) {
    content::FileId file = model.draw_query(rng);
    if (population.results_in_sample(file, extent, rng) < desired_results) {
      ++unsatisfied;
    }
  }
  return ExtentPoint{extent, static_cast<double>(unsatisfied) /
                                 static_cast<double>(num_queries)};
}

std::vector<ExtentPoint> fixed_extent_curve(
    const StaticPopulation& population, const content::ContentModel& model,
    const std::vector<std::size_t>& extents, std::size_t num_queries,
    std::uint32_t desired_results, Rng& rng) {
  std::vector<ExtentPoint> curve;
  curve.reserve(extents.size());
  for (std::size_t extent : extents) {
    curve.push_back(evaluate_fixed_extent(population, model, extent,
                                          num_queries, desired_results, rng));
  }
  return curve;
}

}  // namespace guess::baseline
