// Fixed-extent search — the "Gnutella" comparator of Figure 8.
//
// Every query reaches exactly `extent` peers regardless of popularity: too
// many for popular items, too few for rare ones. The paper sweeps extent
// from 1 to NetworkSize and plots cost (= extent) against unsatisfaction.
#pragma once

#include <cstddef>
#include <vector>

#include "baseline/static_population.h"
#include "common/rng.h"
#include "content/content_model.h"

namespace guess::baseline {

struct ExtentPoint {
  std::size_t extent = 0;       ///< probes per query (the fixed cost)
  double unsatisfied_rate = 0.0;
};

/// Monte-Carlo estimate of the unsatisfaction rate at one fixed extent.
ExtentPoint evaluate_fixed_extent(const StaticPopulation& population,
                                  const content::ContentModel& model,
                                  std::size_t extent,
                                  std::size_t num_queries,
                                  std::uint32_t desired_results, Rng& rng);

/// The full tradeoff curve for a set of extents (Figure 8's dashed line).
std::vector<ExtentPoint> fixed_extent_curve(
    const StaticPopulation& population, const content::ContentModel& model,
    const std::vector<std::size_t>& extents, std::size_t num_queries,
    std::uint32_t desired_results, Rng& rng);

}  // namespace guess::baseline
