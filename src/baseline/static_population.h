// A static snapshot of peer libraries, shared by the non-GUESS baselines.
//
// The fixed-extent ("Gnutella") and iterative-deepening comparators of
// Figure 8 are defined purely by *how many* peers see a query — overlay
// details do not matter for their cost/quality tradeoff, so the paper (and
// we) evaluate them against the population directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "content/content_model.h"

namespace guess::baseline {

class StaticPopulation {
 public:
  /// Materialize `size` peers with libraries drawn from the content model.
  StaticPopulation(const content::ContentModel& model, std::size_t size,
                   Rng& rng);

  std::size_t size() const { return libraries_.size(); }
  const content::Library& library(std::size_t peer) const;

  /// Results for `file` among `extent` distinct uniformly chosen peers.
  std::uint32_t results_in_sample(content::FileId file, std::size_t extent,
                                  Rng& rng) const;

  /// Results for `file` across a fixed ordering prefix: peers
  /// order[0..extent). Used by iterative deepening, where each deeper ring
  /// extends (not resamples) the previous one.
  std::uint32_t results_in_prefix(content::FileId file,
                                  const std::vector<std::size_t>& order,
                                  std::size_t begin, std::size_t end) const;

  /// Total replicas of `file` in the population (exact satisfiability).
  std::uint32_t total_replicas(content::FileId file) const;

  /// Fault hooks for the analytic baselines (DESIGN.md §9): drop `count`
  /// uniformly chosen peers (their libraries leave the population), or add
  /// `count` fresh peers drawn from the model.
  void remove_random(std::size_t count, Rng& rng);
  void add_random(const content::ContentModel& model, std::size_t count,
                  Rng& rng);

 private:
  std::vector<content::Library> libraries_;
};

}  // namespace guess::baseline
