#include "baseline/iterative_deepening.h"

#include <algorithm>

#include "common/check.h"

namespace guess::baseline {

std::vector<std::size_t> default_schedule(std::size_t network_size) {
  std::vector<std::size_t> schedule = {
      std::max<std::size_t>(1, network_size / 5),
      std::max<std::size_t>(1, network_size / 2), network_size};
  schedule.erase(std::unique(schedule.begin(), schedule.end()),
                 schedule.end());
  return schedule;
}

DeepeningResult evaluate_iterative_deepening(
    const StaticPopulation& population, const content::ContentModel& model,
    const std::vector<std::size_t>& schedule, std::size_t num_queries,
    std::uint32_t desired_results, Rng& rng, SampleSet* per_query_cost) {
  GUESS_CHECK(!schedule.empty());
  GUESS_CHECK(num_queries > 0);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    GUESS_CHECK_MSG(schedule[i] > schedule[i - 1],
                    "schedule must be strictly increasing");
  }
  GUESS_CHECK(schedule.back() <= population.size());

  std::uint64_t total_cost = 0;
  std::size_t unsatisfied = 0;
  for (std::size_t q = 0; q < num_queries; ++q) {
    content::FileId file = model.draw_query(rng);
    // One random peer ordering per query; each ring extends the previous.
    std::vector<std::size_t> order =
        rng.sample_indices(population.size(), schedule.back());
    std::uint32_t results = 0;
    std::size_t probed = 0;
    bool satisfied = false;
    for (std::size_t ring : schedule) {
      results += population.results_in_prefix(file, order, probed, ring);
      probed = ring;
      if (results >= desired_results) {
        satisfied = true;
        break;
      }
    }
    total_cost += probed;
    if (per_query_cost != nullptr) {
      per_query_cost->add(static_cast<double>(probed));
    }
    if (!satisfied) ++unsatisfied;
  }
  return DeepeningResult{
      static_cast<double>(total_cost) / static_cast<double>(num_queries),
      static_cast<double>(unsatisfied) / static_cast<double>(num_queries)};
}

}  // namespace guess::baseline
