#include "baseline/static_population.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace guess::baseline {

StaticPopulation::StaticPopulation(const content::ContentModel& model,
                                   std::size_t size, Rng& rng) {
  GUESS_CHECK(size > 0);
  libraries_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    libraries_.push_back(model.sample_peer_library(rng));
  }
}

const content::Library& StaticPopulation::library(std::size_t peer) const {
  GUESS_CHECK(peer < libraries_.size());
  return libraries_[peer];
}

std::uint32_t StaticPopulation::results_in_sample(content::FileId file,
                                                  std::size_t extent,
                                                  Rng& rng) const {
  if (file == content::kNonexistentFile) return 0;
  extent = std::min(extent, libraries_.size());
  std::uint32_t results = 0;
  for (std::size_t idx : rng.sample_indices(libraries_.size(), extent)) {
    if (libraries_[idx].contains(file)) ++results;
  }
  return results;
}

std::uint32_t StaticPopulation::results_in_prefix(
    content::FileId file, const std::vector<std::size_t>& order,
    std::size_t begin, std::size_t end) const {
  GUESS_CHECK(begin <= end && end <= order.size());
  if (file == content::kNonexistentFile) return 0;
  std::uint32_t results = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (libraries_[order[i]].contains(file)) ++results;
  }
  return results;
}

void StaticPopulation::remove_random(std::size_t count, Rng& rng) {
  // Keep at least one peer: the analytic evaluators divide by size().
  if (libraries_.size() <= 1) return;
  count = std::min(count, libraries_.size() - 1);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t victim = rng.index(libraries_.size());
    libraries_[victim] = std::move(libraries_.back());
    libraries_.pop_back();
  }
}

void StaticPopulation::add_random(const content::ContentModel& model,
                                 std::size_t count, Rng& rng) {
  libraries_.reserve(libraries_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    libraries_.push_back(model.sample_peer_library(rng));
  }
}

std::uint32_t StaticPopulation::total_replicas(content::FileId file) const {
  if (file == content::kNonexistentFile) return 0;
  std::uint32_t replicas = 0;
  for (const auto& lib : libraries_) {
    if (lib.contains(file)) ++replicas;
  }
  return replicas;
}

}  // namespace guess::baseline
