// Iterative deepening [22] — the coarse-grained flexible-extent comparator
// of Figure 8.
//
// The query is sent to rings of increasing size: first `schedule[0]` peers;
// if unsatisfied, extended to `schedule[1]`, and so on. Extent control is
// flexible but coarse (whole rings at a time), so cost lands between fixed
// extent and GUESS.
#pragma once

#include <cstddef>
#include <vector>

#include "baseline/static_population.h"
#include "common/rng.h"
#include "common/stats.h"
#include "content/content_model.h"

namespace guess::baseline {

struct DeepeningResult {
  double avg_cost = 0.0;         ///< average peers probed per query
  double unsatisfied_rate = 0.0;
};

/// @param schedule  cumulative ring sizes, strictly increasing (the paper's
///                  "many peers (e.g., hundreds) probed in each iteration").
/// @param per_query_cost  when non-null, receives one sample per query (the
///                  peers probed for that query) — the distribution behind
///                  avg_cost. Recording draws no extra randomness, so the
///                  returned DeepeningResult is identical either way.
DeepeningResult evaluate_iterative_deepening(
    const StaticPopulation& population, const content::ContentModel& model,
    const std::vector<std::size_t>& schedule, std::size_t num_queries,
    std::uint32_t desired_results, Rng& rng,
    SampleSet* per_query_cost = nullptr);

/// The default policy of [22] scaled to the population: rings at 20%, 50%
/// and 100% of the network.
std::vector<std::size_t> default_schedule(std::size_t network_size);

}  // namespace guess::baseline
