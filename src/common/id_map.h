// Fixed-capacity open-addressing map from 64-bit ids to 32-bit values.
//
// The link cache's id -> position index mutates on every Pong offer that
// replaces an entry; a node-based map pays an allocation (and a free) per
// replacement. This table is flat, sized once for the cache's bounded
// capacity, and deletes by backward-shift (no tombstones), so steady-state
// cache churn performs zero heap allocations and lookups stay one cache
// line away.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace guess {

class FlatIdMap {
 public:
  static constexpr std::uint32_t kNotFound = ~std::uint32_t{0};

  /// @param capacity  maximum number of live keys (the table is sized to
  ///                  keep the load factor at or below 0.5)
  explicit FlatIdMap(std::size_t capacity = 0) { reset(capacity); }

  void reset(std::size_t capacity) {
    std::size_t want = 8;
    while (want < capacity * 2) want *= 2;
    slots_.assign(want, Slot{});
    mask_ = want - 1;
    size_ = 0;
    capacity_ = capacity;
  }

  std::size_t size() const { return size_; }

  /// Value for `key`, or kNotFound.
  std::uint32_t find(std::uint64_t key) const {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      const Slot& slot = slots_[i];
      if (!slot.used) return kNotFound;
      if (slot.key == key) return slot.value;
      i = (i + 1) & mask_;
    }
  }

  bool contains(std::uint64_t key) const { return find(key) != kNotFound; }

  /// Insert a new key (checked: absent, capacity not exceeded).
  void insert(std::uint64_t key, std::uint32_t value) {
    GUESS_CHECK_MSG(size_ < capacity_ || capacity_ == 0,
                    "FlatIdMap over capacity");
    if (capacity_ == 0 && (size_ + 1) * 2 > slots_.size()) grow();
    std::size_t i = mix(key) & mask_;
    for (;;) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        slot.used = true;
        slot.key = key;
        slot.value = value;
        ++size_;
        return;
      }
      GUESS_CHECK_MSG(slot.key != key, "FlatIdMap duplicate insert");
      i = (i + 1) & mask_;
    }
  }

  /// Overwrite the value of an existing key (checked: present).
  void assign(std::uint64_t key, std::uint32_t value) {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      Slot& slot = slots_[i];
      GUESS_CHECK_MSG(slot.used, "FlatIdMap assign to missing key");
      if (slot.key == key) {
        slot.value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Remove `key` if present (backward-shift deletion: the probe chain is
  /// compacted in place, so no tombstones accumulate).
  /// @returns true if a mapping was removed.
  bool erase(std::uint64_t key) {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      Slot& slot = slots_[i];
      if (!slot.used) return false;
      if (slot.key == key) break;
      i = (i + 1) & mask_;
    }
    // Backward-shift: pull subsequent chain members over the hole while
    // doing so shortens (never breaks) their probe distance.
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (slots_[j].used) {
      std::size_t home = mix(slots_[j].key) & mask_;
      // Move j into the hole iff the hole lies cyclically within
      // [home, j): the element stays reachable from its home slot.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
    bool used = false;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.used) insert(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;  // 0 = unbounded (grows); else fixed
};

}  // namespace guess
