#include "common/empirical.h"

#include <algorithm>

#include "common/check.h"

namespace guess {

EmpiricalDistribution::EmpiricalDistribution(std::vector<Point> table)
    : table_(std::move(table)) {
  GUESS_CHECK(table_.size() >= 2);
  GUESS_CHECK(table_.front().quantile == 0.0);
  GUESS_CHECK(table_.back().quantile == 1.0);
  for (std::size_t i = 1; i < table_.size(); ++i) {
    GUESS_CHECK_MSG(table_[i].quantile > table_[i - 1].quantile,
                    "quantiles must be strictly increasing");
    GUESS_CHECK_MSG(table_[i].value >= table_[i - 1].value,
                    "values must be non-decreasing");
  }
}

double EmpiricalDistribution::quantile(double q) const {
  GUESS_CHECK(q >= 0.0 && q <= 1.0);
  auto it = std::lower_bound(
      table_.begin(), table_.end(), q,
      [](const Point& p, double v) { return p.quantile < v; });
  if (it == table_.begin()) return it->value;
  if (it == table_.end()) return table_.back().value;
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  double t = (q - lo.quantile) / (hi.quantile - lo.quantile);
  return lo.value + t * (hi.value - lo.value);
}

double EmpiricalDistribution::mean() const {
  // Integrate the piecewise-linear inverse CDF over [0,1]: each segment
  // contributes its width times the midpoint value.
  double acc = 0.0;
  for (std::size_t i = 1; i < table_.size(); ++i) {
    double width = table_[i].quantile - table_[i - 1].quantile;
    acc += width * 0.5 * (table_[i].value + table_[i - 1].value);
  }
  return acc;
}

}  // namespace guess
