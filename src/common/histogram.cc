#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace guess {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  GUESS_CHECK(hi > lo);
  GUESS_CHECK(bins > 0);
}

void Histogram::add(double x) {
  auto bin = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  GUESS_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  GUESS_CHECK(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  GUESS_CHECK(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    auto bar = peak == 0 ? 0
                         : static_cast<std::size_t>(
                               static_cast<double>(counts_[b]) /
                               static_cast<double>(peak) *
                               static_cast<double>(max_width));
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") " << counts_[b] << " "
       << std::string(bar, '#') << "\n";
  }
  return os.str();
}

}  // namespace guess
