// Streaming statistics helpers used by the metric collectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace guess {

/// Numerically stable running mean/variance/min/max (Welford).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel Welford merge).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Ratio counter: successes over trials, with safe division.
class RatioStat {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }
  void add_counts(std::uint64_t successes, std::uint64_t trials) {
    successes_ += successes;
    trials_ += trials;
  }
  std::uint64_t successes() const { return successes_; }
  std::uint64_t trials() const { return trials_; }
  double ratio() const {
    return trials_ == 0 ? 0.0 : static_cast<double>(successes_) /
                                    static_cast<double>(trials_);
  }

 private:
  std::uint64_t successes_ = 0;
  std::uint64_t trials_ = 0;
};

/// Exact percentile over a stored sample (sorts a copy on demand).
/// Suitable for the per-peer load distributions (Figure 13), where the
/// sample is one value per peer, not per event.
class SampleSet {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Percentile p in [0, 100] using nearest-rank on the sorted sample.
  double percentile(double p) const;
  double mean() const;
  double max() const;

  /// Values sorted descending — the "ranked load" curves of Figure 13.
  std::vector<double> sorted_descending() const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace guess
