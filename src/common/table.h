// Console table / CSV output for the benchmark harnesses.
//
// Every bench binary reproduces a paper table or figure as rows printed to
// stdout; TablePrinter keeps the formatting consistent and can also emit CSV
// for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace guess {

/// Column-aligned text table with an optional CSV rendering.
class TablePrinter {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Render with padded columns.
  std::string to_text() const;

  /// Render as CSV (RFC-4180-style quoting for strings containing commas).
  std::string to_csv() const;

  /// Convenience: print to_text() to the stream with a title banner.
  void print(std::ostream& os, const std::string& title) const;

 private:
  static std::string render(const Cell& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace guess
