#include "common/log_histogram.h"

#include <cmath>

#include "common/check.h"

namespace guess {

std::size_t LogHistogram::bucket_index(double value) {
  // frexp: value = m * 2^e with m in [0.5, 1). NaN and non-positive values
  // underflow (bucket 0) so every sample is accounted for somewhere.
  if (!(value > 0.0)) return 0;
  int exp = 0;
  double mantissa = std::frexp(value, &exp);
  // frexp's exponent convention: value in [2^(e-1), 2^e). Shift so that the
  // octave [2^kMinExp, 2^(kMinExp+1)) is octave 0.
  int octave = exp - 1 - kMinExp;
  if (octave < 0) return 0;                                      // underflow
  if (octave >= kMaxExp - kMinExp) return kBuckets - 1;          // overflow
  auto sub = static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // mantissa == nextafter(1)
  return 1 + static_cast<std::size_t>(octave) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double LogHistogram::bucket_value(std::size_t index) {
  GUESS_CHECK(index < kBuckets);
  if (index == 0) return 0.0;
  if (index == kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  std::size_t linear = index - 1;
  auto octave = static_cast<int>(linear / kSubBuckets);
  auto sub = static_cast<int>(linear % kSubBuckets);
  // Upper bound of sub-bucket `sub` in octave [2^(kMinExp+octave), 2×that):
  // at sub == kSubBuckets-1 this is exactly the next octave's floor.
  double base = std::ldexp(1.0, kMinExp + octave);
  return base * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

std::uint64_t LogHistogram::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts_) total += c;
  return total;
}

double LogHistogram::percentile(double p) const {
  GUESS_CHECK_MSG(p >= 0.0 && p <= 100.0,
                  "percentile must be in [0, 100], got " << p);
  std::uint64_t total = count();
  if (total == 0) return 0.0;
  // Nearest-rank: the value below which at least p% of samples fall.
  auto rank = static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                                   static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) return bucket_value(i);
  }
  return bucket_value(kBuckets - 1);  // unreachable (seen == total >= rank)
}

LogHistogram& LogHistogram::operator+=(const LogHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  return *this;
}

}  // namespace guess
