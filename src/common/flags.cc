#include "common/flags.h"

#include <cstdlib>
#include <string_view>

#include "common/check.h"

namespace guess {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    GUESS_CHECK_MSG(arg.substr(0, 2) == "--",
                    "unexpected positional argument: " << arg);
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::has(const std::string& name) const {
  return values_.contains(name);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  if (v->empty() || *v == "true" || *v == "1") return true;
  if (*v == "false" || *v == "0") return false;
  GUESS_CHECK_MSG(false, "bad boolean for --" << name << ": " << *v);
  return fallback;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  GUESS_CHECK_MSG(!v->empty(), "missing value for --" << name);
  char* end = nullptr;
  std::int64_t out = std::strtoll(v->c_str(), &end, 10);
  GUESS_CHECK_MSG(end && *end == '\0', "bad integer for --" << name);
  return out;
}

double Flags::get_double(const std::string& name, double fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  GUESS_CHECK_MSG(!v->empty(), "missing value for --" << name);
  char* end = nullptr;
  double out = std::strtod(v->c_str(), &end);
  GUESS_CHECK_MSG(end && *end == '\0', "bad number for --" << name);
  return out;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  auto v = raw(name);
  return v ? *v : fallback;
}

}  // namespace guess
