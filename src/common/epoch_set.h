// Epoch-stamped hash set of 64-bit keys.
//
// A per-query dedup set is filled, consulted, and thrown away thousands of
// times per simulated second. A node-based set pays an allocation per insert
// and a full walk per clear; this one is a flat open-addressing table whose
// clear() is a single epoch bump — slots stamped with an older epoch read as
// empty, so clearing is O(1) and steady-state operation never allocates
// (the table only grows, and only when the occupancy watermark is crossed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace guess {

class EpochSet {
 public:
  EpochSet() { rehash(kMinSlots); }

  /// Ensure capacity for `n` keys without growth (load factor <= 0.5).
  void reserve(std::size_t n) {
    std::size_t want = kMinSlots;
    while (want < n * 2) want *= 2;
    if (want > slots_.size()) rehash(want);
  }

  /// Forget every key. O(1): old entries are invalidated by the epoch bump.
  void clear() {
    ++epoch_;
    size_ = 0;
  }

  std::size_t size() const { return size_; }

  /// @returns true if `key` was newly inserted (false: already present).
  bool insert(std::uint64_t key) {
    if ((size_ + 1) * 2 > slots_.size()) rehash(slots_.size() * 2);
    std::size_t i = mix(key) & mask_;
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) {
        slot.key = key;
        slot.epoch = epoch_;
        ++size_;
        return true;
      }
      if (slot.key == key) return false;
      i = (i + 1) & mask_;
    }
  }

  bool contains(std::uint64_t key) const {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      const Slot& slot = slots_[i];
      if (slot.epoch != epoch_) return false;
      if (slot.key == key) return true;
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;  // 0 = never written (current epochs are >= 1)
  };

  static constexpr std::size_t kMinSlots = 16;

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: full-avalanche mixing of sequential ids.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void rehash(std::size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    std::uint64_t live_epoch = epoch_;
    epoch_ = 1;
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.epoch == live_epoch) insert(slot.key);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint64_t epoch_ = 1;
  std::size_t size_ = 0;
};

}  // namespace guess
