// Precondition / invariant checking for guesslib.
//
// GUESS_CHECK fires in all build types: violated preconditions on a simulation
// substrate silently corrupt results, which is worse than a crash. The macro
// throws (rather than aborting) so tests can assert on misuse.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace guess {

/// Error thrown when a GUESS_CHECK condition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "GUESS_CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace guess

#define GUESS_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::guess::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (false)

#define GUESS_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::guess::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                    os_.str());                        \
    }                                                                  \
  } while (false)
