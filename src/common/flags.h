// Minimal --key=value command-line parsing for bench and example binaries.
//
// Every harness accepts the same small vocabulary (--full, --seed=, --seeds=,
// --threads=, --progress, --csv, plus harness-specific overrides); this keeps
// them dependency-free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace guess {

/// Parsed command line: positional arguments are rejected, flags are
/// `--name`, `--name=value`.
class Flags {
 public:
  /// Throws CheckError on malformed arguments.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Boolean flag: present without value, or =true/=false/=1/=0.
  bool get_bool(const std::string& name, bool fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  /// Common harness conventions.
  bool full() const { return get_bool("full", false); }
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(get_int("seed", 42));
  }
  int seeds() const { return static_cast<int>(get_int("seeds", 0)); }

  /// Worker threads for seed sweeps. 0 (the default) = auto: the
  /// GUESS_THREADS environment variable when set, else all hardware threads.
  int threads() const { return static_cast<int>(get_int("threads", 0)); }

  /// Event-queue backend name: "heap" (default) or "calendar". Parsed into
  /// sim::Scheduler by the harness (sim::parse_scheduler).
  std::string scheduler() const { return get_string("scheduler", "heap"); }

  /// Report sweep progress (replications completed / total) to stderr.
  bool progress() const { return get_bool("progress", false); }

  // --- transport fault injection (DESIGN.md §8) ---
  // Defaults mirror guess::TransportParams; the presence of any of these
  // flags switches a harness from the synchronous default to the lossy
  // transport (see has_transport_flags()).

  /// I.i.d. per-message loss probability (--loss=0.05).
  double loss() const { return get_double("loss", 0.0); }
  /// One-way link latency in seconds (--link-latency=0.05).
  double link_latency() const { return get_double("link-latency", 0.05); }
  /// Per-attempt round-trip timeout in seconds (--probe-timeout=2).
  double probe_timeout() const { return get_double("probe-timeout", 2.0); }
  /// Retransmit attempts after the first timeout (--max-retries=2).
  int max_retries() const {
    return static_cast<int>(get_int("max-retries", 0));
  }
  /// Cap on a single retransmit backoff delay in seconds (--max-backoff=30).
  double max_backoff() const { return get_double("max-backoff", 60.0); }
  /// True when any fault-injection flag was given.
  bool has_transport_flags() const {
    return has("loss") || has("link-latency") || has("probe-timeout") ||
           has("max-retries") || has("max-backoff");
  }

  /// Search backend name (--backend=gossip): one of guess, flood,
  /// iterative, onehop, gossip. Parsed by guess::parse_backend.
  std::string backend() const { return get_string("backend", "guess"); }

  // --- fault scenarios (DESIGN.md §9) ---

  /// Inline fault-scenario spec (--scenario="at 600 kill 0.3"); empty when
  /// absent. Parsed by faults::Scenario::parse.
  std::string scenario() const { return get_string("scenario", ""); }
  /// Path to a fault-scenario spec file (--scenario-file=faults.txt).
  std::string scenario_file() const {
    return get_string("scenario-file", "");
  }
  /// Width of the time-resolved metrics intervals in seconds
  /// (--interval=60); 0 disables the interval series.
  double metrics_interval() const { return get_double("interval", 0.0); }

  // --- open-loop arrivals + overload control (DESIGN.md §13) ---

  /// Arrival mode (--arrival=open): "closed" (default; the population's own
  /// query clocks) or "open" (a configured-rate arrival process). Parsed by
  /// sim::parse_arrival_mode.
  std::string arrival() const { return get_string("arrival", "closed"); }
  /// Offered load in queries/second for open-loop runs (--offered-qps=50).
  double offered_qps() const { return get_double("offered-qps", 0.0); }
  /// Inter-arrival distribution (--arrival-dist=uniform): "poisson"
  /// (default) or "uniform". Parsed by sim::parse_arrival_dist.
  std::string arrival_dist() const {
    return get_string("arrival-dist", "poisson");
  }
  /// Overload policy (--overload-policy=admit): one of none, admit, shed,
  /// backpressure. Parsed by guess::parse_overload_policy.
  std::string overload_policy() const {
    return get_string("overload-policy", "none");
  }
  /// Latency SLO in milliseconds (--slo-ms=10000); queries satisfied within
  /// it count toward goodput.
  double slo_ms() const { return get_double("slo-ms", 10000.0); }

 private:
  std::optional<std::string> raw(const std::string& name) const;
  std::map<std::string, std::string> values_;
};

}  // namespace guess
