// Minimal --key=value command-line parsing for bench and example binaries.
//
// Every harness accepts the same small vocabulary (--full, --seed=, --seeds=,
// --threads=, --progress, --csv, plus harness-specific overrides); this keeps
// them dependency-free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace guess {

/// Parsed command line: positional arguments are rejected, flags are
/// `--name`, `--name=value`.
class Flags {
 public:
  /// Throws CheckError on malformed arguments.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Boolean flag: present without value, or =true/=false/=1/=0.
  bool get_bool(const std::string& name, bool fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  /// Common harness conventions.
  bool full() const { return get_bool("full", false); }
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(get_int("seed", 42));
  }
  int seeds() const { return static_cast<int>(get_int("seeds", 0)); }

  /// Worker threads for seed sweeps. 0 (the default) = auto: the
  /// GUESS_THREADS environment variable when set, else all hardware threads.
  int threads() const { return static_cast<int>(get_int("threads", 0)); }

  /// Event-queue backend name: "heap" (default) or "calendar". Parsed into
  /// sim::Scheduler by the harness (sim::parse_scheduler).
  std::string scheduler() const { return get_string("scheduler", "heap"); }

  /// Report sweep progress (replications completed / total) to stderr.
  bool progress() const { return get_bool("progress", false); }

 private:
  std::optional<std::string> raw(const std::string& name) const;
  std::map<std::string, std::string> values_;
};

}  // namespace guess
