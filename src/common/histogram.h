// Fixed-width histogram for distribution reporting in benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace guess {

/// Linear-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so total counts are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const;
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Render a compact ASCII view (one line per non-empty bin).
  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace guess
