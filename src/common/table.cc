#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace guess {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GUESS_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<Cell> row) {
  GUESS_CHECK_MSG(row.size() == headers_.size(),
                  "row has " << row.size() << " cells, expected "
                             << headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::render(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  double d = std::get<double>(cell);
  std::ostringstream os;
  if (std::abs(d) >= 1000.0 || d == std::floor(d)) {
    os << std::fixed << std::setprecision(1) << d;
  } else {
    os << std::fixed << std::setprecision(3) << d;
  }
  return os.str();
}

std::string TablePrinter::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& cells : rendered) emit_row(cells);
  return os.str();
}

std::string TablePrinter::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += "\"";
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ",";
    os << quote(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << quote(render(row[c]));
    }
    os << "\n";
  }
  return os.str();
}

void TablePrinter::print(std::ostream& os, const std::string& title) const {
  os << "\n=== " << title << " ===\n" << to_text();
}

}  // namespace guess
