#include "common/rng.h"

namespace guess {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> out;
  std::vector<std::size_t> scratch;
  sample_indices_into(n, k, out, scratch);
  return out;
}

void Rng::sample_indices_into(std::size_t n, std::size_t k,
                              std::vector<std::size_t>& out,
                              std::vector<std::size_t>& scratch) {
  GUESS_CHECK(k <= n);
  out.clear();
  if (out.capacity() < k) out.reserve(k);
  if (k == 0) return;
  // Dense case: partial Fisher–Yates over an explicit index vector.
  if (k * 3 >= n) {
    scratch.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + index(n - i);
      std::swap(scratch[i], scratch[j]);
      out.push_back(scratch[i]);
    }
    return;
  }
  // Sparse case: rejection sampling. k << n here, so a linear membership
  // scan of the accepted prefix beats a hash set — and accepts/rejects the
  // identical candidate sequence, keeping the engine draws unchanged.
  while (out.size() < k) {
    std::size_t candidate = index(n);
    bool fresh = true;
    for (std::size_t prior : out) {
      if (prior == candidate) {
        fresh = false;
        break;
      }
    }
    if (fresh) out.push_back(candidate);
  }
}

}  // namespace guess
