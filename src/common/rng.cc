#include "common/rng.h"

#include <unordered_set>

namespace guess {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  GUESS_CHECK(k <= n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Dense case: partial Fisher–Yates over an explicit index vector.
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + index(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    std::size_t candidate = index(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace guess
