#include "common/trace.h"

#include <iomanip>
#include <ostream>

#include "common/check.h"

namespace guess {

Tracer::Tracer(unsigned category_mask, std::size_t capacity)
    : mask_(category_mask), capacity_(capacity) {
  GUESS_CHECK(capacity > 0);
  ring_.reserve(capacity);
}

void Tracer::record(TraceCategory category, sim::Time at, std::string line) {
  if (!on(category)) return;
  TraceRecord record{at, category, std::move(line)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[count_ % capacity_] = std::move(record);
  }
  ++count_;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(size());
  if (count_ <= capacity_) {
    out = ring_;
  } else {
    std::size_t start = count_ % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

const char* Tracer::category_name(TraceCategory category) {
  switch (category) {
    case TraceCategory::kChurn: return "churn";
    case TraceCategory::kPing: return "ping";
    case TraceCategory::kQuery: return "query";
    case TraceCategory::kCache: return "cache";
    case TraceCategory::kAttack: return "attack";
    case TraceCategory::kTransport: return "transport";
    case TraceCategory::kFault: return "fault";
  }
  return "?";
}

void Tracer::dump(std::ostream& os) const {
  // std::fixed/setprecision are sticky stream state; restore the caller's
  // formatting so dumping a trace never changes how later output (bench
  // tables, test logs) renders. Found by the parallel-runner reentrancy
  // audit: stream format flags are global mutable state.
  std::ios_base::fmtflags flags = os.flags();
  std::streamsize precision = os.precision();
  for (const TraceRecord& record : snapshot()) {
    os << std::fixed << std::setprecision(3) << std::setw(10) << record.at
       << "  " << std::setw(6) << category_name(record.category) << "  "
       << record.line << "\n";
  }
  os.flags(flags);
  os.precision(precision);
}

}  // namespace guess
