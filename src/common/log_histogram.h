// LogHistogram — deterministic streaming percentiles on a fixed bucket grid.
//
// The open-loop service bench (DESIGN.md §13) needs p50/p95/p99/p999 query
// latency over millions of samples without storing them. A fixed-layout
// log-spaced histogram gives:
//   * O(1) add, zero heap allocations ever (std::array storage);
//   * bitwise-identical state for the same multiset of samples in any
//     arrival order (counts are integers; no data-dependent layout), which
//     is what makes cross-scheduler and cross-thread-count determinism
//     assertable on latency results;
//   * mergeable partials (operator+=) with exact associativity, so sharded
//     or per-interval histograms can be combined freely.
//
// Layout: kSubBuckets buckets per power of two (base-2 "octave"), covering
// 2^kMinExp .. 2^kMaxExp. With 8 sub-buckets per octave the worst-case
// relative error of a reported percentile is 1/8 of an octave (~9%) — tail
// latencies are quoted in those terms (DESIGN.md §13.2). Values at or below
// the range floor land in an underflow bucket reported as 0.0; values at or
// above the ceiling land in an overflow bucket reported as the range
// ceiling.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace guess {

class LogHistogram {
 public:
  static constexpr int kMinExp = -20;      ///< range floor 2^-20 (~1 µs)
  static constexpr int kMaxExp = 30;       ///< range ceiling 2^30 (~34 y)
  static constexpr int kSubBuckets = 8;    ///< resolution: octave/8 (~9%)
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  /// Record one sample. Non-positive and sub-floor values count in the
  /// underflow bucket; NaN is treated as underflow (never silently dropped,
  /// so totals always conserve).
  void add(double value) { ++counts_[bucket_index(value)]; }

  /// Record `n` samples of the same value (bulk add for merges of
  /// pre-binned data).
  void add_n(double value, std::uint64_t n) { counts_[bucket_index(value)] += n; }

  /// Total samples recorded.
  std::uint64_t count() const;

  bool empty() const { return count() == 0; }

  /// Nearest-rank percentile, p in [0, 100]. Returns the representative
  /// value (upper bound) of the bucket holding the rank, 0.0 on an empty
  /// histogram. p=0 reports the first occupied bucket, p=100 the last.
  double percentile(double p) const;

  /// Merge another histogram's counts into this one. Exactly associative
  /// and commutative (integer bucket counts).
  LogHistogram& operator+=(const LogHistogram& other);

  /// Bitwise state equality (same counts in every bucket).
  friend bool operator==(const LogHistogram& a, const LogHistogram& b) {
    return a.counts_ == b.counts_;
  }

  /// Bucket index a value maps to (exposed for tests).
  static std::size_t bucket_index(double value);

  /// Representative (upper-bound) value of a bucket; underflow reports 0.0.
  static double bucket_value(std::size_t index);

  /// Raw count of one bucket (exposed for tests / serialization).
  std::uint64_t bucket_count(std::size_t index) const { return counts_[index]; }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
};

}  // namespace guess
