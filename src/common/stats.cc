#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace guess {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStat::max() const { return n_ == 0 ? 0.0 : max_; }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  std::size_t n = n_ + other.n_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.n_) /
                            static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(n_) *
            static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ = mean;
  n_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::percentile(double p) const {
  GUESS_CHECK(p >= 0.0 && p <= 100.0);
  GUESS_CHECK(!values_.empty());
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  return sorted[std::min(rank, sorted.size() - 1)];
}

double SampleSet::mean() const {
  if (values_.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc / static_cast<double>(values_.size());
}

double SampleSet::max() const {
  GUESS_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

std::vector<double> SampleSet::sorted_descending() const {
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

}  // namespace guess
