// Deterministic random number generation for simulations.
//
// Every stochastic component in guesslib draws from an Rng that is seeded
// explicitly; the same seed always reproduces the same run. A single
// mt19937_64 per simulation keeps runs deterministic regardless of the order
// in which components were constructed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/check.h"

namespace guess {

/// Seeded pseudo-random source with the sampling helpers the simulator needs.
///
/// Not thread-safe; the discrete-event simulator is single-threaded by design
/// (determinism is a feature, see DESIGN.md).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    GUESS_CHECK(lo <= hi);
    return lo + (hi - lo) * unit_(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    GUESS_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    GUESS_CHECK(n > 0);
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_));
  }

  /// True with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return unit_(engine_) < p;
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) {
    GUESS_CHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Log-normal variate with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    GUESS_CHECK(!items.empty());
    return items[index(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Sample k distinct indices from [0, n) (k <= n). O(k) expected when
  /// k << n, O(n) otherwise.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Allocation-free variant for hot paths: writes the sample into `out`
  /// (cleared first) using `scratch` for the dense branch's index pool.
  /// Both vectors keep their capacity across calls, so a warmed caller
  /// never allocates. Draws the exact engine sequence of sample_indices —
  /// callers may switch between the two without perturbing determinism.
  void sample_indices_into(std::size_t n, std::size_t k,
                           std::vector<std::size_t>& out,
                           std::vector<std::size_t>& scratch);

  /// Raw engine access for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

  /// Derive an independent child generator (stable: depends only on this
  /// generator's current state). Used to give subsystems their own streams.
  Rng split() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace guess
