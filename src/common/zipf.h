// Zipf (power-law) discrete distribution over ranks 0..n-1.
//
// Rank r (0-based) has weight 1 / (r+1)^alpha. Used for file popularity and
// query popularity in the content model (the paper's workload model [21]
// assumes Zipf-like popularity, as measured for Gnutella-era systems).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace guess {

/// Precomputed-CDF Zipf sampler; sampling is O(log n) via binary search.
class ZipfDistribution {
 public:
  /// @param n      number of ranks (> 0)
  /// @param alpha  skew exponent (>= 0; 0 degenerates to uniform)
  ZipfDistribution(std::size_t n, double alpha);

  std::size_t n() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

  /// Draw a rank in [0, n).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const;

  /// The normalizing constant H = sum_r (r+1)^-alpha.
  double normalizer() const { return normalizer_; }

 private:
  double alpha_;
  double normalizer_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace guess
