// Free-list object pool.
//
// Objects that are created and destroyed at a high steady rate (one
// QueryExecution per query) are recycled instead: finished objects return to
// the pool and the next acquisition reuses them, so the only allocations are
// the pool's warm-up. The pooled type supplies its own reset discipline —
// the pool hands back objects in whatever state they were put() in.
#pragma once

#include <memory>
#include <utility>
#include <vector>

namespace guess {

template <typename T>
class FreeListPool {
 public:
  /// A recycled object, or nullptr when the pool is empty (the caller
  /// constructs a fresh one — this is the warm-up allocation).
  std::unique_ptr<T> take() {
    if (free_.empty()) return nullptr;
    std::unique_ptr<T> obj = std::move(free_.back());
    free_.pop_back();
    return obj;
  }

  void put(std::unique_ptr<T> obj) { free_.push_back(std::move(obj)); }

  std::size_t size() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<T>> free_;
};

}  // namespace guess
