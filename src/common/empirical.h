// Empirical distribution described by a quantile table.
//
// Used to synthesize "measured" distributions the paper resamples from
// (peer session lifetimes, files shared per peer — Saroiu et al. [18]).
// The table lists (quantile, value) points of the CDF; sampling inverts the
// CDF with piecewise-linear interpolation between points, giving a continuous
// heavy-tailed distribution from a handful of published percentiles.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"

namespace guess {

/// Piecewise-linear inverse-CDF sampler.
class EmpiricalDistribution {
 public:
  struct Point {
    double quantile;  // in [0, 1], strictly increasing across the table
    double value;     // non-decreasing across the table
  };

  /// The table must start at quantile 0 and end at quantile 1.
  explicit EmpiricalDistribution(std::vector<Point> table);

  /// Draw a value.
  double sample(Rng& rng) const { return quantile(rng.uniform()); }

  /// Inverse CDF at q in [0, 1].
  double quantile(double q) const;

  /// Mean of the piecewise-linear distribution (exact, closed form).
  double mean() const;

 private:
  std::vector<Point> table_;
};

}  // namespace guess
