#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace guess {

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
    : alpha_(alpha) {
  GUESS_CHECK(n > 0);
  GUESS_CHECK(alpha >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -alpha);
    cdf_[r] = acc;
  }
  normalizer_ = acc;
  for (double& c : cdf_) c /= normalizer_;
  cdf_.back() = 1.0;  // guard against rounding drift
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t rank) const {
  GUESS_CHECK(rank < cdf_.size());
  return std::pow(static_cast<double>(rank + 1), -alpha_) / normalizer_;
}

}  // namespace guess
