// Lightweight event tracing for simulations.
//
// A Tracer is a bounded ring buffer of (time, category, line) records.
// Tracing is opt-in per category; when a category is off the only cost at a
// trace point is one branch, so instrumented code can stay instrumented.
// Intended use: attach to a GuessNetwork, reproduce a puzzling run with the
// same seed, and read the event log (see examples/trace_viewer.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace guess {

enum class TraceCategory : unsigned {
  kChurn = 1u << 0,      ///< births, deaths
  kPing = 1u << 1,       ///< pings, pongs, evictions by ping
  kQuery = 1u << 2,      ///< query start/probe/finish
  kCache = 1u << 3,      ///< link-cache insertions/evictions
  kAttack = 1u << 4,     ///< poisoning, detection, blacklisting
  kTransport = 1u << 5,  ///< message loss, timeouts, retransmits
  kFault = 1u << 6,      ///< scenario faults: mass kills, partitions, windows
};

/// Every category, in bit order. New categories must be appended here (and
/// to Tracer::category_name) — kTraceAll is derived from this list, so a
/// forgotten entry fails the static_assert below instead of being silently
/// excluded from default-constructed tracers.
inline constexpr TraceCategory kTraceCategories[] = {
    TraceCategory::kChurn, TraceCategory::kPing,   TraceCategory::kQuery,
    TraceCategory::kCache, TraceCategory::kAttack, TraceCategory::kTransport,
    TraceCategory::kFault,
};

namespace trace_detail {
constexpr unsigned all_categories_mask() {
  unsigned mask = 0;
  for (TraceCategory category : kTraceCategories) {
    mask |= static_cast<unsigned>(category);
  }
  return mask;
}
}  // namespace trace_detail

inline constexpr unsigned kTraceAll = trace_detail::all_categories_mask();

static_assert(kTraceAll ==
                  (1u << (sizeof(kTraceCategories) /
                          sizeof(kTraceCategories[0]))) -
                      1,
              "TraceCategory values must be distinct single bits starting at "
              "bit 0 with no gaps, and every category must be listed in "
              "kTraceCategories");

struct TraceRecord {
  sim::Time at = 0.0;
  TraceCategory category = TraceCategory::kChurn;
  std::string line;
};

/// Bounded event log. Not thread-safe (the simulator is single-threaded).
class Tracer {
 public:
  /// @param category_mask  OR of TraceCategory bits to record
  /// @param capacity       ring size; older records are dropped
  explicit Tracer(unsigned category_mask = kTraceAll,
                  std::size_t capacity = 4096);

  bool on(TraceCategory category) const {
    return (mask_ & static_cast<unsigned>(category)) != 0;
  }

  /// Append a record (dropped silently if the category is off).
  void record(TraceCategory category, sim::Time at, std::string line);

  /// Records in chronological order (oldest survivor first).
  std::vector<TraceRecord> snapshot() const;

  std::size_t size() const { return count_ < capacity_ ? count_ : capacity_; }
  std::uint64_t total_recorded() const { return count_; }
  std::size_t capacity() const { return capacity_; }

  /// Human-readable dump, one record per line.
  void dump(std::ostream& os) const;

  static const char* category_name(TraceCategory category);

 private:
  unsigned mask_;
  std::size_t capacity_;
  std::vector<TraceRecord> ring_;
  std::uint64_t count_ = 0;  // total records ever accepted
};

}  // namespace guess
