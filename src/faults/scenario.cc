#include "faults/scenario.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace guess::faults {

namespace {

/// Whitespace-split one statement into tokens.
std::vector<std::string> tokenize(const std::string& statement) {
  std::vector<std::string> tokens;
  std::istringstream is(statement);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

/// A token cursor with error messages that name the offending token.
class Cursor {
 public:
  Cursor(std::vector<std::string> tokens, const std::string& statement)
      : tokens_(std::move(tokens)), statement_(statement) {}

  bool done() const { return next_ >= tokens_.size(); }

  const std::string& take(const char* expected_what) {
    GUESS_CHECK_MSG(!done(), "scenario: expected " << expected_what
                                                   << " at end of statement '"
                                                   << statement_ << "'");
    return tokens_[next_++];
  }

  void expect_keyword(const char* keyword) {
    const std::string& token = take(keyword);
    GUESS_CHECK_MSG(token == keyword, "scenario: expected '"
                                          << keyword << "', got '" << token
                                          << "' in '" << statement_ << "'");
  }

  /// Strict finite-number parse: the whole token must be consumed and the
  /// value must be finite (rejects "nan", "inf", "0.3x", "").
  double number(const std::string& token, const char* what) const {
    const char* begin = token.c_str();
    char* end = nullptr;
    double value = std::strtod(begin, &end);
    GUESS_CHECK_MSG(end != begin && *end == '\0' && std::isfinite(value),
                    "scenario: bad " << what << " '" << token << "' in '"
                                     << statement_ << "'");
    return value;
  }

  double take_number(const char* what) { return number(take(what), what); }

  std::size_t take_count(const char* what) {
    double value = take_number(what);
    GUESS_CHECK_MSG(value >= 0.0 && value == std::floor(value),
                    "scenario: " << what << " must be a whole number, got '"
                                 << tokens_[next_ - 1] << "' in '"
                                 << statement_ << "'");
    return static_cast<std::size_t>(value);
  }

  void finish() {
    GUESS_CHECK_MSG(done(), "scenario: unexpected trailing token '"
                                << tokens_[next_] << "' in '" << statement_
                                << "'");
  }

  const std::string& statement() const { return statement_; }

 private:
  std::vector<std::string> tokens_;
  std::string statement_;
  std::size_t next_ = 0;
};

FaultAction parse_statement(const std::string& statement) {
  Cursor cursor(tokenize(statement), statement);
  FaultAction action;
  cursor.expect_keyword("at");
  action.at = cursor.take_number("time");

  const std::string& verb = cursor.take("an action keyword");
  if (verb == "kill") {
    action.kind = FaultKind::kKill;
    action.fraction = cursor.take_number("kill fraction");
  } else if (verb == "join") {
    action.kind = FaultKind::kJoin;
    action.count = cursor.take_count("join count");
  } else if (verb == "partition") {
    action.kind = FaultKind::kPartition;
    std::size_t ways = cursor.take_count("partition ways");
    action.ways = static_cast<int>(ways);
    cursor.expect_keyword("for");
    action.duration = cursor.take_number("partition duration");
  } else if (verb == "degrade") {
    action.kind = FaultKind::kDegrade;
    // key=value pairs until the "for" keyword.
    bool saw_knob = false;
    for (;;) {
      const std::string& token = cursor.take("'for' or a degrade knob");
      if (token == "for") break;
      auto eq = token.find('=');
      GUESS_CHECK_MSG(eq != std::string::npos,
                      "scenario: expected key=value or 'for', got '"
                          << token << "' in '" << statement << "'");
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "loss") {
        action.loss = cursor.number(value, "degrade loss");
      } else if (key == "latency") {
        action.latency_factor = cursor.number(value, "degrade latency factor");
      } else {
        GUESS_CHECK_MSG(false, "scenario: unknown degrade knob '"
                                   << key << "' in '" << statement << "'");
      }
      saw_knob = true;
    }
    GUESS_CHECK_MSG(saw_knob, "scenario: degrade needs at least one of "
                              "loss=/latency= in '"
                                  << statement << "'");
    action.duration = cursor.take_number("degrade duration");
  } else if (verb == "poison") {
    action.kind = FaultKind::kPoison;
    const std::string& state = cursor.take("'on' or 'off'");
    GUESS_CHECK_MSG(state == "on" || state == "off",
                    "scenario: expected 'on' or 'off', got '"
                        << state << "' in '" << statement << "'");
    action.poison_on = state == "on";
  } else if (verb == "attack") {
    action.kind = FaultKind::kAttack;
    const std::string& kind = cursor.take("an attack kind");
    if (kind == "eclipse") {
      action.attack = AttackKind::kEclipse;
    } else if (kind == "sybil") {
      action.attack = AttackKind::kSybil;
    } else if (kind == "pong-flood") {
      action.attack = AttackKind::kPongFlood;
    } else if (kind == "withhold") {
      action.attack = AttackKind::kWithhold;
    } else {
      GUESS_CHECK_MSG(false, "scenario: unknown attack kind '"
                                 << kind << "' in '" << statement << "'");
    }
    const std::string& frac = cursor.take("frac=<fraction>");
    GUESS_CHECK_MSG(frac.rfind("frac=", 0) == 0,
                    "scenario: expected frac=<fraction>, got '"
                        << frac << "' in '" << statement << "'");
    action.fraction = cursor.number(frac.substr(5), "attack fraction");
    cursor.expect_keyword("for");
    action.duration = cursor.take_number("attack duration");
  } else {
    GUESS_CHECK_MSG(false, "scenario: unknown action '" << verb << "' in '"
                                                        << statement << "'");
  }
  cursor.finish();
  return action;
}

/// Strip a trailing '#'-comment and normalize newlines to ';' separators.
std::string strip_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_comment = false;
  for (char c : text) {
    if (c == '\n') {
      in_comment = false;
      out.push_back(';');
    } else if (c == '#') {
      in_comment = true;
    } else if (!in_comment) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKill: return "kill";
    case FaultKind::kJoin: return "join";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kPoison: return "poison";
    case FaultKind::kAttack: return "attack";
  }
  return "?";
}

const char* attack_kind_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kEclipse: return "eclipse";
    case AttackKind::kSybil: return "sybil";
    case AttackKind::kPongFlood: return "pong-flood";
    case AttackKind::kWithhold: return "withhold";
  }
  return "?";
}

Scenario Scenario::parse(const std::string& spec) {
  Scenario scenario;
  std::stringstream ss(strip_comments(spec));
  std::string statement;
  while (std::getline(ss, statement, ';')) {
    if (tokenize(statement).empty()) continue;  // blank between separators
    scenario.actions_.push_back(parse_statement(statement));
  }
  scenario.validate();
  return scenario;
}

Scenario Scenario::load_file(const std::string& path) {
  std::ifstream in(path);
  GUESS_CHECK_MSG(in.good(), "scenario: cannot read file '" << path << "'");
  std::ostringstream contents;
  contents << in.rdbuf();
  return parse(contents.str());
}

void Scenario::validate() const {
  for (const FaultAction& action : actions_) {
    GUESS_CHECK_MSG(std::isfinite(action.at) && action.at >= 0.0,
                    "scenario: " << fault_kind_name(action.kind)
                                 << " time must be finite and >= 0, got "
                                 << action.at);
    switch (action.kind) {
      case FaultKind::kKill:
        GUESS_CHECK_MSG(
            std::isfinite(action.fraction) && action.fraction > 0.0 &&
                action.fraction <= 1.0,
            "scenario: kill fraction must be in (0, 1], got "
                << action.fraction);
        break;
      case FaultKind::kJoin:
        GUESS_CHECK_MSG(action.count >= 1,
                        "scenario: join count must be >= 1");
        break;
      case FaultKind::kPartition:
        GUESS_CHECK_MSG(action.ways >= 2,
                        "scenario: partition ways must be >= 2, got "
                            << action.ways);
        break;
      case FaultKind::kDegrade:
        GUESS_CHECK_MSG(
            std::isfinite(action.loss) && action.loss >= 0.0 &&
                action.loss <= 1.0,
            "scenario: degrade loss must be in [0, 1], got " << action.loss);
        GUESS_CHECK_MSG(std::isfinite(action.latency_factor) &&
                            action.latency_factor >= 1.0,
                        "scenario: degrade latency factor must be >= 1, got "
                            << action.latency_factor);
        break;
      case FaultKind::kPoison:
        break;
      case FaultKind::kAttack:
        GUESS_CHECK_MSG(
            std::isfinite(action.fraction) && action.fraction > 0.0 &&
                action.fraction <= 1.0,
            "scenario: attack fraction must be in (0, 1], got "
                << action.fraction);
        break;
    }
    if (action.windowed()) {
      GUESS_CHECK_MSG(std::isfinite(action.duration) && action.duration > 0.0,
                      "scenario: " << fault_kind_name(action.kind)
                                   << " window duration must be > 0, got "
                                   << action.duration);
    }
  }
  // Overlapping windows of the same kind would leave "which window is
  // active" dependent on event interleaving; reject them outright.
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (!actions_[i].windowed()) continue;
    for (std::size_t j = i + 1; j < actions_.size(); ++j) {
      if (actions_[j].kind != actions_[i].kind) continue;
      // Attack windows only clash with the same attack kind — combined
      // attacks (e.g. eclipse + withhold) are legitimate scenarios.
      if (actions_[i].kind == FaultKind::kAttack &&
          actions_[j].attack != actions_[i].attack) {
        continue;
      }
      bool disjoint = actions_[j].at >= actions_[i].end() ||
                      actions_[i].at >= actions_[j].end();
      if (actions_[i].kind == FaultKind::kAttack) {
        GUESS_CHECK_MSG(disjoint, "scenario: overlapping "
                                      << attack_kind_name(actions_[i].attack)
                                      << " attack windows at t="
                                      << actions_[i].at << " and t="
                                      << actions_[j].at);
      } else {
        GUESS_CHECK_MSG(disjoint, "scenario: overlapping "
                                      << fault_kind_name(actions_[i].kind)
                                      << " windows at t=" << actions_[i].at
                                      << " and t=" << actions_[j].at);
      }
    }
  }
}

bool Scenario::uses_degradation() const {
  for (const FaultAction& action : actions_) {
    if (action.kind == FaultKind::kDegrade) return true;
  }
  return false;
}

bool Scenario::uses_attacks() const {
  for (const FaultAction& action : actions_) {
    if (action.kind == FaultKind::kAttack) return true;
  }
  return false;
}

sim::Time Scenario::first_fault_time() const {
  sim::Time first = 0.0;
  bool any = false;
  for (const FaultAction& action : actions_) {
    if (!any || action.at < first) first = action.at;
    any = true;
  }
  return first;
}

sim::Time Scenario::last_fault_end() const {
  sim::Time last = 0.0;
  for (const FaultAction& action : actions_) {
    if (action.end() > last) last = action.end();
  }
  return last;
}

std::string Scenario::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const FaultAction& a = actions_[i];
    if (i > 0) os << "; ";
    os << "at " << a.at << " " << fault_kind_name(a.kind);
    switch (a.kind) {
      case FaultKind::kKill: os << " " << a.fraction; break;
      case FaultKind::kJoin: os << " " << a.count; break;
      case FaultKind::kPartition:
        os << " " << a.ways << " for " << a.duration;
        break;
      case FaultKind::kDegrade:
        os << " loss=" << a.loss;
        if (a.latency_factor != 1.0) os << " latency=" << a.latency_factor;
        os << " for " << a.duration;
        break;
      case FaultKind::kPoison: os << (a.poison_on ? " on" : " off"); break;
      case FaultKind::kAttack:
        os << " " << attack_kind_name(a.attack) << " frac=" << a.fraction
           << " for " << a.duration;
        break;
    }
  }
  return os.str();
}

}  // namespace guess::faults
