// The surface a simulation exposes to the fault engine (DESIGN.md §9).
//
// The faults subsystem knows *when* correlated faults happen (scenario.h) and
// *schedules* them (fault_engine.h), but what a mass kill or a partition
// means — which peers, which edges, which transport — belongs to the network.
// FaultHost is that boundary: GuessNetwork implements it, and the engine
// drives it without depending on guesslib's core, keeping the layering
// acyclic (guess_core depends on guess_faults, never the reverse).
#pragma once

#include <cstddef>

#include "faults/scenario.h"

namespace guess::faults {

class FaultHost {
 public:
  virtual ~FaultHost() = default;

  /// Mass departure: `fraction` of the currently-live population (chosen by
  /// the host's RNG) leaves at once. Unlike churn deaths, victims are NOT
  /// replaced by newborns — the population stays reduced until a join.
  virtual void fault_mass_kill(double fraction) = 0;

  /// Flash crowd: `count` new peers join at once, bootstrapping through the
  /// normal newborn path.
  virtual void fault_mass_join(std::size_t count) = 0;

  /// Split the live population into `ways` groups; until cleared, every
  /// cross-group exchange is forced to fail (transport modulation).
  virtual void fault_set_partition(int ways) = 0;
  virtual void fault_clear_partition() = 0;

  /// Transport degradation window: `extra_loss` is added to every leg's loss
  /// probability and drawn latencies are multiplied by `latency_factor`.
  virtual void fault_set_degradation(double extra_loss,
                                     double latency_factor) = 0;
  virtual void fault_clear_degradation() = 0;

  /// Toggle the poisoning attack (§6.4): while off, malicious peers answer
  /// with honest Pongs (they still share no files).
  virtual void fault_set_poisoning(bool active) = 0;

  /// Adversary attack window (DESIGN.md §11): at onset the host deploys a
  /// cohort of `fraction` (of the live population) adversaries running the
  /// given behavior; at the window end the whole cohort is retired without
  /// replacement. Overlapping windows of different kinds may be active at
  /// once; the engine never starts the same kind twice concurrently.
  virtual void fault_start_attack(AttackKind kind, double fraction) = 0;
  virtual void fault_stop_attack(AttackKind kind) = 0;
};

}  // namespace guess::faults
