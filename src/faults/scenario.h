// Deterministic fault-scenario specs (DESIGN.md §9).
//
// A Scenario is a small script of time-correlated fault actions applied to a
// running simulation — the correlated failures (mass departures, partitions,
// degradation windows, poisoning onset) that per-message i.i.d. fault
// injection (§8) cannot express. The textual grammar, one statement per
// `;`/newline:
//
//   at 600 kill 0.30                      # 30% of live peers depart at once
//   at 600 partition 2 for 300            # 2-way partition, heals at 900
//   at 1200 degrade loss=0.5 for 120      # extra per-leg loss for 120 s
//   at 1200 degrade loss=0.2 latency=4 for 60
//   at 1800 join 2000                     # flash crowd of 2000 newcomers
//   at 300 poison off                     # attackers behave until "poison on"
//   at 600 attack eclipse frac=0.05 for 300   # adversary cohort window
//   at 900 attack withhold frac=0.1 for 200   # slowloris probe stalling
//
// Times are absolute simulated seconds (t = 0 is simulation start, i.e. the
// beginning of warmup). Parsing is strict: every malformed spec throws a
// CheckError naming the offending token. Scenarios are pure data — applying
// them is the FaultEngine's job (fault_engine.h), and every action draws its
// randomness from the owning network's RNG, so a scenario run is bitwise
// deterministic across scheduler backends and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace guess::faults {

/// What a FaultAction does when it fires.
enum class FaultKind {
  kKill,       ///< mass departure: a fraction of live peers leaves at once
  kJoin,       ///< flash crowd: `count` new peers join at once
  kPartition,  ///< k-way partition for `duration` (cross-partition silence)
  kDegrade,    ///< transport degradation window: extra loss / slower links
  kPoison,     ///< toggle the PoisonGenerator on or off (§6.4 onset)
  kAttack,     ///< adversary-cohort window: an active attack for `duration`
};

/// Which adversary behavior a kAttack window deploys (adversary zoo,
/// DESIGN.md §11). Values are stable — they index per-kind rosters.
enum class AttackKind {
  kEclipse,    ///< colluders saturate victims' link caches via pongs
  kSybil,      ///< flash crowd of short-lived identities (tombstone churn)
  kPongFlood,  ///< oversized pong payloads to inflate bookkeeping
  kWithhold,   ///< accept probes, never reply (slowloris probe stalling)
};

/// Number of AttackKind enumerators (roster array sizing).
inline constexpr std::size_t kNumAttackKinds = 4;

/// "kill" / "join" / "partition" / "degrade" / "poison" / "attack".
const char* fault_kind_name(FaultKind kind);

/// "eclipse" / "sybil" / "pong-flood" / "withhold".
const char* attack_kind_name(AttackKind kind);

/// One scheduled fault. Only the fields of the action's kind are meaningful.
struct FaultAction {
  FaultKind kind = FaultKind::kKill;
  sim::Time at = 0.0;  ///< absolute simulated time of onset

  double fraction = 0.0;        ///< kKill: fraction of live peers in (0, 1]
  std::size_t count = 0;        ///< kJoin: peers joining, >= 1
  int ways = 0;                 ///< kPartition: partition count, >= 2
  sim::Duration duration = 0.0; ///< kPartition/kDegrade: window length, > 0
  double loss = 0.0;            ///< kDegrade: extra per-leg loss in [0, 1]
  double latency_factor = 1.0;  ///< kDegrade: multiplier on drawn latency
  bool poison_on = false;       ///< kPoison: the toggle's new state
  AttackKind attack = AttackKind::kEclipse;  ///< kAttack: adversary behavior

  /// True for window actions (partition/degrade/attack) that schedule an end
  /// event.
  bool windowed() const {
    return kind == FaultKind::kPartition || kind == FaultKind::kDegrade ||
           kind == FaultKind::kAttack;
  }

  sim::Time end() const { return windowed() ? at + duration : at; }
};

/// An ordered list of fault actions plus the spec machinery: parse, file
/// loading, validation, re-serialization, and the window bounds the recovery
/// metrics are computed against.
class Scenario {
 public:
  Scenario() = default;

  /// Parse the textual grammar above. Statements separated by ';' or
  /// newlines; '#' starts a comment running to end of line. Throws
  /// CheckError naming the offending token on any malformed input. The
  /// parsed scenario is validated (see validate()).
  static Scenario parse(const std::string& spec);

  /// Read `path` and parse its contents. Throws CheckError if the file
  /// cannot be read.
  static Scenario load_file(const std::string& path);

  /// Semantic checks beyond the grammar: fractions in (0, 1], join counts
  /// >= 1, partition ways >= 2, positive window durations, finite values,
  /// and no overlapping windows of the same kind (overlap would make
  /// "which window is active" ambiguous). Attack windows of *different*
  /// AttackKinds may overlap (combined attacks are legitimate scenarios);
  /// same-kind attack windows may not. Throws CheckError.
  void validate() const;

  const std::vector<FaultAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  std::size_t size() const { return actions_.size(); }

  /// Append one action (programmatic construction; benches build canned
  /// scenarios this way). Call validate() when done.
  Scenario& add(FaultAction action) {
    actions_.push_back(action);
    return *this;
  }

  /// True if any action opens a transport degradation window (these require
  /// the lossy transport; SimulationConfig::validate enforces it).
  bool uses_degradation() const;

  /// True if any action opens an adversary attack window.
  bool uses_attacks() const;

  /// Onset of the earliest fault (0 when empty).
  sim::Time first_fault_time() const;

  /// End of the latest fault window — the moment every scheduled fault is
  /// over and recovery can begin (0 when empty). Point actions (kill, join,
  /// poison) end at their own onset.
  sim::Time last_fault_end() const;

  /// Canonical one-line spec string (round-trips through parse()).
  std::string describe() const;

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace guess::faults
