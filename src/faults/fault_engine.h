// Deterministic fault-scenario engine (DESIGN.md §9).
//
// Translates a Scenario into events on the slab event queue: each action
// fires a FaultHost call at its onset, and window actions (partition,
// degrade) schedule a matching clear at onset + duration. The engine holds
// no fault state of its own — the host does — so determinism reduces to the
// event queue's (time, seq) ordering guarantee: actions scheduled before the
// run fire in scenario order at equal times, identically under the heap and
// calendar schedulers.
#pragma once

#include <cstdint>

#include "faults/fault_host.h"
#include "faults/scenario.h"
#include "sim/simulator.h"

namespace guess::faults {

class FaultEngine {
 public:
  /// The host and simulator must outlive the engine; the scenario is copied.
  FaultEngine(Scenario scenario, sim::Simulator& simulator, FaultHost& host);

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  /// Schedule every action (and every window end). Call once, before the
  /// simulator runs; actions whose time is already in the past would fail
  /// the simulator's monotonicity check.
  void schedule();

  const Scenario& scenario() const { return scenario_; }

  /// Actions applied so far (tests, progress reporting).
  std::size_t fired() const { return fired_; }

 private:
  /// Inline event thunk: {engine, action index, onset-or-end}. Scheduling a
  /// fault never allocates (static_asserted in fault_engine.cc).
  struct ActionFired;

  void apply(std::uint32_t index);
  void expire(std::uint32_t index);

  Scenario scenario_;
  sim::Simulator& simulator_;
  FaultHost& host_;
  std::size_t fired_ = 0;
  bool scheduled_ = false;
};

}  // namespace guess::faults
