#include "faults/fault_engine.h"

#include <utility>

#include "common/check.h"

namespace guess::faults {

struct FaultEngine::ActionFired {
  FaultEngine* engine;
  std::uint32_t index;
  bool end;  // true: a window's clear event, false: the action's onset
  void operator()() const {
    if (end) {
      engine->expire(index);
    } else {
      engine->apply(index);
    }
  }
};

FaultEngine::FaultEngine(Scenario scenario, sim::Simulator& simulator,
                         FaultHost& host)
    : scenario_(std::move(scenario)), simulator_(simulator), host_(host) {
  scenario_.validate();
}

void FaultEngine::schedule() {
  static_assert(sim::EventQueue::Callback::stores_inline<ActionFired>());
  GUESS_CHECK_MSG(!scheduled_, "FaultEngine::schedule() called twice");
  scheduled_ = true;
  const auto& actions = scenario_.actions();
  for (std::uint32_t i = 0; i < actions.size(); ++i) {
    const FaultAction& action = actions[i];
    simulator_.at(action.at, ActionFired{this, i, /*end=*/false});
    if (action.windowed()) {
      simulator_.at(action.end(), ActionFired{this, i, /*end=*/true});
    }
  }
}

void FaultEngine::apply(std::uint32_t index) {
  const FaultAction& action = scenario_.actions()[index];
  ++fired_;
  switch (action.kind) {
    case FaultKind::kKill:
      host_.fault_mass_kill(action.fraction);
      break;
    case FaultKind::kJoin:
      host_.fault_mass_join(action.count);
      break;
    case FaultKind::kPartition:
      host_.fault_set_partition(action.ways);
      break;
    case FaultKind::kDegrade:
      host_.fault_set_degradation(action.loss, action.latency_factor);
      break;
    case FaultKind::kPoison:
      host_.fault_set_poisoning(action.poison_on);
      break;
    case FaultKind::kAttack:
      host_.fault_start_attack(action.attack, action.fraction);
      break;
  }
}

void FaultEngine::expire(std::uint32_t index) {
  const FaultAction& action = scenario_.actions()[index];
  switch (action.kind) {
    case FaultKind::kPartition:
      host_.fault_clear_partition();
      break;
    case FaultKind::kDegrade:
      host_.fault_clear_degradation();
      break;
    case FaultKind::kAttack:
      host_.fault_stop_attack(action.attack);
      break;
    default:
      GUESS_CHECK_MSG(false, "window end for a non-window action");
  }
}

}  // namespace guess::faults
