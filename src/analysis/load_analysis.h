// Load-distribution analysis for the fairness study (Figure 13).
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"

namespace guess::analysis {

/// Summary of how evenly a load sample is spread across peers.
struct LoadSummary {
  double total = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p99 = 0.0;
  double gini = 0.0;        ///< 0 = perfectly even, 1 = one peer does it all
  double top1pct_share = 0.0;  ///< fraction of load carried by the top 1%
};

LoadSummary summarize_load(const SampleSet& loads);

/// Gini coefficient of a non-negative sample (0 when empty or all-zero).
double gini_coefficient(std::vector<double> values);

/// Share of total carried by the `fraction` highest-loaded peers.
double top_share(std::vector<double> values, double fraction);

/// The ranked curve of Figure 13, decimated to at most `max_points` rows
/// (log-spaced ranks, as in the paper's log-scale x axis).
std::vector<std::pair<std::size_t, double>> ranked_curve(
    const SampleSet& loads, std::size_t max_points);

}  // namespace guess::analysis
