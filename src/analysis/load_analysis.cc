#include "analysis/load_analysis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace guess::analysis {

double gini_coefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double total = 0.0;
  double weighted = 0.0;
  auto n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    GUESS_CHECK_MSG(values[i] >= 0.0, "loads must be non-negative");
    total += values[i];
    weighted += static_cast<double>(i + 1) * values[i];
  }
  if (total == 0.0) return 0.0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double top_share(std::vector<double> values, double fraction) {
  GUESS_CHECK(fraction > 0.0 && fraction <= 1.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end(), std::greater<>());
  double total = 0.0;
  for (double v : values) total += v;
  if (total == 0.0) return 0.0;
  auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             fraction * static_cast<double>(values.size()))));
  double top = 0.0;
  for (std::size_t i = 0; i < k; ++i) top += values[i];
  return top / total;
}

LoadSummary summarize_load(const SampleSet& loads) {
  LoadSummary out;
  if (loads.empty()) return out;
  const auto& values = loads.values();
  for (double v : values) out.total += v;
  out.mean = loads.mean();
  out.max = loads.max();
  out.p99 = loads.percentile(99.0);
  out.gini = gini_coefficient(values);
  out.top1pct_share = top_share(values, 0.01);
  return out;
}

std::vector<std::pair<std::size_t, double>> ranked_curve(
    const SampleSet& loads, std::size_t max_points) {
  GUESS_CHECK(max_points >= 2);
  std::vector<std::pair<std::size_t, double>> curve;
  if (loads.empty()) return curve;
  std::vector<double> sorted = loads.sorted_descending();
  // Log-spaced ranks from 1 to n, deduplicated.
  double log_n = std::log(static_cast<double>(sorted.size()));
  std::size_t last = 0;
  for (std::size_t p = 0; p < max_points; ++p) {
    double t = static_cast<double>(p) / static_cast<double>(max_points - 1);
    auto rank = static_cast<std::size_t>(std::llround(std::exp(t * log_n)));
    rank = std::clamp<std::size_t>(rank, 1, sorted.size());
    if (!curve.empty() && rank == last) continue;
    curve.emplace_back(rank, sorted[rank - 1]);
    last = rank;
  }
  return curve;
}

}  // namespace guess::analysis
