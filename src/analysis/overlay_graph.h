// Connectivity analysis of the GUESS "conceptual overlay" (Figures 6, 7).
//
// The overlay is the digraph formed by live peers' link-cache entries that
// point to live peers. Fragmentation in the paper's sense is loss of weak
// connectivity; the strong variant is also provided since one-way neighbor
// relationships make reachability asymmetric (§2.1, Figure 2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace guess::analysis {

class OverlayGraph {
 public:
  using NodeId = std::uint64_t;

  /// Register a node (id may be added repeatedly; edges auto-add nodes).
  void add_node(NodeId node);

  /// Directed edge from -> to.
  void add_edge(NodeId from, NodeId to);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Size of the largest weakly connected component (edge direction
  /// ignored) — the paper's "largest connected component".
  std::size_t largest_weak_component() const;

  /// Size of the largest strongly connected component (Tarjan).
  std::size_t largest_strong_component() const;

  /// Out-degree distribution summary: mean out-degree over all nodes.
  double mean_out_degree() const;

 private:
  std::size_t dense_id(NodeId node);

  std::unordered_map<NodeId, std::size_t> index_;
  std::vector<NodeId> nodes_;
  std::vector<std::vector<std::size_t>> out_;
  std::size_t edge_count_ = 0;
};

}  // namespace guess::analysis
