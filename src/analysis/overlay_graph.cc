#include "analysis/overlay_graph.h"

#include <algorithm>

#include "common/check.h"

namespace guess::analysis {

std::size_t OverlayGraph::dense_id(NodeId node) {
  auto [it, inserted] = index_.emplace(node, nodes_.size());
  if (inserted) {
    nodes_.push_back(node);
    out_.emplace_back();
  }
  return it->second;
}

void OverlayGraph::add_node(NodeId node) { dense_id(node); }

void OverlayGraph::add_edge(NodeId from, NodeId to) {
  std::size_t f = dense_id(from);
  std::size_t t = dense_id(to);
  out_[f].push_back(t);
  ++edge_count_;
}

std::size_t OverlayGraph::largest_weak_component() const {
  std::size_t n = nodes_.size();
  if (n == 0) return 0;
  // Union-find over the undirected projection.
  std::vector<std::size_t> parent(n), size(n, 1);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to : out_[from]) {
      std::size_t a = find(from), b = find(to);
      if (a == b) continue;
      if (size[a] < size[b]) std::swap(a, b);
      parent[b] = a;
      size[a] += size[b];
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (parent[i] == i) best = std::max(best, size[i]);
  }
  return best;
}

std::size_t OverlayGraph::largest_strong_component() const {
  // Iterative Tarjan SCC.
  std::size_t n = nodes_.size();
  if (n == 0) return 0;
  constexpr std::size_t kUnvisited = ~std::size_t{0};
  std::vector<std::size_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;
  std::size_t best = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge;
  };
  std::vector<Frame> call;
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!call.empty()) {
      Frame& frame = call.back();
      std::size_t node = frame.node;
      if (frame.edge < out_[node].size()) {
        std::size_t next = out_[node][frame.edge++];
        if (index[next] == kUnvisited) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = 1;
          call.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[node] = std::min(lowlink[node], index[next]);
        }
        continue;
      }
      if (lowlink[node] == index[node]) {
        std::size_t count = 0;
        for (;;) {
          std::size_t popped = stack.back();
          stack.pop_back();
          on_stack[popped] = 0;
          ++count;
          if (popped == node) break;
        }
        best = std::max(best, count);
      }
      call.pop_back();
      if (!call.empty()) {
        std::size_t parent = call.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[node]);
      }
    }
  }
  return best;
}

double OverlayGraph::mean_out_degree() const {
  if (nodes_.empty()) return 0.0;
  return static_cast<double>(edge_count_) /
         static_cast<double>(nodes_.size());
}

}  // namespace guess::analysis
