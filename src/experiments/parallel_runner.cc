#include "experiments/parallel_runner.h"

#include <algorithm>
#include <cstdlib>

namespace guess::experiments {

int resolve_thread_count(int requested) {
  GUESS_CHECK_MSG(requested >= 0, "thread count must be >= 0 (0 = auto)");
  if (requested > 0) return requested;
  if (const char* env = std::getenv("GUESS_THREADS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    GUESS_CHECK_MSG(end != env && *end == '\0' && parsed > 0,
                    "GUESS_THREADS must be a positive integer, got: " << env);
    return static_cast<int>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(int threads) {
  int count = resolve_thread_count(threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelRunner::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_ || (batch_ != nullptr && batch_->next < batch_->total);
    });
    if (stop_) return;
    Batch* batch = batch_;
    int index = batch->next++;
    lock.unlock();

    std::exception_ptr error;
    try {
      (*batch->job)(index);
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    if (error) batch->errors.emplace_back(index, error);
    ++batch->done;
    if (batch->progress && *batch->progress) {
      (*batch->progress)(batch->done, batch->total);
    }
    if (batch->done == batch->total) done_cv_.notify_all();
  }
}

void ParallelRunner::run(int total, const std::function<void(int)>& job,
                         const ProgressFn& progress) {
  GUESS_CHECK(total >= 0);
  if (total == 0) return;

  Batch batch;
  batch.total = total;
  batch.job = &job;
  batch.progress = &progress;

  std::unique_lock<std::mutex> lock(mu_);
  GUESS_CHECK_MSG(batch_ == nullptr,
                  "ParallelRunner::run is not reentrant (did a job or "
                  "progress callback call back into the runner?)");
  batch_ = &batch;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&batch] { return batch.done == batch.total; });
  batch_ = nullptr;
  lock.unlock();

  if (!batch.errors.empty()) {
    // Every job ran; surface the failure of the lowest-indexed job so the
    // reported error does not depend on scheduling.
    auto first = std::min_element(
        batch.errors.begin(), batch.errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

}  // namespace guess::experiments
