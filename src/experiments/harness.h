// Shared plumbing for the per-figure benchmark harnesses.
//
// Each bench binary reproduces one paper table/figure. All of them accept:
//   --full          paper-scale runs (longer windows, more seeds)
//   --seed=N        base RNG seed (default 42)
//   --seeds=N       override number of seeds averaged
//   --csv           additionally emit CSV blocks for plotting
// The default (reduced) scale preserves every shape the paper reports while
// finishing in seconds-to-minutes; EXPERIMENTS.md records both scales.
#pragma once

#include <iosfwd>
#include <string>

#include "common/flags.h"
#include "guess/params.h"
#include "guess/simulation.h"

namespace guess::experiments {

/// Scale knobs derived from the command line.
struct Scale {
  sim::Duration warmup = 400.0;
  sim::Duration measure = 1600.0;
  int seeds = 2;
  bool full = false;
  std::uint64_t base_seed = 42;
  bool csv = false;

  static Scale from_flags(const Flags& flags);

  SimulationOptions options() const;
};

/// A named query-side policy configuration — the paper's convention of
/// setting QueryProbe / QueryPong / CacheReplacement together ("MFS" means
/// MFS/MFS/LFS; "MR*" is MR/MR/LR with ResetNumResults).
struct PolicyCombo {
  std::string name;
  Policy probe = Policy::kRandom;
  Policy pong = Policy::kRandom;
  Replacement replacement = Replacement::kRandom;
  bool reset_num_results = false;

  /// Recognizes: "Ran", "MRU", "LRU", "MFS", "MR", "MR*".
  static PolicyCombo from_name(const std::string& name);

  /// Apply to a parameter set (query-side policies only; ping-side policies
  /// stay as configured, Random by default, matching §6.2).
  ProtocolParams apply(ProtocolParams params) const;
};

/// The four robustness combos of Figures 16–21.
const std::vector<PolicyCombo>& robustness_combos();

/// Average results for one (system, protocol) configuration across seeds.
AveragedResults run_config(const SystemParams& system,
                           const ProtocolParams& protocol,
                           const Scale& scale,
                           SimulationOptions options_override);

AveragedResults run_config(const SystemParams& system,
                           const ProtocolParams& protocol,
                           const Scale& scale);

/// Standard bench header: figure id, claim being reproduced, parameters.
void print_header(std::ostream& os, const std::string& experiment,
                  const std::string& paper_claim, const SystemParams& system,
                  const ProtocolParams& protocol, const Scale& scale);

}  // namespace guess::experiments
