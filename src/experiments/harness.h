// Shared plumbing for the per-figure benchmark harnesses.
//
// Each bench binary reproduces one paper table/figure. All of them accept:
//   --full          paper-scale runs (longer windows, more seeds)
//   --seed=N        base RNG seed (default 42)
//   --seeds=N       override number of seeds averaged
//   --threads=N     worker threads for replications (default: GUESS_THREADS
//                   env var, else all hardware threads; 1 = serial)
//   --progress      report replications completed / total on stderr
//   --csv           additionally emit CSV blocks for plotting
// The default (reduced) scale preserves every shape the paper reports while
// finishing in seconds-to-minutes; EXPERIMENTS.md records both scales.
// Replications are independent and run concurrently on a ParallelRunner
// pool; thread count never changes any reported number (results come back
// in deterministic seed order — see DESIGN.md "Threading model").
#pragma once

#include <iosfwd>
#include <string>

#include "common/flags.h"
#include "faults/scenario.h"
#include "guess/params.h"
#include "guess/simulation.h"

namespace guess::experiments {

/// Scale knobs derived from the command line.
struct Scale {
  sim::Duration warmup = 400.0;
  sim::Duration measure = 1600.0;
  int seeds = 2;
  bool full = false;
  std::uint64_t base_seed = 42;
  bool csv = false;
  /// Worker threads for replications (0 = auto, see Flags::threads()).
  int threads = 0;
  /// Report sweep progress to stderr.
  bool progress = false;
  /// Event-queue backend (--scheduler={heap,calendar}); never changes
  /// results, only simulator speed.
  sim::Scheduler scheduler = sim::Scheduler::kHeap;
  /// Message transport (--loss / --link-latency / --probe-timeout /
  /// --max-retries / --max-backoff switch on LossyTransport; default
  /// synchronous). Applied uniformly to every configuration the harness
  /// runs, so any bench can be re-run under fault injection without
  /// per-bench plumbing.
  TransportParams transport;
  /// Fault scenario (--scenario / --scenario-file, DESIGN.md §9); empty by
  /// default. Like the transport, applied to every configuration run.
  faults::Scenario scenario;
  /// Width of the time-resolved metrics intervals (--interval, seconds);
  /// 0 disables the interval series.
  sim::Duration metrics_interval = 0.0;

  static Scale from_flags(const Flags& flags);

  SimulationOptions options() const;

  /// The scale as a SimulationConfig (options + transport); callers chain
  /// .system()/.protocol() on top.
  SimulationConfig config() const;
};

/// A named query-side policy configuration — the paper's convention of
/// setting QueryProbe / QueryPong / CacheReplacement together ("MFS" means
/// MFS/MFS/LFS; "MR*" is MR/MR/LR with ResetNumResults).
struct PolicyCombo {
  std::string name;
  Policy probe = Policy::kRandom;
  Policy pong = Policy::kRandom;
  Replacement replacement = Replacement::kRandom;
  bool reset_num_results = false;

  /// Recognizes: "Ran", "MRU", "LRU", "MFS", "MR", "MR*".
  static PolicyCombo from_name(const std::string& name);

  /// Apply to a parameter set (query-side policies only; ping-side policies
  /// stay as configured, Random by default, matching §6.2).
  ProtocolParams apply(ProtocolParams params) const;
};

/// The four robustness combos of Figures 16–21.
const std::vector<PolicyCombo>& robustness_combos();

/// Average results for one (system, protocol) configuration across seeds.
/// Replications run on a worker pool of scale.threads threads (0 = auto).
AveragedResults run_config(const SystemParams& system,
                           const ProtocolParams& protocol,
                           const Scale& scale,
                           SimulationOptions options_override);

AveragedResults run_config(const SystemParams& system,
                           const ProtocolParams& protocol,
                           const Scale& scale);

/// One point of a sweep: a (system, protocol, options) combination whose
/// seed sweep is averaged into one AveragedResults.
struct ConfigJob {
  SystemParams system;
  ProtocolParams protocol;
  SimulationOptions options;
};

/// Run every configuration's seed sweep on ONE shared worker pool and return
/// the per-configuration averages, in job order. Equivalent to calling
/// run_config(job.system, job.protocol, scale, job.options) for each job —
/// same seed derivation, bitwise-identical averages — but all jobs.size() ×
/// scale.seeds replications are interleaved across the pool, so a multi-
/// config sweep saturates the machine even at seeds=1.
std::vector<AveragedResults> run_configs(const std::vector<ConfigJob>& jobs,
                                         const Scale& scale);

/// Standard bench header: figure id, claim being reproduced, parameters.
void print_header(std::ostream& os, const std::string& experiment,
                  const std::string& paper_claim, const SystemParams& system,
                  const ProtocolParams& protocol, const Scale& scale);

}  // namespace guess::experiments
