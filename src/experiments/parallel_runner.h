// Worker pool for embarrassingly parallel simulation sweeps.
//
// Every figure in the paper averages over repeated runs with different seeds;
// the replications are independent, so they can execute concurrently without
// touching simulation semantics. ParallelRunner is a fixed-size pool of
// std::threads fed from a mutex/condvar work queue. Jobs are indexed 0..n-1;
// results always come back in index order regardless of thread count or
// completion order, so a parallel sweep is bitwise-identical to the serial
// loop it replaces (pinned by tests/experiments/parallel_runner_test.cc).
//
// What may run on a worker thread: anything whose state is reachable only
// from the job's own index (a GuessSimulation owns its Simulator, GuessNetwork
// and Rng, so a whole replication qualifies — see DESIGN.md "Threading
// model"). Shared immutable tables (the empirical lifetime/sharing quantile
// tables) are safe to read concurrently and are warmed eagerly by
// guess::run_seeds before workers start, so first-touch initialization never
// serializes the pool.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"

namespace guess::experiments {

/// Number of worker threads to use for a sweep. Resolution order:
///   1. `requested` when > 0 (e.g. SimulationOptions::threads, --threads=N);
///   2. the GUESS_THREADS environment variable when set and positive
///      (throws CheckError if set but not a positive integer);
///   3. std::thread::hardware_concurrency(), floored at 1.
int resolve_thread_count(int requested);

/// Fixed-size worker pool executing indexed jobs.
///
/// The pool is created once and reused across run() calls; workers block on a
/// condition variable between batches. run() is not reentrant (one batch at a
/// time) but the pool may be used from any single thread.
class ParallelRunner {
 public:
  /// Called after each job completes, with (jobs completed so far, total).
  /// Invoked from worker threads, serialized under the pool's mutex, in
  /// completion (not index) order; keep it cheap and do not call back into
  /// the runner from it.
  using ProgressFn = std::function<void(int completed, int total)>;

  /// @param threads  pool size; 0 resolves via resolve_thread_count().
  explicit ParallelRunner(int threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Execute job(0) .. job(total-1) across the pool and block until all have
  /// finished. Every job runs exactly once even if another job throws; after
  /// the batch, the exception of the lowest-indexed failed job is rethrown
  /// (deterministic regardless of completion order).
  void run(int total, const std::function<void(int)>& job,
           const ProgressFn& progress = {});

  /// run(), collecting each job's return value into a vector in index order.
  /// T must be default-constructible and movable.
  template <typename T>
  std::vector<T> map(int total, const std::function<T(int)>& job,
                     const ProgressFn& progress = {}) {
    GUESS_CHECK(total >= 0);
    std::vector<T> out(static_cast<std::size_t>(total));
    run(
        total, [&](int i) { out[static_cast<std::size_t>(i)] = job(i); },
        progress);
    return out;
  }

 private:
  /// One batch of jobs; lives on run()'s stack, touched only under mu_
  /// except for the jobs themselves.
  struct Batch {
    int total = 0;
    int next = 0;  ///< next index to hand to a worker
    int done = 0;
    const std::function<void(int)>* job = nullptr;
    const ProgressFn* progress = nullptr;
    /// (index, exception) for every job that threw.
    std::vector<std::pair<int, std::exception_ptr>> errors;
  };

  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here for a batch/stop
  std::condition_variable done_cv_;  ///< run() waits here for completion
  Batch* batch_ = nullptr;           ///< non-null while a batch is active
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace guess::experiments
