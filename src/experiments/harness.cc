#include "experiments/harness.h"

#include <ostream>

#include "common/check.h"

namespace guess::experiments {

Scale Scale::from_flags(const Flags& flags) {
  Scale scale;
  scale.full = flags.full();
  if (scale.full) {
    scale.warmup = 1200.0;
    scale.measure = 7200.0;
    scale.seeds = 5;
  }
  scale.base_seed = flags.seed();
  if (flags.seeds() > 0) scale.seeds = flags.seeds();
  scale.csv = flags.get_bool("csv", false);
  return scale;
}

SimulationOptions Scale::options() const {
  SimulationOptions options;
  options.seed = base_seed;
  options.warmup = warmup;
  options.measure = measure;
  return options;
}

PolicyCombo PolicyCombo::from_name(const std::string& name) {
  PolicyCombo combo;
  combo.name = name;
  if (name == "Ran" || name == "Random") {
    return combo;
  }
  if (name == "MRU") {
    // §4: to effect a Most-Recently-Used goal the replacement evicts the
    // *least* recently used — Figure 13's "MRU/LRU" combo.
    combo.probe = Policy::kMRU;
    combo.pong = Policy::kMRU;
    combo.replacement = Replacement::kLRU;
    return combo;
  }
  if (name == "LRU") {
    // Retaining old entries means evicting the most recently used — the
    // "fairness" choice §6.2 shows to be pathological.
    combo.probe = Policy::kLRU;
    combo.pong = Policy::kLRU;
    combo.replacement = Replacement::kMRU;
    return combo;
  }
  if (name == "MFS") {
    combo.probe = Policy::kMFS;
    combo.pong = Policy::kMFS;
    combo.replacement = Replacement::kLFS;
    return combo;
  }
  if (name == "MR") {
    combo.probe = Policy::kMR;
    combo.pong = Policy::kMR;
    combo.replacement = Replacement::kLR;
    return combo;
  }
  if (name == "MR*") {
    combo.probe = Policy::kMR;
    combo.pong = Policy::kMR;
    combo.replacement = Replacement::kLR;
    combo.reset_num_results = true;
    return combo;
  }
  GUESS_CHECK_MSG(false, "unknown policy combo: " << name);
  return combo;
}

ProtocolParams PolicyCombo::apply(ProtocolParams params) const {
  params.query_probe = probe;
  params.query_pong = pong;
  params.cache_replacement = replacement;
  params.reset_num_results = reset_num_results;
  return params;
}

const std::vector<PolicyCombo>& robustness_combos() {
  static const std::vector<PolicyCombo> combos = {
      PolicyCombo::from_name("Ran"),
      PolicyCombo::from_name("MR"),
      PolicyCombo::from_name("MR*"),
      PolicyCombo::from_name("MFS"),
  };
  return combos;
}

AveragedResults run_config(const SystemParams& system,
                           const ProtocolParams& protocol,
                           const Scale& scale,
                           SimulationOptions options_override) {
  return average(run_seeds(system, protocol, options_override, scale.seeds));
}

AveragedResults run_config(const SystemParams& system,
                           const ProtocolParams& protocol,
                           const Scale& scale) {
  return run_config(system, protocol, scale, scale.options());
}

void print_header(std::ostream& os, const std::string& experiment,
                  const std::string& paper_claim, const SystemParams& system,
                  const ProtocolParams& protocol, const Scale& scale) {
  os << "==============================================================\n"
     << experiment << "\n"
     << "Paper claim: " << paper_claim << "\n"
     << "System:   " << describe(system) << "\n"
     << "Protocol: " << describe(protocol) << "\n"
     << "Scale:    " << (scale.full ? "full" : "reduced")
     << " (warmup=" << scale.warmup << "s measure=" << scale.measure
     << "s seeds=" << scale.seeds << ")\n"
     << "==============================================================\n";
}

}  // namespace guess::experiments
