#include "experiments/harness.h"

#include <cmath>
#include <iostream>
#include <ostream>

#include "churn/lifetime.h"
#include "common/check.h"
#include "content/content_model.h"
#include "experiments/parallel_runner.h"

namespace guess::experiments {

Scale Scale::from_flags(const Flags& flags) {
  Scale scale;
  scale.full = flags.full();
  if (scale.full) {
    scale.warmup = 1200.0;
    scale.measure = 7200.0;
    scale.seeds = 5;
  }
  scale.base_seed = flags.seed();
  if (flags.seeds() > 0) scale.seeds = flags.seeds();
  scale.csv = flags.get_bool("csv", false);
  scale.threads = flags.threads();
  scale.progress = flags.progress();
  scale.scheduler = sim::parse_scheduler(flags.scheduler());
  if (flags.has_transport_flags()) {
    scale.transport.kind = TransportParams::Kind::kLossy;
    scale.transport.loss = flags.loss();
    scale.transport.link_latency = flags.link_latency();
    scale.transport.probe_timeout = flags.probe_timeout();
    // Reject before the unsigned cast: a negative value would wrap to an
    // effectively unbounded retry count.
    GUESS_CHECK_MSG(flags.max_retries() >= 0,
                    "--max-retries must be >= 0, got "
                        << flags.max_retries());
    scale.transport.max_retries =
        static_cast<std::size_t>(flags.max_retries());
    scale.transport.max_backoff = flags.max_backoff();
    // Non-finite values pass every downstream range check (NaN compares
    // false); reject them here where the flag name is known.
    GUESS_CHECK_MSG(std::isfinite(scale.transport.loss),
                    "--loss must be finite");
    GUESS_CHECK_MSG(std::isfinite(scale.transport.link_latency),
                    "--link-latency must be finite");
    GUESS_CHECK_MSG(std::isfinite(scale.transport.probe_timeout),
                    "--probe-timeout must be finite");
    GUESS_CHECK_MSG(std::isfinite(scale.transport.max_backoff),
                    "--max-backoff must be finite");
  }
  GUESS_CHECK_MSG(!(flags.has("scenario") && flags.has("scenario-file")),
                  "--scenario and --scenario-file are mutually exclusive");
  if (!flags.scenario().empty()) {
    scale.scenario = faults::Scenario::parse(flags.scenario());
  } else if (!flags.scenario_file().empty()) {
    scale.scenario = faults::Scenario::load_file(flags.scenario_file());
  }
  scale.metrics_interval = flags.metrics_interval();
  GUESS_CHECK_MSG(std::isfinite(scale.metrics_interval) &&
                      scale.metrics_interval >= 0.0,
                  "--interval must be finite and >= 0, got "
                      << scale.metrics_interval);
  // A scenario without an interval series still runs, but the recovery
  // metrics need the series; default to 60 s buckets when a scenario is
  // present and no --interval was given.
  if (!scale.scenario.empty() && scale.metrics_interval == 0.0 &&
      !flags.has("interval")) {
    scale.metrics_interval = 60.0;
  }
  return scale;
}

SimulationOptions Scale::options() const {
  SimulationOptions options;
  options.seed = base_seed;
  options.warmup = warmup;
  options.measure = measure;
  options.threads = threads;
  options.scheduler = scheduler;
  options.metrics_interval = metrics_interval;
  return options;
}

SimulationConfig Scale::config() const {
  return SimulationConfig()
      .options(options())
      .transport(transport)
      .scenario(scenario);
}

PolicyCombo PolicyCombo::from_name(const std::string& name) {
  PolicyCombo combo;
  combo.name = name;
  if (name == "Ran" || name == "Random") {
    return combo;
  }
  if (name == "MRU") {
    // §4: to effect a Most-Recently-Used goal the replacement evicts the
    // *least* recently used — Figure 13's "MRU/LRU" combo.
    combo.probe = Policy::kMRU;
    combo.pong = Policy::kMRU;
    combo.replacement = Replacement::kLRU;
    return combo;
  }
  if (name == "LRU") {
    // Retaining old entries means evicting the most recently used — the
    // "fairness" choice §6.2 shows to be pathological.
    combo.probe = Policy::kLRU;
    combo.pong = Policy::kLRU;
    combo.replacement = Replacement::kMRU;
    return combo;
  }
  if (name == "MFS") {
    combo.probe = Policy::kMFS;
    combo.pong = Policy::kMFS;
    combo.replacement = Replacement::kLFS;
    return combo;
  }
  if (name == "MR") {
    combo.probe = Policy::kMR;
    combo.pong = Policy::kMR;
    combo.replacement = Replacement::kLR;
    return combo;
  }
  if (name == "MR*") {
    combo.probe = Policy::kMR;
    combo.pong = Policy::kMR;
    combo.replacement = Replacement::kLR;
    combo.reset_num_results = true;
    return combo;
  }
  GUESS_CHECK_MSG(false, "unknown policy combo: " << name);
  return combo;
}

ProtocolParams PolicyCombo::apply(ProtocolParams params) const {
  params.query_probe = probe;
  params.query_pong = pong;
  params.cache_replacement = replacement;
  params.reset_num_results = reset_num_results;
  return params;
}

const std::vector<PolicyCombo>& robustness_combos() {
  static const std::vector<PolicyCombo> combos = {
      PolicyCombo::from_name("Ran"),
      PolicyCombo::from_name("MR"),
      PolicyCombo::from_name("MR*"),
      PolicyCombo::from_name("MFS"),
  };
  return combos;
}

namespace {

/// Progress callback printing "replications done/total" to stderr (carriage
/// return, newline once complete); empty when reporting is off.
std::function<void(int, int)> progress_reporter(bool enabled) {
  if (!enabled) return {};
  return [](int done, int total) {
    std::cerr << "\r  replications " << done << "/" << total << std::flush;
    if (done == total) std::cerr << "\n";
  };
}

}  // namespace

AveragedResults run_config(const SystemParams& system,
                           const ProtocolParams& protocol,
                           const Scale& scale,
                           SimulationOptions options_override) {
  if (options_override.threads == 0) options_override.threads = scale.threads;
  auto config = SimulationConfig()
                    .system(system)
                    .protocol(protocol)
                    .options(options_override)
                    .transport(scale.transport)
                    .scenario(scale.scenario);
  return average(
      run_seeds(config, scale.seeds, progress_reporter(scale.progress)));
}

AveragedResults run_config(const SystemParams& system,
                           const ProtocolParams& protocol,
                           const Scale& scale) {
  return run_config(system, protocol, scale, scale.options());
}

std::vector<AveragedResults> run_configs(const std::vector<ConfigJob>& jobs,
                                         const Scale& scale) {
  GUESS_CHECK(scale.seeds >= 1);
  if (jobs.empty()) return {};
  const int seeds = scale.seeds;
  const int total = static_cast<int>(jobs.size()) * seeds;
  // Flattened jobs.size() × seeds replications; slot i is replication
  // (i % seeds) of config (i / seeds), so results land in config-then-seed
  // order no matter which worker finishes first.
  std::vector<SimulationResults> flat(static_cast<std::size_t>(total));
  auto run_one = [&](int i) {
    const ConfigJob& job = jobs[static_cast<std::size_t>(i / seeds)];
    SimulationOptions opt = job.options;
    opt.seed = job.options.seed + static_cast<std::uint64_t>(i % seeds);
    GuessSimulation sim(SimulationConfig()
                            .system(job.system)
                            .protocol(job.protocol)
                            .options(opt)
                            .transport(scale.transport)
                            .scenario(scale.scenario));
    flat[static_cast<std::size_t>(i)] = sim.run();
  };

  auto progress = progress_reporter(scale.progress);
  int threads = resolve_thread_count(scale.threads);
  if (threads == 1) {
    for (int i = 0; i < total; ++i) {
      run_one(i);
      if (progress) progress(i + 1, total);
    }
  } else {
    // Warm the shared immutable quantile tables before workers start (see
    // run_seeds).
    content::ContentModel::sharing_distribution();
    churn::LifetimeDistribution::base_distribution();
    ParallelRunner runner(threads);
    runner.run(total, run_one, progress);
  }

  std::vector<AveragedResults> out;
  out.reserve(jobs.size());
  for (std::size_t c = 0; c < jobs.size(); ++c) {
    auto begin = flat.begin() + static_cast<std::ptrdiff_t>(c) * seeds;
    out.push_back(average({begin, begin + seeds}));
  }
  return out;
}

void print_header(std::ostream& os, const std::string& experiment,
                  const std::string& paper_claim, const SystemParams& system,
                  const ProtocolParams& protocol, const Scale& scale) {
  os << "==============================================================\n"
     << experiment << "\n"
     << "Paper claim: " << paper_claim << "\n"
     << "System:   " << describe(system) << "\n"
     << "Protocol: " << describe(protocol) << "\n"
     << "Scale:    " << (scale.full ? "full" : "reduced")
     << " (warmup=" << scale.warmup << "s measure=" << scale.measure
     << "s seeds=" << scale.seeds
     << " threads=" << resolve_thread_count(scale.threads)
     << " scheduler=" << sim::scheduler_name(scale.scheduler) << ")\n";
  if (scale.transport.kind != TransportParams::Kind::kSynchronous) {
    os << "Transport: " << describe(scale.transport) << "\n";
  }
  if (!scale.scenario.empty()) {
    os << "Scenario:  " << scale.scenario.describe()
       << " (interval=" << scale.metrics_interval << "s)\n";
  }
  os << "==============================================================\n";
}

}  // namespace guess::experiments
