// Bursty query arrivals.
//
// The paper: "a number of queries (uniformly chosen between 1 and 5) are
// submitted in succession, followed by a long wait. The arrival of bursts
// follows a Poisson process, and the overall rate of queries per user is
// QueryRate." With mean burst size B = 3, bursts must arrive at rate
// QueryRate / B per peer for the per-query rate to come out right.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "sim/time.h"

namespace guess::content {

struct BurstParams {
  double query_rate = 9.26e-3;  ///< expected queries per user per second
  std::size_t burst_min = 1;
  std::size_t burst_max = 5;
};

/// Generates (inter-burst gap, burst size) pairs for one peer.
class QueryStream {
 public:
  explicit QueryStream(BurstParams params);

  /// Exponential gap until the next burst.
  sim::Duration next_burst_gap(Rng& rng) const;

  /// Uniform burst size in [burst_min, burst_max].
  std::size_t next_burst_size(Rng& rng) const;

  double mean_burst_size() const;
  double burst_rate() const;  ///< bursts per second per peer

  const BurstParams& params() const { return params_; }

 private:
  BurstParams params_;
};

}  // namespace guess::content
