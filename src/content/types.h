// Identifiers for the content model.
#pragma once

#include <cstdint>
#include <limits>

namespace guess::content {

/// Index of a file in the catalog (also its popularity rank: 0 = most
/// popular).
using FileId = std::uint32_t;

/// Sentinel for a query that targets an item nobody shares (the paper notes
/// that some queries are "for very rare or nonexistent items", producing the
/// ~6% unsatisfiable floor at NetworkSize = 1000).
inline constexpr FileId kNonexistentFile =
    std::numeric_limits<FileId>::max();

}  // namespace guess::content
