#include "content/content_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace guess::content {

Library::Library(std::vector<FileId> sorted_files)
    : files_(std::move(sorted_files)) {
  GUESS_CHECK_MSG(std::is_sorted(files_.begin(), files_.end()),
                  "library files must be sorted");
  GUESS_CHECK_MSG(
      std::adjacent_find(files_.begin(), files_.end()) == files_.end(),
      "library files must be distinct");
}

bool Library::contains(FileId file) const {
  return std::binary_search(files_.begin(), files_.end(), file);
}

namespace {
// Files shared by *sharing* peers (free riders excluded), modeled on the
// heavy-tailed distribution measured by Saroiu et al. [18]: most sharers
// offer tens of files, a small fraction offer thousands (≈7% of peers offer
// more files than all others combined).
const EmpiricalDistribution& sharing_table() {
  static const EmpiricalDistribution table({
      {0.00, 1.0},
      {0.20, 10.0},
      {0.40, 30.0},
      {0.60, 80.0},
      {0.75, 180.0},
      {0.87, 450.0},
      {0.95, 1200.0},
      {0.99, 3000.0},
      {1.00, 6000.0},
  });
  return table;
}
}  // namespace

const EmpiricalDistribution& ContentModel::sharing_distribution() {
  return sharing_table();
}

ContentModel::ContentModel(ContentParams params)
    : params_(params),
      file_popularity_(params.catalog_size, params.file_alpha),
      query_popularity_(params.query_universe, params.query_alpha),
      max_library_(static_cast<std::size_t>(
          params.max_library_fraction *
          static_cast<double>(params.catalog_size))) {
  GUESS_CHECK(params_.catalog_size > 0);
  GUESS_CHECK(params_.query_universe >= params_.catalog_size);
  GUESS_CHECK(params_.free_rider_fraction >= 0.0 &&
              params_.free_rider_fraction < 1.0);
  GUESS_CHECK(max_library_ >= 1);
  // Precomputed once: summing the O(query_universe) pmf tail on every call
  // made this the dominant cost for harnesses that report the floor per
  // configuration.
  double mass = 0.0;
  for (std::size_t r = params_.catalog_size; r < params_.query_universe; ++r) {
    mass += query_popularity_.pmf(r);
  }
  nonexistent_query_mass_ = mass;
}

std::size_t ContentModel::sample_file_count(Rng& rng) const {
  if (rng.bernoulli(params_.free_rider_fraction)) return 0;
  auto count = static_cast<std::size_t>(
      std::llround(sharing_table().sample(rng)));
  return std::clamp<std::size_t>(count, 1, max_library_);
}

Library ContentModel::sample_library(std::size_t count, Rng& rng) const {
  GUESS_CHECK_MSG(count <= max_library_,
                  "library size " << count << " exceeds cap " << max_library_);
  std::unordered_set<FileId> chosen;
  chosen.reserve(count * 2);
  // Distinct Zipf sampling by rejection. Collisions concentrate on the head
  // ranks; with libraries capped well below the catalog this stays cheap.
  while (chosen.size() < count) {
    chosen.insert(static_cast<FileId>(file_popularity_.sample(rng)));
  }
  std::vector<FileId> files(chosen.begin(), chosen.end());
  std::sort(files.begin(), files.end());
  return Library(std::move(files));
}

Library ContentModel::sample_peer_library(Rng& rng) const {
  return sample_library(sample_file_count(rng), rng);
}

FileId ContentModel::draw_query(Rng& rng) const {
  std::size_t rank = query_popularity_.sample(rng);
  if (rank >= params_.catalog_size) return kNonexistentFile;
  return static_cast<FileId>(rank);
}

double ContentModel::nonexistent_query_mass() const {
  return nonexistent_query_mass_;
}

}  // namespace guess::content
