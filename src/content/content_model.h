// Content and query model.
//
// Concrete instantiation of the hybrid-P2P query model of Yang &
// Garcia-Molina [21] plus the files-per-peer distribution of Saroiu et
// al. [18] (see DESIGN.md, substitutions #2 and #3):
//
//  * A catalog of `catalog_size` distinct files; file popularity is Zipf
//    with exponent `file_alpha` (rank 0 = most popular).
//  * Each peer shares a file count drawn from a free-rider + heavy-tail
//    model, and samples that many distinct files by popularity, so popular
//    files are highly replicated and the tail is rare.
//  * Queries are drawn Zipf(`query_alpha`) over a *query universe* that
//    extends past the catalog: ranks beyond `catalog_size` are requests for
//    items nobody shares. Together with rare catalog files that happen to
//    have no replicas, this yields the unsatisfiable floor the paper reports
//    (~6% at NetworkSize = 1000).
//
// A peer's probability of answering a query thus depends on the number of
// files it shares and on query popularity — the two properties of [21] the
// paper relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "common/empirical.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "content/types.h"

namespace guess::content {

struct ContentParams {
  std::size_t catalog_size = 8000;    ///< distinct shared files
  std::size_t query_universe = 10000; ///< query ranks; >= catalog_size
  double file_alpha = 0.8;            ///< popularity skew of file replication
  double query_alpha = 0.8;           ///< popularity skew of queries
  double free_rider_fraction = 0.25;  ///< peers sharing zero files, per [18]
  /// Cap on one peer's library, as a fraction of the catalog (keeps distinct
  /// sampling cheap and mirrors reality: nobody shares the whole catalog).
  double max_library_fraction = 0.2;
};

/// A peer's shared library: sorted distinct file ids, supporting O(log n)
/// membership tests.
class Library {
 public:
  Library() = default;
  explicit Library(std::vector<FileId> sorted_files);

  bool contains(FileId file) const;
  std::size_t size() const { return files_.size(); }
  bool empty() const { return files_.empty(); }
  const std::vector<FileId>& files() const { return files_; }

 private:
  std::vector<FileId> files_;
};

/// Shared, immutable generator of libraries and queries.
class ContentModel {
 public:
  explicit ContentModel(ContentParams params);

  const ContentParams& params() const { return params_; }

  /// Number of files a newly born peer shares (0 for free riders).
  std::size_t sample_file_count(Rng& rng) const;

  /// Distinct files for a peer sharing `count` files, sampled by popularity.
  Library sample_library(std::size_t count, Rng& rng) const;

  /// Convenience: sample_file_count + sample_library.
  Library sample_peer_library(Rng& rng) const;

  /// Query target; kNonexistentFile for out-of-catalog ranks.
  FileId draw_query(Rng& rng) const;

  /// Fraction of query popularity mass outside the catalog (a lower bound on
  /// the unsatisfiable-query rate). Precomputed at construction; O(1).
  double nonexistent_query_mass() const;

  /// The files-per-peer distribution for sharing (non-free-rider) peers,
  /// exposed for tests/documentation.
  static const EmpiricalDistribution& sharing_distribution();

 private:
  ContentParams params_;
  ZipfDistribution file_popularity_;
  ZipfDistribution query_popularity_;
  std::size_t max_library_;
  double nonexistent_query_mass_ = 0.0;
};

}  // namespace guess::content
