#include "content/query_stream.h"

#include "common/check.h"

namespace guess::content {

QueryStream::QueryStream(BurstParams params) : params_(params) {
  GUESS_CHECK(params_.query_rate > 0.0);
  GUESS_CHECK(params_.burst_min >= 1);
  GUESS_CHECK(params_.burst_max >= params_.burst_min);
}

double QueryStream::mean_burst_size() const {
  return 0.5 * static_cast<double>(params_.burst_min + params_.burst_max);
}

double QueryStream::burst_rate() const {
  return params_.query_rate / mean_burst_size();
}

sim::Duration QueryStream::next_burst_gap(Rng& rng) const {
  return rng.exponential(burst_rate());
}

std::size_t QueryStream::next_burst_size(Rng& rng) const {
  return static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(params_.burst_min),
      static_cast<std::int64_t>(params_.burst_max)));
}

}  // namespace guess::content
