#include "guess/policy.h"

#include "common/check.h"

namespace guess {

double selection_score(Policy policy, const CacheEntry& entry, Rng& rng,
                       bool first_hand_only) {
  switch (policy) {
    case Policy::kRandom:
      return rng.uniform();
    case Policy::kMRU:
      return entry.ts;
    case Policy::kLRU:
      return -entry.ts;
    case Policy::kMFS:
      return static_cast<double>(entry.num_files);
    case Policy::kMR:
      return static_cast<double>(entry.trusted_num_res(first_hand_only));
  }
  GUESS_CHECK_MSG(false, "unreachable");
  return 0.0;
}

double retention_score(Replacement policy, const CacheEntry& entry, Rng& rng,
                       bool first_hand_only) {
  switch (policy) {
    case Replacement::kRandom:
      return rng.uniform();
    case Replacement::kLRU:
      // Evict least-recently-used: retain high TS.
      return entry.ts;
    case Replacement::kMRU:
      // Evict most-recently-used: retain low TS (stale entries survive).
      return -entry.ts;
    case Replacement::kLFS:
      return static_cast<double>(entry.num_files);
    case Replacement::kLR:
      return static_cast<double>(entry.trusted_num_res(first_hand_only));
  }
  GUESS_CHECK_MSG(false, "unreachable");
  return 0.0;
}

double deterministic_selection_score(Policy policy, const CacheEntry& entry,
                                     bool first_hand_only) {
  switch (policy) {
    case Policy::kRandom:
      break;
    case Policy::kMRU:
      return entry.ts;
    case Policy::kLRU:
      return -entry.ts;
    case Policy::kMFS:
      return static_cast<double>(entry.num_files);
    case Policy::kMR:
      return static_cast<double>(entry.trusted_num_res(first_hand_only));
  }
  GUESS_CHECK_MSG(false, "random policy has no deterministic score");
  return 0.0;
}

double deterministic_retention_score(Replacement policy,
                                     const CacheEntry& entry,
                                     bool first_hand_only) {
  switch (policy) {
    case Replacement::kRandom:
      break;
    case Replacement::kLRU:
      return entry.ts;
    case Replacement::kMRU:
      return -entry.ts;
    case Replacement::kLFS:
      return static_cast<double>(entry.num_files);
    case Replacement::kLR:
      return static_cast<double>(entry.trusted_num_res(first_hand_only));
  }
  GUESS_CHECK_MSG(false, "random replacement has no deterministic score");
  return 0.0;
}

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kRandom: return "Ran";
    case Policy::kMRU: return "MRU";
    case Policy::kLRU: return "LRU";
    case Policy::kMFS: return "MFS";
    case Policy::kMR: return "MR";
  }
  return "?";
}

std::string to_string(Replacement replacement) {
  switch (replacement) {
    case Replacement::kRandom: return "Ran";
    case Replacement::kLRU: return "LRU";
    case Replacement::kMRU: return "MRU";
    case Replacement::kLFS: return "LFS";
    case Replacement::kLR: return "LR";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  if (name == "Ran" || name == "Random") return Policy::kRandom;
  if (name == "MRU") return Policy::kMRU;
  if (name == "LRU") return Policy::kLRU;
  if (name == "MFS") return Policy::kMFS;
  if (name == "MR") return Policy::kMR;
  GUESS_CHECK_MSG(false, "unknown policy: " << name);
  return Policy::kRandom;
}

Replacement parse_replacement(const std::string& name) {
  if (name == "Ran" || name == "Random") return Replacement::kRandom;
  if (name == "LRU") return Replacement::kLRU;
  if (name == "MRU") return Replacement::kMRU;
  if (name == "LFS") return Replacement::kLFS;
  if (name == "LR") return Replacement::kLR;
  GUESS_CHECK_MSG(false, "unknown replacement policy: " << name);
  return Replacement::kRandom;
}

}  // namespace guess
