// System and protocol parameters — the paper's Tables 1 and 2, plus the
// implementation knobs the paper fixes in prose (probe slot of 0.2 s,
// CacheSeedSize ≈ NetworkSize/100, parallel probes as a §6.2 extension).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "content/content_model.h"
#include "content/query_stream.h"
#include "guess/policy.h"
#include "sim/time.h"

namespace guess {

/// What a malicious peer puts in its Pongs (§6.4).
enum class BadPongBehavior {
  kDead,  ///< dead IP addresses (non-colluding attackers)
  kBad,   ///< addresses of other malicious peers (collusion)
};

/// Table 1: parameters of the *system* the protocol runs on.
struct SystemParams {
  std::size_t network_size = 1000;       ///< NetworkSize
  std::size_t num_desired_results = 1;   ///< NumDesiredResults
  double lifespan_multiplier = 1.0;      ///< LifespanMultiplier
  double query_rate = 9.26e-3;           ///< QueryRate (queries/user/second)
  std::uint32_t max_probes_per_second = 100;  ///< MaxProbesPerSecond
  double percent_bad_peers = 0.0;        ///< PercentBadPeers, as a percentage (0..100)
  BadPongBehavior bad_pong_behavior = BadPongBehavior::kDead;

  /// CacheSeedSize (§5.1): initial live entries per cache; the paper found
  /// any small value (~NetworkSize/100) equivalent. 0 = NetworkSize/100,
  /// clamped to [5, cache size].
  std::size_t cache_seed_size = 0;

  /// Percentage of peers that are SELFISH (§3.3): they follow the protocol
  /// except that they blast `selfish_parallel_probes` probes per slot
  /// instead of probing serially, maximizing their own response time at
  /// everyone else's expense. Selfishness is orthogonal to malice.
  double percent_selfish_peers = 0.0;
  std::size_t selfish_parallel_probes = 100;

  /// Content/query workload (DESIGN.md substitutions #2/#3).
  content::ContentParams content;

  /// Burst structure of query arrivals (§5.1).
  std::size_t burst_min = 1;
  std::size_t burst_max = 5;

  /// Resolved cache seed size for a given cache capacity.
  std::size_t resolved_cache_seed(std::size_t cache_size) const;

  /// Fraction in [0,1) derived from percent_bad_peers.
  double bad_fraction() const { return percent_bad_peers / 100.0; }
};

/// Probe-payment economy (§3.3's countermeasure to selfish probing): every
/// probe delivered to a live peer transfers `probe_cost` credits from the
/// prober to the server. Peers start with `initial_credit` and can hold at
/// most `credit_cap`. A peer without credit cannot probe — its query stalls
/// until inbound probes earn it more (or the stall limit expires the query).
/// This caps any peer's long-run probe rate at the rate it serves others,
/// which is exactly the incentive the paper sketches (via PPay [23]).
/// Default economy: a mild producer surplus (serve_reward > probe_cost)
/// keeps honest serial querying affordable even though load (and hence
/// income) concentrates on big sharers, while a blaster still burns its
/// endowment in a few queries and drops to its serve-rate budget.
struct PaymentParams {
  bool enabled = false;
  double initial_credit = 100.0;
  double probe_cost = 1.0;
  double serve_reward = 2.0;
  double credit_cap = 1000.0;
  /// A stalled (creditless) query is abandoned as unsatisfied after this
  /// many consecutive probe slots without progress.
  std::size_t max_stalled_slots = 600;
};

/// Adaptive ping maintenance — the runtime guideline §6.1 closes with:
/// "if a peer discovers that many of its probes are to dead addresses, the
/// peer should decrease its PingInterval... if almost all its entries are
/// live, it may increase it." Every `window` pings the peer looks at the
/// dead fraction and halves its interval (≥ min_interval) when above
/// `dead_high`, or grows it by 1.5x (≤ max_interval) when below `dead_low`.
struct AdaptivePingParams {
  bool enabled = false;
  sim::Duration min_interval = 5.0;
  sim::Duration max_interval = 480.0;
  std::size_t window = 10;
  double dead_high = 0.3;
  double dead_low = 0.05;
};

/// Malicious-peer detection — §6.4's closing future work: "detecting
/// malicious peers can be accomplished using heuristics — for example...
/// if a peer consistently returns many dead IP addresses in its Pong."
/// Two kinds of evidence, scored per suspect with `note_referral`:
///  * dead referrals: the Pong entries a neighbor supplied during a query
///    turned out dead (the Dead-pool attack signature; charged to the
///    referrer — honest staleness stays well below the threshold);
///  * lies: a probed peer returns nothing despite its entry claiming
///    `lie_claim_threshold`+ results (the collusion signature; charged to
///    the liar itself — honest peers forward claims they cannot verify, so
///    referrers are NOT blamed for them).
/// After `min_referrals` samples, a suspect whose bad fraction exceeds
/// `bad_threshold` is blacklisted: evicted, never re-admitted, never probed,
/// Pongs ignored.
/// A peer whose blacklist reaches `switch_threshold` concludes it is under
/// attack and switches itself from trusting to first-hand-only ingestion
/// (MR → MR*), zeroing foreign NumRes claims from then on — the adaptive
/// policy switching the paper proposes ("peers can learn to switch between
/// MR and MR* if malicious peers are present").
struct DetectionParams {
  bool enabled = false;
  std::size_t min_referrals = 3;
  double bad_threshold = 0.6;
  bool adaptive_policy_switch = true;
  std::size_t switch_threshold = 5;
  /// A probed peer that returns nothing despite an entry claiming at least
  /// this many results is treated as a liar (and charged alongside its
  /// referrer). Honest entries carry NumRes of 0 or 1 per answered query,
  /// while the MR-hijacking attack needs outsized claims to win the
  /// ordering — so the magnitude of the claim is itself the signature.
  std::uint32_t lie_claim_threshold = 5;

  // --- Hardening against the adversary zoo (DESIGN.md §11) ---

  /// Cap on entries accepted from a single Pong (0 = unlimited, the
  /// protocol's implicit trust). A Pong exceeding the cap is discarded
  /// wholesale and its sender blacklisted outright — the pong-flood
  /// amplification signature is the oversize itself (honest Pongs carry
  /// PongSize entries), so one observation is proof: no referral
  /// accumulation is needed, and nothing a proven liar lists is worth
  /// ingesting.
  std::size_t max_pong_entries = 0;

  /// Charge a peer that never replies to our own Ping/QueryProbe with a bad
  /// referral against *itself*. Counters reply-withholding (slowloris):
  /// a withholder keeps reinserting itself via introductions, so each
  /// timeout it costs us is evidence, and the charges window consistently
  /// with the pings_to_dead accounting (measured at issue time). Dead
  /// honest peers collect charges too, but their ids are never reused, so
  /// a posthumous blacklisting is harmless.
  bool charge_no_reply = false;

  /// Eclipse resistance: when > 0, a link cache refuses to replace a
  /// first-hand entry with a non-first-hand candidate while first-hand
  /// entries number at most this floor. Attack pongs are never first-hand,
  /// so a colluding cohort cannot displace the last `first_hand_floor`
  /// entries of a victim's own direct experience.
  std::size_t first_hand_floor = 0;

  /// The hardened preset the adversary-matrix bench evaluates: detection on
  /// with tighter thresholds plus all three zoo countermeasures.
  static DetectionParams hardened();
};

/// Pong-server rebootstrap. §6.1: "unless there is some form of centralized
/// boot-strapping server (e.g., pong servers such as those run by LimeWire
/// for Gnutella), the network is unlikely to heal." A peer whose link cache
/// has shrunk below `min_entries` (it has been eaten by churn, poisoning or
/// blacklist evictions) asks the pong server for fresh live addresses, at
/// most once per `cooldown` — the paper's "we do not wish to make heavy use
/// of the service" constraint. The server tracks liveness, not honesty: it
/// hands out uniformly random live peers, attackers included.
struct BootstrapParams {
  bool pong_server_reseed = false;
  std::size_t min_entries = 10;
  /// Addresses handed out per reseed (0 = the CacheSeedSize default).
  std::size_t amount = 0;
  sim::Duration cooldown = 300.0;
};

/// Table 2: parameters of the GUESS protocol itself.
struct ProtocolParams {
  Policy query_probe = Policy::kRandom;        ///< QueryProbe
  Policy query_pong = Policy::kRandom;         ///< QueryPong
  Policy ping_probe = Policy::kRandom;         ///< PingProbe
  Policy ping_pong = Policy::kRandom;          ///< PingPong
  Replacement cache_replacement = Replacement::kRandom;  ///< CacheReplacement
  sim::Duration ping_interval = 30.0;          ///< PingInterval (seconds)
  std::size_t cache_size = 100;                ///< CacheSize
  bool reset_num_results = false;              ///< ResetNumResults (MR* = MR + this)
  bool do_backoff = false;                     ///< DoBackoff
  std::size_t pong_size = 5;                   ///< PongSize
  double intro_prob = 0.1;                     ///< IntroProb

  // --- Fixed by the GUESS spec / paper prose ---

  /// Serial probing slot: one probe is sent, then the peer waits for the
  /// reply or the timeout before the next probe (§2.3; 0.2 s per §6.2).
  sim::Duration probe_interval = 0.2;

  /// Probes sent per slot (§6.2's parallel-walk extension; spec default 1).
  std::size_t parallel_probes = 1;

  /// Hard cap on probes per query (0 = probe until candidates run out).
  /// 1000 matches the largest extent the paper evaluates (Figure 8).
  std::size_t max_probes_per_query = 1000;

  /// With DoBackoff, how long a refused peer is exempt from re-probing.
  sim::Duration backoff_duration = 30.0;

  /// Probe-payment economy (§3.3); disabled by default.
  PaymentParams payments;

  /// Adaptive ping maintenance (§6.1 guideline); disabled by default.
  AdaptivePingParams adaptive_ping;

  /// Malicious-peer detection (§6.4 future work); disabled by default.
  DetectionParams detection;

  /// Pong-server rebootstrap (§6.1's healing mechanism); disabled by
  /// default.
  BootstrapParams bootstrap;

  /// When false, Pong entries received during a query do NOT extend the
  /// candidate set — the query can only probe the link-cache snapshot it
  /// started with. Ablation knob isolating the query cache's contribution
  /// (§2.3's mechanism for probing beyond the link cache).
  bool use_query_cache = true;

  /// §6.2's future-work extension: when enabled, a query that completes
  /// `adaptive_parallel_trigger` consecutive result-less probe slots doubles
  /// its per-slot probe count (up to `adaptive_parallel_max`). Improves
  /// worst-case response time at a small probe overhead.
  bool adaptive_parallel = false;
  std::size_t adaptive_parallel_trigger = 10;
  std::size_t adaptive_parallel_max = 32;

  /// Configure the MR* policy of §6.4 for all query-side policy types:
  /// MR ordering + first-hand-only NumRes.
  static ProtocolParams mr_star_defaults();
};

/// Knobs of the adversary zoo's attack behaviors (DESIGN.md §11). Cohorts
/// are deployed by `at T attack <kind> frac=F for D` scenario windows; these
/// parameters shape what each cohort member does while deployed.
struct AdversaryParams {
  /// Eclipse (and pong-flood, which needs the same contact surface): cohort
  /// members ping this many times faster than honest peers, spreading their
  /// attack pongs (and introductions) aggressively.
  double eclipse_ping_boost = 8.0;

  /// Sybil flash crowd: each sybil identity lives this long, then retires
  /// and is replaced by a fresh identity (new PeerId — the old one is
  /// tombstoned forever), so victims' caches fill with soon-dead entries.
  sim::Duration sybil_lifetime = 30.0;

  /// Pong-flood amplification: attack pongs carry this multiple of PongSize
  /// entries (fabricated dead addresses with top-of-distribution claims).
  double pong_flood_factor = 8.0;

  /// Fabricated dead addresses backing pong-flood payloads, as a multiple
  /// of NetworkSize (finite, so caches can dedupe repeats like real IPs).
  double flood_pool_factor = 4.0;
};

/// Parameters of malicious peers (§6.4). The attack claims are chosen at the
/// top of the honest distributions so trusting policies rank attackers first.
struct MaliciousParams {
  std::uint32_t claimed_num_files = 5000;  ///< lie exploiting MFS
  std::uint32_t claimed_num_res = 20;      ///< lie exploiting MR
  /// Pool of fabricated dead addresses shared by attackers, as a multiple of
  /// NetworkSize (kept finite so caches can dedupe repeats, like real IPs).
  double dead_pool_factor = 10.0;

  /// Adversary-zoo behavior knobs (scenario `attack` windows).
  AdversaryParams adversary;
};

std::string to_string(BadPongBehavior behavior);

/// One-line human-readable summaries used by bench headers.
std::string describe(const SystemParams& params);
std::string describe(const ProtocolParams& params);

}  // namespace guess
