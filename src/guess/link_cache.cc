#include "guess/link_cache.h"

#include <algorithm>

#include "common/check.h"

namespace guess {

LinkCache::LinkCache(PeerId owner, std::size_t capacity)
    : owner_(owner), capacity_(capacity), index_(capacity) {
  GUESS_CHECK_MSG(capacity > 0, "cache capacity must be positive");
  entries_.reserve(capacity);
  // Selection scratch sized to the bound up front: the cache fills slowly
  // over a run, and growing these lazily would leak occasional allocations
  // into the steady-state query path (the zero-alloc test counts them).
  topk_positions_.reserve(capacity);
  topk_scratch_.reserve(capacity);
  sample_out_.reserve(capacity);
  sample_scratch_.reserve(capacity);
}

void LinkCache::configure_indices(std::initializer_list<Policy> selection,
                                  Replacement retention) {
  selection_indices_.clear();
  for (Policy policy : selection) {
    if (policy == Policy::kRandom) continue;
    if (find_selection(policy) != nullptr) continue;  // dedupe
    selection_indices_.push_back(SelectionIndex{policy, ScoreIndex{}});
  }
  retention_policy_ = retention;
  has_retention_index_ = retention != Replacement::kRandom;
  rebuild_indices();
}

void LinkCache::set_first_hand_only(bool enabled) {
  if (first_hand_only_ == enabled) return;
  first_hand_only_ = enabled;
  // trusted_num_res changed for every non-first-hand entry: re-key.
  rebuild_indices();
}

void LinkCache::rebuild_indices() {
  for (SelectionIndex& sel : selection_indices_) {
    sel.index.reset(ScoreIndex::Order::kMaxFirst, capacity_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      sel.index.on_insert(i, deterministic_selection_score(
                                 sel.policy, entries_[i], first_hand_only_));
    }
  }
  if (has_retention_index_) {
    retention_index_.reset(ScoreIndex::Order::kMinFirst, capacity_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      retention_index_.on_insert(
          i, deterministic_retention_score(retention_policy_, entries_[i],
                                           first_hand_only_));
    }
  }
}

const ScoreIndex* LinkCache::find_selection(Policy policy) const {
  for (const SelectionIndex& sel : selection_indices_) {
    if (sel.policy == policy) return &sel.index;
  }
  return nullptr;
}

void LinkCache::note_insert() {
  std::size_t pos = entries_.size() - 1;
  for (SelectionIndex& sel : selection_indices_) {
    sel.index.on_insert(pos, deterministic_selection_score(
                                 sel.policy, entries_[pos], first_hand_only_));
  }
  if (has_retention_index_) {
    retention_index_.on_insert(
        pos, deterministic_retention_score(retention_policy_, entries_[pos],
                                           first_hand_only_));
  }
}

void LinkCache::note_update(std::size_t pos) {
  for (SelectionIndex& sel : selection_indices_) {
    sel.index.on_update(pos, deterministic_selection_score(
                                 sel.policy, entries_[pos], first_hand_only_));
  }
  if (has_retention_index_) {
    retention_index_.on_update(
        pos, deterministic_retention_score(retention_policy_, entries_[pos],
                                           first_hand_only_));
  }
}

std::optional<CacheEntry> LinkCache::get(PeerId id) const {
  std::uint32_t pos = index_.find(id);
  if (pos == FlatIdMap::kNotFound) return std::nullopt;
  return entries_[pos];
}

void LinkCache::insert_free(const CacheEntry& entry) {
  GUESS_CHECK(entry.id != owner_);
  GUESS_CHECK(!full());
  GUESS_CHECK(!contains(entry.id));
  index_.insert(entry.id, static_cast<std::uint32_t>(entries_.size()));
  entries_.push_back(entry);
  if (entry.first_hand) ++first_hand_count_;
  note_insert();
}

bool LinkCache::offer(const CacheEntry& candidate, Replacement policy,
                      Rng& rng) {
  if (candidate.id == owner_ || contains(candidate.id)) return false;
  if (!full()) {
    index_.insert(candidate.id, static_cast<std::uint32_t>(entries_.size()));
    entries_.push_back(candidate);
    if (candidate.first_hand) ++first_hand_count_;
    note_insert();
    return true;
  }
  // Random replacement is the always-insert baseline: the candidate
  // replaces a uniformly chosen victim (documented in policy.h).
  if (policy == Replacement::kRandom) {
    std::size_t victim = rng.index(entries_.size());
    if (floor_protects(victim, candidate)) return false;
    if (entries_[victim].first_hand) --first_hand_count_;
    if (candidate.first_hand) ++first_hand_count_;
    index_.erase(entries_[victim].id);
    entries_[victim] = candidate;
    index_.insert(candidate.id, static_cast<std::uint32_t>(victim));
    note_update(victim);
    return true;
  }
  // Victim = lowest retention score among current entries (first position
  // on ties). The maintained ordering answers in O(1); unconfigured
  // policies fall back to the scan, which picks the identical victim.
  std::size_t victim;
  double victim_score;
  if (has_retention_index_ && retention_policy_ == policy) {
    const ScoreIndex::Item& top = retention_index_.top();
    victim = top.pos;
    victim_score = top.score;
  } else {
    victim = 0;
    victim_score =
        retention_score(policy, entries_[0], rng, first_hand_only_);
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      double s = retention_score(policy, entries_[i], rng, first_hand_only_);
      if (s < victim_score) {
        victim_score = s;
        victim = i;
      }
    }
  }
  if (deterministic_retention_score(policy, candidate, first_hand_only_) <=
      victim_score)
    return false;
  if (floor_protects(victim, candidate)) return false;
  if (entries_[victim].first_hand) --first_hand_count_;
  if (candidate.first_hand) ++first_hand_count_;
  index_.erase(entries_[victim].id);
  entries_[victim] = candidate;
  index_.insert(candidate.id, static_cast<std::uint32_t>(victim));
  note_update(victim);
  return true;
}

void LinkCache::erase_at(std::size_t pos) {
  std::size_t last = entries_.size() - 1;
  if (entries_[pos].first_hand) --first_hand_count_;
  index_.erase(entries_[pos].id);
  if (pos != last) {
    entries_[pos] = entries_[last];
    index_.assign(entries_[pos].id, static_cast<std::uint32_t>(pos));
  }
  entries_.pop_back();
  for (SelectionIndex& sel : selection_indices_) {
    sel.index.on_swap_remove(pos, last);
  }
  if (has_retention_index_) retention_index_.on_swap_remove(pos, last);
}

bool LinkCache::evict(PeerId id) {
  std::uint32_t pos = index_.find(id);
  if (pos == FlatIdMap::kNotFound) return false;
  erase_at(pos);
  return true;
}

void LinkCache::touch(PeerId id, sim::Time now) {
  std::uint32_t pos = index_.find(id);
  if (pos == FlatIdMap::kNotFound) return;
  entries_[pos].ts = now;
  note_update(pos);
}

void LinkCache::set_num_res(PeerId id, std::uint32_t num_res) {
  std::uint32_t pos = index_.find(id);
  if (pos == FlatIdMap::kNotFound) return;
  if (!entries_[pos].first_hand) ++first_hand_count_;
  entries_[pos].num_res = num_res;
  entries_[pos].first_hand = true;
  note_update(pos);
}

std::optional<CacheEntry> LinkCache::select_best(Policy policy,
                                                 Rng& rng) const {
  if (entries_.empty()) return std::nullopt;
  // Uniform pick is the argmax of i.i.d. random scores — skip the scan.
  if (policy == Policy::kRandom) return entries_[rng.index(entries_.size())];
  if (const ScoreIndex* index = find_selection(policy)) {
    return entries_[index->top().pos];
  }
  std::size_t best = 0;
  double best_score =
      selection_score(policy, entries_[0], rng, first_hand_only_);
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    double s = selection_score(policy, entries_[i], rng, first_hand_only_);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return entries_[best];
}

std::vector<CacheEntry> LinkCache::select_top(Policy policy,
                                              std::size_t count,
                                              Rng& rng) const {
  std::vector<CacheEntry> out;
  select_top_into(policy, count, rng, out);
  return out;
}

void LinkCache::select_top_into(Policy policy, std::size_t count, Rng& rng,
                                std::vector<CacheEntry>& out) const {
  out.clear();
  count = std::min(count, entries_.size());
  if (count == 0) return;
  if (out.capacity() < count) out.reserve(count);
  // A uniform k-subset is the top-k of i.i.d. random scores — skip the sort.
  if (policy == Policy::kRandom) {
    rng.sample_indices_into(entries_.size(), count, sample_out_,
                            sample_scratch_);
    for (std::size_t idx : sample_out_) {
      out.push_back(entries_[idx]);
    }
    return;
  }
  if (const ScoreIndex* index = find_selection(policy)) {
    topk_positions_.clear();
    index->top_k(count, topk_positions_, topk_scratch_);
    for (std::uint32_t pos : topk_positions_) {
      out.push_back(entries_[pos]);
    }
    return;
  }
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    scored.emplace_back(
        selection_score(policy, entries_[i], rng, first_hand_only_), i);
  }
  // Equal scores tie-break by entry index: partial_sort is not stable, so
  // without the index the order of equal-score entries would depend on the
  // stdlib implementation (and could differ across platforms/versions).
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(count),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  for (std::size_t k = 0; k < count; ++k) {
    out.push_back(entries_[scored[k].second]);
  }
}

}  // namespace guess
