#include "guess/link_cache.h"

#include <algorithm>

#include "common/check.h"

namespace guess {

LinkCache::LinkCache(PeerId owner, std::size_t capacity)
    : owner_(owner), capacity_(capacity) {
  GUESS_CHECK_MSG(capacity > 0, "cache capacity must be positive");
  entries_.reserve(capacity);
  index_.reserve(capacity * 2);
}

std::optional<CacheEntry> LinkCache::get(PeerId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second];
}

void LinkCache::insert_free(const CacheEntry& entry) {
  GUESS_CHECK(entry.id != owner_);
  GUESS_CHECK(!full());
  GUESS_CHECK(!contains(entry.id));
  index_.emplace(entry.id, entries_.size());
  entries_.push_back(entry);
}

bool LinkCache::offer(const CacheEntry& candidate, Replacement policy,
                      Rng& rng) {
  if (candidate.id == owner_ || contains(candidate.id)) return false;
  if (!full()) {
    index_.emplace(candidate.id, entries_.size());
    entries_.push_back(candidate);
    return true;
  }
  // Random replacement is the always-insert baseline: the candidate
  // replaces a uniformly chosen victim (documented in policy.h).
  if (policy == Replacement::kRandom) {
    std::size_t victim = rng.index(entries_.size());
    index_.erase(entries_[victim].id);
    entries_[victim] = candidate;
    index_.emplace(candidate.id, victim);
    return true;
  }
  // Victim = lowest retention score among current entries.
  std::size_t victim = 0;
  double victim_score =
      retention_score(policy, entries_[0], rng, first_hand_only_);
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    double s = retention_score(policy, entries_[i], rng, first_hand_only_);
    if (s < victim_score) {
      victim_score = s;
      victim = i;
    }
  }
  if (retention_score(policy, candidate, rng, first_hand_only_) <=
      victim_score)
    return false;
  index_.erase(entries_[victim].id);
  entries_[victim] = candidate;
  index_.emplace(candidate.id, victim);
  return true;
}

void LinkCache::erase_at(std::size_t pos) {
  index_.erase(entries_[pos].id);
  if (pos != entries_.size() - 1) {
    entries_[pos] = entries_.back();
    index_[entries_[pos].id] = pos;
  }
  entries_.pop_back();
}

bool LinkCache::evict(PeerId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  erase_at(it->second);
  return true;
}

void LinkCache::touch(PeerId id, sim::Time now) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  entries_[it->second].ts = now;
}

void LinkCache::set_num_res(PeerId id, std::uint32_t num_res) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  entries_[it->second].num_res = num_res;
  entries_[it->second].first_hand = true;
}

std::optional<CacheEntry> LinkCache::select_best(Policy policy,
                                                 Rng& rng) const {
  if (entries_.empty()) return std::nullopt;
  // Uniform pick is the argmax of i.i.d. random scores — skip the scan.
  if (policy == Policy::kRandom) return entries_[rng.index(entries_.size())];
  std::size_t best = 0;
  double best_score =
      selection_score(policy, entries_[0], rng, first_hand_only_);
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    double s = selection_score(policy, entries_[i], rng, first_hand_only_);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return entries_[best];
}

std::vector<CacheEntry> LinkCache::select_top(Policy policy,
                                              std::size_t count,
                                              Rng& rng) const {
  count = std::min(count, entries_.size());
  if (count == 0) return {};
  // A uniform k-subset is the top-k of i.i.d. random scores — skip the sort.
  if (policy == Policy::kRandom) {
    std::vector<CacheEntry> out;
    out.reserve(count);
    for (std::size_t idx : rng.sample_indices(entries_.size(), count)) {
      out.push_back(entries_[idx]);
    }
    return out;
  }
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    scored.emplace_back(
        selection_score(policy, entries_[i], rng, first_hand_only_), i);
  }
  // Equal scores tie-break by entry index: partial_sort is not stable, so
  // without the index the order of equal-score entries would depend on the
  // stdlib implementation (and could differ across platforms/versions).
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(count),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<CacheEntry> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    out.push_back(entries_[scored[k].second]);
  }
  return out;
}

}  // namespace guess
