#include "guess/peer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace guess {

Peer::Peer(PeerId id, sim::Time birth, content::Library library,
           std::size_t cache_capacity, bool malicious, bool selfish)
    : id_(id),
      birth_(birth),
      malicious_(malicious),
      selfish_(selfish),
      library_(std::move(library)),
      cache_(id, cache_capacity) {
  // Pending-query ring sized at birth for a realistic backlog (queries run
  // one at a time and bursts are 1..5): growing it lazily would leak a
  // first-enqueue allocation into the steady-state query path.
  pending_queries_.reserve(8);
}

void Peer::spend_credit(double cost) {
  GUESS_CHECK_MSG(credit_ >= cost, "spending unaffordable probe");
  credit_ -= cost;
}

void Peer::earn_credit(double reward, double cap) {
  credit_ = std::min(credit_ + reward, cap);
}

void Peer::reserve_credit(double cost) {
  GUESS_CHECK_MSG(can_afford(cost), "reserving unaffordable probe");
  ++reserved_;
}

void Peer::release_credit() {
  GUESS_CHECK_MSG(reserved_ > 0, "releasing credit with none reserved");
  --reserved_;
}

void Peer::commit_credit(double cost) {
  release_credit();
  // The reservation guarantees affordability up to rounding in credit_'s
  // spend/earn history; clamp so an ulp-level shortfall cannot trip the
  // strict spend check mid-run.
  credit_ = std::max(credit_ - cost, 0.0);
}

std::uint32_t Peer::answer_query(content::FileId file,
                                 std::uint32_t max_results) const {
  if (malicious_) return 0;
  if (file == content::kNonexistentFile) return 0;
  if (!library_.contains(file)) return 0;
  // Each peer holds at most one copy of a file; a match is one result.
  return std::min<std::uint32_t>(1, max_results);
}

bool Peer::accept_probe(sim::Time now, std::uint32_t max_probes_per_second) {
  auto window = static_cast<std::int64_t>(std::floor(now));
  if (window != window_) {
    window_ = window;
    window_probes_ = 0;
  }
  if (window_probes_ >= max_probes_per_second) return false;
  ++window_probes_;
  return true;
}

void Peer::note_ping_result(bool dead, const AdaptivePingParams& params) {
  if (!params.enabled) return;
  ++ping_window_total_;
  if (dead) ++ping_window_dead_;
  if (ping_window_total_ < params.window) return;
  double dead_fraction = static_cast<double>(ping_window_dead_) /
                         static_cast<double>(ping_window_total_);
  if (dead_fraction > params.dead_high) {
    ping_interval_ = std::max(params.min_interval, ping_interval_ * 0.5);
  } else if (dead_fraction < params.dead_low) {
    ping_interval_ = std::min(params.max_interval, ping_interval_ * 1.5);
  }
  ping_window_total_ = 0;
  ping_window_dead_ = 0;
}

bool Peer::note_referral(PeerId source, bool bad,
                         const DetectionParams& params) {
  if (!params.enabled || source == kInvalidPeer || blacklisted(source)) {
    return false;
  }
  auto it = referral_stats_.find(source);
  if (it == referral_stats_.end()) {
    // Bound the tracker at the link-cache working set — cache residents
    // plus the Pong fan-in that feeds query caches; 4x capacity covers a
    // colluding population larger than the cache itself without letting the
    // map grow with every peer ever referred. When full, displace the
    // least-incriminated entry (fewest bad referrals, then fewest total,
    // then lowest id — deterministic). Clean-record referrers can never be
    // blacklisted, so recycling their slots costs nothing, while
    // accumulated evidence against likely attackers survives the churn.
    if (referral_stats_.size() >= 4 * cache_.capacity()) {
      auto victim = referral_stats_.begin();
      auto worse = [](const std::pair<const PeerId, ReferralStats>& a,
                      const std::pair<const PeerId, ReferralStats>& b) {
        if (a.second.bad != b.second.bad) return a.second.bad < b.second.bad;
        if (a.second.total != b.second.total)
          return a.second.total < b.second.total;
        return a.first < b.first;
      };
      for (auto cand = referral_stats_.begin(); cand != referral_stats_.end();
           ++cand) {
        if (worse(*cand, *victim)) victim = cand;
      }
      referral_stats_.erase(victim);
    }
    it = referral_stats_.emplace(source, ReferralStats{}).first;
  }
  ReferralStats& stats = it->second;
  ++stats.total;
  if (bad) ++stats.bad;
  if (stats.total < params.min_referrals) return false;
  double rate = static_cast<double>(stats.bad) /
                static_cast<double>(stats.total);
  if (rate <= params.bad_threshold) return false;
  convict(source);
  if (params.adaptive_policy_switch &&
      blacklist_.size() >= params.switch_threshold) {
    first_hand_only_ = true;  // under attack: stop trusting foreign claims
    cache_.set_first_hand_only(true);
  }
  return true;
}

bool Peer::blacklist_now(PeerId source, const DetectionParams& params) {
  if (!params.enabled || source == kInvalidPeer || blacklisted(source)) {
    return false;
  }
  convict(source);
  // Statistical convictions wait for the blacklist to reach
  // switch_threshold before abandoning foreign claims, because each one
  // might be a false positive. A structurally-impossible message is proof
  // of an active attacker, so the defensive posture follows immediately.
  if (params.adaptive_policy_switch) {
    first_hand_only_ = true;
    cache_.set_first_hand_only(true);
  }
  return true;
}

void Peer::convict(PeerId source) {
  blacklist_.insert(source);
  referral_stats_.erase(source);
  // A blacklisted peer is never probed again, so a pending backoff window
  // for it is dead weight — and a peer that never replies (withholding)
  // reaches here through repeated timeout charges while also being backed
  // off; erase the window so the two verdicts stay consistent.
  backoff_until_.erase(source);
}

bool Peer::backed_off(PeerId target, sim::Time now) {
  auto it = backoff_until_.find(target);
  if (it == backoff_until_.end()) return false;
  if (it->second > now) return true;
  backoff_until_.erase(it);  // expired: prune so the map stays bounded
  return false;
}

Peer::PendingQuery Peer::pop_pending_query() {
  GUESS_CHECK(has_pending_query());
  PendingQuery file = pending_queries_[pending_head_++];
  if (pending_head_ == pending_queries_.size()) {
    pending_queries_.clear();
    pending_head_ = 0;
  } else if (pending_head_ >= 8 &&
             pending_head_ * 2 >= pending_queries_.size()) {
    // A peer that always has a fresh burst queued before the old one drains
    // would otherwise grow the vector with its cumulative throughput, not
    // its backlog. Sliding the live suffix down reuses the buffer —
    // amortized O(1), and never an allocation.
    pending_queries_.erase(pending_queries_.begin(),
                           pending_queries_.begin() +
                               static_cast<std::ptrdiff_t>(pending_head_));
    pending_head_ = 0;
  }
  return file;
}

}  // namespace guess
