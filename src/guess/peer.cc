#include "guess/peer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace guess {

Peer::Peer(PeerId id, sim::Time birth, content::Library library,
           std::size_t cache_capacity, bool malicious, bool selfish)
    : id_(id),
      birth_(birth),
      malicious_(malicious),
      selfish_(selfish),
      library_(std::move(library)),
      cache_(id, cache_capacity) {}

void Peer::spend_credit(double cost) {
  GUESS_CHECK_MSG(credit_ >= cost, "spending unaffordable probe");
  credit_ -= cost;
}

void Peer::earn_credit(double reward, double cap) {
  credit_ = std::min(credit_ + reward, cap);
}

void Peer::reserve_credit(double cost) {
  GUESS_CHECK_MSG(can_afford(cost), "reserving unaffordable probe");
  ++reserved_;
}

void Peer::release_credit() {
  GUESS_CHECK_MSG(reserved_ > 0, "releasing credit with none reserved");
  --reserved_;
}

void Peer::commit_credit(double cost) {
  release_credit();
  // The reservation guarantees affordability up to rounding in credit_'s
  // spend/earn history; clamp so an ulp-level shortfall cannot trip the
  // strict spend check mid-run.
  credit_ = std::max(credit_ - cost, 0.0);
}

std::uint32_t Peer::answer_query(content::FileId file,
                                 std::uint32_t max_results) const {
  if (malicious_) return 0;
  if (file == content::kNonexistentFile) return 0;
  if (!library_.contains(file)) return 0;
  // Each peer holds at most one copy of a file; a match is one result.
  return std::min<std::uint32_t>(1, max_results);
}

bool Peer::accept_probe(sim::Time now, std::uint32_t max_probes_per_second) {
  auto window = static_cast<std::int64_t>(std::floor(now));
  if (window != window_) {
    window_ = window;
    window_probes_ = 0;
  }
  if (window_probes_ >= max_probes_per_second) return false;
  ++window_probes_;
  return true;
}

void Peer::note_ping_result(bool dead, const AdaptivePingParams& params) {
  if (!params.enabled) return;
  ++ping_window_total_;
  if (dead) ++ping_window_dead_;
  if (ping_window_total_ < params.window) return;
  double dead_fraction = static_cast<double>(ping_window_dead_) /
                         static_cast<double>(ping_window_total_);
  if (dead_fraction > params.dead_high) {
    ping_interval_ = std::max(params.min_interval, ping_interval_ * 0.5);
  } else if (dead_fraction < params.dead_low) {
    ping_interval_ = std::min(params.max_interval, ping_interval_ * 1.5);
  }
  ping_window_total_ = 0;
  ping_window_dead_ = 0;
}

bool Peer::note_referral(PeerId source, bool bad,
                         const DetectionParams& params) {
  if (!params.enabled || source == kInvalidPeer || blacklisted(source)) {
    return false;
  }
  ReferralStats& stats = referral_stats_[source];
  ++stats.total;
  if (bad) ++stats.bad;
  if (stats.total < params.min_referrals) return false;
  double rate = static_cast<double>(stats.bad) /
                static_cast<double>(stats.total);
  if (rate <= params.bad_threshold) return false;
  blacklist_.insert(source);
  referral_stats_.erase(source);
  if (params.adaptive_policy_switch &&
      blacklist_.size() >= params.switch_threshold) {
    first_hand_only_ = true;  // under attack: stop trusting foreign claims
    cache_.set_first_hand_only(true);
  }
  return true;
}

bool Peer::backed_off(PeerId target, sim::Time now) const {
  auto it = backoff_until_.find(target);
  return it != backoff_until_.end() && it->second > now;
}

content::FileId Peer::pop_pending_query() {
  GUESS_CHECK(!pending_queries_.empty());
  content::FileId file = pending_queries_.front();
  pending_queries_.pop_front();
  return file;
}

}  // namespace guess
