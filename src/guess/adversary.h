// The adversary zoo (DESIGN.md §11) — active attackers beyond §6.4's cache
// poisoners, generalizing PoisonGenerator's roster/pong machinery into an
// AdversaryBehavior interface with one concrete behavior per AttackKind:
//
//   eclipse    — colluders ping aggressively and answer every Ping/Probe
//                with a full-width pong naming fellow colluders under
//                top-of-distribution claims, displacing honest entries from
//                victims' link caches;
//   sybil      — a flash crowd of short-lived identities: each sybil
//                retires after `sybil_lifetime` and is replaced by a fresh
//                PeerId (the old id is tombstoned forever), filling victim
//                caches with soon-dead entries and churning the PeerTable's
//                id/generation machinery;
//   pong-flood — oversized pong payloads (`pong_flood_factor` × PongSize
//                fabricated dead addresses) to inflate victims' cache and
//                referral bookkeeping;
//   withhold   — slowloris probe stalling: accept Pings/QueryProbes and
//                never reply, burning the sender's timeout (and retries,
//                under the lossy transport) per exchange.
//
// Cohorts are deployed and retired deterministically by FaultEngine via
// `at T attack <kind> frac=F for D` scenario windows; the zoo itself is pure
// bookkeeping + payload generation and draws randomness only from the RNG
// the network passes in, so attack runs stay bitwise reproducible.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "faults/scenario.h"
#include "guess/cache_entry.h"
#include "guess/params.h"

namespace guess {

class AdversaryZoo;

/// One attack strategy. Stateless apart from a back-reference to the zoo
/// (for rosters and the flood pool); per-member state lives in the network
/// (timers) and the zoo (membership).
class AdversaryBehavior {
 public:
  explicit AdversaryBehavior(const AdversaryZoo& zoo) : zoo_(zoo) {}
  virtual ~AdversaryBehavior() = default;

  virtual faults::AttackKind kind() const = 0;

  /// Multiplier on the honest PingInterval for cohort members; < 1 means
  /// the attacker pings faster than honest peers.
  virtual double ping_interval_factor() const { return 1.0; }

  /// True if the attacker swallows inbound exchanges entirely — the sender
  /// sees a timeout (and pays retries under the lossy transport).
  virtual bool withholds_replies() const { return false; }

  /// Identity lifetime: 0 = the member lives for the whole attack window;
  /// > 0 = it retires after this long and a fresh identity replaces it.
  virtual sim::Duration identity_lifetime() const { return 0.0; }

  /// Fill `out` with the attack pong this member answers a Ping/QueryProbe
  /// with. May exceed `pong_size` (pong-flood) or be empty (a lone colluder
  /// has nobody to advertise).
  virtual void make_pong_into(PeerId self, std::size_t pong_size,
                              sim::Time now, Rng& rng,
                              std::vector<CacheEntry>& out) const = 0;

 protected:
  const AdversaryZoo& zoo() const { return zoo_; }

  /// An entry with the top-of-distribution claims (§6.4's lie, reused by
  /// every behavior so trusting policies rank attack entries first).
  CacheEntry claim_entry(PeerId id, sim::Time now) const;

 private:
  const AdversaryZoo& zoo_;
};

/// Rosters of deployed adversaries (one per AttackKind, PoisonGenerator's
/// swap-remove idiom) plus the behavior instances and the fabricated
/// address pool backing pong-flood payloads.
class AdversaryZoo {
 public:
  explicit AdversaryZoo(MaliciousParams params);
  ~AdversaryZoo();

  AdversaryZoo(const AdversaryZoo&) = delete;
  AdversaryZoo& operator=(const AdversaryZoo&) = delete;

  /// Fabricated dead addresses for pong-flood payloads (allocated by the
  /// network from its id space so they can never collide with real peers).
  void set_flood_pool(std::vector<PeerId> pool);
  const std::vector<PeerId>& flood_pool() const { return flood_pool_; }

  const AdversaryBehavior& behavior(faults::AttackKind kind) const;

  /// Membership bookkeeping. An id belongs to at most one roster; add
  /// checks freshness, remove checks membership (GUESS_CHECK).
  void add(faults::AttackKind kind, PeerId id);
  void remove(PeerId id);
  bool contains(PeerId id) const { return index_.contains(id); }
  std::size_t size() const { return index_.size(); }

  /// The deployed behavior of `id`, or nullptr if `id` is no adversary.
  const AdversaryBehavior* behavior_of(PeerId id) const;

  /// True iff `id` is a deployed reply-withholding adversary.
  bool withholds(PeerId id) const;

  /// Deployed members of `kind`, in swap-remove order.
  const std::vector<PeerId>& roster(faults::AttackKind kind) const;

  /// Dispatch to the member's behavior (GUESS_CHECKs membership).
  void make_pong_into(PeerId self, std::size_t pong_size, sim::Time now,
                      Rng& rng, std::vector<CacheEntry>& out) const;

  const MaliciousParams& params() const { return params_; }

 private:
  struct Membership {
    faults::AttackKind kind;
    std::size_t pos;  ///< index into rosters_[kind]
  };

  MaliciousParams params_;
  std::array<std::unique_ptr<AdversaryBehavior>, faults::kNumAttackKinds>
      behaviors_;
  std::array<std::vector<PeerId>, faults::kNumAttackKinds> rosters_;
  std::unordered_map<PeerId, Membership> index_;
  std::vector<PeerId> flood_pool_;
};

}  // namespace guess
