#include "guess/network.h"

#include <algorithm>

#include "common/check.h"

namespace guess {

namespace {
// Union-find for the weakly-connected-component computation.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }
  std::size_t largest() const {
    std::size_t best = 0;
    for (std::size_t i = 0; i < parent_.size(); ++i) {
      if (parent_[i] == i) best = std::max(best, size_[i]);
    }
    return best;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};
}  // namespace

// Event thunks for the hot self-rescheduling chains. Each is a fixed
// two-word callable, and the static_asserts pin them to the event queue's
// inline buffer: scheduling a ping, burst, or probe slot is allocation-free.
struct GuessNetwork::PingFired {
  GuessNetwork* net;
  PeerId id;
  void operator()() const { net->ping_timer_fired(id); }
};
struct GuessNetwork::BurstFired {
  GuessNetwork* net;
  PeerId id;
  void operator()() const { net->burst_timer_fired(id); }
};
struct GuessNetwork::QueryStepFired {
  GuessNetwork* net;
  PeerId id;
  void operator()() const { net->query_step(id); }
};

// Transport completion thunks. The static_asserts pin them to the
// Transport::Completion inline buffer: issuing a ping or a probe never
// allocates for the callback, under either transport.
struct GuessNetwork::PingResolved {
  GuessNetwork* net;
  PeerId pinger;
  PeerId target;
  // measuring_ at issue time: pings_sent is counted at issue, so the dead
  // outcome must be attributed to the same measurement window even when the
  // exchange resolves after begin_measurement (lossy mode).
  bool measured;
  void operator()(DeliveryStatus status) const {
    net->ping_resolved(pinger, target, measured, status);
  }
};
struct GuessNetwork::SybilExpired {
  GuessNetwork* net;
  PeerId id;
  void operator()() const { net->sybil_expired(id); }
};

struct GuessNetwork::QueryProbeResolved {
  GuessNetwork* net;
  PeerId origin;
  std::uint64_t token;
  QueryExecution::Candidate candidate;
  void operator()(DeliveryStatus status) const {
    net->probe_resolved(origin, token, candidate, status);
  }
};
GuessNetwork::GuessNetwork(const SimulationConfig& config,
                           sim::Simulator& simulator, Rng rng)
    : system_(config.system()),
      protocol_(config.protocol()),
      transport_params_(config.transport()),
      enable_queries_(config.enable_queries()),
      simulator_(simulator),
      rng_(std::move(rng)),
      content_(system_.content),
      query_stream_(content::BurstParams{system_.query_rate,
                                         system_.burst_min,
                                         system_.burst_max}),
      poison_(config.malicious(), system_.bad_pong_behavior),
      zoo_(config.malicious()) {
  config.validate();
  churn_ = std::make_unique<churn::ChurnManager>(
      simulator_, churn::LifetimeDistribution(system_.lifespan_multiplier),
      rng_.split(), [this](PeerId id) { on_peer_death(id); });
  // The RNG split for the transport happens only on the lossy path: the
  // default SynchronousTransport draws nothing, so default-config runs
  // consume the exact pre-transport random stream (bitwise determinism
  // against the legacy API, asserted by the determinism tests).
  if (transport_params_.kind == TransportParams::Kind::kLossy) {
    transport_ = std::make_unique<LossyTransport>(transport_params_,
                                                  simulator_, rng_.split());
  } else {
    transport_ = std::make_unique<SynchronousTransport>();
  }
  // The partition/degradation overlay only exists for scenario runs;
  // scenario-free runs keep the transport unmodulated (and identical to the
  // pre-fault code path).
  if (!config.scenario().empty()) transport_->set_modulation(this);
}

GuessNetwork::~GuessNetwork() = default;

bool GuessNetwork::is_malicious(PeerId id) const {
  const Peer* peer = find(id);
  return peer != nullptr && peer->malicious();
}

void GuessNetwork::initialize() {
  GUESS_CHECK_MSG(table_.size() == 0 && next_id_ == 0,
                  "initialize() called twice");
  table_.reserve(system_.network_size);
  // Fabricated dead addresses for non-colluding attackers: allocate a block
  // of ids that will never belong to a real peer.
  if (system_.bad_fraction() > 0.0 &&
      system_.bad_pong_behavior == BadPongBehavior::kDead) {
    auto pool_size = static_cast<std::size_t>(
        poison_.params().dead_pool_factor *
        static_cast<double>(system_.network_size));
    std::vector<PeerId> pool(pool_size);
    for (auto& id : pool) id = next_id_++;
    poison_.set_dead_pool(std::move(pool));
  }

  // Initial population: exactly the configured bad and selfish fractions,
  // placed randomly (ids are assigned in order, so shuffle the flags).
  // Selfishness applies to honest peers only — attackers don't query.
  auto bad_count = static_cast<std::size_t>(
      system_.bad_fraction() * static_cast<double>(system_.network_size));
  auto selfish_count = static_cast<std::size_t>(
      system_.percent_selfish_peers / 100.0 *
      static_cast<double>(system_.network_size));
  GUESS_CHECK_MSG(bad_count + selfish_count <= system_.network_size,
                  "bad + selfish fractions exceed the population");
  std::vector<char> role(system_.network_size, 0);  // 0 honest, 1 bad, 2 selfish
  std::fill_n(role.begin(), bad_count, char{1});
  std::fill_n(role.begin() + static_cast<std::ptrdiff_t>(bad_count),
              selfish_count, char{2});
  rng_.shuffle(role);
  for (std::size_t i = 0; i < system_.network_size; ++i) {
    spawn_peer(role[i] == 1, role[i] == 2, /*initial=*/true);
  }
  seed_initial_caches();
}

PeerId GuessNetwork::spawn_peer(bool malicious, bool selfish, bool initial) {
  PeerId id = next_id_++;
  content::Library library =
      malicious ? content::Library{} : content_.sample_peer_library(rng_);
  Peer& ref = table_.create(id, simulator_.now(), std::move(library),
                            protocol_.cache_size, malicious, selfish);
  ref.set_credit(protocol_.payments.initial_credit);
  // Maintain incremental orderings for exactly the policies this run's
  // selections use; everything else keeps the (bitwise-identical) scans.
  ref.cache().configure_indices(
      {protocol_.ping_probe, protocol_.ping_pong, protocol_.query_pong},
      protocol_.cache_replacement);
  // MR*: ranking ignores foreign NumRes claims from the start.
  ref.cache().set_first_hand_only(protocol_.reset_num_results);
  // Eclipse resistance (§11): protect a reserve of first-hand entries.
  if (protocol_.detection.enabled) {
    ref.cache().set_first_hand_floor(protocol_.detection.first_hand_floor);
  }
  ensure_slot_arrays();
  if (malicious) poison_.add_bad_peer(id);
  // A peer born during a partition lands on a random side of it.
  if (partition_ways_ > 0) {
    std::uint32_t slot = table_.slot_of(id);
    partition_group_by_slot_[slot] = static_cast<int>(
        rng_.index(static_cast<std::size_t>(partition_ways_)));
    partition_epoch_by_slot_[slot] = partition_epoch_;
  }
  trace(TraceCategory::kChurn, [&](std::ostream& os) {
    os << "birth peer=" << id << " files=" << ref.num_files()
       << (malicious ? " malicious" : "") << (selfish ? " selfish" : "");
  });

  // Initial peers start mid-session so deaths are not synchronized.
  if (initial) {
    churn_->register_peer_scaled(id, std::max(1e-6, rng_.uniform()));
  } else {
    churn_->register_peer(id);
    seed_from_friend(ref);
  }
  start_ping_timer(ref);
  if (enable_queries_ && !malicious) start_query_workload(ref);
  return id;
}

PeerId GuessNetwork::spawn_adversary(faults::AttackKind kind) {
  PeerId id = next_id_++;
  Peer& ref = table_.create(id, simulator_.now(), content::Library{},
                            protocol_.cache_size, /*malicious=*/true,
                            /*selfish=*/false);
  ref.set_credit(protocol_.payments.initial_credit);
  ref.cache().configure_indices(
      {protocol_.ping_probe, protocol_.ping_pong, protocol_.query_pong},
      protocol_.cache_replacement);
  ref.cache().set_first_hand_only(protocol_.reset_num_results);
  ensure_slot_arrays();
  zoo_.add(kind, id);
  ++attack_stats_.adversaries_spawned;
  if (partition_ways_ > 0) {
    std::uint32_t slot = table_.slot_of(id);
    partition_group_by_slot_[slot] = static_cast<int>(
        rng_.index(static_cast<std::size_t>(partition_ways_)));
    partition_epoch_by_slot_[slot] = partition_epoch_;
  }
  trace(TraceCategory::kChurn, [&](std::ostream& os) {
    os << "birth adversary=" << id
       << " kind=" << faults::attack_kind_name(kind);
  });
  // Deliberately NOT churn-registered: the cohort's lifetime is the attack
  // window (fault_stop_attack retires it), and a sybil recycles identities
  // through its own expiry timer instead of the death/replacement path.
  seed_from_friend(ref);
  const AdversaryBehavior& behavior = zoo_.behavior(kind);
  sim::Duration interval =
      protocol_.ping_interval * behavior.ping_interval_factor();
  ref.set_ping_interval(interval);
  schedule_next_ping(ref, rng_.uniform(0.0, interval));
  // Adversaries run no query workload, so the burst timer slot is free to
  // carry the sybil identity-expiry event.
  sim::Duration lifetime = behavior.identity_lifetime();
  if (lifetime > 0.0) {
    static_assert(sim::EventQueue::Callback::stores_inline<SybilExpired>());
    ref.burst_timer = simulator_.after(lifetime, SybilExpired{this, id});
  }
  return id;
}

void GuessNetwork::sybil_expired(PeerId id) {
  // The cohort may already have been retired (window end) or mass-killed;
  // remove_peer cancelled the timer then, but stay defensive.
  if (!zoo_.contains(id)) return;
  trace(TraceCategory::kFault, [&](std::ostream& os) {
    os << "sybil expire peer=" << id;
  });
  remove_peer(id);
  ++attack_stats_.adversaries_retired;
  ++attack_stats_.sybil_respawns;
  // A fresh identity replaces it: a new PeerId (the old one is tombstoned
  // by the PeerTable forever), a fresh cache, a fresh timer phase.
  spawn_adversary(faults::AttackKind::kSybil);
}

void GuessNetwork::seed_initial_caches() {
  std::size_t seed_size = system_.resolved_cache_seed(protocol_.cache_size);
  // Seed from the initial population only (all alive at time 0).
  std::vector<PeerId> population = table_.alive_ids();
  for (PeerId id : population) {
    Peer& peer = *find(id);
    auto picks = rng_.sample_indices(population.size(),
                                     std::min(seed_size + 1,
                                              population.size()));
    std::size_t added = 0;
    for (std::size_t idx : picks) {
      if (added >= seed_size) break;
      PeerId other = population[idx];
      if (other == id) continue;
      const Peer& target = *find(other);
      peer.cache().insert_free(introduction_entry(target));
      ++added;
    }
  }
}

CacheEntry GuessNetwork::introduction_entry(const Peer& peer) const {
  // Zoo adversaries always lie about their library (the attack windows are
  // independent of the §6.4 poison toggle); poison attackers lie only while
  // poisoning is active.
  std::uint32_t advertised = peer.num_files();
  if (peer.malicious() && zoo_.contains(peer.id())) {
    // The zoo also fabricates NumRes in its introductions — a withholder's
    // only advertising channel (it builds no pongs), and the bait that
    // pulls MR-ranked probes into its timeout trap. Never first-hand, so
    // the first_hand_floor defense still holds.
    return CacheEntry{peer.id(), simulator_.now(),
                      poison_.params().claimed_num_files,
                      poison_.params().claimed_num_res};
  }
  if (peer.malicious() && poisoning_active_) {
    advertised = poison_.params().claimed_num_files;
  }
  return CacheEntry{peer.id(), simulator_.now(), advertised, 0};
}

void GuessNetwork::seed_from_friend(Peer& newborn) {
  // Random-friend seeding (§5.1, after [9]): copy the link cache of one
  // live peer the newborn already knows.
  auto friend_id = random_alive_peer(newborn.id());
  if (!friend_id) return;
  const Peer& buddy = *find(*friend_id);
  for (const CacheEntry& entry : buddy.cache().entries()) {
    if (newborn.cache().full()) break;
    if (entry.id == newborn.id() || newborn.cache().contains(entry.id))
      continue;
    CacheEntry copy = entry;
    copy.first_hand = false;  // the friend's experience, not the newborn's
    newborn.cache().insert_free(copy);
  }
}

std::optional<PeerId> GuessNetwork::random_alive_peer(PeerId exclude) {
  const std::vector<PeerId>& alive = table_.alive_ids();
  if (alive.empty()) return std::nullopt;
  if (alive.size() == 1 && alive[0] == exclude) return std::nullopt;
  for (;;) {
    PeerId id = alive[rng_.index(alive.size())];
    if (id != exclude) return id;
  }
}

void GuessNetwork::on_peer_death(PeerId id) {
  Peer* peer = find(id);
  GUESS_CHECK_MSG(peer != nullptr, "death of unknown peer");
  bool was_malicious = peer->malicious();
  bool was_selfish = peer->selfish();
  trace(TraceCategory::kChurn, [&](std::ostream& os) {
    os << "death peer=" << id << " probes_received="
       << peer->probes_received();
  });
  remove_peer(id);
  // A new peer is born for every death, keeping NetworkSize constant; it
  // inherits the role flags so the configured fractions stay exact
  // (§5.1, §6.4, §3.3).
  spawn_peer(was_malicious, was_selfish, /*initial=*/false);
}

void GuessNetwork::remove_peer(PeerId id) {
  Peer* peer = table_.find(id);
  GUESS_CHECK_MSG(peer != nullptr, "removal of unknown peer");
  peer->ping_timer.cancel();
  peer->burst_timer.cancel();
  // Open-loop accounting: queries dying with their origin are abandoned,
  // not silently dropped — the active execution plus every waiting entry.
  // The observer must not start new work reentrantly here (the peer is
  // mid-removal); the open-loop driver defers its reaction to a zero-delay
  // event.
  if (query_observer_ != nullptr) {
    std::uint32_t slot = table_.slot_of(id);
    if (slot != PeerTable::kNoSlot &&
        active_query_by_slot_[slot] != nullptr) {
      query_observer_->on_query_abandoned(
          simulator_.now() - active_query_by_slot_[slot]->issue_time());
    }
    peer->visit_pending_queries([&](const Peer::PendingQuery& q) {
      query_observer_->on_query_abandoned(simulator_.now() - q.issued);
    });
  }
  // Releasing the active query bumps nothing else: in-flight lossy
  // exchanges of this query resolve against a stale token and are dropped
  // (releasing any credit reservation defensively), and probes *to* this
  // peer resolve as dead once the table entry is gone. Partition membership
  // needs no cleanup — lookups for a dead id fail at the slot table, and
  // the slot's next tenant is stamped at birth.
  release_active_query(table_.slot_of(id));
  flush_load(*peer);
  // Adversary-zoo members are malicious but never entered the §6.4 poison
  // roster; each registry removes only its own.
  if (peer->malicious()) {
    if (zoo_.contains(id)) {
      zoo_.remove(id);
    } else {
      poison_.remove_bad_peer(id);
    }
  }
  table_.destroy(id);
}

void GuessNetwork::ensure_slot_arrays() {
  std::size_t n = table_.slot_count();
  if (active_query_by_slot_.size() < n) active_query_by_slot_.resize(n);
  if (partition_group_by_slot_.size() < n) {
    partition_group_by_slot_.resize(n, -1);
    partition_epoch_by_slot_.resize(n, 0);
  }
}

void GuessNetwork::flush_load(const Peer& peer) {
  if (peer.malicious()) return;  // load fairness is about honest peers
  dead_peer_loads_.push_back(peer.probes_received());
}

// --- pings -----------------------------------------------------------------

void GuessNetwork::start_ping_timer(Peer& peer) {
  peer.set_ping_interval(protocol_.ping_interval);
  // Random phase desynchronizes the population's pings.
  schedule_next_ping(peer, rng_.uniform(0.0, protocol_.ping_interval));
}

// Self-rescheduling ping chain: re-reads the peer's (possibly adapted,
// §6.1) interval after every ping.
void GuessNetwork::schedule_next_ping(Peer& peer, sim::Duration delay) {
  static_assert(sim::EventQueue::Callback::stores_inline<PingFired>());
  peer.ping_timer = simulator_.after(delay, PingFired{this, peer.id()});
}

void GuessNetwork::ping_timer_fired(PeerId id) {
  do_ping(id);
  Peer* p = find(id);
  if (p == nullptr) return;
  schedule_next_ping(*p, p->ping_interval());
}

void GuessNetwork::do_ping(PeerId pinger_id) {
  Peer* pinger = find(pinger_id);
  if (pinger == nullptr) return;  // died; timer cancellation races are benign
  maybe_reseed_from_pong_server(*pinger);
  auto entry = pinger->cache().select_best(protocol_.ping_probe, rng_);
  if (!entry) return;
  bool measured = measuring_;
  if (measured) ++results_.pings_sent;
  // Under SynchronousTransport the completion runs inline, right here;
  // under LossyTransport it runs when the exchange resolves (delivery or
  // final timeout), and the pinger may have died or re-pinged meanwhile.
  static_assert(Transport::Completion::stores_inline<PingResolved>());
  transport_->exchange(MessageKind::kPing, pinger_id, entry->id,
                       PingResolved{this, pinger_id, entry->id, measured});
}

void GuessNetwork::ping_resolved(PeerId pinger_id, PeerId target_id,
                                 bool measured, DeliveryStatus status) {
  Peer* pinger = find(pinger_id);
  if (pinger == nullptr) return;  // died while the ping was in flight
  Peer* target =
      status == DeliveryStatus::kTimedOut ? nullptr : find(target_id);
  if (target == nullptr) {
    // No response — the target is gone, or (lossy) every attempt timed out:
    // either way the pinger believes it dead and evicts the entry (§2.2).
    pinger->cache().evict(target_id);
    if (measured) ++results_.pings_to_dead;
    pinger->note_ping_result(/*dead=*/true, protocol_.adaptive_ping);
    charge_no_reply(*pinger, target_id);
    trace(TraceCategory::kPing, [&](std::ostream& os) {
      os << "ping peer=" << pinger_id << " -> " << target_id
         << " dead, evicted";
    });
    return;
  }
  trace(TraceCategory::kPing, [&](std::ostream& os) {
    os << "ping peer=" << pinger_id << " -> " << target_id << " alive";
  });
  pinger->note_ping_result(/*dead=*/false, protocol_.adaptive_ping);

  target->count_received_ping();
  // Both sides interacted: update TS wherever an entry exists (§2.1).
  pinger->cache().touch(target->id(), simulator_.now());
  target->cache().touch(pinger_id, simulator_.now());
  maybe_introduce(*target, *pinger);

  if (target->malicious() && zoo_.contains(target_id)) {
    // Zoo adversaries answer with their behavior's attack pong (attack
    // windows are independent of the §6.4 poison toggle).
    zoo_.make_pong_into(target_id, protocol_.pong_size, simulator_.now(),
                        rng_, pong_scratch_);
  } else if (target->malicious() && poisoning_active_) {
    poison_.make_pong_into(target->id(), protocol_.pong_size,
                           simulator_.now(), rng_, pong_scratch_);
  } else {
    make_pong_into(*target, protocol_.ping_pong, pong_scratch_);
  }
  process_pong_entries(*pinger, target->id(), pong_scratch_);
}

// §6.1's healing path: a peer whose cache has been eaten below the
// threshold pulls fresh live addresses from the pong server. The server
// tracks liveness only — it serves uniformly random live peers.
void GuessNetwork::maybe_reseed_from_pong_server(Peer& peer) {
  const BootstrapParams& bootstrap = protocol_.bootstrap;
  if (!bootstrap.pong_server_reseed) return;
  if (peer.cache().size() >= bootstrap.min_entries) return;
  if (simulator_.now() - peer.last_reseed() < bootstrap.cooldown) return;
  peer.set_last_reseed(simulator_.now());
  trace(TraceCategory::kCache, [&](std::ostream& os) {
    os << "reseed peer=" << peer.id() << " entries=" << peer.cache().size();
  });
  std::size_t amount = bootstrap.amount != 0
                           ? bootstrap.amount
                           : system_.resolved_cache_seed(protocol_.cache_size);
  for (std::size_t i = 0; i < amount; ++i) {
    auto id = random_alive_peer(peer.id());
    if (!id || peer.blacklisted(*id)) continue;
    if (peer.cache().full()) break;
    if (peer.cache().contains(*id)) continue;
    peer.cache().insert_free(introduction_entry(*find(*id)));
  }
}

void GuessNetwork::make_pong_into(Peer& responder, Policy policy,
                                  std::vector<CacheEntry>& out) {
  responder.cache().select_top_into(policy, protocol_.pong_size, rng_, out);
  // Fields travel unmodified (§2.2), but "first hand" is local knowledge.
  for (CacheEntry& entry : out) entry.first_hand = false;
}

// The pong-flood countermeasure (DetectionParams::max_pong_entries): honest
// pongs carry at most PongSize entries, so an oversized one is itself the
// attack signature — discard it wholesale (nothing a proven liar lists is
// worth ingesting) and charge the sender one bad referral.
// @returns how many leading entries of `entries` the receiver may ingest.
std::size_t GuessNetwork::accepted_pong_entries(
    Peer& receiver, PeerId source, std::size_t entry_count) {
  const DetectionParams& detection = protocol_.detection;
  if (!detection.enabled || detection.max_pong_entries == 0 ||
      entry_count <= detection.max_pong_entries) {
    return entry_count;
  }
  ++attack_stats_.oversized_pongs;
  attack_stats_.pong_entries_dropped += entry_count;
  // An oversized pong is unambiguous on one observation — honest pongs
  // structurally cannot exceed PongSize — so the sender is blacklisted
  // outright rather than charged one referral and given min_referrals more
  // flood rounds, and the receiver drops to first-hand-only ingestion at
  // once (blacklist_now): the attack is proven, so the MR -> MR* posture
  // need not wait for switch_threshold statistical convictions.
  if (receiver.blacklist_now(source, detection)) {
    receiver.cache().evict(source);
    trace(TraceCategory::kAttack, [&](std::ostream& os) {
      os << "blacklist peer=" << receiver.id()
         << " oversized-pong=" << source;
    });
  }
  return 0;
}

// The reply-withholding countermeasure (DetectionParams::charge_no_reply):
// a Ping/QueryProbe of ours that nobody answered charges the silent target
// itself, windowing with the pings_to_dead accounting (both are measured at
// the exchange that failed). Withholders keep reinserting themselves via
// introductions, so the charges accumulate to a blacklisting; honest dead
// peers collect a posthumous one at worst (their ids are never reused).
void GuessNetwork::charge_no_reply(Peer& prober, PeerId target_id) {
  const DetectionParams& detection = protocol_.detection;
  if (!detection.enabled || !detection.charge_no_reply) return;
  ++attack_stats_.no_reply_charges;
  if (prober.note_referral(target_id, /*bad=*/true, detection)) {
    trace(TraceCategory::kAttack, [&](std::ostream& os) {
      os << "blacklist peer=" << prober.id() << " no-reply=" << target_id;
    });
  }
}

void GuessNetwork::process_pong_entries(
    Peer& receiver, PeerId source, const std::vector<CacheEntry>& entries) {
  if (receiver.blacklisted(source)) return;
  std::size_t accepted =
      accepted_pong_entries(receiver, source, entries.size());
  for (std::size_t i = 0; i < accepted; ++i) {
    const CacheEntry& entry = entries[i];
    if (entry.id == receiver.id()) continue;
    if (receiver.blacklisted(entry.id)) continue;
    receiver.cache().offer(entry, protocol_.cache_replacement, rng_);
  }
}

void GuessNetwork::maybe_introduce(Peer& responder, const Peer& initiator) {
  if (!rng_.bernoulli(protocol_.intro_prob)) return;
  if (responder.blacklisted(initiator.id())) return;
  responder.cache().offer(introduction_entry(initiator),
                          protocol_.cache_replacement, rng_);
}

// --- queries ---------------------------------------------------------------

void GuessNetwork::start_query_workload(Peer& peer) {
  schedule_next_burst(peer);
}

// Poisson burst arrivals: each firing enqueues one burst of 1..5 queries and
// re-arms itself after a fresh exponential gap (§5.1). The handle stored on
// the peer lets death cancel the chain.
void GuessNetwork::schedule_next_burst(Peer& peer) {
  static_assert(sim::EventQueue::Callback::stores_inline<BurstFired>());
  peer.burst_timer = simulator_.after(query_stream_.next_burst_gap(rng_),
                                      BurstFired{this, peer.id()});
}

void GuessNetwork::burst_timer_fired(PeerId id) {
  Peer* p = find(id);
  if (p == nullptr) return;
  std::size_t burst = query_stream_.next_burst_size(rng_);
  for (std::size_t i = 0; i < burst; ++i) {
    p->enqueue_query(content_.draw_query(rng_), simulator_.now());
  }
  if (!p->query_active()) start_next_query(*p);
  schedule_next_burst(*p);
}

void GuessNetwork::submit_query(PeerId origin, content::FileId file) {
  submit_query(origin, file, simulator_.now());
}

void GuessNetwork::submit_query(PeerId origin, content::FileId file,
                                sim::Time issued) {
  Peer* peer = find(origin);
  GUESS_CHECK_MSG(peer != nullptr, "submit_query for dead peer");
  peer->enqueue_query(file, issued);
  if (!peer->query_active()) start_next_query(*peer);
}

void GuessNetwork::visit_open_queries(
    const std::function<void(sim::Time)>& visit) const {
  for (const std::unique_ptr<QueryExecution>& query : active_query_by_slot_) {
    // Pool slots of dead/idle peers are null; stale entries are impossible
    // (release clears the slot).
    if (query != nullptr) visit(query->issue_time());
  }
  for (PeerId id : table_.alive_ids()) {
    table_.find(id)->visit_pending_queries(
        [&](const Peer::PendingQuery& q) { visit(q.issued); });
  }
}

QueryExecution* GuessNetwork::active_query_for(PeerId origin_id) {
  std::uint32_t slot = table_.slot_of(origin_id);
  if (slot == PeerTable::kNoSlot) return nullptr;
  return active_query_by_slot_[slot].get();
}

void GuessNetwork::release_active_query(std::uint32_t slot) {
  if (active_query_by_slot_[slot] == nullptr) return;
  query_pool_.put(std::move(active_query_by_slot_[slot]));
  --active_query_count_;
}

void GuessNetwork::start_next_query(Peer& origin) {
  GUESS_CHECK(!origin.query_active());
  if (!origin.has_pending_query()) return;
  Peer::PendingQuery pending = origin.pop_pending_query();
  content::FileId file = pending.file;
  PeerId id = origin.id();
  // Selfish peers ignore the serial-probing rule and blast wide (§3.3).
  std::size_t parallel = origin.selfish() ? system_.selfish_parallel_probes
                                          : protocol_.parallel_probes;
  auto desired = static_cast<std::uint32_t>(system_.num_desired_results);
  bool fho = protocol_.reset_num_results || origin.first_hand_only();
  // Recycle a pooled execution (reset is equivalent to construction but
  // keeps the heap / dedup storage: steady-state queries don't allocate).
  std::unique_ptr<QueryExecution> query = query_pool_.take();
  if (query != nullptr) {
    query->reset(id, file, desired, protocol_.query_probe, simulator_.now(),
                 parallel, fho);
  } else {
    query = std::make_unique<QueryExecution>(id, file, desired,
                                             protocol_.query_probe,
                                             simulator_.now(), parallel, fho);
  }
  // The token lets late transport completions (lossy mode) recognise that
  // the query they belong to already finished — they are dropped instead of
  // being misattributed to the origin's next query.
  query->set_token(++next_query_token_);
  // Latency is billed from the external issue instant: queueing behind the
  // origin's earlier queries is part of what the client waited.
  query->set_issue_time(pending.issued);
  // Expected candidate volume: the initial link-cache sweep plus a few
  // slots' worth of Pong fan-in; arrivals beyond this grow the heap once
  // and the capacity then survives in the pool.
  query->reserve_candidates(origin.cache().size() + protocol_.pong_size * 4);
  // Initial candidates: the origin's link cache (§2.3).
  for (const CacheEntry& entry : origin.cache().entries()) {
    query->add_candidate(entry, rng_);
  }
  origin.set_query_active(true);
  trace(TraceCategory::kQuery, [&](std::ostream& os) {
    os << "query start peer=" << id << " file="
       << (file == content::kNonexistentFile ? -1
                                             : static_cast<long long>(file))
       << " candidates=" << query->queued();
  });
  active_query_by_slot_[table_.slot_of(id)] = std::move(query);
  ++active_query_count_;
  // First probe fires immediately; later probes pace at the probe slot.
  static_assert(sim::EventQueue::Callback::stores_inline<QueryStepFired>());
  simulator_.after(0.0, QueryStepFired{this, id});
}

void GuessNetwork::query_step(PeerId origin_id) {
  QueryExecution* active = active_query_for(origin_id);
  if (active == nullptr) return;  // origin died or query finished
  Peer* origin = find(origin_id);
  GUESS_CHECK(origin != nullptr);  // death releases the active query
  QueryExecution& query = *active;
  const PaymentParams& payments = protocol_.payments;

  query.begin_slot();
  for (std::size_t k = 0; k < query.slot_parallel(); ++k) {
    // A creditless peer cannot probe this slot (§3.3 payments): the query
    // stalls until inbound probes earn more credit.
    if (payments.enabled && !origin->can_afford(payments.probe_cost)) {
      query.note_creditless();
      break;
    }
    // Pull the next candidate, skipping blacklisted targets and targets
    // under backoff.
    std::optional<QueryExecution::Candidate> candidate;
    while ((candidate = query.next_candidate())) {
      if (origin->blacklisted(candidate->entry.id)) continue;
      if (!protocol_.do_backoff ||
          !origin->backed_off(candidate->entry.id, simulator_.now()))
        break;
    }
    if (!candidate) break;
    query.note_probe_issued();
    // Reserve the probe cost while the affordability check above still
    // holds: under LossyTransport several probes of a slot are in flight
    // together, and spending only at resolution would let a peer whose
    // credit covers a single probe commit it to every one of them. A
    // served probe commits the reservation in probe_resolved; dead,
    // refused, and stale resolutions release it.
    if (payments.enabled) origin->reserve_credit(payments.probe_cost);
    // Under SynchronousTransport the completion (probe_resolved) runs
    // inline before exchange() returns, reproducing the pre-transport
    // in-slot processing order; the slot cannot close mid-loop because
    // end_issuing() has not run yet. `query` and `origin` stay valid: the
    // query only finishes from the slot epilogue, and peers only die from
    // churn events.
    static_assert(Transport::Completion::stores_inline<QueryProbeResolved>());
    transport_->exchange(
        MessageKind::kQueryProbe, origin_id, candidate->entry.id,
        QueryProbeResolved{this, origin_id, query.token(), *candidate});
  }
  if (query.end_issuing()) finish_slot(origin_id);
}

void GuessNetwork::probe_resolved(PeerId origin_id, std::uint64_t token,
                                  const QueryExecution::Candidate& candidate,
                                  DeliveryStatus status) {
  QueryExecution* active = active_query_for(origin_id);
  if (active == nullptr || active->token() != token) {
    // Lossy mode only: the query this probe belonged to already finished
    // (or its origin died) while the exchange was in flight.
    trace(TraceCategory::kQuery, [&](std::ostream& os) {
      os << "probe resolution dropped peer=" << origin_id
         << " stale-token=" << token;
    });
    // A stale token normally means the origin died, taking its credit
    // ledger with it; release defensively if it is somehow still alive so
    // a reservation cannot leak.
    if (protocol_.payments.enabled) {
      if (Peer* origin = find(origin_id)) origin->release_credit();
    }
    return;
  }
  Peer* origin = find(origin_id);
  GUESS_CHECK(origin != nullptr);  // death releases the active query
  QueryExecution& query = *active;
  PeerId target_id = candidate.entry.id;
  PeerId referrer = candidate.source;

  // The transport reports silence (kTimedOut) without judging liveness; a
  // delivered probe may still land on an address whose peer has since left.
  // Both look identical to the prober: no reply.
  Peer* target =
      status == DeliveryStatus::kTimedOut ? nullptr : find(target_id);
  if (target == nullptr) {
    // Timeout: wasted probe; believed dead, evicted (§2.2, §3.2). No
    // credit changes hands — there is nobody to pay, so the reservation
    // returns. A dead referral counts against whoever supplied the entry
    // (§6.4 detection).
    if (protocol_.payments.enabled) origin->release_credit();
    query.record_outcome(ProbeOutcome::kDead);
    origin->cache().evict(target_id);
    if (origin->note_referral(referrer, /*bad=*/true, protocol_.detection)) {
      origin->cache().evict(referrer);
      trace(TraceCategory::kAttack, [&](std::ostream& os) {
        os << "blacklist peer=" << origin_id << " dead-referrer="
           << referrer;
      });
    }
    charge_no_reply(*origin, target_id);
    if (query.note_probe_resolved()) finish_slot(origin_id);
    return;
  }

  target->count_received_probe();
  if (!target->malicious() &&
      !target->accept_probe(simulator_.now(),
                            system_.max_probes_per_second)) {
    // Overloaded: the probe is dropped. Without backoff the prober treats
    // the silence as death and evicts — the implicit throttle of §6.3.
    // Dropped unserved means nobody is paid: the reservation returns.
    if (protocol_.payments.enabled) origin->release_credit();
    query.record_outcome(ProbeOutcome::kRefused);
    if (protocol_.do_backoff) {
      origin->set_backoff(target_id,
                          simulator_.now() + protocol_.backoff_duration);
    } else {
      origin->cache().evict(target_id);
    }
    if (query.note_probe_resolved()) finish_slot(origin_id);
    return;
  }

  query.record_outcome(ProbeOutcome::kGood);
  if (protocol_.payments.enabled) {
    // The probe was served: the issue-time reservation becomes a spend,
    // the server earns (§3.3).
    origin->commit_credit(protocol_.payments.probe_cost);
    target->earn_credit(protocol_.payments.serve_reward,
                        protocol_.payments.credit_cap);
  }
  // All probes of a slot are in flight together: a target cannot know the
  // query was satisfied by a concurrent probe, so it answers as if the
  // remaining need were at least one.
  std::uint32_t needed = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(system_.num_desired_results) -
             std::min<std::uint32_t>(
                 query.results(),
                 static_cast<std::uint32_t>(system_.num_desired_results)));
  std::uint32_t results = target->answer_query(query.file(), needed);
  query.add_results(results);

  // §6.4 detection: an entry with an outsized NumRes claim whose peer
  // returns nothing marks the peer itself as a liar. Only the liar is
  // charged — honest peers forward poisoned claims they cannot verify, so
  // blaming referrers here would cannibalize the honest overlay. Honest
  // entries claim 0/1 results, so false positives are rare.
  bool lied =
      results == 0 &&
      candidate.entry.num_res >= protocol_.detection.lie_claim_threshold;
  if (origin->note_referral(target_id, lied, protocol_.detection)) {
    origin->cache().evict(target_id);
    trace(TraceCategory::kAttack, [&](std::ostream& os) {
      os << "blacklist peer=" << origin_id << " liar=" << target_id
         << (origin->first_hand_only() ? " (first-hand mode)" : "");
    });
  }

  // Interaction bookkeeping (§2.1): TS on both sides, NumRes reset by the
  // prober according to this response.
  origin->cache().touch(target_id, simulator_.now());
  origin->cache().set_num_res(target_id, results);
  target->cache().touch(origin_id, simulator_.now());
  maybe_introduce(*target, *origin);

  // A responder that proved useful is a qualifying query-cache entry
  // (§2.3): offer it to the link cache with its first-hand record.
  if (results > 0 && !origin->cache().contains(target_id)) {
    origin->cache().offer(
        CacheEntry{target_id, simulator_.now(), target->num_files(),
                   results, /*first_hand=*/true},
        protocol_.cache_replacement, rng_);
  }

  // Every probed peer answers with a Pong (§2.3): entries feed the query
  // cache and, subject to CacheReplacement, the link cache.
  if (target->malicious() && zoo_.contains(target_id)) {
    zoo_.make_pong_into(target_id, protocol_.pong_size, simulator_.now(),
                        rng_, pong_scratch_);
  } else if (target->malicious() && poisoning_active_) {
    poison_.make_pong_into(target_id, protocol_.pong_size, simulator_.now(),
                           rng_, pong_scratch_);
  } else {
    make_pong_into(*target, protocol_.query_pong, pong_scratch_);
  }
  offer_query_pong(*origin, query, target_id, pong_scratch_);

  if (query.note_probe_resolved()) finish_slot(origin_id);
}

// Slot epilogue: runs when every probe of the slot has resolved (inline at
// the end of query_step under SynchronousTransport; at the last transport
// completion under LossyTransport).
void GuessNetwork::finish_slot(PeerId origin_id) {
  QueryExecution* active = active_query_for(origin_id);
  GUESS_CHECK(active != nullptr);
  Peer* origin = find(origin_id);
  GUESS_CHECK(origin != nullptr);
  QueryExecution& query = *active;
  const PaymentParams& payments = protocol_.payments;
  std::size_t probes_this_slot = query.slot_probes_issued();
  bool creditless = query.slot_creditless();

  // Satisfaction and the probe cap are evaluated at the END of the slot:
  // every probe of the slot was already in flight (this is what makes
  // selfish blasting overshoot — a query answerable in 20 probes still
  // costs the full blast width, §3.3).
  if (query.satisfied()) {
    finish_query(*origin, query, /*satisfied=*/true);
    return;
  }
  if (protocol_.max_probes_per_query != 0 &&
      query.counters().total() >= protocol_.max_probes_per_query) {
    finish_query(*origin, query, /*satisfied=*/false);
    return;
  }

  if (probes_this_slot == 0 && !creditless) {
    // Candidates exhausted: the search probed everyone it could learn of.
    finish_query(*origin, query, /*satisfied=*/false);
    return;
  }
  if (creditless && probes_this_slot == 0) {
    query.note_stalled_slot();
    if (query.stalled_slots() >= payments.max_stalled_slots) {
      if (measuring_) ++results_.queries_stalled_out;
      finish_query(*origin, query, /*satisfied=*/false);
      return;
    }
  } else {
    query.reset_stall();
  }
  query.note_slot(query.results() > query.slot_results_baseline(),
                  protocol_.adaptive_parallel,
                  protocol_.adaptive_parallel_trigger,
                  protocol_.adaptive_parallel_max);
  simulator_.after(protocol_.probe_interval, QueryStepFired{this, origin_id});
}

void GuessNetwork::offer_query_pong(Peer& origin, QueryExecution& query,
                                    PeerId source,
                                    const std::vector<CacheEntry>& entries) {
  // Detection: Pongs from blacklisted peers are dropped wholesale, and
  // entries naming blacklisted peers never re-enter circulation.
  if (origin.blacklisted(source)) return;
  std::size_t accepted = accepted_pong_entries(origin, source, entries.size());
  for (std::size_t i = 0; i < accepted; ++i) {
    const CacheEntry& entry = entries[i];
    if (origin.blacklisted(entry.id)) continue;
    // Without the query cache (ablation), Pong entries may refresh the link
    // cache but do not extend this query's candidate set.
    if (protocol_.use_query_cache) query.add_candidate(entry, source, rng_);
    origin.cache().offer(entry, protocol_.cache_replacement, rng_);
  }
}

void GuessNetwork::finish_query(Peer& origin, QueryExecution& query,
                                bool satisfied) {
  // The interval accumulators run from t=0, independent of measuring_: a
  // recovery computation needs pre-fault intervals even when the fault
  // lands at the measurement boundary.
  if (interval_width_ > 0.0) {
    ++interval_completed_;
    if (satisfied) ++interval_satisfied_;
    interval_probes_ += query.counters().total();
  }
  if (measuring_) {
    ++results_.queries_completed;
    if (satisfied) {
      ++results_.queries_satisfied;
      results_.response_time.add(simulator_.now() - query.start_time());
    }
    results_.probes += query.counters();
    results_.query_cache_population.add(
        static_cast<double>(query.seen()));
    results_.query_probes.add(static_cast<double>(query.counters().total()));
    ClassMetrics& cls = origin.selfish() ? results_.selfish : results_.honest;
    ++cls.queries_completed;
    if (satisfied) {
      ++cls.queries_satisfied;
      cls.response_time.add(simulator_.now() - query.start_time());
    }
    cls.probes += query.counters();
  }
  PeerId id = origin.id();
  trace(TraceCategory::kQuery, [&](std::ostream& os) {
    os << "query finish peer=" << id
       << (satisfied ? " satisfied" : " UNSATISFIED") << " probes="
       << query.counters().total() << " (good=" << query.counters().good
       << " dead=" << query.counters().dead << " refused="
       << query.counters().refused << ") seen=" << query.seen();
  });
  // Capture the observer's arguments before the release aliases `query`.
  double latency = simulator_.now() - query.issue_time();
  origin.set_query_active(false);
  // `query` aliases the pooled object from here on — do not touch it.
  release_active_query(table_.slot_of(id));
  if (origin.has_pending_query()) start_next_query(origin);
  // Last: the observer may submit new queries reentrantly (the open-loop
  // controller starts a queued arrival on completion); by now this peer's
  // workload state is consistent, so a submit targeting it is safe.
  if (query_observer_ != nullptr) {
    query_observer_->on_query_complete(latency, satisfied);
  }
}

// --- fault-scenario hooks (DESIGN.md §9) -----------------------------------

void GuessNetwork::fault_mass_kill(double fraction) {
  const std::vector<PeerId>& alive = table_.alive_ids();
  std::size_t victims = static_cast<std::size_t>(
      fraction * static_cast<double>(alive.size()));
  victims = std::min(victims, alive.size());
  // Draw victims from the alive list (deterministic order), then copy out:
  // each removal swap-mutates the alive list underneath the indices.
  auto picks = rng_.sample_indices(alive.size(), victims);
  std::vector<PeerId> chosen;
  chosen.reserve(picks.size());
  for (std::size_t idx : picks) chosen.push_back(alive[idx]);
  trace(TraceCategory::kFault, [&](std::ostream& os) {
    os << "mass-kill fraction=" << fraction << " victims=" << chosen.size()
       << " alive=" << table_.size();
  });
  for (PeerId id : chosen) {
    // Cancel the victim's scheduled natural death — it must not fire later
    // against a vanished id — and remove WITHOUT a replacement birth: a
    // mass departure shrinks the population until a join action.
    churn_->deschedule(id);
    remove_peer(id);
  }
}

void GuessNetwork::fault_mass_join(std::size_t count) {
  trace(TraceCategory::kFault, [&](std::ostream& os) {
    os << "mass-join count=" << count << " alive=" << table_.size();
  });
  for (std::size_t i = 0; i < count; ++i) {
    spawn_peer(/*malicious=*/false, /*selfish=*/false, /*initial=*/false);
  }
}

void GuessNetwork::fault_set_partition(int ways) {
  GUESS_CHECK_MSG(ways >= 2, "partition ways must be >= 2, got " << ways);
  partition_ways_ = ways;
  // A fresh epoch invalidates every earlier stamp in O(1); assignments are
  // drawn in alive order, exactly as before the dense table.
  ++partition_epoch_;
  ensure_slot_arrays();
  for (PeerId id : table_.alive_ids()) {
    std::uint32_t slot = table_.slot_of(id);
    partition_group_by_slot_[slot] =
        static_cast<int>(rng_.index(static_cast<std::size_t>(ways)));
    partition_epoch_by_slot_[slot] = partition_epoch_;
  }
  trace(TraceCategory::kFault, [&](std::ostream& os) {
    os << "partition ways=" << ways << " alive=" << table_.size();
  });
}

void GuessNetwork::fault_clear_partition() {
  partition_ways_ = 0;
  ++partition_epoch_;  // stale stamps die without touching the arrays
  trace(TraceCategory::kFault,
        [&](std::ostream& os) { os << "partition healed"; });
}

void GuessNetwork::fault_set_degradation(double extra_loss,
                                         double latency_factor) {
  degrade_extra_loss_ = extra_loss;
  degrade_latency_factor_ = latency_factor;
  trace(TraceCategory::kFault, [&](std::ostream& os) {
    os << "degrade extra_loss=" << extra_loss
       << " latency_factor=" << latency_factor;
  });
}

void GuessNetwork::fault_clear_degradation() {
  degrade_extra_loss_ = 0.0;
  degrade_latency_factor_ = 1.0;
  trace(TraceCategory::kFault,
        [&](std::ostream& os) { os << "degrade window closed"; });
}

void GuessNetwork::fault_set_poisoning(bool active) {
  poisoning_active_ = active;
  trace(TraceCategory::kFault, [&](std::ostream& os) {
    os << "poisoning " << (active ? "on" : "off");
  });
}

void GuessNetwork::fault_start_attack(faults::AttackKind kind,
                                      double fraction) {
  GUESS_CHECK_MSG(zoo_.roster(kind).empty(),
                  "attack onset for an already-active "
                      << faults::attack_kind_name(kind) << " cohort");
  // Pong-flood ammunition: fabricated addresses that will never belong to a
  // real peer, allocated once at first onset (mirrors the poison dead pool).
  if (kind == faults::AttackKind::kPongFlood && zoo_.flood_pool().empty()) {
    auto pool_size = static_cast<std::size_t>(
        zoo_.params().adversary.flood_pool_factor *
        static_cast<double>(system_.network_size));
    std::vector<PeerId> pool(std::max<std::size_t>(1, pool_size));
    for (auto& id : pool) id = next_id_++;
    zoo_.set_flood_pool(std::move(pool));
  }
  std::size_t cohort = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             fraction * static_cast<double>(table_.size())));
  trace(TraceCategory::kFault, [&](std::ostream& os) {
    os << "attack " << faults::attack_kind_name(kind)
       << " onset cohort=" << cohort << " alive=" << table_.size();
  });
  for (std::size_t i = 0; i < cohort; ++i) spawn_adversary(kind);
}

void GuessNetwork::fault_stop_attack(faults::AttackKind kind) {
  // Copy the roster: every removal swap-mutates it underneath the loop.
  std::vector<PeerId> cohort = zoo_.roster(kind);
  trace(TraceCategory::kFault, [&](std::ostream& os) {
    os << "attack " << faults::attack_kind_name(kind)
       << " retired cohort=" << cohort.size();
  });
  for (PeerId id : cohort) {
    remove_peer(id);
    ++attack_stats_.adversaries_retired;
  }
}

bool GuessNetwork::severed(PeerId from, PeerId to) const {
  // Reply withholding: a deployed withholder swallows every exchange sent
  // *to* it — the sender sees a timeout (and pays retries under the lossy
  // transport). The withholder's own outbound exchanges go through, which
  // is what keeps it circulating via introductions.
  if (zoo_.withholds(to)) {
    ++attack_stats_.withheld_exchanges;
    return true;
  }
  if (partition_ways_ <= 0) return false;
  // Unassigned addresses (dead-pool fabrications, corpses) are not
  // severed — exchanges to them time out on their own.
  int a = partition_group(from);
  if (a < 0) return false;
  int b = partition_group(to);
  if (b < 0) return false;
  return a != b;
}

int GuessNetwork::partition_group(PeerId id) const {
  std::uint32_t slot = table_.slot_of(id);
  if (slot == PeerTable::kNoSlot ||
      slot >= partition_epoch_by_slot_.size() ||
      partition_epoch_by_slot_[slot] != partition_epoch_) {
    return -1;
  }
  return partition_group_by_slot_[slot];
}

// --- interval metrics (DESIGN.md §9) ---------------------------------------

void GuessNetwork::begin_interval_metrics(sim::Duration width) {
  GUESS_CHECK_MSG(width > 0.0, "interval width must be > 0");
  interval_width_ = width;
  interval_start_ = simulator_.now();
  interval_completed_ = interval_satisfied_ = interval_probes_ = 0;
  interval_transport_baseline_ = transport_->counters();
  interval_series_.clear();
}

void GuessNetwork::sample_interval() {
  if (interval_width_ <= 0.0) return;
  IntervalSample sample;
  sample.start = interval_start_;
  sample.end = simulator_.now();
  sample.queries_completed = interval_completed_;
  sample.queries_satisfied = interval_satisfied_;
  sample.probes = interval_probes_;
  sample.live_peers = table_.size();
  sample.transport = transport_->counters() - interval_transport_baseline_;
  interval_series_.push_back(sample);
  interval_start_ = sample.end;
  interval_completed_ = interval_satisfied_ = interval_probes_ = 0;
  interval_transport_baseline_ = transport_->counters();
}

// --- measurement -----------------------------------------------------------

void GuessNetwork::begin_measurement() {
  measuring_ = true;
  // Loads are lifetime counts; restrict the Figure 13 sample to peers that
  // exist during measurement by dropping earlier corpses.
  dead_peer_loads_.clear();
  // Transport counters are lifetime totals too: snapshot here and report
  // the measurement-window delta in collect_results().
  transport_baseline_ = transport_->counters();
}

void GuessNetwork::sample_cache_health() {
  double fraction_sum = 0.0;
  double live_sum = 0.0;
  double good_sum = 0.0;
  double entries_sum = 0.0;
  std::size_t counted = 0;
  for (PeerId id : table_.alive_ids()) {
    const Peer& peer = *table_.find(id);
    if (peer.malicious()) continue;
    std::size_t entries = peer.cache().size();
    std::size_t live = peer.cache().count_if(
        [this](const CacheEntry& e) { return alive(e.id); });
    std::size_t good = peer.cache().count_if([this](const CacheEntry& e) {
      const Peer* p = find(e.id);
      return p != nullptr && !p->malicious();
    });
    if (entries > 0)
      fraction_sum += static_cast<double>(live) /
                      static_cast<double>(entries);
    live_sum += static_cast<double>(live);
    good_sum += static_cast<double>(good);
    entries_sum += static_cast<double>(entries);
    ++counted;
  }
  if (counted == 0) return;
  auto n = static_cast<double>(counted);
  auto& h = results_.cache_health;
  // Running average across samples.
  auto fold = [&](double& acc, double value) {
    acc = (acc * static_cast<double>(h.samples) + value) /
          static_cast<double>(h.samples + 1);
  };
  fold(h.fraction_live, fraction_sum / n);
  fold(h.absolute_live, live_sum / n);
  fold(h.good_entries, good_sum / n);
  fold(h.entries, entries_sum / n);
  ++h.samples;
}

std::size_t GuessNetwork::largest_component() const {
  if (table_.size() == 0) return 0;
  // The peer table already maintains each live peer's position in the alive
  // list — that IS the dense vertex numbering, so no map needs building.
  UnionFind uf(table_.size());
  visit_live_edges([&](PeerId from, PeerId to) {
    uf.unite(table_.alive_pos(from), table_.alive_pos(to));
  });
  return uf.largest();
}

void GuessNetwork::sample_connectivity() {
  results_.largest_component.add(static_cast<double>(largest_component()));
}

SimulationResults GuessNetwork::collect_results() {
  SimulationResults out = results_;
  out.deaths = churn_->deaths();
  out.network_size = system_.network_size;
  out.transport = transport_->counters() - transport_baseline_;
  out.attack = attack_stats_;
  // Figure 13 loads: every honest peer that existed during measurement.
  for (std::uint64_t load : dead_peer_loads_) {
    out.peer_loads.add(static_cast<double>(load));
  }
  for (PeerId id : table_.alive_ids()) {
    const Peer& peer = *table_.find(id);
    if (!peer.malicious())
      out.peer_loads.add(static_cast<double>(peer.probes_received()));
  }
  out.interval_series = interval_series_;
  // Trailing partial interval (horizon not aligned to the interval width):
  // appended to the snapshot without disturbing the live accumulators.
  if (interval_width_ > 0.0 && simulator_.now() > interval_start_) {
    IntervalSample tail;
    tail.start = interval_start_;
    tail.end = simulator_.now();
    tail.queries_completed = interval_completed_;
    tail.queries_satisfied = interval_satisfied_;
    tail.probes = interval_probes_;
    tail.live_peers = table_.size();
    tail.transport = transport_->counters() - interval_transport_baseline_;
    out.interval_series.push_back(tail);
  }
  return out;
}

}  // namespace guess
