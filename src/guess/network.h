// GuessNetwork: the population of peers, message exchange, churn, workload,
// and metric collection. This is the engine behind GuessSimulation.
//
// Message exchange flows through a pluggable Transport (DESIGN.md §8). The
// default SynchronousTransport resolves every probe/reply round trip inline
// within the sending event — the paper's §5.1 assumption that a probe and
// its reply complete "within the timeout" — while LossyTransport injects
// loss, latency, timeouts and retries, resolving exchanges through
// scheduled events. Time passes between probes through the probe-slot
// scheduling in query_step(); a slot's epilogue runs when its last probe
// resolves.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "churn/churn_manager.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/trace.h"
#include "content/content_model.h"
#include "content/query_stream.h"
#include "faults/fault_host.h"
#include "guess/adversary.h"
#include "guess/config.h"
#include "guess/malicious.h"
#include "guess/metrics.h"
#include "guess/params.h"
#include "guess/peer.h"
#include "guess/peer_table.h"
#include "guess/query_execution.h"
#include "guess/transport.h"
#include "sim/simulator.h"

namespace guess {

// GuessNetwork implements faults::FaultHost (the fault-scenario engine's
// action surface, DESIGN.md §9) and TransportModulation (the partition /
// degradation overlay the transport consults per send). The modulation is
// installed on the transport only when the config carries a scenario, so
// scenario-free runs execute the exact pre-fault code path.
class GuessNetwork : public faults::FaultHost, public TransportModulation {
 public:
  /// Primary constructor: the validated SimulationConfig surface. Uses the
  /// config's system/protocol/malicious/transport blocks and
  /// enable_queries; run control (warmup, windows, sampling) stays with the
  /// caller.
  GuessNetwork(const SimulationConfig& config, sim::Simulator& simulator,
               Rng rng);

  ~GuessNetwork();

  GuessNetwork(const GuessNetwork&) = delete;
  GuessNetwork& operator=(const GuessNetwork&) = delete;

  // --- faults::FaultHost (DESIGN.md §9) ---

  /// Correlated mass departure: kill floor(fraction * alive) peers chosen
  /// uniformly at random, with NO replacement births — the population stays
  /// reduced until a join action (natural churn still replaces 1:1).
  void fault_mass_kill(double fraction) override;
  /// Flash crowd: `count` honest newborns join through the normal birth
  /// path (friend-seeded caches, churn-registered lifetimes).
  void fault_mass_join(std::size_t count) override;
  /// Assign every live peer to one of `ways` groups uniformly at random;
  /// cross-group exchanges are severed until the partition heals. Newborns
  /// during the partition draw a group on birth.
  void fault_set_partition(int ways) override;
  void fault_clear_partition() override;
  /// Open a transport-degradation window: extra per-leg loss (added to the
  /// configured loss, clamped to 1) and a latency multiplier.
  void fault_set_degradation(double extra_loss,
                             double latency_factor) override;
  void fault_clear_degradation() override;
  /// Toggle attacker pong poisoning. While off, malicious peers answer with
  /// their real (empty) caches and honest introduction entries.
  void fault_set_poisoning(bool active) override;
  /// Deploy an adversary cohort of floor(fraction * alive) members (min 1)
  /// running `kind`'s behavior (DESIGN.md §11). Cohort members are not
  /// churn-registered — their lifetime is the attack window (sybils recycle
  /// identities within it) — and they never enter the §6.4 poison roster.
  void fault_start_attack(faults::AttackKind kind, double fraction) override;
  /// Retire the whole cohort of `kind` without replacement births.
  void fault_stop_attack(faults::AttackKind kind) override;

  // --- TransportModulation (consulted by the transport per send) ---

  bool severed(PeerId from, PeerId to) const override;
  double extra_loss() const override { return degrade_extra_loss_; }
  double latency_factor() const override { return degrade_latency_factor_; }

  // --- time-resolved interval metrics (DESIGN.md §9) ---

  /// Start the per-interval accumulators; the caller (GuessSimulation)
  /// schedules sample_interval() every `width` seconds. Unlike
  /// begin_measurement() this runs from t=0: a fault needs a pre-fault
  /// baseline even when it lands at the measurement boundary.
  void begin_interval_metrics(sim::Duration width);
  /// Close the current interval at now and open the next one.
  void sample_interval();

  /// Create the initial population, seed link caches, start ping timers and
  /// query workloads. Call once, before running the simulator.
  void initialize();

  /// Start the measurement window: from now on completed queries, pings and
  /// samples count toward the results. Call at the end of warmup.
  void begin_measurement();

  /// Take one cache-health sample (Table 3 / Figures 18, 21); accumulates
  /// into the results. Only meaningful after begin_measurement().
  void sample_cache_health();

  /// Record one largest-component sample (Figures 6, 7).
  void sample_connectivity();

  /// Finalize and return results (flushes live peers' loads). The network
  /// can keep running afterwards, but results are a snapshot.
  SimulationResults collect_results();

  // --- introspection (tests, analysis) ---

  bool alive(PeerId id) const { return table_.alive(id); }
  const Peer* find(PeerId id) const { return table_.find(id); }
  Peer* find(PeerId id) { return table_.find(id); }
  std::size_t alive_count() const { return table_.size(); }
  const std::vector<PeerId>& alive_ids() const { return table_.alive_ids(); }
  bool is_malicious(PeerId id) const;
  bool poisoning_active() const { return poisoning_active_; }
  /// True iff `id` is a deployed adversary-zoo member (tests).
  bool is_adversary(PeerId id) const { return zoo_.contains(id); }
  const AdversaryZoo& adversary_zoo() const { return zoo_; }
  /// Whole-run attack/defense counters (also snapshotted into results).
  const AttackStats& attack_stats() const { return attack_stats_; }
  int partition_ways() const { return partition_ways_; }
  /// Partition group of `id`, or -1 when unpartitioned/unknown (tests).
  int partition_group(PeerId id) const;
  const IntervalSeries& interval_series() const { return interval_series_; }
  std::uint64_t deaths() const { return churn_->deaths(); }
  std::size_t active_queries() const { return active_query_count_; }
  const SystemParams& system() const { return system_; }
  const ProtocolParams& protocol() const { return protocol_; }
  const content::ContentModel& content() const { return content_; }

  /// Visit every conceptual-overlay edge (live owner -> live target).
  /// The visitor is invoked as visit(owner, target) and is templated so hot
  /// callers (largest_component, connectivity sampling) pay no type-erasure
  /// dispatch per edge.
  template <typename Visitor>
  void visit_live_edges(Visitor&& visit) const {
    for (PeerId id : table_.alive_ids()) {
      const Peer& peer = *table_.find(id);
      for (const CacheEntry& entry : peer.cache().entries()) {
        if (alive(entry.id)) visit(id, entry.id);
      }
    }
  }

  /// Largest weakly-connected component of the conceptual overlay.
  std::size_t largest_component() const;

  /// Inject a query directly (used by tests and the quickstart example);
  /// the query still runs through the normal probe machinery. The query's
  /// issue time is now.
  void submit_query(PeerId origin, content::FileId file);

  /// Inject a query with an explicit external issue time (open-loop
  /// arrivals that waited in an overload-controller queue keep their
  /// original arrival instant, so the wait counts in their latency).
  void submit_query(PeerId origin, content::FileId file, sim::Time issued);

  /// Attach a query-lifecycle observer (nullptr detaches; DESIGN.md §13).
  /// Completion callbacks fire after the network's own bookkeeping for the
  /// finishing query — including auto-starting the origin's next pending
  /// query — so the observer may submit new queries reentrantly.
  void set_query_observer(QueryObserver* observer) {
    query_observer_ = observer;
  }

  /// Visit the issue time of every query currently open: active executions
  /// plus per-peer pending entries. Cold path (end-of-window censusing of
  /// in-flight work).
  void visit_open_queries(
      const std::function<void(sim::Time)>& visit) const;

  /// Attach an event tracer (nullptr detaches). The tracer must outlive the
  /// network. Zero overhead beyond one branch per trace point when the
  /// category is off. Forwards to the transport (kTransport category).
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    transport_->set_tracer(tracer);
  }

  /// The message transport in use (tests inspect counters / in-flight).
  const Transport& transport() const { return *transport_; }
  const TransportParams& transport_params() const { return transport_params_; }

  /// Test hook (determinism suite): force births to claim dense slots in
  /// the given order instead of 0, 1, 2, ... — results must be bitwise
  /// identical either way. Call before initialize().
  void debug_seed_free_slots(std::vector<std::uint32_t> order) {
    table_.debug_seed_free_slots(std::move(order));
  }

 private:
  // --- event thunks ---
  // The per-event callables of the three hot self-rescheduling chains
  // (pings, query bursts, probe slots). Named structs instead of per-call
  // lambdas so network.cc can static_assert they stay within the event
  // queue's inline-callback buffer: scheduling them never allocates.
  struct PingFired;
  struct BurstFired;
  struct QueryStepFired;

  // --- transport completion thunks ---
  // Callables handed to Transport::exchange. Named structs so network.cc can
  // static_assert they fit the Transport::Completion inline buffer.
  struct PingResolved;
  struct QueryProbeResolved;

  // --- adversary-zoo event thunk (sybil identity expiry) ---
  struct SybilExpired;

  // --- lifecycle ---
  PeerId spawn_peer(bool malicious, bool selfish, bool initial);
  /// Birth one cohort member of `kind`: malicious, friend-seeded, not
  /// churn-registered, no query workload, ping timer scaled by the
  /// behavior's factor; sybils also arm their identity-expiry timer.
  PeerId spawn_adversary(faults::AttackKind kind);
  void sybil_expired(PeerId id);
  void on_peer_death(PeerId id);
  /// Tear one peer out of the network (timers, queries, alive list, poison
  /// registry) WITHOUT the replacement birth. The death path and the
  /// fault-scenario mass kill share this.
  void remove_peer(PeerId id);
  void seed_initial_caches();
  void seed_from_friend(Peer& newborn);
  void start_ping_timer(Peer& peer);
  void schedule_next_ping(Peer& peer, sim::Duration delay);
  void ping_timer_fired(PeerId id);
  void start_query_workload(Peer& peer);
  void schedule_next_burst(Peer& peer);
  void burst_timer_fired(PeerId id);

  // --- protocol messages ---
  void do_ping(PeerId pinger_id);
  void ping_resolved(PeerId pinger_id, PeerId target_id, bool measured,
                     DeliveryStatus status);
  void maybe_reseed_from_pong_server(Peer& peer);
  /// Fill `out` with the responder's Pong (select_top under `policy`).
  /// Callers pass the shared pong_scratch_; no path generates a Pong while
  /// another is being consumed (single-threaded event loop, and neither
  /// process_pong_entries nor offer_query_pong can re-enter a Pong build).
  void make_pong_into(Peer& responder, Policy policy,
                      std::vector<CacheEntry>& out);
  void process_pong_entries(Peer& receiver, PeerId source,
                            const std::vector<CacheEntry>& entries);
  /// Pong-size cap (max_pong_entries): discards oversized pongs, charging
  /// the sender. Returns the accepted prefix length of the pong.
  std::size_t accepted_pong_entries(Peer& receiver, PeerId source,
                                    std::size_t entry_count);
  /// charge_no_reply: file a bad referral against a target that never
  /// answered our Ping/QueryProbe (reply-withholding defense).
  void charge_no_reply(Peer& prober, PeerId target_id);
  void maybe_introduce(Peer& responder, const Peer& initiator);
  CacheEntry introduction_entry(const Peer& peer) const;

  // --- queries ---
  void start_next_query(Peer& origin);
  void query_step(PeerId origin_id);
  void probe_resolved(PeerId origin_id, std::uint64_t token,
                      const QueryExecution::Candidate& candidate,
                      DeliveryStatus status);
  void finish_slot(PeerId origin_id);
  void finish_query(Peer& origin, QueryExecution& query, bool satisfied);
  void offer_query_pong(Peer& origin, QueryExecution& query, PeerId source,
                        const std::vector<CacheEntry>& entries);
  /// The origin's active query, or nullptr (dead origin / no query). O(1):
  /// two array indexings through the dense slot table.
  QueryExecution* active_query_for(PeerId origin_id);
  /// Return the slot's active query (if any) to the pool.
  void release_active_query(std::uint32_t slot);

  // --- bookkeeping ---
  void flush_load(const Peer& peer);
  std::optional<PeerId> random_alive_peer(PeerId exclude);
  /// Grow the per-slot side arrays to cover every allocated slot.
  void ensure_slot_arrays();

  /// Lazily-built trace record: the builder runs only if the category is on.
  template <typename Builder>
  void trace(TraceCategory category, Builder&& builder) {
    if (tracer_ != nullptr && tracer_->on(category)) {
      std::ostringstream os;
      builder(os);
      tracer_->record(category, simulator_.now(), os.str());
    }
  }

  SystemParams system_;
  ProtocolParams protocol_;
  TransportParams transport_params_;
  bool enable_queries_;
  sim::Simulator& simulator_;
  Rng rng_;

  content::ContentModel content_;
  content::QueryStream query_stream_;
  PoisonGenerator poison_;
  AdversaryZoo zoo_;
  std::unique_ptr<churn::ChurnManager> churn_;
  std::unique_ptr<Transport> transport_;

  PeerId next_id_ = 0;
  PeerTable table_;

  // Active queries, indexed by the origin's dense slot. A slot's entry is
  // returned to the pool when its query finishes or its origin dies, so a
  // slot's next tenant always starts clean; late transport completions are
  // rejected by token mismatch. Steady-state queries recycle pooled
  // executions and never allocate.
  std::vector<std::unique_ptr<QueryExecution>> active_query_by_slot_;
  FreeListPool<QueryExecution> query_pool_;
  std::size_t active_query_count_ = 0;
  std::uint64_t next_query_token_ = 0;

  bool measuring_ = false;
  SimulationResults results_;
  TransportCounters transport_baseline_;
  // Lifetime loads of honest corpses (Figure 13); ids are not needed, the
  // loads feed an order-insensitive summary.
  std::vector<std::uint64_t> dead_peer_loads_;
  // Shared Pong build buffer (see make_pong_into).
  std::vector<CacheEntry> pong_scratch_;
  Tracer* tracer_ = nullptr;
  QueryObserver* query_observer_ = nullptr;

  // --- adversary-zoo state (DESIGN.md §11) ---
  // Whole-run counters; mutable because severed() — a const modulation
  // callback the transport consults per send — is where a withholder
  // swallowing an exchange is observed.
  mutable AttackStats attack_stats_;

  // --- fault-scenario state (DESIGN.md §9) ---
  bool poisoning_active_ = true;
  int partition_ways_ = 0;  ///< 0 = no partition active
  // Partition membership as per-slot arrays: an entry is valid only when
  // its stamp matches partition_epoch_, so clearing a partition (or letting
  // a slot change tenants) never walks the arrays.
  std::vector<int> partition_group_by_slot_;
  std::vector<std::uint32_t> partition_epoch_by_slot_;
  std::uint32_t partition_epoch_ = 0;
  double degrade_extra_loss_ = 0.0;
  double degrade_latency_factor_ = 1.0;

  // --- interval-metrics accumulators (always on once begun; span warmup) ---
  sim::Duration interval_width_ = 0.0;  ///< 0 = interval series disabled
  sim::Time interval_start_ = 0.0;
  std::uint64_t interval_completed_ = 0;
  std::uint64_t interval_satisfied_ = 0;
  std::uint64_t interval_probes_ = 0;
  TransportCounters interval_transport_baseline_;
  IntervalSeries interval_series_;
};

}  // namespace guess
