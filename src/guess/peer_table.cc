#include "guess/peer_table.h"

#include <algorithm>

namespace guess {

void PeerTable::destroy(PeerId id) {
  GUESS_CHECK_MSG(id < id_to_slot_.size() && id_to_slot_[id].slot != kNoSlot,
                  "destroy of unknown peer " << id);
  std::uint32_t slot = id_to_slot_[id].slot;
  Slot& s = slots_[slot];
  // Swap-remove from the alive list, re-keying the moved peer's position.
  std::uint32_t pos = s.alive_pos;
  std::uint32_t last = static_cast<std::uint32_t>(alive_ids_.size()) - 1;
  if (pos != last) {
    PeerId moved = alive_ids_[last];
    alive_ids_[pos] = moved;
    slots_[id_to_slot_[moved].slot].alive_pos = pos;
  }
  alive_ids_.pop_back();
  // Tombstone (generation 1, vs 0 for never-born): lookups still miss, but
  // create() can tell a retired id from a fresh one and reject reuse.
  id_to_slot_[id] = IdRef{kNoSlot, 1};
  s.peer.reset();
  ++s.generation;  // stale (slot, generation) references die here
  free_slots_.push_back(slot);
}

void PeerTable::reserve(std::size_t n) {
  slots_.reserve(n);
  alive_ids_.reserve(n);
  free_slots_.reserve(n);
}

void PeerTable::debug_seed_free_slots(std::vector<std::uint32_t> order) {
  GUESS_CHECK_MSG(slots_.empty() && alive_ids_.empty(),
                  "free-list seeding requires an empty table");
  slots_.resize(order.size());
  // The free list pops from the back: store the order reversed so births
  // claim order[0], order[1], ...
  free_slots_.assign(order.rbegin(), order.rend());
}

}  // namespace guess
