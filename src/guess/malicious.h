// Cache-poisoning attackers (§6.4).
//
// A malicious peer participates in the protocol but returns no query results
// and fills its Pongs with poison:
//   BadPongBehavior::kDead — fabricated dead addresses (no collusion)
//   BadPongBehavior::kBad  — addresses of fellow attackers (collusion)
// Poison entries carry inflated NumFiles/NumRes claims so that trusting
// policies (MFS, MR) rank them first.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "guess/cache_entry.h"
#include "guess/params.h"

namespace guess {

class PoisonGenerator {
 public:
  PoisonGenerator(MaliciousParams params, BadPongBehavior behavior);

  /// The shared pool of fabricated dead addresses (allocated by the network
  /// from its id space so they can never collide with real peers).
  void set_dead_pool(std::vector<PeerId> pool);

  /// Track the attacker population (it churns with the network).
  void add_bad_peer(PeerId id);
  void remove_bad_peer(PeerId id);
  std::size_t bad_peer_count() const { return bad_peers_.size(); }
  /// The tracked attacker ids, in swap-remove order (tests verify the
  /// index bookkeeping stays consistent under churn interleavings).
  const std::vector<PeerId>& bad_peers() const { return bad_peers_; }

  /// A poisoned Pong of up to `pong_size` entries. Under collusion the
  /// entries name other attackers (excluding `self`); entries are stamped
  /// with `now` and the inflated claims so they look maximally attractive.
  std::vector<CacheEntry> make_pong(PeerId self, std::size_t pong_size,
                                    sim::Time now, Rng& rng) const;

  /// Allocation-free make_pong: clears and fills `out` (same entries, same
  /// RNG draws; a warmed caller never allocates).
  void make_pong_into(PeerId self, std::size_t pong_size, sim::Time now,
                      Rng& rng, std::vector<CacheEntry>& out) const;

  const MaliciousParams& params() const { return params_; }
  BadPongBehavior behavior() const { return behavior_; }

 private:
  CacheEntry poison_entry(PeerId id, sim::Time now) const;

  MaliciousParams params_;
  BadPongBehavior behavior_;
  std::vector<PeerId> dead_pool_;
  std::vector<PeerId> bad_peers_;
  std::unordered_map<PeerId, std::size_t> bad_index_;
};

}  // namespace guess
