// Link/query cache entry — the paper's equation (1):
//   { IP address of Q, TS, NumFiles, NumRes }
#pragma once

#include <cstdint>

#include "guess/types.h"
#include "sim/time.h"

namespace guess {

struct CacheEntry {
  PeerId id = kInvalidPeer;

  /// Timestamp of the last interaction with the peer. Updated whenever the
  /// cache owner interacts with the peer (either side initiating); entries
  /// received in Pongs keep the TS the sender stored (fields are passed on
  /// unmodified).
  sim::Time ts = 0.0;

  /// Number of files the peer reported sharing when it introduced itself;
  /// passed on unmodified as entries circulate. Malicious peers can lie —
  /// the basis of the MFS poisoning attack (§6.4).
  std::uint32_t num_files = 0;

  /// Number of results the peer returned to the *last query probe sent by
  /// the cache owner* (reset on every probe). Values received from other
  /// peers are stored and forwarded as-is (§2.2: Pong entries are passed on
  /// unmodified); whether a policy *trusts* them is governed by first_hand
  /// below.
  std::uint32_t num_res = 0;

  /// True iff num_res was set by the cache owner's own probe. Under
  /// ResetNumResults (the MR* policy) or a detection-triggered policy
  /// switch, ranking decisions treat foreign (non-first-hand) NumRes as 0 —
  /// "P will order entries based solely on P's direct experience" (§6.4).
  /// Local knowledge: cleared whenever an entry is handed to another peer.
  bool first_hand = false;

  /// The NumRes value a ranking policy may use.
  std::uint32_t trusted_num_res(bool first_hand_only) const {
    return (first_hand_only && !first_hand) ? 0 : num_res;
  }
};

}  // namespace guess
