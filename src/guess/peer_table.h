// Dense peer identity: PeerId -> slot mapping with generation tags.
//
// Peers live in a contiguous slab of slots. A birth claims a slot from the
// free list (LIFO) or appends one; a death returns the slot and bumps its
// generation so stale slot references can never resurrect a dead PeerId.
// PeerIds are allocated monotonically by the network, so the id -> slot map
// is a plain vector indexed by id — every lookup on the query hot path is
// two array indexings, no hashing.
//
// The table also owns the alive list (push_back on birth, swap-remove on
// death) and each live peer's position in it, so the network's iteration
// and sampling orders are exactly the pre-table orders: they depend only on
// the birth/death sequence, never on which slot a peer happens to occupy
// (the slot-shuffle determinism test pins this).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "guess/peer.h"

namespace guess {

class PeerTable {
 public:
  /// Sentinel slot index: "this id has no live peer".
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Construct a peer for `id` in a free slot. `id` must be fresh (never
  /// used before) — ids are monotonic, so the id map only grows.
  /// The returned reference is valid until the next create() (slab growth
  /// may move peers; nothing outside an event keeps Peer pointers).
  template <typename... Args>
  Peer& create(PeerId id, Args&&... args) {
    // Reject tombstoned / live ids before touching any slot state, so a
    // rejected re-create (a recycled sybil identity, say) cannot leak a
    // free-list slot.
    if (id >= id_to_slot_.size()) {
      id_to_slot_.resize(static_cast<std::size_t>(id) + 1,
                         IdRef{kNoSlot, 0});
    }
    GUESS_CHECK_MSG(id_to_slot_[id].slot == kNoSlot &&
                        id_to_slot_[id].generation == 0,
                    "PeerId reused");
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    GUESS_CHECK(!s.peer.has_value());
    s.peer.emplace(id, std::forward<Args>(args)...);
    s.alive_pos = static_cast<std::uint32_t>(alive_ids_.size());
    id_to_slot_[id] = IdRef{slot, s.generation};
    alive_ids_.push_back(id);
    return *s.peer;
  }

  /// Destroy the peer for `id` (checked): swap-removes it from the alive
  /// list, frees its slot, and bumps the slot's generation.
  void destroy(PeerId id);

  Peer* find(PeerId id) {
    std::uint32_t slot = slot_of(id);
    return slot == kNoSlot ? nullptr : &*slots_[slot].peer;
  }
  const Peer* find(PeerId id) const {
    std::uint32_t slot = slot_of(id);
    return slot == kNoSlot ? nullptr : &*slots_[slot].peer;
  }
  bool alive(PeerId id) const { return slot_of(id) != kNoSlot; }

  /// Slot of a live peer, or kNoSlot.
  std::uint32_t slot_of(PeerId id) const {
    if (id >= id_to_slot_.size()) return kNoSlot;
    return id_to_slot_[id].slot;
  }

  /// Position of a live peer in alive_ids() (checked).
  std::uint32_t alive_pos(PeerId id) const {
    std::uint32_t slot = slot_of(id);
    GUESS_CHECK(slot != kNoSlot);
    return slots_[slot].alive_pos;
  }

  /// Live peer ids in birth order with swap-remove holes — the same order
  /// the pre-table network maintained.
  const std::vector<PeerId>& alive_ids() const { return alive_ids_; }
  std::size_t size() const { return alive_ids_.size(); }

  /// Total slots ever allocated (live + free); per-slot side arrays in the
  /// network are sized against this.
  std::size_t slot_count() const { return slots_.size(); }

  /// Current generation of a slot (bumped on each death in the slot).
  std::uint32_t generation(std::uint32_t slot) const {
    GUESS_CHECK(slot < slots_.size());
    return slots_[slot].generation;
  }

  /// Resolve a (slot, generation) reference: the peer if the slot is
  /// occupied by the same incarnation the reference was taken against,
  /// nullptr otherwise. A reference taken before a death never resolves to
  /// the slot's next tenant.
  Peer* peer_in_slot(std::uint32_t slot, std::uint32_t gen) {
    if (slot >= slots_.size()) return nullptr;
    Slot& s = slots_[slot];
    if (!s.peer.has_value() || s.generation != gen) return nullptr;
    return &*s.peer;
  }

  void reserve(std::size_t n);

  /// Test hook: pre-allocate `order.size()` empty slots and arrange the
  /// free list so births claim slots in exactly `order` — lets the
  /// determinism suite prove results do not depend on slot assignment.
  /// Must be called on an empty table; `order` must be a permutation of
  /// [0, order.size()).
  void debug_seed_free_slots(std::vector<std::uint32_t> order);

 private:
  struct Slot {
    std::uint32_t generation = 0;
    std::uint32_t alive_pos = 0;  // valid while occupied
    std::optional<Peer> peer;
  };
  struct IdRef {
    std::uint32_t slot;
    std::uint32_t generation;
  };

  std::vector<Slot> slots_;
  std::vector<IdRef> id_to_slot_;          // indexed by PeerId
  std::vector<std::uint32_t> free_slots_;  // LIFO
  std::vector<PeerId> alive_ids_;
};

}  // namespace guess
