// Core identifiers for the GUESS protocol library.
#pragma once

#include <cstdint>

namespace guess {

/// A peer's identity — stands in for its IP address. Ids are allocated
/// densely at birth and never reused: a peer that dies never returns (the
/// paper's worst-case churn assumption), so a stale id in someone's cache is
/// permanently dead.
using PeerId = std::uint64_t;

inline constexpr PeerId kInvalidPeer = ~PeerId{0};

}  // namespace guess
