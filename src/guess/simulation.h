// GuessSimulation — the public entry point of guesslib.
//
// Wraps simulator construction, network setup, warmup, periodic sampling and
// result collection into one call:
//
//   guess::SystemParams system;          // Table 1 defaults
//   guess::ProtocolParams protocol;      // Table 2 defaults
//   guess::SimulationOptions options;
//   guess::GuessSimulation sim(system, protocol, options);
//   guess::SimulationResults results = sim.run();
//
// For step-by-step control (tests, examples that drive individual queries),
// construct the pieces directly: sim::Simulator + GuessNetwork.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "guess/metrics.h"
#include "guess/network.h"
#include "guess/params.h"
#include "sim/simulator.h"

namespace guess {

struct SimulationOptions {
  std::uint64_t seed = 42;

  /// Simulated seconds before measurement starts (caches reach steady
  /// state; the paper measures steady-state behaviour).
  sim::Duration warmup = 600.0;

  /// Simulated seconds of the measurement window.
  sim::Duration measure = 2400.0;

  /// False for the §6.1 maintenance-only runs (Figures 6/7 isolate pings).
  bool enable_queries = true;

  /// Interval between cache-health samples (Table 3, Figures 18/21).
  sim::Duration health_sample_interval = 60.0;

  /// When true, also sample the conceptual overlay's largest connected
  /// component every connectivity_sample_interval (Figures 6/7).
  bool sample_connectivity = false;
  sim::Duration connectivity_sample_interval = 120.0;

  /// Worker threads for run_seeds (replications run concurrently, one per
  /// thread). 0 = auto: the GUESS_THREADS environment variable when set,
  /// else all hardware threads. 1 = serial in the calling thread. Thread
  /// count never changes results — replications are independent and are
  /// returned in seed order (see DESIGN.md "Threading model").
  int threads = 0;

  /// Event-queue backend (--scheduler={heap,calendar}). Both schedulers pop
  /// events in identical (time, seq) order, so the choice never changes
  /// results — only how fast the simulator processes events (see DESIGN.md
  /// "Event core").
  sim::Scheduler scheduler = sim::Scheduler::kHeap;

  MaliciousParams malicious;
};

class GuessSimulation {
 public:
  GuessSimulation(SystemParams system, ProtocolParams protocol,
                  SimulationOptions options);
  ~GuessSimulation();

  GuessSimulation(const GuessSimulation&) = delete;
  GuessSimulation& operator=(const GuessSimulation&) = delete;

  /// Run warmup + measurement and return the collected results. Callable
  /// once per instance.
  SimulationResults run();

  /// Access to the underlying pieces, for examples/tests that want to poke
  /// at the network after (or instead of) run().
  GuessNetwork& network() { return *network_; }
  sim::Simulator& simulator() { return simulator_; }
  const SimulationOptions& options() const { return options_; }

 private:
  SimulationOptions options_;
  sim::Simulator simulator_;
  std::unique_ptr<GuessNetwork> network_;
  bool ran_ = false;
};

/// Convenience for sweeps: run one simulation per seed (seed, seed+1, ...)
/// and return the per-run results, in seed order.
///
/// Replications execute on a worker pool of options.threads threads (0 =
/// auto; see SimulationOptions::threads). Results are bitwise-identical to
/// the serial loop for any thread count. `progress`, when set, is called
/// after each completed replication with (completed, num_seeds); it runs on
/// worker threads, serialized, in completion order.
std::vector<SimulationResults> run_seeds(
    const SystemParams& system, const ProtocolParams& protocol,
    SimulationOptions options, int num_seeds,
    const std::function<void(int, int)>& progress = {});

/// Aggregate of repeated runs: averages of the headline per-query metrics,
/// plus standard errors across seeds for the two headline numbers (0 when
/// only one seed was run).
struct AveragedResults {
  double probes_per_query = 0.0;
  double good_per_query = 0.0;
  double dead_per_query = 0.0;
  double refused_per_query = 0.0;
  double unsatisfied_rate = 0.0;
  double fraction_live = 0.0;
  double absolute_live = 0.0;
  double good_entries = 0.0;
  double largest_component = 0.0;
  double response_time = 0.0;
  double queries_completed = 0.0;
  double probes_per_query_se = 0.0;
  double unsatisfied_rate_se = 0.0;
  /// End-of-run connectivity snapshots (0 unless sample_connectivity).
  double final_largest_component = 0.0;
  double final_largest_strong_component = 0.0;
};

AveragedResults average(const std::vector<SimulationResults>& runs);

}  // namespace guess
