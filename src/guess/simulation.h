// GuessSimulation — the public entry point of guesslib.
//
// Wraps simulator construction, network setup, warmup, periodic sampling and
// result collection into one call:
//
//   auto config = guess::SimulationConfig()   // Table 1/2 defaults
//                     .seed(7)
//                     .transport(guess::TransportParams::lossy(0.05));
//   guess::GuessSimulation sim(config);       // validates on construction
//   guess::SimulationResults results = sim.run();
//
// SimulationOptions (the run-control block) and SimulationConfig live in
// guess/config.h. For step-by-step control (tests, examples that drive
// individual queries), construct the pieces directly: sim::Simulator +
// GuessNetwork.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "faults/fault_engine.h"
#include "guess/config.h"
#include "guess/metrics.h"
#include "guess/network.h"
#include "guess/params.h"
#include "sim/simulator.h"

namespace guess {

class GuessSimulation {
 public:
  /// Primary constructor: validates the config (throws CheckError on
  /// nonsense) and builds the simulator + network from it.
  explicit GuessSimulation(const SimulationConfig& config);

  ~GuessSimulation();

  GuessSimulation(const GuessSimulation&) = delete;
  GuessSimulation& operator=(const GuessSimulation&) = delete;

  /// Run warmup + measurement and return the collected results. Callable
  /// once per instance.
  SimulationResults run();

  /// Access to the underlying pieces, for examples/tests that want to poke
  /// at the network after (or instead of) run().
  GuessNetwork& network() { return *network_; }
  sim::Simulator& simulator() { return simulator_; }
  const SimulationOptions& options() const { return config_.options(); }
  const SimulationConfig& config() const { return config_; }
  /// The fault engine driving the config's scenario; nullptr until run()
  /// when the scenario is empty (tests inspect fired()).
  const faults::FaultEngine* fault_engine() const {
    return fault_engine_.get();
  }

 private:
  SimulationConfig config_;
  sim::Simulator simulator_;
  std::unique_ptr<GuessNetwork> network_;
  std::unique_ptr<faults::FaultEngine> fault_engine_;
  bool ran_ = false;
};

/// Convenience for sweeps: run one simulation per seed (config.seed(),
/// +1, ...) and return the per-run results, in seed order.
///
/// Replications execute on a worker pool of options().threads threads (0 =
/// auto; see SimulationOptions::threads). Results are bitwise-identical to
/// the serial loop for any thread count. `progress`, when set, is called
/// after each completed replication with (completed, num_seeds); it runs on
/// worker threads, serialized, in completion order.
std::vector<SimulationResults> run_seeds(
    const SimulationConfig& config, int num_seeds,
    const std::function<void(int, int)>& progress = {});

/// Aggregate of repeated runs: averages of the headline per-query metrics,
/// plus standard errors across seeds for the two headline numbers (0 when
/// only one seed was run).
struct AveragedResults {
  double probes_per_query = 0.0;
  double good_per_query = 0.0;
  double dead_per_query = 0.0;
  double refused_per_query = 0.0;
  double unsatisfied_rate = 0.0;
  double fraction_live = 0.0;
  double absolute_live = 0.0;
  double good_entries = 0.0;
  double largest_component = 0.0;
  double response_time = 0.0;
  double queries_completed = 0.0;
  double probes_per_query_se = 0.0;
  double unsatisfied_rate_se = 0.0;
  /// End-of-run connectivity snapshots (0 unless sample_connectivity).
  double final_largest_component = 0.0;
  double final_largest_strong_component = 0.0;
};

AveragedResults average(const std::vector<SimulationResults>& runs);

}  // namespace guess
