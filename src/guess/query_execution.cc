#include "guess/query_execution.h"

#include <algorithm>

#include "common/check.h"

namespace guess {

void ProbeCounters::count(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::kGood: ++good; break;
    case ProbeOutcome::kDead: ++dead; break;
    case ProbeOutcome::kRefused: ++refused; break;
  }
}

ProbeCounters& ProbeCounters::operator+=(const ProbeCounters& other) {
  good += other.good;
  dead += other.dead;
  refused += other.refused;
  return *this;
}

QueryExecution::QueryExecution(PeerId origin, content::FileId file,
                               std::uint32_t desired, Policy probe_policy,
                               sim::Time start, std::size_t parallel,
                               bool first_hand_only)
    : origin_(origin),
      file_(file),
      desired_(desired),
      probe_policy_(probe_policy),
      start_(start),
      issue_(start),
      first_hand_only_(first_hand_only),
      parallel_(parallel) {
  GUESS_CHECK(desired >= 1);
  GUESS_CHECK(parallel >= 1);
}

void QueryExecution::reset(PeerId origin, content::FileId file,
                           std::uint32_t desired, Policy probe_policy,
                           sim::Time start, std::size_t parallel,
                           bool first_hand_only) {
  GUESS_CHECK(desired >= 1);
  GUESS_CHECK(parallel >= 1);
  origin_ = origin;
  file_ = file;
  desired_ = desired;
  probe_policy_ = probe_policy;
  start_ = start;
  issue_ = start;
  first_hand_only_ = first_hand_only;
  heap_.clear();
  candidates_.clear();
  seen_.clear();
  next_seq_ = 0;
  results_ = 0;
  counters_ = ProbeCounters{};
  parallel_ = parallel;
  resultless_slots_ = 0;
  stalled_slots_ = 0;
  slot_results_baseline_ = 0;
  slot_probes_issued_ = 0;
  slot_outstanding_ = 0;
  slot_creditless_ = false;
  slot_issuing_ = false;
  token_ = 0;
}

void QueryExecution::note_slot(bool any_results, bool adaptive,
                               std::size_t trigger, std::size_t max) {
  if (any_results) {
    resultless_slots_ = 0;
    return;
  }
  ++resultless_slots_;
  if (adaptive && resultless_slots_ >= trigger) {
    // Double, capped at `max`, but never shrink below the starting width.
    parallel_ = std::max(parallel_, std::min(parallel_ * 2, max));
    resultless_slots_ = 0;
  }
}

bool QueryExecution::add_candidate(const CacheEntry& entry, PeerId source,
                                   Rng& rng) {
  if (entry.id == origin_) return false;
  if (!seen_.insert(entry.id)) return false;
  auto idx = static_cast<std::uint32_t>(candidates_.size());
  candidates_.push_back(Candidate{entry, source});
  heap_.push_back(Scored{
      selection_score(probe_policy_, entry, rng, first_hand_only_),
      next_seq_++, idx});
  std::push_heap(heap_.begin(), heap_.end());
  return true;
}

std::optional<QueryExecution::Candidate> QueryExecution::next_candidate() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end());
  std::uint32_t idx = heap_.back().idx;
  heap_.pop_back();
  return candidates_[idx];
}

}  // namespace guess
