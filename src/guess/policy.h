// The paper's policy framework (Section 4).
//
// Five policy *types* govern how cache entries are used:
//   QueryProbe / PingProbe  — which entry to contact next (selection)
//   QueryPong / PingPong    — which entries to hand out in a Pong (selection)
//   CacheReplacement        — which entry to evict (replacement)
//
// Selection policies (paper names): Random, MRU, LRU, MFS, MR. The MR*
// variant is MR combined with ProtocolParams::reset_num_results — it is a
// flag on how foreign NumRes values are ingested, not a different ordering.
//
// Replacement policies are named for what they EVICT (paper §4): LFS evicts
// the fewest-files entry (thereby retaining the most-files ones), LR evicts
// least-results, LRU evicts least-recently-used (retaining fresh entries),
// MRU evicts most-recently-used (the paper's pathological "fairness" choice).
#pragma once

#include <string>

#include "common/rng.h"
#include "guess/cache_entry.h"

namespace guess {

enum class Policy { kRandom, kMRU, kLRU, kMFS, kMR };

enum class Replacement { kRandom, kLRU, kMRU, kLFS, kLR };

/// Score for selection policies: the entry with the HIGHEST score is probed
/// first / preferred in Pongs. Random policy scores are fresh uniform draws;
/// deterministic policies get no jitter (ties are broken by the caller's
/// iteration order, which is itself deterministic per seed).
/// With `first_hand_only` (the MR* behaviour), kMR scores foreign NumRes
/// values as 0 — only the owner's direct experience counts.
double selection_score(Policy policy, const CacheEntry& entry, Rng& rng,
                       bool first_hand_only = false);

/// Score for replacement policies: the entry with the LOWEST score is the
/// eviction victim. A Pong candidate is inserted into a full cache only if
/// its retention score exceeds the victim's. Under kRandom the candidate
/// always wins: it replaces a uniformly chosen victim (the always-insert /
/// evict-uniformly baseline — LinkCache::offer special-cases this).
double retention_score(Replacement policy, const CacheEntry& entry, Rng& rng,
                       bool first_hand_only = false);

/// Deterministic-policy scores for the incremental score index (checked:
/// the policy must not be kRandom — random scores are fresh draws per
/// decision and cannot be cached in an ordering).
double deterministic_selection_score(Policy policy, const CacheEntry& entry,
                                     bool first_hand_only);
double deterministic_retention_score(Replacement policy,
                                     const CacheEntry& entry,
                                     bool first_hand_only);

std::string to_string(Policy policy);
std::string to_string(Replacement replacement);

/// Parse the paper's abbreviations ("Ran", "MRU", "LRU", "MFS", "MR").
Policy parse_policy(const std::string& name);

/// Parse "Ran", "LRU", "MRU", "LFS", "LR".
Replacement parse_replacement(const std::string& name);

}  // namespace guess
