// The GUESS link cache (§2.1–2.2): a bounded list of pointers to other
// peers, maintained via Pings and fed by Pong entry sharing.
//
// Invariants: at most `capacity` entries; at most one entry per peer id;
// never contains the owner's own id.
//
// Hot-path structure: the id -> position index is a flat open-addressing
// table (FlatIdMap) sized once for the bounded capacity, and the policy
// orderings the run actually uses are maintained incrementally as
// ScoreIndex heaps (configure_indices), so select_best is O(1), select_top
// is O(k log n), and a full-cache offer decides accept/reject in O(1) —
// none of which rescores the whole cache or allocates. Policies that were
// not configured fall back to the legacy full-scan paths, which produce
// bitwise-identical selections (the index comparators replicate the scans'
// position tie-breaks exactly).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/id_map.h"
#include "common/rng.h"
#include "guess/cache_entry.h"
#include "guess/policy.h"
#include "guess/score_index.h"

namespace guess {

class LinkCache {
 public:
  /// @param owner     id of the owning peer (own entries are rejected)
  /// @param capacity  the paper's CacheSize parameter
  LinkCache(PeerId owner, std::size_t capacity);

  /// Maintain incremental score orderings for the given selection policies
  /// and retention policy (kRandom entries are ignored — random scores are
  /// per-decision draws and cannot be indexed). Call once after
  /// construction; selections under other policies use the legacy scans.
  void configure_indices(std::initializer_list<Policy> selection,
                         Replacement retention);

  /// First-hand-only mode (MR* / detection-triggered switch): ranking and
  /// retention treat NumRes values not set by the owner's own probes as 0.
  /// Stored and forwarded values are untouched (§2.2).
  void set_first_hand_only(bool enabled);
  bool first_hand_only() const { return first_hand_only_; }

  /// Eclipse resistance (DetectionParams::first_hand_floor): when > 0, a
  /// full cache refuses to replace a first-hand entry with a non-first-hand
  /// candidate while at most `floor` first-hand entries remain. Attack
  /// pongs are never first-hand, so a colluding cohort cannot displace the
  /// victim's last `floor` entries of direct experience. Evictions (dead or
  /// blacklisted peers) are unaffected.
  void set_first_hand_floor(std::size_t floor) { first_hand_floor_ = floor; }
  std::size_t first_hand_floor() const { return first_hand_floor_; }

  /// Number of entries whose NumRes is the owner's own observation
  /// (maintained incrementally; the floor guard and tests read it).
  std::size_t first_hand_count() const { return first_hand_count_; }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() >= capacity_; }
  bool contains(PeerId id) const { return index_.contains(id); }

  /// All current entries (unspecified order; stable between mutations).
  std::span<const CacheEntry> entries() const { return entries_; }

  /// Entry for a peer, if present.
  std::optional<CacheEntry> get(PeerId id) const;

  /// Insert an entry without replacement pressure (cache must not be full,
  /// entry must not be present). Used when seeding a newborn's cache.
  void insert_free(const CacheEntry& entry);

  /// Offer a Pong-received candidate (§2.2): skipped if it is the owner or
  /// already cached; inserted directly if space remains; otherwise it
  /// replaces the replacement policy's victim iff its retention score beats
  /// the victim's. Fields are taken as-is (Pong entries are not updated on
  /// receipt). @returns true if the candidate was inserted.
  bool offer(const CacheEntry& candidate, Replacement policy, Rng& rng);

  /// Remove the entry for `id` (no-op if absent). Used when a probe finds
  /// the peer dead (or refusing, per §6.3's implicit throttling).
  /// @returns true if an entry was removed.
  bool evict(PeerId id);

  /// Update the TS field after an interaction with `id` (no-op if absent).
  void touch(PeerId id, sim::Time now);

  /// Overwrite NumRes after a query probe to `id` (no-op if absent); the
  /// value is now first-hand knowledge.
  void set_num_res(PeerId id, std::uint32_t num_res);

  /// Entry to contact next under a selection policy (highest score wins).
  /// @returns nullopt if the cache is empty.
  std::optional<CacheEntry> select_best(Policy policy, Rng& rng) const;

  /// Up to `count` entries for a Pong, preferred by the selection policy
  /// (highest scores first).
  std::vector<CacheEntry> select_top(Policy policy, std::size_t count,
                                     Rng& rng) const;

  /// Allocation-free select_top: clears and fills `out` (which keeps its
  /// capacity across calls — a warmed caller never allocates).
  void select_top_into(Policy policy, std::size_t count, Rng& rng,
                       std::vector<CacheEntry>& out) const;

  /// Number of entries matching a predicate — used by the cache-health
  /// metrics (fraction live, good entries).
  template <typename Pred>
  std::size_t count_if(Pred&& pred) const {
    std::size_t n = 0;
    for (const auto& e : entries_)
      if (pred(e)) ++n;
    return n;
  }

 private:
  struct SelectionIndex {
    Policy policy;
    ScoreIndex index;
  };

  void erase_at(std::size_t pos);
  /// Index maintenance after entries_.push_back / entries_[pos] = ...
  void note_insert();
  void note_update(std::size_t pos);
  void rebuild_indices();
  const ScoreIndex* find_selection(Policy policy) const;
  /// The first-hand-floor guard: true iff replacing `victim` with
  /// `candidate` would dig into the protected first-hand reserve.
  bool floor_protects(std::size_t victim, const CacheEntry& candidate) const {
    return first_hand_floor_ > 0 && !candidate.first_hand &&
           entries_[victim].first_hand &&
           first_hand_count_ <= first_hand_floor_;
  }

  PeerId owner_;
  std::size_t capacity_;
  bool first_hand_only_ = false;
  std::size_t first_hand_floor_ = 0;
  std::size_t first_hand_count_ = 0;
  std::vector<CacheEntry> entries_;
  FlatIdMap index_;  // id -> position

  std::vector<SelectionIndex> selection_indices_;
  Replacement retention_policy_ = Replacement::kRandom;  // kRandom = none
  bool has_retention_index_ = false;
  ScoreIndex retention_index_;

  // Scratch buffers for the allocation-free selection paths (grown once).
  mutable std::vector<std::uint32_t> topk_positions_;
  mutable std::vector<ScoreIndex::Item> topk_scratch_;
  mutable std::vector<std::size_t> sample_out_;
  mutable std::vector<std::size_t> sample_scratch_;
};

}  // namespace guess
