// Overload control for open-loop query arrivals (DESIGN.md §13.3).
//
// Under closed-loop load the population self-limits: a slow system issues
// its next query later. Under an open-loop arrival process (sim/arrival.h)
// offered load is whatever the operator configured, so the run needs a
// policy for the arrivals the system cannot absorb. Four are provided:
//
//   * none          — every arrival starts immediately. The baseline: past
//                     saturation, per-origin pending queues grow without
//                     bound and tail latency diverges.
//   * admit         — admission control: a fixed budget of in-flight query
//                     slots; arrivals beyond it are rejected at the door
//                     (the client sees a fast failure, admitted queries see
//                     a healthy system).
//   * shed          — load shedding: arrivals queue in the controller; when
//                     the queue passes a depth watermark, entries are
//                     dropped (oldest-first by default — the queries most
//                     likely to already have blown their SLO).
//   * backpressure  — adaptive AIMD window on query issue. The window grows
//                     additively each control tick while the system looks
//                     healthy and shrinks multiplicatively when the
//                     observed transport failure rate (timeouts + failed
//                     exchanges per message, from TransportCounters deltas)
//                     exceeds its target or the queue passes half capacity;
//                     arrivals beyond window + bounded queue are rejected.
//
// The controller is deterministic (pure arithmetic, no RNG) and
// allocation-free after construction (a reserved ring buffer holds queued
// issue times), so attaching one preserves bitwise reproducibility across
// schedulers and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log_histogram.h"
#include "sim/time.h"

namespace guess {

enum class OverloadPolicy {
  kNone,
  kAdmit,
  kShed,
  kBackpressure,
};

/// "none" / "admit" / "shed" / "backpressure".
const char* overload_policy_name(OverloadPolicy policy);

/// Parse an --overload-policy= value; throws CheckError on unknown names.
OverloadPolicy parse_overload_policy(const std::string& name);

/// Tuning for the overload controller (SimulationOptions::overload).
struct OverloadParams {
  OverloadPolicy policy = OverloadPolicy::kNone;

  /// In-flight query budget: admission limit for kAdmit/kShed, and the
  /// AIMD window's initial value for kBackpressure.
  std::size_t max_in_flight = 64;

  /// Hard bound on the controller queue (kShed/kBackpressure); arrivals
  /// that find the queue full are rejected.
  std::size_t queue_capacity = 256;

  /// kShed: queue depth beyond which entries are dropped.
  std::size_t shed_watermark = 64;

  /// kShed: drop the oldest queued entry (true, default — it has waited
  /// longest and is most likely already past its SLO) or the newest.
  bool shed_oldest = true;

  // --- kBackpressure (AIMD) ---
  double target_failure_rate = 0.05;   ///< transport failures per message
  double additive_increase = 4.0;      ///< window += per healthy tick
  double multiplicative_decrease = 0.5;  ///< window *= on pressure
  std::size_t min_window = 4;
  std::size_t max_window = 1024;
  sim::Duration control_interval = 10.0;  ///< seconds between AIMD ticks
};

/// Query-lifecycle callbacks a backend reports to its open-loop driver.
/// Latencies and ages are simulated seconds from the query's external issue
/// time (which includes any controller queueing delay).
class QueryObserver {
 public:
  virtual ~QueryObserver() = default;

  /// A query ran to completion (satisfied or not).
  virtual void on_query_complete(double latency, bool satisfied) = 0;

  /// A query was abandoned before completing (its origin died with the
  /// query active or queued). `age` is seconds since issue.
  virtual void on_query_abandoned(double age) = 0;
};

/// What the controller decided for one arrival.
enum class AdmitAction {
  kStart,   ///< issue the query now
  kQueue,   ///< held in the controller queue; started on a later release
  kReject,  ///< refused at the door (counted, never issued)
};

struct AdmitDecision {
  AdmitAction action = AdmitAction::kStart;
  /// Queued entries dropped to make room (kShed past the watermark). The
  /// caller reports one abandoned-by-shedding query per dropped issue time
  /// in `shed_issues` (filled oldest-first; at most 1 per arrival).
  std::size_t shed = 0;
  sim::Time shed_issue = 0.0;
};

class OverloadController {
 public:
  explicit OverloadController(const OverloadParams& params);

  /// Decide one arrival at simulated time `now`. kStart already counts the
  /// query in flight; after a kQueue decision (and after on_release/tick)
  /// the caller pumps try_start() until it returns false.
  AdmitDecision on_arrival(sim::Time now);

  /// Start the oldest queued arrival if a slot is free: writes its original
  /// issue time to `*issue` (so the wait it spent queued stays inside its
  /// measured latency), counts it in flight, and returns true.
  bool try_start(sim::Time* issue);

  /// An in-flight query finished (completed or abandoned); frees its slot.
  void on_release();

  /// kBackpressure: one AIMD control tick. `failure_rate` is the observed
  /// transport failure fraction (timeouts + failed exchanges per sent
  /// message) since the previous tick; ticks with no traffic pass 0.
  void tick(double failure_rate);

  /// Drain the queue (end of run): pops every queued issue time, oldest
  /// first, without touching in-flight accounting.
  bool drain_one(sim::Time* issue);

  std::size_t in_flight() const { return in_flight_; }
  std::size_t queue_depth() const { return queue_size_; }
  /// Current admission window (fixed for kAdmit/kShed; AIMD-adjusted for
  /// kBackpressure; unbounded for kNone).
  double window() const { return window_; }

 private:
  bool has_slot() const;
  void push_queue(sim::Time issue);
  sim::Time pop_oldest();
  sim::Time pop_newest();

  OverloadParams params_;
  double window_ = 0.0;
  std::size_t in_flight_ = 0;
  // Ring buffer of queued issue times; reserved once, never reallocated.
  std::vector<sim::Time> queue_;
  std::size_t queue_head_ = 0;
  std::size_t queue_size_ = 0;
};

/// Open-loop run accounting (SearchResults::overload; zeros for closed-loop
/// runs). All counters cover the measurement window; the histogram holds
/// completed-query latencies plus, at collect, the censored ages of queries
/// still open when the window closed (so a diverging baseline cannot hide
/// its backlog by never finishing it — DESIGN.md §13.2).
struct OverloadStats {
  bool open_loop = false;
  OverloadPolicy policy = OverloadPolicy::kNone;
  double offered_qps = 0.0;  ///< configured arrival rate
  double slo = 0.0;          ///< latency SLO, seconds

  std::uint64_t arrivals = 0;   ///< offered queries
  std::uint64_t admitted = 0;   ///< issued to the backend (incl. after queueing)
  std::uint64_t rejected = 0;   ///< refused at the door
  std::uint64_t shed = 0;       ///< dropped from the controller queue
  std::uint64_t completed = 0;  ///< ran to completion
  std::uint64_t satisfied = 0;  ///< completed with enough results
  std::uint64_t slo_ok = 0;     ///< satisfied within the SLO
  std::uint64_t abandoned = 0;  ///< origin died / shed while open
  std::uint64_t open_at_close = 0;  ///< still in flight or queued at window end

  /// Latency histogram: completions + censored open-query ages.
  LogHistogram latency;

  double latency_percentile(double p) const { return latency.percentile(p); }
  /// Goodput: satisfied-within-SLO completions per second.
  double goodput(double duration) const {
    return duration > 0.0 ? static_cast<double>(slo_ok) / duration : 0.0;
  }
  /// SLO-violation fraction over everything the window accounted for
  /// (completions + censored): 1 - slo_ok / (completed + open_at_close).
  double slo_violation_rate() const {
    std::uint64_t accounted = completed + open_at_close;
    return accounted == 0 ? 0.0
                          : 1.0 - static_cast<double>(slo_ok) /
                                      static_cast<double>(accounted);
  }
};

}  // namespace guess
