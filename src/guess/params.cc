#include "guess/params.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace guess {

std::size_t SystemParams::resolved_cache_seed(std::size_t cache_size) const {
  std::size_t seed = cache_seed_size;
  if (seed == 0) seed = network_size / 100;
  seed = std::max<std::size_t>(seed, 5);
  seed = std::min(seed, cache_size);
  seed = std::min(seed, network_size > 1 ? network_size - 1 : 1);
  return seed;
}

DetectionParams DetectionParams::hardened() {
  DetectionParams params;
  params.enabled = true;
  params.min_referrals = 2;
  params.bad_threshold = 0.5;
  params.switch_threshold = 3;
  params.lie_claim_threshold = 3;
  params.max_pong_entries = 8;
  params.charge_no_reply = true;
  params.first_hand_floor = 10;
  return params;
}

ProtocolParams ProtocolParams::mr_star_defaults() {
  ProtocolParams params;
  params.query_probe = Policy::kMR;
  params.query_pong = Policy::kMR;
  params.cache_replacement = Replacement::kLR;
  params.reset_num_results = true;
  return params;
}

std::string to_string(BadPongBehavior behavior) {
  switch (behavior) {
    case BadPongBehavior::kDead: return "Dead";
    case BadPongBehavior::kBad: return "Bad";
  }
  return "?";
}

std::string describe(const SystemParams& params) {
  std::ostringstream os;
  os << "NetworkSize=" << params.network_size
     << " NumDesiredResults=" << params.num_desired_results
     << " LifespanMultiplier=" << params.lifespan_multiplier
     << " QueryRate=" << params.query_rate
     << " MaxProbesPerSecond=" << params.max_probes_per_second
     << " PercentBadPeers=" << params.percent_bad_peers
     << " BadPongBehavior=" << to_string(params.bad_pong_behavior);
  return os.str();
}

std::string describe(const ProtocolParams& params) {
  std::ostringstream os;
  os << "QueryProbe=" << to_string(params.query_probe)
     << " QueryPong=" << to_string(params.query_pong)
     << " PingProbe=" << to_string(params.ping_probe)
     << " PingPong=" << to_string(params.ping_pong)
     << " CacheReplacement=" << to_string(params.cache_replacement)
     << " PingInterval=" << params.ping_interval
     << " CacheSize=" << params.cache_size
     << " ResetNumResults=" << (params.reset_num_results ? "Yes" : "No")
     << " DoBackoff=" << (params.do_backoff ? "Yes" : "No")
     << " PongSize=" << params.pong_size
     << " IntroProb=" << params.intro_prob;
  return os.str();
}

}  // namespace guess
