// A GUESS peer: link cache, shared library, capacity limiter, and the
// per-peer bookkeeping the experiments measure.
//
// Peers hold state and local decisions; message exchange and the churn /
// workload machinery live in GuessNetwork.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "content/content_model.h"
#include "guess/link_cache.h"
#include "guess/params.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace guess {

class Peer {
 public:
  Peer(PeerId id, sim::Time birth, content::Library library,
       std::size_t cache_capacity, bool malicious, bool selfish = false);

  PeerId id() const { return id_; }
  sim::Time birth_time() const { return birth_; }
  bool malicious() const { return malicious_; }

  /// Selfish peers (§3.3) blast parallel probes instead of probing serially.
  bool selfish() const { return selfish_; }

  const content::Library& library() const { return library_; }
  std::uint32_t num_files() const {
    return static_cast<std::uint32_t>(library_.size());
  }

  LinkCache& cache() { return cache_; }
  const LinkCache& cache() const { return cache_; }

  /// Results this peer returns for a query probe: number of matching files
  /// in its library capped at what the querier asked for. Malicious peers
  /// return nothing (§6.4: "they will only return a corrupt Pong message").
  std::uint32_t answer_query(content::FileId file,
                             std::uint32_t max_results) const;

  /// Account one received query probe against MaxProbesPerSecond within the
  /// current 1-second window. @returns false if the peer is overloaded and
  /// refuses the probe (§6.3).
  bool accept_probe(sim::Time now, std::uint32_t max_probes_per_second);

  // --- probe-payment economy (§3.3) ---

  void set_credit(double credit) { credit_ = credit; }
  double credit() const { return credit_; }
  /// Affordable = credit minus what probes already in flight have reserved.
  /// Reservations are a *count*, not a summed amount: every in-flight probe
  /// reserves the same per-run probe_cost, so the ledger stays exact (no
  /// floating-point residue from repeated add/subtract).
  bool can_afford(double cost) const {
    return credit_ - static_cast<double>(reserved_) * cost >= cost;
  }
  /// Spend must be affordable (checked).
  void spend_credit(double cost);
  void earn_credit(double reward, double cap);

  /// Reserve `cost` for a probe being issued — must be affordable (checked).
  /// Under an asynchronous transport several probes of a slot are in flight
  /// together; reserving at issue time keeps can_afford honest about credit
  /// that is already committed. Resolve each reservation with exactly one of
  /// commit_credit (probe served: the reservation becomes a spend) or
  /// release_credit (no service rendered: the credit returns untouched).
  void reserve_credit(double cost);
  void commit_credit(double cost);
  void release_credit();
  std::uint32_t reserved_probes() const { return reserved_; }

  // --- adaptive ping maintenance (§6.1) ---

  void set_ping_interval(sim::Duration interval) {
    ping_interval_ = interval;
  }
  sim::Duration ping_interval() const { return ping_interval_; }

  /// Record one ping outcome; with adaptation enabled, every
  /// `params.window` pings the interval is adjusted by the dead fraction.
  void note_ping_result(bool dead, const AdaptivePingParams& params);

  // --- malicious-referral detection (§6.4) ---

  bool blacklisted(PeerId id) const { return blacklist_.contains(id); }
  std::size_t blacklist_size() const { return blacklist_.size(); }

  /// Record that `source` referred an entry that proved good or bad.
  /// @returns true if this tipped `source` over the blacklist threshold.
  bool note_referral(PeerId source, bool bad, const DetectionParams& params);

  /// Blacklist `source` immediately, skipping referral accumulation — for
  /// evidence that is unambiguous on one observation (an oversized pong:
  /// honest pongs structurally cannot exceed PongSize). Shares the
  /// conviction bookkeeping with note_referral (referral stats and backoff
  /// cleared), and — being proof of an active attack rather than a
  /// statistical verdict — trips the adaptive MR -> MR* switch at once
  /// instead of waiting for switch_threshold convictions.
  /// @returns true if `source` was newly blacklisted.
  bool blacklist_now(PeerId source, const DetectionParams& params);

  /// True once the peer has switched itself to first-hand-only ingestion
  /// (the detection-triggered MR → MR* adaptation).
  bool first_hand_only() const { return first_hand_only_; }

  // --- pong-server rebootstrap (§6.1) ---

  sim::Time last_reseed() const { return last_reseed_; }
  void set_last_reseed(sim::Time at) { last_reseed_ = at; }

  // --- querier-side backoff (§6.3, DoBackoff) ---

  /// No-op for blacklisted targets: blacklist is the stronger verdict
  /// (never probed again), so tracking a backoff window for one would only
  /// leave the two mechanisms disagreeing about the same peer.
  void set_backoff(PeerId target, sim::Time until) {
    if (blacklisted(target)) return;
    backoff_until_[target] = until;
  }
  /// Non-const: an expired entry is erased on lookup, so the map holds only
  /// live backoffs instead of growing with every peer ever backed off.
  bool backed_off(PeerId target, sim::Time now);
  /// Drop any backoff window for `target` (used by tests; note_referral
  /// clears it automatically when a target crosses into the blacklist).
  void clear_backoff(PeerId target) { backoff_until_.erase(target); }
  std::size_t backoff_entries() const { return backoff_until_.size(); }

  // --- load accounting (Figure 13/14) ---

  void count_received_probe() { ++probes_received_; }
  void count_received_ping() { ++pings_received_; }
  std::uint64_t probes_received() const { return probes_received_; }
  std::uint64_t pings_received() const { return pings_received_; }

  // --- workload state: a peer executes queries strictly one at a time ---

  /// One waiting query: the file plus when it was issued (the external
  /// arrival time under open-loop load; the enqueue time for closed-loop
  /// bursts), so queueing delay is part of its measured latency.
  struct PendingQuery {
    content::FileId file = 0;
    sim::Time issued = 0.0;
  };

  void enqueue_query(content::FileId file, sim::Time issued) {
    pending_queries_.push_back(PendingQuery{file, issued});
  }
  bool has_pending_query() const {
    return pending_head_ < pending_queries_.size();
  }
  PendingQuery pop_pending_query();
  /// Visit every still-waiting entry in FIFO order (open-query censusing
  /// and abandonment accounting — cold paths).
  template <typename Visitor>
  void visit_pending_queries(Visitor&& visit) const {
    for (std::size_t i = pending_head_; i < pending_queries_.size(); ++i) {
      visit(pending_queries_[i]);
    }
  }
  bool query_active() const { return query_active_; }
  void set_query_active(bool active) { query_active_ = active; }

  /// Periodic-event handles owned by the network, cancelled at death.
  sim::EventHandle ping_timer;
  sim::EventHandle burst_timer;

 private:
  PeerId id_;
  sim::Time birth_;
  bool malicious_;
  bool selfish_;
  content::Library library_;
  LinkCache cache_;
  double credit_ = 0.0;
  std::uint32_t reserved_ = 0;  // in-flight probes holding a reservation

  std::int64_t window_ = -1;         // capacity window index (whole seconds)
  std::uint32_t window_probes_ = 0;  // probes accepted in the window

  std::unordered_map<PeerId, sim::Time> backoff_until_;

  sim::Duration ping_interval_ = 30.0;
  std::size_t ping_window_total_ = 0;
  std::size_t ping_window_dead_ = 0;

  /// Shared conviction bookkeeping: blacklist `source` and drop its
  /// now-redundant referral stats and backoff window.
  void convict(PeerId source);

  struct ReferralStats {
    std::uint32_t total = 0;
    std::uint32_t bad = 0;
  };
  // Bounded at the link-cache working set (see note_referral): when full, a
  // new referrer displaces the entry with the least evidence.
  std::unordered_map<PeerId, ReferralStats> referral_stats_;
  std::unordered_set<PeerId> blacklist_;
  bool first_hand_only_ = false;
  sim::Time last_reseed_ = -1e18;  // "never"

  std::uint64_t probes_received_ = 0;
  std::uint64_t pings_received_ = 0;

  // FIFO as a vector + head index (allocation-free once warm: the storage
  // is reclaimed wholesale whenever the queue drains).
  std::vector<PendingQuery> pending_queries_;
  std::size_t pending_head_ = 0;
  bool query_active_ = false;
};

}  // namespace guess
