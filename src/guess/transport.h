// Pluggable message transport for GUESS probe/reply exchanges (DESIGN.md §8).
//
// Every Ping/Pong and QueryProbe/QueryReply round trip flows through a
// Transport. The network hands the transport an exchange (who is asking
// whom, and a completion callback); the transport decides *whether and when*
// the round trip resolves:
//
//  * SynchronousTransport — the paper's §5.1 assumption: every probe and its
//    reply complete "within the timeout". The completion runs inline, before
//    exchange() returns, consuming no randomness and scheduling no events —
//    simulations through it are bitwise-identical to the pre-transport code.
//  * LossyTransport — UDP-faithful fault injection: each message leg is lost
//    i.i.d. with probability `loss`, delivery latency is drawn from a
//    configurable distribution, an unanswered attempt times out after
//    `probe_timeout` (the timeout is a real scheduled event on the slab
//    event queue), and a retry policy re-sends up to `max_retries` times
//    with fixed or exponential backoff before the exchange fails.
//
// What the messages *mean* — liveness checks, pong processing, eviction on
// silence — stays in GuessNetwork; the transport only moves them. In
// particular the transport cannot observe peer liveness: a probe to a dead
// address is "delivered" into the void and resolves as a timeout only
// because no reply leg ever fires (SynchronousTransport delegates that
// judgement back to the network at completion time, exactly like the
// pre-transport code).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "guess/metrics.h"
#include "guess/types.h"
#include "sim/inline_function.h"
#include "sim/simulator.h"

namespace guess {

/// What kind of request an exchange carries (accounting and tracing only;
/// the transport treats both identically).
enum class MessageKind {
  kPing,        ///< Ping -> Pong (§2.2 maintenance)
  kQueryProbe,  ///< QueryProbe -> QueryReply+Pong (§2.3)
};

/// How an exchange resolved, from the requester's point of view.
enum class DeliveryStatus {
  kDelivered,  ///< the reply arrived within the timeout
  kTimedOut,   ///< every attempt expired unanswered (lost, late, or void)
};

/// One-way delivery-latency model of LossyTransport.
enum class LatencyDistribution {
  kFixed,        ///< every leg takes exactly `link_latency`
  kUniform,      ///< uniform in [0, 2 * link_latency)
  kExponential,  ///< exponential with mean `link_latency`
};

/// Which transport GuessNetwork instantiates, plus the LossyTransport knobs
/// (ignored by SynchronousTransport). Part of SimulationConfig; surfaced on
/// the command line as --loss / --link-latency / --probe-timeout /
/// --max-retries.
struct TransportParams {
  enum class Kind {
    kSynchronous,  ///< §5.1 in-event semantics (the default)
    kLossy,        ///< loss + latency + timeout/retry fault injection
  };
  enum class Backoff {
    kFixed,        ///< every retransmit waits `retry_backoff`
    kExponential,  ///< attempt k waits retry_backoff * 2^(k-1)
  };

  Kind kind = Kind::kSynchronous;

  /// Per-leg i.i.d. loss probability in [0, 1]; a round trip needs both the
  /// request and the reply leg to survive.
  double loss = 0.0;

  /// Mean one-way delivery latency, seconds, and its distribution.
  sim::Duration link_latency = 0.05;
  LatencyDistribution latency_distribution = LatencyDistribution::kFixed;

  /// How long the requester waits for the reply before declaring the
  /// attempt dead (per attempt, seconds).
  sim::Duration probe_timeout = 2.0;

  /// Retransmits after the first attempt (0 = a single attempt per
  /// exchange); each re-send waits `retry_backoff` (fixed) or
  /// retry_backoff * 2^(attempt-1) (exponential) after its predecessor's
  /// timeout fires.
  std::size_t max_retries = 0;
  Backoff backoff = Backoff::kFixed;
  sim::Duration retry_backoff = 0.0;

  /// Upper bound on a single retransmit delay, seconds. Without a cap the
  /// exponential schedule doubles unbounded, so a high-retry configuration
  /// pushes one backoff past any simulation horizon (2^k seconds overflows
  /// to years within ~25 retries). Surfaced as --max-backoff.
  sim::Duration max_backoff = 60.0;

  /// A lossy configuration with every fault-injection knob at its default.
  static TransportParams lossy(double loss_probability) {
    TransportParams params;
    params.kind = Kind::kLossy;
    params.loss = loss_probability;
    return params;
  }
};

/// One-line human-readable summary used by bench headers and guess_cli.
std::string describe(const TransportParams& params);

/// Time-varying fault overlay consulted by a transport on every send
/// (DESIGN.md §9). The fault-scenario engine flips the answers as partition
/// and degradation windows open and close; the transport stays oblivious to
/// *why* the network is currently bad. Installed only while a scenario is
/// active, so unmodulated runs execute the exact pre-fault code path.
class TransportModulation {
 public:
  virtual ~TransportModulation() = default;

  /// True if a partition currently severs the (from, to) pair. A severed
  /// request is delivered into the void: the exchange can only time out,
  /// exactly like a probe to a dead address.
  virtual bool severed(PeerId from, PeerId to) const = 0;

  /// Additional per-leg loss probability layered on top of the configured
  /// loss (sum clamped to 1.0) while a degradation window is open; 0 outside.
  virtual double extra_loss() const = 0;

  /// Multiplier applied to every drawn leg latency (>= 1 during a
  /// degradation window; exactly 1 outside).
  virtual double latency_factor() const = 0;
};

class Transport {
 public:
  /// Exchange completion: invoked exactly once per exchange() call — inline
  /// (SynchronousTransport) or from a scheduled event (LossyTransport). The
  /// buffer is sized for the network's largest completion thunk (a query
  /// probe resolution carrying its Candidate); network.cc static_asserts
  /// that binding one never allocates.
  static constexpr std::size_t kCompletionBufferSize = 72;
  using Completion =
      sim::InlineFunction<void(DeliveryStatus), kCompletionBufferSize>;

  virtual ~Transport() = default;

  /// Start one request/reply round trip from `from` to `to`. The transport
  /// owns retries; `on_complete` fires once with the final status.
  virtual void exchange(MessageKind kind, PeerId from, PeerId to,
                        Completion on_complete) = 0;

  /// Lifetime message accounting (not windowed; GuessNetwork snapshots at
  /// begin_measurement and reports the difference).
  const TransportCounters& counters() const { return counters_; }

  /// Attach an event tracer for the kTransport category (nullptr detaches).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Install a fault-modulation overlay (nullptr detaches). Not owned; must
  /// outlive the transport or be detached first.
  void set_modulation(const TransportModulation* modulation) {
    modulation_ = modulation;
  }

 protected:
  /// Lazily-built kTransport trace record, same idiom as GuessNetwork.
  template <typename Builder>
  void trace(sim::Time at, Builder&& builder) {
    if (tracer_ != nullptr && tracer_->on(TraceCategory::kTransport)) {
      std::ostringstream os;
      builder(os);
      tracer_->record(TraceCategory::kTransport, at, os.str());
    }
  }

  TransportCounters counters_;
  Tracer* tracer_ = nullptr;
  const TransportModulation* modulation_ = nullptr;
};

/// The §5.1 default: the reply is available the instant the request is sent.
/// Completions run inline, so a simulation through this transport executes
/// the identical operation sequence (and RNG stream) as the pre-transport
/// in-event message exchange.
class SynchronousTransport final : public Transport {
 public:
  void exchange(MessageKind kind, PeerId from, PeerId to,
                Completion on_complete) override;
};

/// Fault-injecting transport: per-leg loss, distributed latency, per-attempt
/// timeout events and a bounded retry policy. Owns its own RNG stream so
/// enabling it perturbs no other subsystem's draws. Exchange state lives in
/// a free-list slab; the scheduled thunks are three-word structs that stay
/// within the event queue's inline-callback buffer.
class LossyTransport final : public Transport {
 public:
  LossyTransport(TransportParams params, sim::Simulator& simulator, Rng rng);

  void exchange(MessageKind kind, PeerId from, PeerId to,
                Completion on_complete) override;

  /// Exchanges started but not yet resolved (tests).
  std::size_t in_flight() const { return in_flight_; }

  const TransportParams& params() const { return params_; }

 private:
  struct AttemptResolved;  // event thunk: delivery or timeout fired
  struct ResendFired;      // event thunk: backoff elapsed, re-send

  struct PendingExchange {
    MessageKind kind = MessageKind::kPing;
    PeerId from = kInvalidPeer;
    PeerId to = kInvalidPeer;
    std::uint32_t attempt = 0;  // 1-based once sent
    Completion on_complete;
    std::uint32_t next_free = kNilSlot;
  };

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  /// Send (or re-send) the request for one attempt: draws the attempt's
  /// fate — both legs' loss and latency — and schedules the single event
  /// that resolves it (delivery at now+rtt, else timeout at now+timeout).
  void send_attempt(std::uint32_t slot);
  void attempt_resolved(std::uint32_t slot, bool delivered);
  void complete(std::uint32_t slot, DeliveryStatus status);

  sim::Duration draw_latency();
  sim::Duration backoff_delay(std::uint32_t attempt) const;

  TransportParams params_;
  sim::Simulator& simulator_;
  Rng rng_;

  std::vector<PendingExchange> slab_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t in_flight_ = 0;
};

}  // namespace guess
