#include "guess/malicious.h"

#include "common/check.h"

namespace guess {

PoisonGenerator::PoisonGenerator(MaliciousParams params,
                                 BadPongBehavior behavior)
    : params_(params), behavior_(behavior) {}

void PoisonGenerator::set_dead_pool(std::vector<PeerId> pool) {
  dead_pool_ = std::move(pool);
}

void PoisonGenerator::add_bad_peer(PeerId id) {
  GUESS_CHECK(!bad_index_.contains(id));
  bad_index_.emplace(id, bad_peers_.size());
  bad_peers_.push_back(id);
}

void PoisonGenerator::remove_bad_peer(PeerId id) {
  auto it = bad_index_.find(id);
  GUESS_CHECK(it != bad_index_.end());
  std::size_t pos = it->second;
  bad_index_.erase(it);
  if (pos != bad_peers_.size() - 1) {
    bad_peers_[pos] = bad_peers_.back();
    bad_index_[bad_peers_[pos]] = pos;
  }
  bad_peers_.pop_back();
}

CacheEntry PoisonGenerator::poison_entry(PeerId id, sim::Time now) const {
  return CacheEntry{id, now, params_.claimed_num_files,
                    params_.claimed_num_res};
}

std::vector<CacheEntry> PoisonGenerator::make_pong(PeerId self,
                                                   std::size_t pong_size,
                                                   sim::Time now,
                                                   Rng& rng) const {
  std::vector<CacheEntry> pong;
  make_pong_into(self, pong_size, now, rng, pong);
  return pong;
}

void PoisonGenerator::make_pong_into(PeerId self, std::size_t pong_size,
                                     sim::Time now, Rng& rng,
                                     std::vector<CacheEntry>& out) const {
  out.clear();
  if (out.capacity() < pong_size) out.reserve(pong_size);
  if (behavior_ == BadPongBehavior::kDead) {
    if (dead_pool_.empty()) return;
    for (std::size_t i = 0; i < pong_size; ++i) {
      out.push_back(poison_entry(
          dead_pool_[rng.index(dead_pool_.size())], now));
    }
    return;
  }
  // Collusion: name fellow attackers. With only `self` in the system there
  // is nobody to advertise.
  if (bad_peers_.size() <= 1) return;
  for (std::size_t i = 0; i < pong_size; ++i) {
    PeerId id = self;
    // Retry until we name someone else; the population is > 1 so this
    // terminates quickly.
    while (id == self) id = bad_peers_[rng.index(bad_peers_.size())];
    out.push_back(poison_entry(id, now));
  }
}

}  // namespace guess
