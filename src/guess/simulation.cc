#include "guess/simulation.h"

#include <cmath>

#include "analysis/overlay_graph.h"
#include "churn/lifetime.h"
#include "common/check.h"
#include "content/content_model.h"
#include "experiments/parallel_runner.h"

namespace guess {

GuessSimulation::GuessSimulation(const SimulationConfig& config)
    : config_(config.validate()), simulator_(config_.options().scheduler) {
  network_ =
      std::make_unique<GuessNetwork>(config_, simulator_, Rng(config_.seed()));
}

GuessSimulation::~GuessSimulation() = default;

SimulationResults GuessSimulation::run() {
  GUESS_CHECK_MSG(!ran_, "GuessSimulation::run() called twice");
  ran_ = true;
  const SimulationOptions& options = config_.options();

  network_->initialize();
  // Scenario actions and the interval sampler are scheduled up front, before
  // any simulated time passes: both then ride the event queue's (time, seq)
  // order, which is what makes a scenario run bitwise deterministic across
  // scheduler backends. Fault actions are scheduled first, so at an exact
  // tie the fault applies before that instant's interval sample closes.
  if (!config_.scenario().empty()) {
    fault_engine_ = std::make_unique<faults::FaultEngine>(
        config_.scenario(), simulator_, *network_);
    fault_engine_->schedule();
  }
  if (options.metrics_interval > 0.0) {
    network_->begin_interval_metrics(options.metrics_interval);
    simulator_.every(options.metrics_interval, options.metrics_interval,
                     [this]() { network_->sample_interval(); });
  }
  simulator_.run_until(options.warmup);
  network_->begin_measurement();

  sim::Time end = options.warmup + options.measure;
  // Periodic samplers, phased to land inside the measurement window.
  network_->sample_cache_health();
  simulator_.every(options.health_sample_interval,
                   options.health_sample_interval,
                   [this]() { network_->sample_cache_health(); });
  if (options.sample_connectivity) {
    simulator_.every(options.connectivity_sample_interval,
                     options.connectivity_sample_interval,
                     [this]() { network_->sample_connectivity(); });
  }
  simulator_.run_until(end);
  if (options.sample_connectivity) network_->sample_connectivity();

  SimulationResults results = network_->collect_results();
  results.measure_duration = options.measure;
  if (options.sample_connectivity) {
    // End-of-run snapshot, including the strong component the one-way
    // pointer structure (§2.1) makes interesting.
    analysis::OverlayGraph graph;
    for (PeerId id : network_->alive_ids()) graph.add_node(id);
    network_->visit_live_edges(
        [&](PeerId from, PeerId to) { graph.add_edge(from, to); });
    results.final_largest_component = graph.largest_weak_component();
    results.final_largest_strong_component =
        graph.largest_strong_component();
  }
  return results;
}

std::vector<SimulationResults> run_seeds(
    const SimulationConfig& config, int num_seeds,
    const std::function<void(int, int)>& progress) {
  GUESS_CHECK(num_seeds >= 1);
  config.validate();
  std::uint64_t base_seed = config.seed();
  auto run_one = [&, base_seed](int i) {
    SimulationConfig replication = config;
    replication.seed(base_seed + static_cast<std::uint64_t>(i));
    GuessSimulation sim(replication);
    return sim.run();
  };

  int threads = experiments::resolve_thread_count(config.options().threads);
  if (threads == 1 || num_seeds == 1) {
    std::vector<SimulationResults> runs;
    runs.reserve(static_cast<std::size_t>(num_seeds));
    for (int i = 0; i < num_seeds; ++i) {
      runs.push_back(run_one(i));
      if (progress) progress(i + 1, num_seeds);
    }
    return runs;
  }

  // Warm the shared immutable quantile tables on this thread so workers read
  // fully-constructed statics instead of serializing on their init guards.
  content::ContentModel::sharing_distribution();
  churn::LifetimeDistribution::base_distribution();

  experiments::ParallelRunner runner(threads);
  return runner.map<SimulationResults>(num_seeds, run_one, progress);
}

AveragedResults average(const std::vector<SimulationResults>& runs) {
  AveragedResults out;
  if (runs.empty()) return out;
  auto n = static_cast<double>(runs.size());
  RunningStat probes_stat;
  RunningStat unsat_stat;
  for (const auto& r : runs) {
    probes_stat.add(r.probes_per_query());
    unsat_stat.add(r.unsatisfied_rate());
  }
  if (runs.size() > 1) {
    out.probes_per_query_se = probes_stat.stddev() / std::sqrt(n);
    out.unsatisfied_rate_se = unsat_stat.stddev() / std::sqrt(n);
  }
  for (const auto& r : runs) {
    out.probes_per_query += r.probes_per_query() / n;
    out.good_per_query += r.good_probes_per_query() / n;
    out.dead_per_query += r.dead_probes_per_query() / n;
    out.refused_per_query += r.refused_probes_per_query() / n;
    out.unsatisfied_rate += r.unsatisfied_rate() / n;
    out.fraction_live += r.cache_health.fraction_live / n;
    out.absolute_live += r.cache_health.absolute_live / n;
    out.good_entries += r.cache_health.good_entries / n;
    out.largest_component += r.largest_component.mean() / n;
    out.final_largest_component +=
        static_cast<double>(r.final_largest_component) / n;
    out.final_largest_strong_component +=
        static_cast<double>(r.final_largest_strong_component) / n;
    out.response_time += r.response_time.mean() / n;
    out.queries_completed +=
        static_cast<double>(r.queries_completed) / n;
  }
  return out;
}

}  // namespace guess
